//! # glaf-repro — workspace façade
//!
//! Re-exports every crate of the GLAF reproduction so examples and
//! integration tests can use one dependency. See the individual crates for
//! documentation:
//!
//! * [`glaf_grid`] — the grid abstraction (paper §2.1, Fig. 1)
//! * [`glaf_ir`] — modules / functions / steps IR and the GPI-equivalent builder
//! * [`glaf_autopar`] — the auto-parallelization back-end
//! * [`glaf_codegen`] — FORTRAN and C code generation with legacy integration (§3)
//! * [`omprt`] — OpenMP-like fork-join runtime
//! * [`fortrans`] — FORTRAN-subset compiler + interpreter with `!$OMP` execution
//! * [`simcpu`] — deterministic machine model for simulated timings
//! * [`glaf`] — end-to-end pipeline facade
//! * [`sarb`] — Synoptic SARB workload (§4.1)
//! * [`fun3d`] — FUN3D Jacobian reconstruction workload (§4.2)

pub use fortrans;
pub use fun3d;
pub use glaf;
pub use glaf_autopar;
pub use glaf_codegen;
pub use glaf_grid;
pub use glaf_ir;
pub use omprt;
pub use sarb;
pub use simcpu;
