//! The C back-end's output must be *compilable C*, not just plausible
//! text: when a host C compiler is available, run `gcc -fsyntax-only`
//! over the generated translation units (with a small shim providing the
//! extern legacy data the §3 features reference).

use std::io::Write;
use std::process::Command;

use glaf_repro::glaf::{Glaf, Lang};
use glaf_repro::glaf_codegen::CodegenOptions;

fn gcc_available() -> bool {
    Command::new("gcc")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

/// Syntax-checks `source` (+shim) with gcc; panics with diagnostics on
/// failure.
fn syntax_check(name: &str, shim: &str, source: &str) {
    let dir = std::env::temp_dir().join(format!("glaf_c_check_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}.c"));
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "{shim}").unwrap();
    writeln!(f, "{source}").unwrap();
    drop(f);
    let out = Command::new("gcc")
        .args(["-std=c11", "-fsyntax-only", "-Wno-unknown-pragmas"])
        .arg(&path)
        .output()
        .expect("gcc runs");
    assert!(
        out.status.success(),
        "gcc rejected generated C for {name}:\n{}\n--- source ---\n{shim}\n{source}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sarb_generated_c_is_valid_c() {
    if !gcc_available() {
        eprintln!("gcc not available; skipping");
        return;
    }
    let g = Glaf::new(glaf_repro::sarb::glaf_model::build_sarb_program()).unwrap();
    let c = g.generate(Lang::C, &CodegenOptions::parallel_version(0));
    // Shim: the legacy data the generated unit references. The generator
    // `#include`s "fuliou_mod.h"; provide it inline by pre-substituting.
    let source = c.source.replace("#include \"fuliou_mod.h\"", "");
    let shim = r#"
/* legacy shim standing in for fuliou_mod.h */
typedef struct { double pt[60]; double ph[60]; double tau_lw[12][60]; double tau_sw[6][60]; } fuinput_t;
typedef struct { double fdl[61]; double ful[61]; double fds[61]; double fus[61];
                 double entl[2][60]; double ents[60]; double sent; double toa_net; } fuoutput_t;
fuinput_t fi; fuoutput_t fo;
"#;
    syntax_check("sarb", shim, &source);
}

#[test]
fn fun3d_generated_c_is_valid_c() {
    if !gcc_available() {
        eprintln!("gcc not available; skipping");
        return;
    }
    let g = Glaf::new(glaf_repro::fun3d::glaf_model::build_fun3d_program()).unwrap();
    let c = g.generate(Lang::C, &CodegenOptions::serial());
    let source = c.source.replace("#include \"mesh_mod.h\"", "");
    let shim = r#"
/* legacy shim standing in for mesh_mod.h */
#define BIGN 1048576
long ncell; long ed1[6]; long ed2[6];
long c2n[BIGN][4]; double qn[BIGN][5];
double fnorm[BIGN][4][3]; double farea[BIGN][4];
long nbr[BIGN][8]; long nnbr[BIGN]; double jac[BIGN];
"#;
    syntax_check("fun3d", shim, &source);
}

#[test]
fn quick_kernel_c_is_valid_c() {
    if !gcc_available() {
        eprintln!("gcc not available; skipping");
        return;
    }
    use glaf_repro::glaf_grid::{DataType, Grid};
    use glaf_repro::glaf_ir::{Expr, LValue, ProgramBuilder};
    let n = Grid::build("n").typed(DataType::Integer).finish().unwrap();
    let a = Grid::build("a").typed(DataType::Real8).dim1(64).finish().unwrap();
    let p = ProgramBuilder::new()
        .module("quick")
        .subroutine("scale2")
        .param(n)
        .param(a)
        .loop_step("scale")
        .foreach("i", Expr::int(1), Expr::scalar("n"))
        .formula(
            LValue::at("a", vec![Expr::idx("i")]),
            Expr::at("a", vec![Expr::idx("i")]) * Expr::real(2.0),
        )
        .done()
        .done()
        .done()
        .finish();
    let g = Glaf::new(p).unwrap();
    let c = g.generate(Lang::C, &CodegenOptions::parallel_version(0));
    syntax_check("quick", "", &c.source);
}
