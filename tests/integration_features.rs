//! End-to-end checks of every §3 legacy-integration feature: the feature
//! is built through the GPI-equivalent builder, generated to FORTRAN,
//! compiled *together with hand-written legacy code*, executed, and the
//! observable effect verified — the full loop the paper's §3 describes.

use glaf_repro::fortrans::{ArgVal, ExecMode, Val};
use glaf_repro::glaf::{Glaf, Lang};
use glaf_repro::glaf_codegen::CodegenOptions;
use glaf_repro::glaf_grid::{DataType, Grid};
use glaf_repro::glaf_ir::{Expr, LValue, ProgramBuilder, Stmt};

/// §3.1 — using existing variables from imported modules: the generated
/// subroutine reads and writes a variable owned by a legacy module.
#[test]
fn existing_module_variables_roundtrip() {
    let legacy = r#"
MODULE legacy_mod
  IMPLICIT NONE
  REAL(8) :: stock
  REAL(8), DIMENSION(1:4) :: ledger
END MODULE legacy_mod
"#;
    let stock = Grid::build("stock")
        .typed(DataType::Real8)
        .in_existing_module("legacy_mod")
        .finish()
        .unwrap();
    let ledger = Grid::build("ledger")
        .typed(DataType::Real8)
        .dim1(4)
        .in_existing_module("legacy_mod")
        .finish()
        .unwrap();
    let p = ProgramBuilder::new()
        .module("genmod")
        .global(stock)
        .global(ledger)
        .subroutine("book")
        .loop_step("spread stock into the ledger")
        .foreach("i", Expr::int(1), Expr::int(4))
        .formula(
            LValue::at("ledger", vec![Expr::idx("i")]),
            Expr::scalar("stock") * Expr::idx("i"),
        )
        .done()
        .straight_step(
            "consume",
            vec![Stmt::assign(LValue::scalar("stock"), Expr::real(0.0))],
        )
        .done()
        .done()
        .finish();
    let g = Glaf::new(p).unwrap();
    let engine = g.compile_with(&CodegenOptions::serial(), &[legacy]).unwrap();
    engine.set_global_scalar("legacy_mod::stock", Val::F(2.5));
    engine.run("book", &[], ExecMode::Serial).unwrap();
    let ledger = engine.global_array("legacy_mod::ledger").unwrap();
    assert_eq!(ledger.to_f64_vec(), vec![2.5, 5.0, 7.5, 10.0]);
    assert_eq!(engine.global_scalar("legacy_mod::stock"), Some(Val::F(0.0)));
}

/// §3.2 — COMMON blocks: the generated code and hand-written legacy code
/// share storage through `/params/`.
#[test]
fn common_block_shared_with_legacy_code() {
    let legacy = r#"
MODULE legacy_side
  IMPLICIT NONE
CONTAINS
  SUBROUTINE set_gain(v)
    REAL(8) :: v
    REAL(8) :: gain, offset
    COMMON /params/ gain, offset
    gain = v
    offset = 1.0D0
  END SUBROUTINE set_gain
END MODULE legacy_side
"#;
    let gain = Grid::build("gain").typed(DataType::Real8).in_common_block("params").finish().unwrap();
    let offset =
        Grid::build("offset").typed(DataType::Real8).in_common_block("params").finish().unwrap();
    let x = Grid::build("x").typed(DataType::Real8).dim1(8).finish().unwrap();
    let p = ProgramBuilder::new()
        .module("genmod")
        .global(gain)
        .global(offset)
        .subroutine("apply")
        .param(x)
        .loop_step("affine transform")
        .foreach("i", Expr::int(1), Expr::int(8))
        .formula(
            LValue::at("x", vec![Expr::idx("i")]),
            Expr::at("x", vec![Expr::idx("i")]) * Expr::scalar("gain") + Expr::scalar("offset"),
        )
        .done()
        .done()
        .done()
        .finish();
    let g = Glaf::new(p).unwrap();
    let engine = g.compile_with(&CodegenOptions::serial(), &[legacy]).unwrap();
    engine.run("set_gain", &[ArgVal::F(3.0)], ExecMode::Serial).unwrap();
    let xs = ArgVal::array_f(&[1.0; 8], 1);
    engine.run("apply", std::slice::from_ref(&xs), ExecMode::Serial).unwrap();
    assert_eq!(xs.handle().unwrap().get_f(0), 4.0, "1*3 + 1 through COMMON");
}

/// §3.4 — Void return type generates SUBROUTINE + CALL; non-void a
/// FUNCTION used in expressions.
#[test]
fn subroutine_and_function_generation() {
    let t = Grid::build("t").typed(DataType::Real8).module_scope().finish().unwrap();
    let xv = Grid::build("xv").typed(DataType::Real8).finish().unwrap();
    let p = ProgramBuilder::new()
        .module("genmod")
        .global(t)
        .function("twice", DataType::Real8)
        .param(xv)
        .straight_step("ret", vec![Stmt::Return(Some(Expr::scalar("xv") * Expr::real(2.0)))])
        .done()
        .subroutine("helper")
        .straight_step(
            "work",
            vec![Stmt::assign(
                LValue::scalar("t"),
                Expr::scalar("t") + Expr::call("twice", vec![Expr::real(5.0)]),
            )],
        )
        .done()
        .subroutine("entry")
        .straight_step(
            "calls",
            vec![
                Stmt::CallSub { name: "helper".into(), args: vec![] },
                Stmt::CallSub { name: "helper".into(), args: vec![] },
            ],
        )
        .done()
        .done()
        .finish();
    let g = Glaf::new(p).unwrap();
    let src = g.generate(Lang::Fortran, &CodegenOptions::serial()).source;
    assert!(src.contains("CALL helper()"));
    assert!(src.contains("REAL(8) FUNCTION twice(xv)"));
    let engine = g.compile_with(&CodegenOptions::serial(), &[]).unwrap();
    engine.run("entry", &[], ExecMode::Serial).unwrap();
    assert_eq!(engine.global_scalar("genmod::t"), Some(Val::F(20.0)));
}

/// §3.5 — elements of existing TYPE variables get the `var%` prefix and
/// reach the legacy derived-type instance.
#[test]
fn type_elements_reach_legacy_struct() {
    let legacy = r#"
MODULE atoms_mod
  IMPLICIT NONE
  TYPE atom_t
    REAL(8) :: charge
    REAL(8), DIMENSION(1:3) :: pos
  END TYPE atom_t
  TYPE(atom_t) :: atom1
END MODULE atoms_mod
"#;
    let charge = Grid::build("charge")
        .typed(DataType::Real8)
        .type_element("atoms_mod", "atom1")
        .finish()
        .unwrap();
    let pos = Grid::build("pos")
        .typed(DataType::Real8)
        .dim1(3)
        .type_element("atoms_mod", "atom1")
        .finish()
        .unwrap();
    let p = ProgramBuilder::new()
        .module("genmod")
        .global(charge)
        .global(pos)
        .subroutine("ionize")
        .straight_step(
            "set charge",
            vec![Stmt::assign(LValue::scalar("charge"), Expr::real(1.6e-19))],
        )
        .loop_step("move")
        .foreach("i", Expr::int(1), Expr::int(3))
        .formula(LValue::at("pos", vec![Expr::idx("i")]), Expr::idx("i") * Expr::real(0.5))
        .done()
        .done()
        .done()
        .finish();
    let g = Glaf::new(p).unwrap();
    let src = g.generate(Lang::Fortran, &CodegenOptions::serial()).source;
    assert!(src.contains("atom1%charge ="), "{src}");
    assert!(src.contains("atom1%pos(i)"), "{src}");
    let engine = g.compile_with(&CodegenOptions::serial(), &[legacy]).unwrap();
    engine.run("ionize", &[], ExecMode::Serial).unwrap();
    assert_eq!(engine.global_scalar("atoms_mod::atom1%charge"), Some(Val::F(1.6e-19)));
    let pos = engine.global_array("atoms_mod::atom1%pos").unwrap();
    assert_eq!(pos.to_f64_vec(), vec![0.5, 1.0, 1.5]);
}

/// §3.3 — module-scope variables carry complex data out of interior-loop
/// functions (the structural reason the feature exists).
#[test]
fn module_scope_carries_interior_loop_results() {
    let buf = Grid::build("buf").typed(DataType::Real8).dim1(6).module_scope().finish().unwrap();
    let total = Grid::build("total").typed(DataType::Real8).module_scope().finish().unwrap();
    let kv = Grid::build("kv").typed(DataType::Integer).finish().unwrap();
    let p = ProgramBuilder::new()
        .module("genmod")
        .global(buf)
        .global(total)
        .subroutine("inner")
        .param(kv)
        .loop_step("fill buffer")
        .foreach("i", Expr::int(1), Expr::int(6))
        .formula(
            LValue::at("buf", vec![Expr::idx("i")]),
            Expr::idx("i") * Expr::scalar("kv"),
        )
        .done()
        .done()
        .subroutine("outer")
        .loop_step("drive interior loops")
        .foreach("k", Expr::int(1), Expr::int(3))
        .stmt(Stmt::CallSub { name: "inner".into(), args: vec![Expr::idx("k")] })
        .stmt(Stmt::assign(
            LValue::scalar("total"),
            Expr::scalar("total") + Expr::at("buf", vec![Expr::int(6)]),
        ))
        .done()
        .done()
        .done()
        .finish();
    let g = Glaf::new(p).unwrap();
    let engine = g.compile_with(&CodegenOptions::serial(), &[]).unwrap();
    engine.run("outer", &[], ExecMode::Serial).unwrap();
    // total = 6*1 + 6*2 + 6*3 = 36.
    assert_eq!(engine.global_scalar("genmod::total"), Some(Val::F(36.0)));
}

/// §3.6 — the extended library functions generate and evaluate.
#[test]
fn extended_library_functions_execute() {
    use glaf_repro::glaf_ir::LibFunc;
    let x = Grid::build("x").typed(DataType::Real8).dim1(4).finish().unwrap();
    let out = Grid::build("outv").typed(DataType::Real8).finish().unwrap();
    let p = ProgramBuilder::new()
        .module("genmod")
        .function("libdemo", DataType::Real8)
        .param(x)
        .local(out)
        .straight_step(
            "use the §3.6 extensions",
            vec![
                Stmt::assign(
                    LValue::scalar("outv"),
                    Expr::lib(LibFunc::Abs, vec![Expr::real(-3.0)])
                        + Expr::lib(LibFunc::Alog, vec![Expr::real(std::f64::consts::E)])
                        + Expr::lib(LibFunc::Sum, vec![Expr::WholeGrid("x".into())]),
                ),
                Stmt::Return(Some(Expr::scalar("outv"))),
            ],
        )
        .done()
        .done()
        .finish();
    let g = Glaf::new(p).unwrap();
    let src = g.generate(Lang::Fortran, &CodegenOptions::serial()).source;
    assert!(src.contains("ABS("));
    assert!(src.contains("ALOG("));
    assert!(src.contains("SUM(x)"));
    let engine = g.compile_with(&CodegenOptions::serial(), &[]).unwrap();
    let r = engine
        .run("libdemo", &[ArgVal::array_f(&[1.0, 2.0, 3.0, 4.0], 1)], ExecMode::Serial)
        .unwrap();
    let Some(Val::F(v)) = r.result else { panic!() };
    assert!((v - (3.0 + 1.0 + 10.0)).abs() < 1e-12, "{v}");
}
