//! Property-based end-to-end test of the whole pipeline: proptest
//! generates random formula trees, which flow through the builder →
//! auto-parallelizer → FORTRAN generator → parser → resolver →
//! interpreter, in all three execution modes — and the results must match
//! a direct Rust evaluation of the same tree.
//!
//! This is the strongest single guarantee in the test suite: any
//! mis-parenthesization in the emitter, precedence bug in the parser,
//! type-promotion slip in the resolver, or scheduling bug in the runtime
//! shows up as a numeric mismatch.

use glaf_repro::fortrans::{ArgVal, ExecMode, ExecTier, Val};
use glaf_repro::glaf::Glaf;
use glaf_repro::glaf_codegen::CodegenOptions;
use glaf_repro::glaf_grid::{DataType, Grid};
use glaf_repro::glaf_ir::{Expr, LValue, LibFunc, ProgramBuilder, Stmt};
use proptest::prelude::*;

const N: usize = 24;

/// A restricted expression grammar: total functions of `b(i)` and `i`,
/// safe against domain errors (no division, logs guarded by MAX).
#[derive(Debug, Clone)]
enum TExpr {
    B,        // b(i)
    I,        // loop index as real
    Const(i8),
    Add(Box<TExpr>, Box<TExpr>),
    Sub(Box<TExpr>, Box<TExpr>),
    Mul(Box<TExpr>, Box<TExpr>),
    Abs(Box<TExpr>),
    Max(Box<TExpr>, Box<TExpr>),
    Min(Box<TExpr>, Box<TExpr>),
}

fn texpr_strategy() -> impl Strategy<Value = TExpr> {
    let leaf = prop_oneof![
        Just(TExpr::B),
        Just(TExpr::I),
        (-4i8..5).prop_map(TExpr::Const),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| TExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| TExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| TExpr::Mul(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| TExpr::Abs(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| TExpr::Max(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| TExpr::Min(Box::new(a), Box::new(b))),
        ]
    })
}

impl TExpr {
    fn to_ir(&self) -> Expr {
        match self {
            TExpr::B => Expr::at("b", vec![Expr::idx("i")]),
            TExpr::I => Expr::idx("i") * Expr::real(1.0),
            TExpr::Const(c) => Expr::real(*c as f64),
            TExpr::Add(a, b) => a.to_ir() + b.to_ir(),
            TExpr::Sub(a, b) => a.to_ir() - b.to_ir(),
            TExpr::Mul(a, b) => a.to_ir() * b.to_ir(),
            TExpr::Abs(a) => Expr::lib(LibFunc::Abs, vec![a.to_ir()]),
            TExpr::Max(a, b) => Expr::lib(LibFunc::Max, vec![a.to_ir(), b.to_ir()]),
            TExpr::Min(a, b) => Expr::lib(LibFunc::Min, vec![a.to_ir(), b.to_ir()]),
        }
    }

    fn eval(&self, b: f64, i: f64) -> f64 {
        match self {
            TExpr::B => b,
            TExpr::I => i * 1.0,
            TExpr::Const(c) => *c as f64,
            TExpr::Add(x, y) => x.eval(b, i) + y.eval(b, i),
            TExpr::Sub(x, y) => x.eval(b, i) - y.eval(b, i),
            TExpr::Mul(x, y) => x.eval(b, i) * y.eval(b, i),
            TExpr::Abs(x) => x.eval(b, i).abs(),
            TExpr::Max(x, y) => x.eval(b, i).max(y.eval(b, i)),
            TExpr::Min(x, y) => x.eval(b, i).min(y.eval(b, i)),
        }
    }
}

fn build_program(e: &TExpr) -> glaf_repro::glaf_ir::Program {
    let n = Grid::build("n").typed(DataType::Integer).finish().unwrap();
    let a = Grid::build("a").typed(DataType::Real8).dim1(N as i64).finish().unwrap();
    let b = Grid::build("b").typed(DataType::Real8).dim1(N as i64).finish().unwrap();
    let acc = Grid::build("acc").typed(DataType::Real8).finish().unwrap();
    ProgramBuilder::new()
        .module("prop")
        .function("kernel", DataType::Real8)
        .param(n)
        .param(a)
        .param(b)
        .local(acc)
        .straight_step("init", vec![Stmt::assign(LValue::scalar("acc"), Expr::real(0.0))])
        .loop_step("elementwise")
        .foreach("i", Expr::int(1), Expr::scalar("n"))
        .formula(LValue::at("a", vec![Expr::idx("i")]), e.to_ir())
        .done()
        .loop_step("reduce")
        .foreach("i", Expr::int(1), Expr::scalar("n"))
        .formula(
            LValue::scalar("acc"),
            Expr::scalar("acc") + Expr::at("a", vec![Expr::idx("i")]),
        )
        .done()
        .straight_step("ret", vec![Stmt::Return(Some(Expr::scalar("acc")))])
        .done()
        .done()
        .finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipeline_matches_direct_evaluation(e in texpr_strategy(), seed in 0u32..1000) {
        // Input data from the seed.
        let data: Vec<f64> = (0..N)
            .map(|i| ((i as f64 + 1.0) * 0.37 + seed as f64 * 0.11).sin() * 3.0)
            .collect();

        // Direct Rust evaluation.
        let expect_a: Vec<f64> =
            (0..N).map(|i| e.eval(data[i], (i + 1) as f64)).collect();
        let expect_acc: f64 = expect_a.iter().sum();

        // Through the whole pipeline, with directives everywhere (v0).
        let g = Glaf::new(build_program(&e)).expect("valid program");
        let engine = g
            .compile_with(&CodegenOptions::parallel_version(0), &[])
            .expect("generated code compiles");

        for mode in [
            ExecMode::Serial,
            ExecMode::Simulated { threads: 4 },
            ExecMode::Parallel { threads: 4 },
        ] {
            let av = ArgVal::array_f(&[0.0; N], 1);
            let bv = ArgVal::array_f(&data, 1);
            let run = engine
                .run("kernel", &[ArgVal::I(N as i64), av.clone(), bv], mode)
                .expect("runs");
            let got_a = av.handle().unwrap().to_f64_vec();
            for (i, (ga, ea)) in got_a.iter().zip(expect_a.iter()).enumerate() {
                prop_assert_eq!(ga, ea, "a({}) in {:?} for {:?}", i + 1, mode, e);
            }
            let Some(Val::F(acc)) = run.result else { panic!("no result") };
            // Serial/Simulated sum in identical order; Parallel combines
            // per-thread partials — allow rounding slack there.
            match mode {
                ExecMode::Parallel { .. } => {
                    prop_assert!((acc - expect_acc).abs() <= 1e-9 * (1.0 + expect_acc.abs()),
                        "acc {} vs {}", acc, expect_acc);
                }
                _ => prop_assert_eq!(acc, expect_acc),
            }
        }
    }

    /// The bytecode VM must be observationally indistinguishable from the
    /// tree-walking interpreter on generated programs: identical result
    /// bits, identical output arrays, and — in Simulated mode — an
    /// identical cost-event stream despite the VM's constant folding,
    /// dead-store elimination and fused loops (the traced bytecode build
    /// disables all of them).
    #[test]
    fn vm_matches_tree_walker_bit_for_bit(e in texpr_strategy(), seed in 0u32..1000) {
        let data: Vec<f64> = (0..N)
            .map(|i| ((i as f64 + 1.0) * 0.53 + seed as f64 * 0.07).cos() * 2.0)
            .collect();
        let g = Glaf::new(build_program(&e)).expect("valid program");
        let engine = g
            .compile_with(&CodegenOptions::parallel_version(0), &[])
            .expect("generated code compiles");

        for mode in [
            ExecMode::Serial,
            ExecMode::Simulated { threads: 4 },
            ExecMode::Parallel { threads: 4 },
        ] {
            let run_tier = |tier| {
                let av = ArgVal::array_f(&[0.0; N], 1);
                let bv = ArgVal::array_f(&data, 1);
                let run = engine
                    .run_tiered("kernel", &[ArgVal::I(N as i64), av.clone(), bv], mode, tier)
                    .expect("runs");
                (run.result, av.handle().unwrap().to_f64_vec(), run.trace)
            };
            let (vm_res, vm_a, vm_trace) = run_tier(ExecTier::Vm);
            let (tw_res, tw_a, tw_trace) = run_tier(ExecTier::TreeWalk);

            for (i, (va, ta)) in vm_a.iter().zip(tw_a.iter()).enumerate() {
                prop_assert_eq!(va.to_bits(), ta.to_bits(),
                    "a({}) in {:?} for {:?}: vm {} vs tw {}", i + 1, mode, e, va, ta);
            }
            match mode {
                ExecMode::Parallel { .. } => {
                    // Reductions combine in thread-completion order; the
                    // tiers agree up to associativity-rounding.
                    let (Some(Val::F(x)), Some(Val::F(y))) = (&vm_res, &tw_res) else {
                        panic!("missing result")
                    };
                    prop_assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
                        "acc {} vs {}", x, y);
                }
                _ => {
                    prop_assert_eq!(&vm_res, &tw_res, "result in {:?} for {:?}", mode, e);
                    prop_assert_eq!(&vm_trace, &tw_trace, "trace in {:?} for {:?}", mode, e);
                }
            }
        }
    }
}
