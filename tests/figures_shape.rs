//! Shape assertions for every reproduced figure: the qualitative findings
//! the paper reports must hold on small inputs, so a regression anywhere
//! in the stack (analysis, codegen, engine, machine model) fails CI.

use glaf_repro::fun3d::variants::{
    run_simulated as f3d, Fun3dConfig, Fun3dVariant,
};
use glaf_repro::sarb::variants::{run_simulated as sarb, SarbVariant};
use glaf_repro::simcpu::MachineModel;

fn sarb_speedup(v: SarbVariant, threads: usize) -> f64 {
    let m = MachineModel::i5_2400_like();
    let base = sarb(SarbVariant::OriginalSerial, 4, threads, &m);
    let r = sarb(v, 4, threads, &m);
    base.report.total_cycles / r.report.total_cycles
}

#[test]
fn fig5_ladder_ordering() {
    let glaf_serial = sarb_speedup(SarbVariant::GlafSerial, 4);
    let v0 = sarb_speedup(SarbVariant::GlafParallel(0), 4);
    let v1 = sarb_speedup(SarbVariant::GlafParallel(1), 4);
    let v2 = sarb_speedup(SarbVariant::GlafParallel(2), 4);
    let v3 = sarb_speedup(SarbVariant::GlafParallel(3), 4);

    // Paper: 0.89, 0.48, 0.66, 1.11, 1.41 — the load-bearing orderings:
    assert!(glaf_serial < 1.0, "GLAF serial slightly below original: {glaf_serial}");
    assert!(glaf_serial > 0.7, "but not catastrophically: {glaf_serial}");
    assert!(v0 < glaf_serial, "naive all-loops parallelization loses: {v0}");
    assert!(v0 < 1.0 && v1 < 1.0, "v0/v1 below the serial line: {v0} {v1}");
    assert!(v1 >= v0, "removing init-loop directives helps: {v1} vs {v0}");
    assert!(v2 > 1.0, "dropping simple single loops crosses 1.0: {v2}");
    assert!(v3 > v2, "v3 is the fastest ladder rung: {v3} vs {v2}");
    assert!(v3 > 1.2 && v3 < 1.8, "v3 in the paper's ballpark (1.41): {v3}");
}

#[test]
fn fig5_cost_model_matches_or_beats_v3() {
    let v3 = sarb_speedup(SarbVariant::GlafParallel(3), 4);
    let cm = sarb_speedup(SarbVariant::GlafCostModel, 4);
    assert!(
        cm >= v3 * 0.99,
        "the future-work advisor reaches the hand-tuned configuration: {cm} vs {v3}"
    );
}

#[test]
fn fig6_thread_scaling_shape() {
    let m = MachineModel::i5_2400_like();
    let base = sarb(SarbVariant::GlafSerial, 4, 1, &m);
    let sp = |t: usize| {
        let r = sarb(SarbVariant::GlafParallel(3), 4, t, &m);
        base.report.total_cycles / r.report.total_cycles
    };
    let (t1, t2, t4, t8) = (sp(1), sp(2), sp(4), sp(8));
    // Paper: 0.92, 1.24, 1.59, 0.70.
    assert!(t1 < 1.05, "1 thread pays OpenMP overhead: {t1}");
    assert!(t2 > t1, "2 threads beat 1: {t2} vs {t1}");
    assert!(t4 > t2, "4 threads beat 2: {t4} vs {t2}");
    assert!(t8 < t4, "8 threads oversubscribe the 4-core part: {t8} vs {t4}");
    assert!(t8 < 1.0, "oversubscription drops below serial (paper: 0.70): {t8}");
}

fn f3d_speedup(v: Fun3dVariant) -> f64 {
    let m = MachineModel::xeon_e5_2637v4_dual_like();
    let base = f3d(Fun3dVariant::OriginalSerial, 400, 16, &m);
    let r = f3d(v, 400, 16, &m);
    base.report.total_cycles / r.report.total_cycles
}

#[test]
fn fig7_realloc_gates_parallel_benefit() {
    // "Once this dynamic reallocation was eliminated ... parallelization
    // began to yield a performance benefit."
    let with_realloc = f3d_speedup(Fun3dVariant::Glaf(Fun3dConfig {
        par_edgejp: true,
        ..Default::default()
    }));
    let without = f3d_speedup(Fun3dVariant::Glaf(Fun3dConfig::best()));
    assert!(with_realloc < 1.0, "reallocation storm erases the gain: {with_realloc}");
    assert!(without > 1.0, "EdgeJP + noRealloc beats the original: {without}");
}

#[test]
fn fig7_coarsest_granularity_wins() {
    // "The best performance is achieved when parallelized at the coarsest
    // granularity."
    let best = f3d_speedup(Fun3dVariant::Glaf(Fun3dConfig::best()));
    for cfg in Fun3dConfig::all() {
        if cfg == Fun3dConfig::best() {
            continue;
        }
        let s = f3d_speedup(Fun3dVariant::Glaf(cfg));
        assert!(
            s <= best * 1.02,
            "{} ({s}) must not beat EdgeJP+noRealloc ({best})",
            cfg.tag()
        );
    }
}

#[test]
fn fig7_manual_beats_best_glaf() {
    // "This manual version ends up outperforming the best GLAF version by
    // almost 2.3-fold."
    let manual = f3d_speedup(Fun3dVariant::ManualParallel);
    let best = f3d_speedup(Fun3dVariant::Glaf(Fun3dConfig::best()));
    let ratio = manual / best;
    assert!(manual > 2.0, "manual parallel gets real speedup: {manual}");
    assert!(
        (1.4..=3.5).contains(&ratio),
        "manual/best-GLAF ratio in the paper's ballpark (2.3): {ratio}"
    );
}

#[test]
fn fig7_nested_parallelism_is_catastrophic() {
    // The 1/128x-style floor: all levels parallel with reallocation.
    let s = f3d_speedup(Fun3dVariant::Glaf(Fun3dConfig {
        par_edgejp: true,
        par_cell_loop: true,
        par_edge_loop: true,
        par_ioff_search: true,
        no_realloc: false,
        fuse: false,
    }));
    assert!(s < 0.05, "fully nested + realloc collapses (paper ~1/128): {s}");
}
