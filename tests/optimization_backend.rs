//! End-to-end tests for the code-optimization back-end's options
//! (paper §2.1): AoS ↔ SoA data layout and loop interchange, each
//! verified to preserve results through the full pipeline.

use glaf_repro::fortrans::{ArgVal, ExecMode, Val};
use glaf_repro::glaf::{Glaf, Lang};
use glaf_repro::glaf_autopar::{interchange, interchange_legal};
use glaf_repro::glaf_codegen::CodegenOptions;
use glaf_repro::glaf_grid::{DataType, Field, Grid, Layout};
use glaf_repro::glaf_ir::{Expr, LValue, Program, ProgramBuilder, Stmt};

/// A kernel over a struct grid: total force magnitude over particles.
fn particles_program(layout: Layout) -> Program {
    let atoms = Grid::build("atoms")
        .struct_of(vec![
            Field { name: "x".into(), ty: DataType::Real8 },
            Field { name: "q".into(), ty: DataType::Real8 },
        ])
        .dim1(16)
        .layout(layout)
        .module_scope()
        .finish()
        .unwrap();
    let total = Grid::build("total").typed(DataType::Real8).module_scope().finish().unwrap();
    ProgramBuilder::new()
        .module("pm")
        .global(atoms)
        .global(total)
        .subroutine("setup")
        .loop_step("fill particles")
        .foreach("i", Expr::int(1), Expr::int(16))
        .formula(
            LValue::at_field("atoms", vec![Expr::idx("i")], "x"),
            Expr::idx("i") * Expr::real(0.25),
        )
        .formula(
            LValue::at_field("atoms", vec![Expr::idx("i")], "q"),
            Expr::real(2.0) - Expr::idx("i") * Expr::real(0.1),
        )
        .done()
        .done()
        .subroutine("accumulate")
        .straight_step("reset", vec![Stmt::assign(LValue::scalar("total"), Expr::real(0.0))])
        .loop_step("force sum")
        .foreach("i", Expr::int(1), Expr::int(16))
        .formula(
            LValue::scalar("total"),
            Expr::scalar("total")
                + Expr::at_field("atoms", vec![Expr::idx("i")], "q")
                    * Expr::at_field("atoms", vec![Expr::idx("i")], "x"),
        )
        .done()
        .done()
        .done()
        .finish()
}

fn run_particles(layout: Layout) -> f64 {
    let g = Glaf::new(particles_program(layout)).unwrap();
    let engine = g.compile_with(&CodegenOptions::serial(), &[]).unwrap();
    engine.run("setup", &[], ExecMode::Serial).unwrap();
    engine.run("accumulate", &[], ExecMode::Serial).unwrap();
    match engine.global_scalar("pm::total") {
        Some(Val::F(v)) => v,
        other => panic!("{other:?}"),
    }
}

#[test]
fn aos_and_soa_layouts_agree() {
    let aos = run_particles(Layout::AoS);
    let soa = run_particles(Layout::SoA);
    assert_eq!(aos, soa, "layout choice must not change semantics");
    // Sanity: the expected value.
    let expect: f64 = (1..=16)
        .map(|i| (2.0 - i as f64 * 0.1) * (i as f64 * 0.25))
        .sum();
    assert!((aos - expect).abs() < 1e-12, "{aos} vs {expect}");
}

#[test]
fn aos_and_soa_generate_different_declarations() {
    let g_aos = Glaf::new(particles_program(Layout::AoS)).unwrap();
    let g_soa = Glaf::new(particles_program(Layout::SoA)).unwrap();
    let src_aos = g_aos.generate(Lang::Fortran, &CodegenOptions::serial()).source;
    let src_soa = g_soa.generate(Lang::Fortran, &CodegenOptions::serial()).source;
    assert!(src_aos.contains("TYPE atoms_t"), "{src_aos}");
    assert!(src_aos.contains("atoms(i)%x"), "{src_aos}");
    assert!(src_soa.contains("atoms_x(i)"), "{src_soa}");
    assert!(!src_soa.contains("TYPE atoms_t"), "{src_soa}");
}

fn stencil_program() -> Program {
    let a = Grid::build("a").typed(DataType::Real8).dim1(12).dim1(10).finish().unwrap();
    let b = Grid::build("b").typed(DataType::Real8).dim1(12).dim1(10).finish().unwrap();
    ProgramBuilder::new()
        .module("sm")
        .subroutine("smooth")
        .param(a)
        .param(b)
        .loop_step("stencil")
        .foreach("i", Expr::int(1), Expr::int(12))
        .foreach("j", Expr::int(1), Expr::int(10))
        .formula(
            LValue::at("a", vec![Expr::idx("i"), Expr::idx("j")]),
            Expr::at("b", vec![Expr::idx("i"), Expr::idx("j")]) * Expr::real(0.5)
                + Expr::idx("i") * Expr::real(0.01)
                + Expr::idx("j") * Expr::real(0.001),
        )
        .done()
        .done()
        .done()
        .finish()
}

#[test]
fn loop_interchange_preserves_results_end_to_end() {
    let data: Vec<f64> = (0..120).map(|k| (k as f64 * 0.3).cos()).collect();
    let run = |p: Program| -> Vec<f64> {
        let g = Glaf::new(p).unwrap();
        let engine = g.compile_with(&CodegenOptions::serial(), &[]).unwrap();
        let a = ArgVal::array_f_dims(&vec![0.0; 120], vec![(1, 12), (1, 10)]).unwrap();
        let b = ArgVal::array_f_dims(&data, vec![(1, 12), (1, 10)]).unwrap();
        engine.run("smooth", &[a.clone(), b], ExecMode::Serial).unwrap();
        a.handle().unwrap().to_f64_vec()
    };

    let base = run(stencil_program());
    let mut interchanged = stencil_program();
    interchange(&mut interchanged, "smooth", 0).expect("legal interchange");
    // Check the generated code actually swapped the loops.
    let g = Glaf::new(interchanged.clone()).unwrap();
    let src = g.generate(Lang::Fortran, &CodegenOptions::serial()).source;
    let i_pos = src.find("DO i = ").unwrap();
    let j_pos = src.find("DO j = ").unwrap();
    assert!(j_pos < i_pos, "j is now the outer loop:\n{src}");
    let swapped = run(interchanged);
    assert_eq!(base, swapped, "interchange must be semantics-preserving");
}

#[test]
fn interchange_refuses_recurrences_end_to_end() {
    // a(i, j) = a(i-1, j) + 1: carried over i.
    let a = Grid::build("a").typed(DataType::Real8).dim1(8).dim1(8).finish().unwrap();
    let p = ProgramBuilder::new()
        .module("m")
        .subroutine("wave")
        .param(a)
        .loop_step("sweep")
        .foreach("i", Expr::int(2), Expr::int(8))
        .foreach("j", Expr::int(1), Expr::int(8))
        .formula(
            LValue::at("a", vec![Expr::idx("i"), Expr::idx("j")]),
            Expr::at("a", vec![Expr::idx("i") - Expr::int(1), Expr::idx("j")]) + Expr::real(1.0),
        )
        .done()
        .done()
        .done()
        .finish();
    assert!(interchange_legal(&p, "wave", 0).is_err());
}
