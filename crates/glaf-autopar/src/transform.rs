//! The code-optimization back-end's loop transformations.
//!
//! Paper §2.1: "Code optimization includes options for guiding the code
//! generation by providing different data layout (array-of-structures vs.
//! structure-of-arrays), loop collapsing, or loop interchange options."
//! AoS/SoA lives on the grid ([`glaf_grid::Layout`]); collapsing is the
//! plan's `collapse` field; this module provides **loop interchange**
//! with a dependence-based legality check.
//!
//! Legality: we permit the swap of the two outermost indices of a perfect
//! nest when the nest is *fully permutable* in the classical sense we can
//! establish with the 1-D tests — every access pair must be parallel-safe
//! (`Independent` / `LoopIndependent`) on **both** indices, i.e. no
//! loop-carried dependence exists in either direction, so any
//! interleaving of the iteration space is equivalent. Recognized
//! reductions are order-insensitive and therefore also admissible.
//! This is conservative (it rejects some legal interchanges, e.g. ones
//! whose carried dependences keep positive direction after the swap) but
//! never unsound.
//!
//! The module also provides **loop fusion** over adjacent conformable
//! single loops ([`fuse`], [`fuse_program`]). Fusing interleaves the
//! bodies iteration-by-iteration, so it is legal when every same-grid
//! access pair of the combined body is free of loop-carried dependences
//! on the shared index: same-iteration (loop-independent) producer/
//! consumer chains keep their statement order inside the fused body,
//! while a carried dependence could read a value the unfused schedule
//! had already (or not yet) written. [`fuse_program`] is the cost-driven
//! driver: it fuses each maximal legal run only when the
//! [`CostAdvisor`](crate::costmodel::CostAdvisor) predicts a gain.

use glaf_ir::{Callee, Expr, LoopNest, Program, Step, StepBody, Stmt};

use crate::access::{collect_accesses, AccessKind};
use crate::costmodel::CostAdvisor;
use crate::depend::test_dependence;
use crate::reduction::find_reductions;

/// Why an interchange was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterchangeError {
    NoSuchFunction(String),
    NotALoopStep { function: String, step: usize },
    /// The nest has fewer than two indices.
    TooShallow { function: String, step: usize },
    /// The legality check failed for this grid/index.
    CarriedDependence { grid: String, index: String },
    /// The loop bounds of the inner index depend on the outer index
    /// (triangular nest) — the rectangle assumption breaks.
    TriangularBounds { function: String, step: usize },
}

impl std::fmt::Display for InterchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterchangeError::NoSuchFunction(n) => write!(f, "no function `{n}`"),
            InterchangeError::NotALoopStep { function, step } => {
                write!(f, "{function} step {step} is not a loop")
            }
            InterchangeError::TooShallow { function, step } => {
                write!(f, "{function} step {step}: nest depth < 2")
            }
            InterchangeError::CarriedDependence { grid, index } => {
                write!(f, "carried dependence on `{grid}` over index `{index}`")
            }
            InterchangeError::TriangularBounds { function, step } => {
                write!(f, "{function} step {step}: inner bounds use the outer index")
            }
        }
    }
}

impl std::error::Error for InterchangeError {}

/// Checks whether the two outermost loops of `function`'s step
/// `step_index` may be interchanged.
pub fn interchange_legal(
    program: &Program,
    function: &str,
    step_index: usize,
) -> Result<(), InterchangeError> {
    let (_, func) = program
        .find_function(function)
        .ok_or_else(|| InterchangeError::NoSuchFunction(function.to_string()))?;
    let step = func
        .steps
        .get(step_index)
        .ok_or(InterchangeError::NotALoopStep { function: function.to_string(), step: step_index })?;
    let StepBody::Loop(nest) = &step.body else {
        return Err(InterchangeError::NotALoopStep {
            function: function.to_string(),
            step: step_index,
        });
    };
    if nest.ranges.len() < 2 {
        return Err(InterchangeError::TooShallow {
            function: function.to_string(),
            step: step_index,
        });
    }
    // Rectangular bounds only.
    let outer = nest.ranges[0].var.clone();
    let inner = &nest.ranges[1];
    if inner.start.uses_index(&outer)
        || inner.end.uses_index(&outer)
        || inner.step.uses_index(&outer)
    {
        return Err(InterchangeError::TriangularBounds {
            function: function.to_string(),
            step: step_index,
        });
    }

    let accesses = collect_accesses(nest);
    let indices: Vec<String> = nest.ranges.iter().take(2).map(|r| r.var.clone()).collect();
    let reductions = find_reductions(&nest.body, &indices);
    for a in &accesses {
        if a.kind != AccessKind::Write {
            continue;
        }
        if reductions.iter().any(|r| r.grid == a.grid && !r.index_dependent) {
            continue; // order-insensitive accumulation
        }
        for other in &accesses {
            if other.grid != a.grid {
                continue;
            }
            for v in &indices {
                let verdict = test_dependence(a, other, v);
                if !verdict.allows_parallel() {
                    return Err(InterchangeError::CarriedDependence {
                        grid: a.grid.clone(),
                        index: v.clone(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Performs the interchange (after a successful legality check), swapping
/// the two outermost index ranges in place.
pub fn interchange(
    program: &mut Program,
    function: &str,
    step_index: usize,
) -> Result<(), InterchangeError> {
    interchange_legal(program, function, step_index)?;
    for module in &mut program.modules {
        if let Some(func) = module.functions.iter_mut().find(|f| f.name == function) {
            if let StepBody::Loop(nest) = &mut func.steps[step_index].body {
                nest.ranges.swap(0, 1);
                return Ok(());
            }
        }
    }
    unreachable!("legality check resolved the function");
}

/// Why a fusion was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FusionError {
    NoSuchFunction(String),
    NotALoopStep { function: String, step: usize },
    /// A run of fewer than two loops has nothing to fuse.
    NothingToFuse { function: String, step: usize },
    /// The loops cannot be interleaved as written: differing headers,
    /// nesting, conditions, control flow, calls, or scalar writes.
    NotConformable { function: String, step: usize, why: String },
    /// The legality check failed for this grid/index.
    CarriedDependence { grid: String, index: String },
}

impl std::fmt::Display for FusionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FusionError::NoSuchFunction(n) => write!(f, "no function `{n}`"),
            FusionError::NotALoopStep { function, step } => {
                write!(f, "{function} step {step} is not a loop")
            }
            FusionError::NothingToFuse { function, step } => {
                write!(f, "{function} step {step}: need at least two loops to fuse")
            }
            FusionError::NotConformable { function, step, why } => {
                write!(f, "{function} step {step}: {why}")
            }
            FusionError::CarriedDependence { grid, index } => {
                write!(f, "carried dependence on `{grid}` over index `{index}`")
            }
        }
    }
}

impl std::error::Error for FusionError {}

/// Checks that the loop at `step` is a depth-1 unit-stride unconditional
/// `DO` whose body is straight-line assignments to grids — the only shape
/// the fuser interleaves.
fn fusable_shape(function: &str, step: usize, nest: &LoopNest) -> Result<(), FusionError> {
    let refuse = |why: String| {
        Err(FusionError::NotConformable { function: function.to_string(), step, why })
    };
    if nest.ranges.len() != 1 {
        return refuse(format!("nest depth {} != 1", nest.ranges.len()));
    }
    if nest.ranges[0].step != Expr::IntLit(1) {
        return refuse("non-unit loop step".into());
    }
    if nest.condition.is_some() {
        return refuse("loop-level condition".into());
    }
    for s in &nest.body {
        if s.has_control() || s.has_call() {
            return refuse("body has control flow or subroutine calls".into());
        }
        let mut user_call = false;
        s.walk_exprs(&mut |e| {
            if let Expr::Call { callee: Callee::User(_), .. } = e {
                user_call = true;
            }
        });
        if user_call {
            return refuse("body calls a user function".into());
        }
        if let Stmt::Assign { target, .. } = s {
            if target.indices.is_empty() {
                return refuse(format!("body writes scalar `{}`", target.grid));
            }
        }
    }
    Ok(())
}

/// Checks whether the `count` consecutive loop steps of `function`
/// starting at `first_step` may be fused into one loop.
pub fn fuse_legal(
    program: &Program,
    function: &str,
    first_step: usize,
    count: usize,
) -> Result<(), FusionError> {
    if count < 2 {
        return Err(FusionError::NothingToFuse {
            function: function.to_string(),
            step: first_step,
        });
    }
    let (_, func) = program
        .find_function(function)
        .ok_or_else(|| FusionError::NoSuchFunction(function.to_string()))?;
    let mut nests = Vec::with_capacity(count);
    for step in first_step..first_step + count {
        let nest = func
            .steps
            .get(step)
            .and_then(|s| s.as_loop())
            .ok_or(FusionError::NotALoopStep { function: function.to_string(), step })?;
        fusable_shape(function, step, nest)?;
        nests.push(nest);
    }
    let head = &nests[0].ranges[0];
    for (k, nest) in nests.iter().enumerate().skip(1) {
        if nest.ranges[0] != *head {
            return Err(FusionError::NotConformable {
                function: function.to_string(),
                step: first_step + k,
                why: format!(
                    "loop header `{}` differs from the run's `{}`",
                    nest.ranges[0].var, head.var
                ),
            });
        }
    }

    // Legality on the combined body: fusing interleaves iterations, so
    // every same-grid pair touching a write must be distance-0 safe on
    // the shared index (no loop-carried dependence in either direction).
    let combined = LoopNest {
        ranges: vec![head.clone()],
        condition: None,
        body: nests.iter().flat_map(|n| n.body.iter().cloned()).collect(),
    };
    let var = head.var.clone();
    let accesses = collect_accesses(&combined);
    for a in &accesses {
        if a.kind != AccessKind::Write {
            continue;
        }
        for other in &accesses {
            if other.grid != a.grid {
                continue;
            }
            if !test_dependence(a, other, &var).allows_parallel() {
                return Err(FusionError::CarriedDependence {
                    grid: a.grid.clone(),
                    index: var.clone(),
                });
            }
        }
    }
    Ok(())
}

/// Fuses the `count` consecutive loop steps of `function` starting at
/// `first_step` into one loop step (after a successful legality check).
/// Bodies concatenate in step order; labels join with ` + `.
pub fn fuse(
    program: &mut Program,
    function: &str,
    first_step: usize,
    count: usize,
) -> Result<(), FusionError> {
    fuse_legal(program, function, first_step, count)?;
    for module in &mut program.modules {
        if let Some(func) = module.functions.iter_mut().find(|f| f.name == function) {
            let run: Vec<Step> = func.steps.drain(first_step..first_step + count).collect();
            let labels: Vec<String> = run.iter().filter_map(|s| s.label.clone()).collect();
            let mut ranges = None;
            let mut body = Vec::new();
            for step in run {
                if let StepBody::Loop(nest) = step.body {
                    ranges.get_or_insert(nest.ranges);
                    body.extend(nest.body);
                }
            }
            func.steps.insert(
                first_step,
                Step {
                    label: if labels.is_empty() { None } else { Some(labels.join(" + ")) },
                    body: StepBody::Loop(LoopNest {
                        ranges: ranges.expect("legality check saw count >= 2 loops"),
                        condition: None,
                        body,
                    }),
                },
            );
            return Ok(());
        }
    }
    unreachable!("legality check resolved the function");
}

/// One fusion the driver performed.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionReport {
    pub function: String,
    /// Step index of the fused loop in the rewritten function.
    pub step_index: usize,
    /// How many original loops were merged.
    pub fused: usize,
    /// Labels of the merged steps, in order.
    pub labels: Vec<String>,
    /// The advisor's predicted saving in cycles.
    pub gain_cycles: f64,
    /// The advisor's rationale.
    pub why: String,
}

/// The cost-driven fusion driver: greedily fuses each maximal run of
/// adjacent conformable loops whose fusion is legal and which `advisor`
/// predicts to be profitable. Returns one report per fusion performed.
pub fn fuse_program(program: &mut Program, advisor: &CostAdvisor) -> Vec<FusionReport> {
    let functions: Vec<String> = program
        .modules
        .iter()
        .flat_map(|m| m.functions.iter().map(|f| f.name.clone()))
        .collect();
    let mut reports = Vec::new();
    for name in functions {
        let mut step = 0usize;
        while let Some(steps_len) = program.find_function(&name).map(|(_, f)| f.steps.len()) {
            if step >= steps_len {
                break;
            }
            let mut run = 1usize;
            while fuse_legal(program, &name, step, run + 1).is_ok() {
                run += 1;
            }
            if run >= 2 {
                let (_, func) = program.find_function(&name).expect("function resolved above");
                let nests: Vec<LoopNest> = func.steps[step..step + run]
                    .iter()
                    .filter_map(|s| s.as_loop().cloned())
                    .collect();
                let (gain, why) = advisor.fuse_gain(&nests);
                if gain > 0.0 {
                    let labels: Vec<String> = func.steps[step..step + run]
                        .iter()
                        .filter_map(|s| s.label.clone())
                        .collect();
                    fuse(program, &name, step, run).expect("legality was just established");
                    reports.push(FusionReport {
                        function: name.clone(),
                        step_index: step,
                        fused: run,
                        labels,
                        gain_cycles: gain,
                        why,
                    });
                }
            }
            step += 1;
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaf_grid::{DataType, Grid};
    use glaf_ir::{Expr, LValue, ProgramBuilder};

    fn transpose_like() -> Program {
        let a = Grid::build("a").typed(DataType::Real8).dim1(8).dim1(8).finish().unwrap();
        let b = Grid::build("b").typed(DataType::Real8).dim1(8).dim1(8).finish().unwrap();
        ProgramBuilder::new()
            .module("m")
            .subroutine("copy2d")
            .param(a)
            .param(b)
            .loop_step("copy")
            .foreach("i", Expr::int(1), Expr::int(8))
            .foreach("j", Expr::int(1), Expr::int(8))
            .formula(
                LValue::at("a", vec![Expr::idx("i"), Expr::idx("j")]),
                Expr::at("b", vec![Expr::idx("j"), Expr::idx("i")]) * Expr::real(2.0),
            )
            .done()
            .done()
            .done()
            .finish()
    }

    #[test]
    fn legal_interchange_swaps_ranges() {
        let mut p = transpose_like();
        interchange(&mut p, "copy2d", 0).unwrap();
        let (_, f) = p.find_function("copy2d").unwrap();
        let nest = f.steps[0].as_loop().unwrap();
        assert_eq!(nest.ranges[0].var, "j");
        assert_eq!(nest.ranges[1].var, "i");
    }

    #[test]
    fn recurrence_blocks_interchange() {
        let a = Grid::build("a").typed(DataType::Real8).dim1(8).dim1(8).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("sweep")
            .param(a)
            .loop_step("wavefront")
            .foreach("i", Expr::int(2), Expr::int(8))
            .foreach("j", Expr::int(1), Expr::int(8))
            .formula(
                LValue::at("a", vec![Expr::idx("i"), Expr::idx("j")]),
                Expr::at("a", vec![Expr::idx("i") - Expr::int(1), Expr::idx("j")])
                    + Expr::real(1.0),
            )
            .done()
            .done()
            .done()
            .finish();
        let err = interchange_legal(&p, "sweep", 0).unwrap_err();
        assert!(matches!(err, InterchangeError::CarriedDependence { .. }), "{err}");
    }

    #[test]
    fn triangular_bounds_rejected() {
        let a = Grid::build("a").typed(DataType::Real8).dim1(8).dim1(8).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("tri")
            .param(a)
            .loop_step("triangle")
            .foreach("i", Expr::int(1), Expr::int(8))
            .foreach("j", Expr::int(1), Expr::idx("i"))
            .formula(
                LValue::at("a", vec![Expr::idx("i"), Expr::idx("j")]),
                Expr::real(1.0),
            )
            .done()
            .done()
            .done()
            .finish();
        assert!(matches!(
            interchange_legal(&p, "tri", 0),
            Err(InterchangeError::TriangularBounds { .. })
        ));
    }

    #[test]
    fn shallow_and_missing_rejected() {
        let a = Grid::build("a").typed(DataType::Real8).dim1(8).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("one")
            .param(a)
            .loop_step("single")
            .foreach("i", Expr::int(1), Expr::int(8))
            .formula(LValue::at("a", vec![Expr::idx("i")]), Expr::real(0.0))
            .done()
            .done()
            .done()
            .finish();
        assert!(matches!(
            interchange_legal(&p, "one", 0),
            Err(InterchangeError::TooShallow { .. })
        ));
        assert!(matches!(
            interchange_legal(&p, "nosuch", 0),
            Err(InterchangeError::NoSuchFunction(_))
        ));
    }

    fn producer_consumer() -> Program {
        // a(i) = b(i) * 2  followed by  c(i) = a(i) + 1: a same-iteration
        // (loop-independent) chain — fusable.
        let a = Grid::build("a").typed(DataType::Real8).dim1(64).finish().unwrap();
        let b = Grid::build("b").typed(DataType::Real8).dim1(64).finish().unwrap();
        let c = Grid::build("c").typed(DataType::Real8).dim1(64).finish().unwrap();
        ProgramBuilder::new()
            .module("m")
            .subroutine("pc")
            .param(a)
            .param(b)
            .param(c)
            .loop_step("produce")
            .foreach("i", Expr::int(1), Expr::int(64))
            .formula(
                LValue::at("a", vec![Expr::idx("i")]),
                Expr::at("b", vec![Expr::idx("i")]) * Expr::real(2.0),
            )
            .done()
            .loop_step("consume")
            .foreach("i", Expr::int(1), Expr::int(64))
            .formula(
                LValue::at("c", vec![Expr::idx("i")]),
                Expr::at("a", vec![Expr::idx("i")]) + Expr::real(1.0),
            )
            .done()
            .done()
            .done()
            .finish()
    }

    #[test]
    fn conformable_producer_consumer_fuses() {
        let mut p = producer_consumer();
        fuse(&mut p, "pc", 0, 2).unwrap();
        let (_, f) = p.find_function("pc").unwrap();
        assert_eq!(f.steps.len(), 1);
        assert_eq!(f.steps[0].label.as_deref(), Some("produce + consume"));
        let nest = f.steps[0].as_loop().unwrap();
        assert_eq!(nest.ranges.len(), 1);
        assert_eq!(nest.body.len(), 2);
    }

    #[test]
    fn backward_carried_dependence_blocks_fusion() {
        // Second loop reads a(i+1), written by the first: fused, iteration
        // i would read a stale a(i+1). Must be refused.
        let a = Grid::build("a").typed(DataType::Real8).dim1(64).finish().unwrap();
        let c = Grid::build("c").typed(DataType::Real8).dim1(64).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("shift")
            .param(a)
            .param(c)
            .loop_step("produce")
            .foreach("i", Expr::int(1), Expr::int(63))
            .formula(LValue::at("a", vec![Expr::idx("i")]), Expr::real(1.0))
            .done()
            .loop_step("read shifted")
            .foreach("i", Expr::int(1), Expr::int(63))
            .formula(
                LValue::at("c", vec![Expr::idx("i")]),
                Expr::at("a", vec![Expr::idx("i") + Expr::int(1)]),
            )
            .done()
            .done()
            .done()
            .finish();
        let err = fuse_legal(&p, "shift", 0, 2).unwrap_err();
        assert!(
            matches!(&err, FusionError::CarriedDependence { grid, .. } if grid == "a"),
            "{err}"
        );
    }

    #[test]
    fn mismatched_headers_and_scalar_writes_rejected() {
        let a = Grid::build("a").typed(DataType::Real8).dim1(64).finish().unwrap();
        let s = Grid::build("s").typed(DataType::Real8).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("bad")
            .param(a)
            .local(s)
            .loop_step("short")
            .foreach("i", Expr::int(1), Expr::int(32))
            .formula(LValue::at("a", vec![Expr::idx("i")]), Expr::real(0.0))
            .done()
            .loop_step("long")
            .foreach("i", Expr::int(1), Expr::int(64))
            .formula(LValue::at("a", vec![Expr::idx("i")]), Expr::real(1.0))
            .done()
            .loop_step("scalar acc")
            .foreach("i", Expr::int(1), Expr::int(64))
            .formula(
                LValue::scalar("s"),
                Expr::scalar("s") + Expr::at("a", vec![Expr::idx("i")]),
            )
            .done()
            .done()
            .done()
            .finish();
        assert!(matches!(
            fuse_legal(&p, "bad", 0, 2),
            Err(FusionError::NotConformable { .. })
        ));
        assert!(matches!(
            fuse_legal(&p, "bad", 1, 2),
            Err(FusionError::NotConformable { .. })
        ));
        assert!(matches!(
            fuse_legal(&p, "bad", 0, 1),
            Err(FusionError::NothingToFuse { .. })
        ));
        assert!(matches!(
            fuse_legal(&p, "nosuch", 0, 2),
            Err(FusionError::NoSuchFunction(_))
        ));
    }

    #[test]
    fn fuse_program_fuses_maximal_runs_and_reports_gain() {
        let mut p = producer_consumer();
        let advisor = crate::costmodel::CostAdvisor::default();
        let reports = fuse_program(&mut p, &advisor);
        assert_eq!(reports.len(), 1, "{reports:?}");
        let r = &reports[0];
        assert_eq!(r.function, "pc");
        assert_eq!(r.step_index, 0);
        assert_eq!(r.fused, 2);
        assert_eq!(r.labels, vec!["produce".to_string(), "consume".to_string()]);
        assert!(r.gain_cycles > 0.0);
        assert!(r.why.contains("shared grid"), "{}", r.why);
        let (_, f) = p.find_function("pc").unwrap();
        assert_eq!(f.steps.len(), 1);
        // Re-running on the fused program is a no-op.
        assert!(fuse_program(&mut p, &advisor).is_empty());
    }

    #[test]
    fn reduction_nest_is_interchangeable() {
        let b = Grid::build("b").typed(DataType::Real8).dim1(8).dim1(8).finish().unwrap();
        let acc = Grid::build("acc").typed(DataType::Real8).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .function("total", DataType::Real8)
            .param(b)
            .local(acc)
            .loop_step("sum2d")
            .foreach("i", Expr::int(1), Expr::int(8))
            .foreach("j", Expr::int(1), Expr::int(8))
            .formula(
                LValue::scalar("acc"),
                Expr::scalar("acc") + Expr::at("b", vec![Expr::idx("i"), Expr::idx("j")]),
            )
            .done()
            .done()
            .done()
            .finish();
        assert!(interchange_legal(&p, "total", 0).is_ok());
    }
}
