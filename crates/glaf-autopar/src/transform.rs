//! The code-optimization back-end's loop transformations.
//!
//! Paper §2.1: "Code optimization includes options for guiding the code
//! generation by providing different data layout (array-of-structures vs.
//! structure-of-arrays), loop collapsing, or loop interchange options."
//! AoS/SoA lives on the grid ([`glaf_grid::Layout`]); collapsing is the
//! plan's `collapse` field; this module provides **loop interchange**
//! with a dependence-based legality check.
//!
//! Legality: we permit the swap of the two outermost indices of a perfect
//! nest when the nest is *fully permutable* in the classical sense we can
//! establish with the 1-D tests — every access pair must be parallel-safe
//! (`Independent` / `LoopIndependent`) on **both** indices, i.e. no
//! loop-carried dependence exists in either direction, so any
//! interleaving of the iteration space is equivalent. Recognized
//! reductions are order-insensitive and therefore also admissible.
//! This is conservative (it rejects some legal interchanges, e.g. ones
//! whose carried dependences keep positive direction after the swap) but
//! never unsound.

use glaf_ir::{Program, StepBody};

use crate::access::{collect_accesses, AccessKind};
use crate::depend::test_dependence;
use crate::reduction::find_reductions;

/// Why an interchange was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterchangeError {
    NoSuchFunction(String),
    NotALoopStep { function: String, step: usize },
    /// The nest has fewer than two indices.
    TooShallow { function: String, step: usize },
    /// The legality check failed for this grid/index.
    CarriedDependence { grid: String, index: String },
    /// The loop bounds of the inner index depend on the outer index
    /// (triangular nest) — the rectangle assumption breaks.
    TriangularBounds { function: String, step: usize },
}

impl std::fmt::Display for InterchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterchangeError::NoSuchFunction(n) => write!(f, "no function `{n}`"),
            InterchangeError::NotALoopStep { function, step } => {
                write!(f, "{function} step {step} is not a loop")
            }
            InterchangeError::TooShallow { function, step } => {
                write!(f, "{function} step {step}: nest depth < 2")
            }
            InterchangeError::CarriedDependence { grid, index } => {
                write!(f, "carried dependence on `{grid}` over index `{index}`")
            }
            InterchangeError::TriangularBounds { function, step } => {
                write!(f, "{function} step {step}: inner bounds use the outer index")
            }
        }
    }
}

impl std::error::Error for InterchangeError {}

/// Checks whether the two outermost loops of `function`'s step
/// `step_index` may be interchanged.
pub fn interchange_legal(
    program: &Program,
    function: &str,
    step_index: usize,
) -> Result<(), InterchangeError> {
    let (_, func) = program
        .find_function(function)
        .ok_or_else(|| InterchangeError::NoSuchFunction(function.to_string()))?;
    let step = func
        .steps
        .get(step_index)
        .ok_or(InterchangeError::NotALoopStep { function: function.to_string(), step: step_index })?;
    let StepBody::Loop(nest) = &step.body else {
        return Err(InterchangeError::NotALoopStep {
            function: function.to_string(),
            step: step_index,
        });
    };
    if nest.ranges.len() < 2 {
        return Err(InterchangeError::TooShallow {
            function: function.to_string(),
            step: step_index,
        });
    }
    // Rectangular bounds only.
    let outer = nest.ranges[0].var.clone();
    let inner = &nest.ranges[1];
    if inner.start.uses_index(&outer)
        || inner.end.uses_index(&outer)
        || inner.step.uses_index(&outer)
    {
        return Err(InterchangeError::TriangularBounds {
            function: function.to_string(),
            step: step_index,
        });
    }

    let accesses = collect_accesses(nest);
    let indices: Vec<String> = nest.ranges.iter().take(2).map(|r| r.var.clone()).collect();
    let reductions = find_reductions(&nest.body, &indices);
    for a in &accesses {
        if a.kind != AccessKind::Write {
            continue;
        }
        if reductions.iter().any(|r| r.grid == a.grid && !r.index_dependent) {
            continue; // order-insensitive accumulation
        }
        for other in &accesses {
            if other.grid != a.grid {
                continue;
            }
            for v in &indices {
                let verdict = test_dependence(a, other, v);
                if !verdict.allows_parallel() {
                    return Err(InterchangeError::CarriedDependence {
                        grid: a.grid.clone(),
                        index: v.clone(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Performs the interchange (after a successful legality check), swapping
/// the two outermost index ranges in place.
pub fn interchange(
    program: &mut Program,
    function: &str,
    step_index: usize,
) -> Result<(), InterchangeError> {
    interchange_legal(program, function, step_index)?;
    for module in &mut program.modules {
        if let Some(func) = module.functions.iter_mut().find(|f| f.name == function) {
            if let StepBody::Loop(nest) = &mut func.steps[step_index].body {
                nest.ranges.swap(0, 1);
                return Ok(());
            }
        }
    }
    unreachable!("legality check resolved the function");
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaf_grid::{DataType, Grid};
    use glaf_ir::{Expr, LValue, ProgramBuilder};

    fn transpose_like() -> Program {
        let a = Grid::build("a").typed(DataType::Real8).dim1(8).dim1(8).finish().unwrap();
        let b = Grid::build("b").typed(DataType::Real8).dim1(8).dim1(8).finish().unwrap();
        ProgramBuilder::new()
            .module("m")
            .subroutine("copy2d")
            .param(a)
            .param(b)
            .loop_step("copy")
            .foreach("i", Expr::int(1), Expr::int(8))
            .foreach("j", Expr::int(1), Expr::int(8))
            .formula(
                LValue::at("a", vec![Expr::idx("i"), Expr::idx("j")]),
                Expr::at("b", vec![Expr::idx("j"), Expr::idx("i")]) * Expr::real(2.0),
            )
            .done()
            .done()
            .done()
            .finish()
    }

    #[test]
    fn legal_interchange_swaps_ranges() {
        let mut p = transpose_like();
        interchange(&mut p, "copy2d", 0).unwrap();
        let (_, f) = p.find_function("copy2d").unwrap();
        let nest = f.steps[0].as_loop().unwrap();
        assert_eq!(nest.ranges[0].var, "j");
        assert_eq!(nest.ranges[1].var, "i");
    }

    #[test]
    fn recurrence_blocks_interchange() {
        let a = Grid::build("a").typed(DataType::Real8).dim1(8).dim1(8).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("sweep")
            .param(a)
            .loop_step("wavefront")
            .foreach("i", Expr::int(2), Expr::int(8))
            .foreach("j", Expr::int(1), Expr::int(8))
            .formula(
                LValue::at("a", vec![Expr::idx("i"), Expr::idx("j")]),
                Expr::at("a", vec![Expr::idx("i") - Expr::int(1), Expr::idx("j")])
                    + Expr::real(1.0),
            )
            .done()
            .done()
            .done()
            .finish();
        let err = interchange_legal(&p, "sweep", 0).unwrap_err();
        assert!(matches!(err, InterchangeError::CarriedDependence { .. }), "{err}");
    }

    #[test]
    fn triangular_bounds_rejected() {
        let a = Grid::build("a").typed(DataType::Real8).dim1(8).dim1(8).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("tri")
            .param(a)
            .loop_step("triangle")
            .foreach("i", Expr::int(1), Expr::int(8))
            .foreach("j", Expr::int(1), Expr::idx("i"))
            .formula(
                LValue::at("a", vec![Expr::idx("i"), Expr::idx("j")]),
                Expr::real(1.0),
            )
            .done()
            .done()
            .done()
            .finish();
        assert!(matches!(
            interchange_legal(&p, "tri", 0),
            Err(InterchangeError::TriangularBounds { .. })
        ));
    }

    #[test]
    fn shallow_and_missing_rejected() {
        let a = Grid::build("a").typed(DataType::Real8).dim1(8).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("one")
            .param(a)
            .loop_step("single")
            .foreach("i", Expr::int(1), Expr::int(8))
            .formula(LValue::at("a", vec![Expr::idx("i")]), Expr::real(0.0))
            .done()
            .done()
            .done()
            .finish();
        assert!(matches!(
            interchange_legal(&p, "one", 0),
            Err(InterchangeError::TooShallow { .. })
        ));
        assert!(matches!(
            interchange_legal(&p, "nosuch", 0),
            Err(InterchangeError::NoSuchFunction(_))
        ));
    }

    #[test]
    fn reduction_nest_is_interchangeable() {
        let b = Grid::build("b").typed(DataType::Real8).dim1(8).dim1(8).finish().unwrap();
        let acc = Grid::build("acc").typed(DataType::Real8).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .function("total", DataType::Real8)
            .param(b)
            .local(acc)
            .loop_step("sum2d")
            .foreach("i", Expr::int(1), Expr::int(8))
            .foreach("j", Expr::int(1), Expr::int(8))
            .formula(
                LValue::scalar("acc"),
                Expr::scalar("acc") + Expr::at("b", vec![Expr::idx("i"), Expr::idx("j")]),
            )
            .done()
            .done()
            .done()
            .finish();
        assert!(interchange_legal(&p, "total", 0).is_ok());
    }
}
