//! The parallel plan: one verdict per loop step, one plan per function.
//!
//! This is the information the auto-parallelization back-end hands to code
//! generation: which loops get `!$OMP PARALLEL DO`, with which `PRIVATE`,
//! `REDUCTION` and `COLLAPSE` clauses, and which shared updates need
//! `ATOMIC` protection (paper §2.1, §4.1.2, §4.2.1).

use std::collections::{BTreeMap, BTreeSet};

use glaf_ir::{Function, GlafModule, LoopNest, Program, StepBody, Stmt};

use crate::access::{collect_accesses, Access, AccessKind};
use crate::classify::{classify_loop, is_vectorizable, LoopClass};
use crate::costmodel::{CostAdvisor, ScheduleChoice};
use crate::decision::DepRecord;
use crate::depend::test_dependence_explained;
use crate::privatize::find_private_scalars;
use crate::reduction::{find_reductions, Reduction};

pub use crate::reduction::RedOpKind as RedOp;

/// The plan for one loop step.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopPlan {
    /// Index of the step within its function.
    pub step_index: usize,
    pub class: LoopClass,
    /// Compiler-model verdict: can the serial loop be SIMD-vectorized?
    pub vectorizable: bool,
    /// True when the outermost index can run its iterations concurrently.
    pub parallelizable: bool,
    /// Number of leading loop indices that can be collapsed into one
    /// parallel iteration space (`COLLAPSE(n)` when ≥ 2; the paper's
    /// longwave loops get `COLLAPSE(2)` over 2 × 60 iterations).
    pub collapse: usize,
    /// Scalars for the `PRIVATE` clause.
    pub private: Vec<String>,
    /// Recognized scalar reductions (`REDUCTION(op: name)` clauses).
    pub reductions: Vec<Reduction>,
    /// Grids whose parallel updates need `ATOMIC` protection: array
    /// accumulations in the body plus module-scope grids written by called
    /// functions (§4.2.1).
    pub atomic: Vec<String>,
    /// Human-readable reasons when `parallelizable == false`.
    pub blockers: Vec<String>,
    /// The advisor's `SCHEDULE(...)` pick with rationale; `None` when the
    /// loop is not parallelizable.
    pub schedule: Option<ScheduleChoice>,
}

/// All loop plans of one function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionPlan {
    pub function: String,
    pub loops: Vec<LoopPlan>,
}

impl FunctionPlan {
    /// The plan for step `step_index`, if that step is a loop.
    pub fn for_step(&self, step_index: usize) -> Option<&LoopPlan> {
        self.loops.iter().find(|l| l.step_index == step_index)
    }
}

/// Loop plans for every function in a program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProgramPlan {
    pub functions: BTreeMap<String, FunctionPlan>,
}

impl ProgramPlan {
    pub fn for_function(&self, name: &str) -> Option<&FunctionPlan> {
        self.functions.get(name)
    }

    /// Total number of parallelizable loops found — a headline number for
    /// reports.
    pub fn parallel_loop_count(&self) -> usize {
        self.functions
            .values()
            .flat_map(|f| f.loops.iter())
            .filter(|l| l.parallelizable)
            .count()
    }
}

/// Analyzes every function of every module.
pub fn analyze_program(program: &Program) -> ProgramPlan {
    let mut plan = ProgramPlan::default();
    for module in &program.modules {
        for func in &module.functions {
            plan.functions
                .insert(func.name.clone(), analyze_function(program, module, func));
        }
    }
    plan
}

/// Analyzes one function.
pub fn analyze_function(program: &Program, _module: &GlafModule, func: &Function) -> FunctionPlan {
    let mut loops = Vec::new();
    for (step_index, step) in func.steps.iter().enumerate() {
        if let StepBody::Loop(nest) = &step.body {
            let mut plan = analyze_loop(program, step_index, nest, None);
            attach_schedule(func, nest, &mut plan);
            loops.push(plan);
        }
    }
    FunctionPlan { function: func.name.clone(), loops }
}

/// Fills in [`LoopPlan::schedule`] from the cost advisor. Shared by the
/// plain and the logging analysis paths so both produce identical plans.
pub(crate) fn attach_schedule(func: &Function, nest: &LoopNest, plan: &mut LoopPlan) {
    plan.schedule = CostAdvisor::default().choose_schedule(func, nest, plan);
}

/// Analyzes one loop nest. When `deps` is supplied, every dependence test
/// executed is recorded there (see [`crate::decision`]); the returned
/// plan is identical either way.
pub(crate) fn analyze_loop(
    program: &Program,
    step_index: usize,
    nest: &LoopNest,
    mut deps: Option<&mut BTreeSet<DepRecord>>,
) -> LoopPlan {
    let accesses = collect_accesses(nest);
    let indices: Vec<String> = nest.ranges.iter().map(|r| r.var.clone()).collect();
    let reductions = find_reductions(&nest.body, &indices);

    // Names whose dependences are discharged specially. Index-dependent
    // array accumulations (`a(i+1) = a(i+1) + e`) are *not* special: each
    // iteration owns its element, so the ordinary dependence tests decide.
    let mut handled: BTreeSet<String> = BTreeSet::new();
    let mut atomic: BTreeSet<String> = BTreeSet::new();
    let mut scalar_reds: Vec<Reduction> = Vec::new();
    for r in &reductions {
        if r.scalar {
            handled.insert(r.grid.clone());
            scalar_reds.push(r.clone());
        } else if !r.index_dependent {
            handled.insert(r.grid.clone());
            atomic.insert(r.grid.clone());
        }
    }

    let exclude: BTreeSet<String> =
        handled.iter().cloned().chain(indices.iter().cloned()).collect();
    let private = find_private_scalars(&accesses, &exclude);
    for p in &private {
        handled.insert(p.clone());
    }

    // Module-scope grids written (transitively) by called functions:
    // pure accumulations (`g = g + e`) can be protected with `!$OMP
    // ATOMIC` (§4.2.1); plain overwrites of shared state make the calling
    // loop unsafe to parallelize (the paper handled those with
    // threadprivate/copyprivate rewrites — here they conservatively block).
    let mut callees: BTreeSet<String> = BTreeSet::new();
    for s in &nest.body {
        collect_callees(s, &mut callees);
    }
    let mut callee_plain_writes: BTreeSet<String> = BTreeSet::new();
    for callee in &callees {
        if let Some((cm, cf)) = program.find_function(callee) {
            let mut visited = BTreeSet::new();
            let w = transitive_global_writes(program, cm, cf, &mut visited);
            for g in w.accumulated {
                atomic.insert(g);
            }
            for g in w.plain {
                callee_plain_writes.insert(g);
            }
        }
    }
    // A grid both accumulated and plainly overwritten is unsafe.
    for g in &callee_plain_writes {
        atomic.remove(g);
    }

    // Dependence testing per grid, per candidate index.
    let mut blockers: Vec<String> = Vec::new();
    let mut per_index_ok: Vec<bool> = vec![true; indices.len()];
    if !callee_plain_writes.is_empty() {
        for ok in per_index_ok.iter_mut() {
            *ok = false;
        }
        for g in &callee_plain_writes {
            blockers.push(format!(
                "callee overwrites shared module-scope grid `{g}`"
            ));
        }
    }

    let mut by_grid: BTreeMap<(&str, Option<&str>), Vec<&Access>> = BTreeMap::new();
    for a in &accesses {
        by_grid
            .entry((a.grid.as_str(), a.field.as_deref()))
            .or_default()
            .push(a);
    }

    for ((grid, _field), accs) in &by_grid {
        if handled.contains(*grid) || atomic.contains(*grid) {
            continue;
        }
        let writes: Vec<&&Access> = accs.iter().filter(|a| a.kind == AccessKind::Write).collect();
        if writes.is_empty() {
            continue;
        }
        // Loop-invariant scalar writes that are not private or reductions
        // block everything.
        for w in &writes {
            for other in accs.iter() {
                if std::ptr::eq(**w as *const Access, *other as *const Access)
                    && writes.len() == 1
                    && accs.len() == 1
                {
                    // A single write with no other access still conflicts
                    // with itself across iterations when subscripts repeat;
                    // test below covers it.
                }
                for (k, v) in indices.iter().enumerate() {
                    if !per_index_ok[k] {
                        continue;
                    }
                    let ev = test_dependence_explained(w, other, v);
                    if let Some(sink) = deps.as_deref_mut() {
                        sink.insert(DepRecord {
                            grid: (*grid).to_string(),
                            index: v.clone(),
                            test: ev.test,
                            result: ev.result,
                        });
                    }
                    if !ev.result.allows_parallel() {
                        per_index_ok[k] = false;
                        blockers.push(format!(
                            "grid `{grid}`: {:?} dependence on index `{v}`",
                            ev.result
                        ));
                    }
                }
            }
        }
    }
    blockers.sort();
    blockers.dedup();

    // Collapse = longest prefix of indices that are all parallel-safe.
    let collapse = per_index_ok.iter().take_while(|&&ok| ok).count();
    let parallelizable = per_index_ok.first().copied().unwrap_or(false);

    LoopPlan {
        step_index,
        class: classify_loop(nest),
        vectorizable: is_vectorizable(nest),
        parallelizable,
        collapse: collapse.max(usize::from(parallelizable)),
        private,
        reductions: scalar_reds,
        atomic: atomic.into_iter().collect(),
        blockers: if parallelizable { Vec::new() } else { blockers },
        schedule: None,
    }
}

fn collect_callees(stmt: &Stmt, out: &mut BTreeSet<String>) {
    stmt.walk(&mut |s| {
        if let Stmt::CallSub { name, .. } = s {
            out.insert(name.clone());
        }
    });
    stmt.walk_exprs(&mut |e| {
        if let glaf_ir::Expr::Call { callee: glaf_ir::Callee::User(n), .. } = e {
            out.insert(n.clone());
        }
    });
}

/// Classified module-scope write sets of a callee.
#[derive(Debug, Default, Clone)]
struct CalleeWrites {
    /// Only ever updated with accumulation patterns (`g = g + e` etc.).
    accumulated: BTreeSet<String>,
    /// Overwritten (or mixed) — unsafe under concurrent callers.
    plain: BTreeSet<String>,
}

impl CalleeWrites {
    fn merge(&mut self, other: CalleeWrites) {
        self.plain.extend(other.plain);
        for g in other.accumulated {
            if !self.plain.contains(&g) {
                self.accumulated.insert(g);
            }
        }
    }

    fn normalize(mut self) -> Self {
        self.accumulated.retain(|g| !self.plain.contains(g));
        self
    }
}

/// Module-scope grids written by `func` or anything it calls, classified
/// by update pattern.
fn transitive_global_writes(
    program: &Program,
    module: &GlafModule,
    func: &Function,
    visited: &mut BTreeSet<String>,
) -> CalleeWrites {
    let mut out = CalleeWrites::default();
    if !visited.insert(func.name.clone()) {
        return out;
    }
    for step in &func.steps {
        let stmts: Vec<&Stmt> = match &step.body {
            StepBody::Straight(v) => v.iter().collect(),
            StepBody::Loop(nest) => nest.body.iter().collect(),
        };
        for s in stmts {
            s.walk(&mut |s| {
                if let Stmt::Assign { target, value } = s {
                    // A write is module-scope if it resolves to a module
                    // global (i.e. not declared in the function).
                    if func.grid(&target.grid).is_none() && module.global(&target.grid).is_some() {
                        let accum =
                            crate::reduction::match_reduction(target, value).is_some();
                        if accum && !out.plain.contains(&target.grid) {
                            out.accumulated.insert(target.grid.clone());
                        } else {
                            out.accumulated.remove(&target.grid);
                            out.plain.insert(target.grid.clone());
                        }
                    }
                }
            });
            let mut callees = BTreeSet::new();
            collect_callees(s, &mut callees);
            for c in callees {
                if let Some((cm, cf)) = program.find_function(&c) {
                    out.merge(transitive_global_writes(program, cm, cf, visited));
                }
            }
        }
    }
    out.normalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaf_grid::{DataType, Grid};
    use glaf_ir::{Expr, LValue, ProgramBuilder};

    fn axpy_program() -> Program {
        let n = Grid::build("n").typed(DataType::Integer).finish().unwrap();
        let a = Grid::build("a").typed(DataType::Real8).dim1(100).finish().unwrap();
        let b = Grid::build("b").typed(DataType::Real8).dim1(100).finish().unwrap();
        ProgramBuilder::new()
            .module("m")
            .subroutine("axpy")
            .param(n)
            .param(a)
            .param(b)
            .loop_step("saxpy")
            .foreach("i", Expr::int(1), Expr::scalar("n"))
            .formula(
                LValue::at("a", vec![Expr::idx("i")]),
                Expr::at("a", vec![Expr::idx("i")])
                    + Expr::at("b", vec![Expr::idx("i")]) * Expr::real(2.0),
            )
            .done()
            .done()
            .done()
            .finish()
    }

    #[test]
    fn axpy_is_parallel_and_vectorizable() {
        let p = axpy_program();
        let plan = analyze_program(&p);
        let lp = &plan.for_function("axpy").unwrap().loops[0];
        assert!(lp.parallelizable, "blockers: {:?}", lp.blockers);
        assert!(lp.vectorizable);
        assert_eq!(lp.collapse, 1);
        assert_eq!(lp.class, LoopClass::SimpleSingle);
    }

    #[test]
    fn recurrence_blocks_parallelism() {
        let n = Grid::build("n").typed(DataType::Integer).finish().unwrap();
        let a = Grid::build("a").typed(DataType::Real8).dim1(100).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("scan")
            .param(n)
            .param(a)
            .loop_step("prefix")
            .foreach("i", Expr::int(2), Expr::scalar("n"))
            .formula(
                LValue::at("a", vec![Expr::idx("i")]),
                Expr::at("a", vec![Expr::idx("i") - Expr::int(1)])
                    + Expr::at("a", vec![Expr::idx("i")]),
            )
            .done()
            .done()
            .done()
            .finish();
        let plan = analyze_program(&p);
        let lp = &plan.for_function("scan").unwrap().loops[0];
        assert!(!lp.parallelizable);
        assert!(!lp.blockers.is_empty());
    }

    #[test]
    fn reduction_loop_parallel_with_clause() {
        let n = Grid::build("n").typed(DataType::Integer).finish().unwrap();
        let b = Grid::build("b").typed(DataType::Real8).dim1(100).finish().unwrap();
        let acc = Grid::build("acc").typed(DataType::Real8).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .function("total", DataType::Real8)
            .param(n)
            .param(b)
            .local(acc)
            .loop_step("sum")
            .foreach("i", Expr::int(1), Expr::scalar("n"))
            .formula(
                LValue::scalar("acc"),
                Expr::scalar("acc") + Expr::at("b", vec![Expr::idx("i")]),
            )
            .done()
            .done()
            .done()
            .finish();
        let plan = analyze_program(&p);
        let lp = &plan.for_function("total").unwrap().loops[0];
        assert!(lp.parallelizable, "blockers: {:?}", lp.blockers);
        assert_eq!(lp.reductions.len(), 1);
        assert_eq!(lp.reductions[0].grid, "acc");
    }

    #[test]
    fn private_scalar_detected() {
        let n = Grid::build("n").typed(DataType::Integer).finish().unwrap();
        let a = Grid::build("a").typed(DataType::Real8).dim1(100).finish().unwrap();
        let b = Grid::build("b").typed(DataType::Real8).dim1(100).finish().unwrap();
        let t = Grid::build("t").typed(DataType::Real8).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("f")
            .param(n)
            .param(a)
            .param(b)
            .local(t)
            .loop_step("work")
            .foreach("i", Expr::int(1), Expr::scalar("n"))
            .formula(LValue::scalar("t"), Expr::at("b", vec![Expr::idx("i")]))
            .formula(
                LValue::at("a", vec![Expr::idx("i")]),
                Expr::scalar("t") * Expr::scalar("t"),
            )
            .done()
            .done()
            .done()
            .finish();
        let plan = analyze_program(&p);
        let lp = &plan.for_function("f").unwrap().loops[0];
        assert!(lp.parallelizable, "blockers: {:?}", lp.blockers);
        assert_eq!(lp.private, vec!["t".to_string()]);
    }

    #[test]
    fn double_nest_collapses() {
        let a = Grid::build("a").typed(DataType::Real8).dim1(2).dim1(60).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("f")
            .param(a)
            .loop_step("dbl")
            .foreach("i", Expr::int(1), Expr::int(2))
            .foreach("j", Expr::int(1), Expr::int(60))
            .formula(
                LValue::at("a", vec![Expr::idx("i"), Expr::idx("j")]),
                Expr::idx("i") * Expr::int(100) + Expr::idx("j"),
            )
            .done()
            .done()
            .done()
            .finish();
        let plan = analyze_program(&p);
        let lp = &plan.for_function("f").unwrap().loops[0];
        assert!(lp.parallelizable);
        assert_eq!(lp.collapse, 2, "paper's COLLAPSE(2) case");
        assert_eq!(lp.class, LoopClass::SimpleDouble);
    }

    #[test]
    fn callee_global_writes_need_atomic() {
        let nodes = Grid::build("jac")
            .typed(DataType::Real8)
            .dim1(100)
            .module_scope()
            .finish()
            .unwrap();
        let cell = Grid::build("cell").typed(DataType::Integer).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .global(nodes)
            .subroutine("cell_loop")
            .param(cell)
            .straight_step(
                "accumulate",
                vec![Stmt::Assign {
                    target: LValue::at("jac", vec![Expr::scalar("cell")]),
                    value: Expr::at("jac", vec![Expr::scalar("cell")]) + Expr::real(1.0),
                }],
            )
            .done()
            .subroutine("edgejp")
            .local(Grid::build("ncell").typed(DataType::Integer).finish().unwrap())
            .loop_step("cells")
            .foreach("c", Expr::int(1), Expr::scalar("ncell"))
            .stmt(Stmt::CallSub { name: "cell_loop".into(), args: vec![Expr::idx("c")] })
            .done()
            .done()
            .done()
            .finish();
        let plan = analyze_program(&p);
        let lp = &plan.for_function("edgejp").unwrap().loops[0];
        assert!(lp.atomic.contains(&"jac".to_string()));
    }

    #[test]
    fn unhandled_scalar_write_blocks() {
        let n = Grid::build("n").typed(DataType::Integer).finish().unwrap();
        let s = Grid::build("s").typed(DataType::Real8).finish().unwrap();
        // s = i * 2 read later in another iteration sense: s is written but
        // also read by a subsequent statement's RHS first → not private,
        // not a reduction.
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("f")
            .param(n)
            .local(s)
            .local(Grid::build("a").typed(DataType::Real8).dim1(100).finish().unwrap())
            .loop_step("bad")
            .foreach("i", Expr::int(1), Expr::scalar("n"))
            .formula(LValue::at("a", vec![Expr::idx("i")]), Expr::scalar("s"))
            .formula(LValue::scalar("s"), Expr::idx("i") * Expr::int(2))
            .done()
            .done()
            .done()
            .finish();
        let plan = analyze_program(&p);
        let lp = &plan.for_function("f").unwrap().loops[0];
        assert!(!lp.parallelizable);
    }
}
