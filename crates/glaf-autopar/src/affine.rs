//! Affine canonicalization of subscript expressions.
//!
//! A subscript is *affine* over the loop indices when it can be written
//! `c0 + Σ ci·index_i` with integer coefficients. The constant part may be
//! symbolic (a loop-invariant scalar such as `n` or `ioff`): two symbolic
//! constants are comparable only when they are syntactically identical,
//! which is exactly the precision classical dependence testers get from
//! symbolic subscript analysis.

use std::collections::BTreeMap;

use glaf_ir::display::expr_to_string;
use glaf_ir::{BinOp, Expr, UnOp};

/// An affine form `konst + sym + Σ coeffs[v]·v`, where `sym` is an optional
/// loop-invariant symbolic term (kept as a canonical string).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Affine {
    pub konst: i64,
    /// Canonical text of the loop-invariant symbolic part, if any.
    /// `None` means the symbolic part is zero.
    pub sym: Option<String>,
    /// Integer coefficients per loop-index variable (only indices from the
    /// analyzed nest appear here). Zero coefficients are not stored.
    pub coeffs: BTreeMap<String, i64>,
}

impl Affine {
    /// The zero form.
    pub fn zero() -> Self {
        Affine { konst: 0, sym: None, coeffs: BTreeMap::new() }
    }

    /// A pure constant.
    pub fn constant(c: i64) -> Self {
        Affine { konst: c, sym: None, coeffs: BTreeMap::new() }
    }

    /// A single index with coefficient 1.
    pub fn index(v: &str) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v.to_string(), 1);
        Affine { konst: 0, sym: None, coeffs }
    }

    /// Coefficient of index `v` (0 when absent).
    pub fn coeff(&self, v: &str) -> i64 {
        self.coeffs.get(v).copied().unwrap_or(0)
    }

    /// True when no loop index appears (a ZIV subscript).
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// True when exactly one loop index appears (a SIV subscript).
    pub fn single_index(&self) -> Option<(&str, i64)> {
        if self.coeffs.len() == 1 {
            let (k, &v) = self.coeffs.iter().next().unwrap();
            Some((k.as_str(), v))
        } else {
            None
        }
    }

    fn add_assign(&mut self, other: &Affine, sign: i64) {
        self.konst += sign * other.konst;
        for (k, &c) in &other.coeffs {
            let e = self.coeffs.entry(k.clone()).or_insert(0);
            *e += sign * c;
            if *e == 0 {
                self.coeffs.remove(k);
            }
        }
        self.sym = match (self.sym.take(), &other.sym) {
            (None, None) => None,
            (Some(s), None) => Some(s),
            (None, Some(o)) => {
                Some(if sign >= 0 { o.clone() } else { format!("-({o})") })
            }
            (Some(s), Some(o)) => Some(if sign >= 0 {
                format!("{s}+{o}")
            } else {
                format!("{s}-({o})")
            }),
        };
    }

    fn scale(&mut self, k: i64) {
        self.konst *= k;
        self.coeffs.retain(|_, c| {
            *c *= k;
            *c != 0
        });
        if let Some(s) = self.sym.take() {
            self.sym = if k == 0 { None } else { Some(format!("{k}*({s})")) };
        }
    }
}

/// The result of canonicalizing one subscript.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscriptForm {
    Affine(Affine),
    /// Couldn't be expressed affinely — e.g. `idx(i)` indirection (the
    /// FUN3D `ioff_search` pattern) or nonlinear terms. Dependence testing
    /// falls back to "assume dependent".
    NonAffine,
}

impl SubscriptForm {
    pub fn as_affine(&self) -> Option<&Affine> {
        match self {
            SubscriptForm::Affine(a) => Some(a),
            SubscriptForm::NonAffine => None,
        }
    }
}

/// Canonicalizes `expr` as an affine form over the given loop `indices`.
/// Loop-invariant grid reads become symbolic constants; anything touching a
/// loop index non-linearly (or indexing a grid *by* a loop index) is
/// [`SubscriptForm::NonAffine`].
pub fn to_affine(expr: &Expr, indices: &[String]) -> SubscriptForm {
    match try_affine(expr, indices) {
        Some(a) => SubscriptForm::Affine(a),
        None => SubscriptForm::NonAffine,
    }
}

fn try_affine(expr: &Expr, indices: &[String]) -> Option<Affine> {
    match expr {
        Expr::IntLit(v) => Some(Affine::constant(*v)),
        Expr::Index(v) => {
            if indices.iter().any(|i| i == v) {
                Some(Affine::index(v))
            } else {
                // An index of an *enclosing* (already-fixed) loop behaves as
                // a loop-invariant symbol here.
                Some(symbolic(expr))
            }
        }
        Expr::GridRef { .. } => {
            // A grid read is loop-invariant only if none of its own
            // subscripts mention the analyzed indices.
            if indices.iter().any(|i| expr.uses_index(i)) {
                None
            } else {
                Some(symbolic(expr))
            }
        }
        Expr::Unary { op: UnOp::Neg, operand } => {
            let mut a = try_affine(operand, indices)?;
            a.scale(-1);
            Some(a)
        }
        Expr::Binary { op, lhs, rhs } => match op {
            BinOp::Add => {
                let mut a = try_affine(lhs, indices)?;
                let b = try_affine(rhs, indices)?;
                a.add_assign(&b, 1);
                Some(a)
            }
            BinOp::Sub => {
                let mut a = try_affine(lhs, indices)?;
                let b = try_affine(rhs, indices)?;
                a.add_assign(&b, -1);
                Some(a)
            }
            BinOp::Mul => {
                let a = try_affine(lhs, indices)?;
                let b = try_affine(rhs, indices)?;
                // One side must be a literal constant for linearity.
                if a.is_constant() && a.sym.is_none() {
                    let mut r = b;
                    r.scale(a.konst);
                    Some(r)
                } else if b.is_constant() && b.sym.is_none() {
                    let mut r = a;
                    r.scale(b.konst);
                    Some(r)
                } else if a.coeffs.is_empty() && b.coeffs.is_empty() {
                    // symbolic * symbolic — loop-invariant, keep symbolic.
                    Some(symbolic(expr))
                } else {
                    None
                }
            }
            _ => {
                // Division, comparisons etc.: loop-invariant whole
                // expressions stay symbolic, otherwise non-affine.
                if indices.iter().any(|i| expr.uses_index(i)) {
                    None
                } else {
                    Some(symbolic(expr))
                }
            }
        },
        _ => {
            if indices.iter().any(|i| expr.uses_index(i)) {
                None
            } else {
                Some(symbolic(expr))
            }
        }
    }
}

fn symbolic(expr: &Expr) -> Affine {
    Affine { konst: 0, sym: Some(expr_to_string(expr)), coeffs: BTreeMap::new() }
}

/// True when two affine forms have identical symbolic parts (both empty or
/// both the same canonical text), so their difference is a known integer.
pub fn comparable(a: &Affine, b: &Affine) -> bool {
    a.sym == b.sym
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaf_ir::Expr;

    fn ix() -> Vec<String> {
        vec!["i".to_string(), "j".to_string()]
    }

    #[test]
    fn literal_and_index() {
        assert_eq!(to_affine(&Expr::int(7), &ix()), SubscriptForm::Affine(Affine::constant(7)));
        let a = to_affine(&Expr::idx("i"), &ix());
        let a = a.as_affine().unwrap();
        assert_eq!(a.coeff("i"), 1);
        assert_eq!(a.konst, 0);
    }

    #[test]
    fn linear_combination() {
        // 2*i + j - 3
        let e = Expr::int(2) * Expr::idx("i") + Expr::idx("j") - Expr::int(3);
        let a = to_affine(&e, &ix());
        let a = a.as_affine().unwrap();
        assert_eq!(a.coeff("i"), 2);
        assert_eq!(a.coeff("j"), 1);
        assert_eq!(a.konst, -3);
        assert!(a.sym.is_none());
    }

    #[test]
    fn negation_flips_coeffs() {
        let e = -(Expr::idx("i") - Expr::int(4));
        let a = to_affine(&e, &ix());
        let a = a.as_affine().unwrap();
        assert_eq!(a.coeff("i"), -1);
        assert_eq!(a.konst, 4);
    }

    #[test]
    fn invariant_scalar_is_symbolic() {
        let e = Expr::scalar("n") + Expr::idx("i");
        let a = to_affine(&e, &ix());
        let a = a.as_affine().unwrap();
        assert_eq!(a.coeff("i"), 1);
        assert_eq!(a.sym.as_deref(), Some("n"));
    }

    #[test]
    fn indirection_is_non_affine() {
        // a(idx(i)) — the subscript of `a` is idx(i), a grid read using i.
        let sub = Expr::at("idxmap", vec![Expr::idx("i")]);
        assert_eq!(to_affine(&sub, &ix()), SubscriptForm::NonAffine);
    }

    #[test]
    fn nonlinear_is_non_affine() {
        let e = Expr::idx("i") * Expr::idx("j");
        assert_eq!(to_affine(&e, &ix()), SubscriptForm::NonAffine);
    }

    #[test]
    fn outer_index_is_symbolic_constant() {
        // Analyzing only over j; i is an enclosing fixed index.
        let indices = vec!["j".to_string()];
        let e = Expr::idx("i") + Expr::idx("j");
        let a = to_affine(&e, &indices);
        let a = a.as_affine().unwrap();
        assert_eq!(a.coeff("j"), 1);
        assert_eq!(a.sym.as_deref(), Some("i"));
    }

    #[test]
    fn comparability() {
        let e1 = Expr::scalar("n") + Expr::idx("i");
        let e2 = Expr::scalar("n") + Expr::idx("i") + Expr::int(1);
        let e3 = Expr::scalar("m") + Expr::idx("i");
        let a1 = to_affine(&e1, &ix());
        let a2 = to_affine(&e2, &ix());
        let a3 = to_affine(&e3, &ix());
        assert!(comparable(a1.as_affine().unwrap(), a2.as_affine().unwrap()));
        assert!(!comparable(a1.as_affine().unwrap(), a3.as_affine().unwrap()));
    }

    #[test]
    fn scaling_cancels_terms() {
        // i - i == 0
        let e = Expr::idx("i") - Expr::idx("i");
        let a = to_affine(&e, &ix());
        let a = a.as_affine().unwrap();
        assert!(a.is_constant());
        assert_eq!(a.konst, 0);
    }
}
