//! The autopar decision log: why each loop was (or was not)
//! parallelized.
//!
//! [`crate::plan`] answers *what* the back-end decided; this module keeps
//! the *why*: which classical dependence test fired for each grid/index
//! pair ([`DepRecord`]), which reductions and privatizations discharged
//! the remaining conflicts, the structural classification, and the cost
//! advisor's verdict. The log is a parallel structure to the plan — the
//! [`crate::plan::LoopPlan`] itself is unchanged, so logging is free for
//! callers that do not ask for it.
//!
//! Records capture the tests the planner actually executed: once an index
//! is proven blocked, further pairs against it are skipped (exactly as in
//! planning), so the log mirrors the real decision procedure rather than
//! an exhaustive all-pairs matrix.

use std::collections::BTreeSet;

use glaf_ir::{Function, GlafModule, Program, StepBody};

use crate::classify::LoopClass;
use crate::costmodel::{CostAdvisor, Decision, ScheduleChoice};
use crate::depend::{DepResult, DepTest};
use crate::plan::{analyze_loop, attach_schedule, FunctionPlan, ProgramPlan};

/// One executed dependence test: grid, candidate index, the test that
/// decided, and its verdict.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DepRecord {
    pub grid: String,
    pub index: String,
    pub test: DepTest,
    pub result: DepResult,
}

/// The full decision record for one loop step.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopDecision {
    pub function: String,
    pub step_index: usize,
    /// GPI step caption, when the builder supplied one.
    pub step_label: String,
    pub class: LoopClass,
    pub vectorizable: bool,
    pub parallelizable: bool,
    pub collapse: usize,
    /// `PRIVATE` scalars.
    pub private: Vec<String>,
    /// Reduction clauses, rendered as `op:grid` (e.g. `+:accb`).
    pub reductions: Vec<String>,
    /// Grids protected with `ATOMIC`.
    pub atomic: Vec<String>,
    /// The cost advisor's directive-placement verdict.
    pub advisor: Decision,
    /// The advisor's `SCHEDULE(...)` pick with rationale; `None` when the
    /// loop is not parallelized.
    pub schedule: Option<ScheduleChoice>,
    /// When this loop is the product of the optimization back-end's loop
    /// fusion, the fusion rationale (set by the fusing caller — plain
    /// analysis leaves it `None`).
    pub fusion: Option<String>,
    /// Dependence tests executed while planning, deduplicated and sorted.
    pub deps: Vec<DepRecord>,
    /// Reasons when `parallelizable == false`.
    pub blockers: Vec<String>,
}

/// Decision records for every analyzed loop of a program, in module /
/// function / step order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DecisionLog {
    pub loops: Vec<LoopDecision>,
}

impl DecisionLog {
    /// Records for one function, in step order.
    pub fn for_function(&self, name: &str) -> Vec<&LoopDecision> {
        self.loops.iter().filter(|l| l.function == name).collect()
    }

    /// Human-readable rendering, one block per loop.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for l in &self.loops {
            out.push_str(&format!(
                "{} step {} \"{}\": class={} vectorizable={} parallel={} collapse={} advisor={}",
                l.function,
                l.step_index,
                l.step_label,
                l.class.name(),
                if l.vectorizable { "yes" } else { "no" },
                if l.parallelizable { "yes" } else { "no" },
                l.collapse,
                l.advisor.name(),
            ));
            if let Some(sc) = &l.schedule {
                out.push_str(&format!(" schedule={}", sc.render()));
            }
            out.push('\n');
            if let Some(sc) = &l.schedule {
                out.push_str(&format!("  schedule rationale: {}\n", sc.why));
            }
            if let Some(fu) = &l.fusion {
                out.push_str(&format!("  fusion: {fu}\n"));
            }
            if !l.private.is_empty() {
                out.push_str(&format!("  private: {}\n", l.private.join(", ")));
            }
            for r in &l.reductions {
                out.push_str(&format!("  reduction: {r}\n"));
            }
            for a in &l.atomic {
                out.push_str(&format!("  atomic: {a}\n"));
            }
            for d in &l.deps {
                out.push_str(&format!(
                    "  dep: `{}` on `{}`: {} -> {}\n",
                    d.grid,
                    d.index,
                    d.test.name(),
                    d.result.name(),
                ));
            }
            for b in &l.blockers {
                out.push_str(&format!("  blocker: {b}\n"));
            }
        }
        out
    }
}

/// Like [`crate::plan::analyze_function`], but also returns the decision
/// records behind each [`crate::plan::LoopPlan`].
pub fn analyze_function_with_log(
    program: &Program,
    module: &GlafModule,
    func: &Function,
) -> (FunctionPlan, Vec<LoopDecision>) {
    analyze_function_with_log_using(&CostAdvisor::default(), program, module, func)
}

/// [`analyze_function_with_log`] with an explicit (e.g. measurement-
/// calibrated) cost advisor deciding the directive verdicts.
pub fn analyze_function_with_log_using(
    advisor: &CostAdvisor,
    program: &Program,
    _module: &GlafModule,
    func: &Function,
) -> (FunctionPlan, Vec<LoopDecision>) {
    let mut loops = Vec::new();
    let mut decisions = Vec::new();
    for (step_index, step) in func.steps.iter().enumerate() {
        if let StepBody::Loop(nest) = &step.body {
            let mut deps: BTreeSet<DepRecord> = BTreeSet::new();
            let mut plan = analyze_loop(program, step_index, nest, Some(&mut deps));
            attach_schedule(func, nest, &mut plan);
            decisions.push(LoopDecision {
                function: func.name.clone(),
                step_index,
                step_label: step.label.clone().unwrap_or_default(),
                class: plan.class,
                vectorizable: plan.vectorizable,
                parallelizable: plan.parallelizable,
                collapse: plan.collapse,
                private: plan.private.clone(),
                reductions: plan
                    .reductions
                    .iter()
                    .map(|r| format!("{}:{}", r.op.omp_name(), r.grid))
                    .collect(),
                atomic: plan.atomic.clone(),
                advisor: advisor.decide(nest, &plan),
                schedule: plan.schedule.clone(),
                fusion: None,
                deps: deps.into_iter().collect(),
                blockers: plan.blockers.clone(),
            });
            loops.push(plan);
        }
    }
    (FunctionPlan { function: func.name.clone(), loops }, decisions)
}

/// Like [`crate::plan::analyze_program`], but also returns the
/// [`DecisionLog`]. The returned plan is identical to the plain one.
pub fn analyze_program_with_log(program: &Program) -> (ProgramPlan, DecisionLog) {
    analyze_program_with_log_using(&CostAdvisor::default(), program)
}

/// [`analyze_program_with_log`] with an explicit (e.g. measurement-
/// calibrated) cost advisor deciding the directive verdicts.
pub fn analyze_program_with_log_using(
    advisor: &CostAdvisor,
    program: &Program,
) -> (ProgramPlan, DecisionLog) {
    let mut plan = ProgramPlan::default();
    let mut log = DecisionLog::default();
    for module in &program.modules {
        for func in &module.functions {
            let (fp, decisions) = analyze_function_with_log_using(advisor, program, module, func);
            plan.functions.insert(func.name.clone(), fp);
            log.loops.extend(decisions);
        }
    }
    (plan, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::analyze_program;
    use glaf_grid::{DataType, Grid};
    use glaf_ir::{Expr, LValue, ProgramBuilder};

    fn recurrence_program() -> Program {
        let n = Grid::build("n").typed(DataType::Integer).finish().unwrap();
        let a = Grid::build("a").typed(DataType::Real8).dim1(100).finish().unwrap();
        ProgramBuilder::new()
            .module("m")
            .subroutine("scan")
            .param(n)
            .param(a)
            .loop_step("prefix")
            .foreach("i", Expr::int(2), Expr::scalar("n"))
            .formula(
                LValue::at("a", vec![Expr::idx("i")]),
                Expr::at("a", vec![Expr::idx("i") - Expr::int(1)])
                    + Expr::at("a", vec![Expr::idx("i")]),
            )
            .done()
            .done()
            .done()
            .finish()
    }

    #[test]
    fn logged_plan_matches_plain_plan() {
        let p = recurrence_program();
        let (plan, log) = analyze_program_with_log(&p);
        assert_eq!(plan, analyze_program(&p));
        assert_eq!(log.loops.len(), 1);
    }

    #[test]
    fn recurrence_log_names_the_siv_test() {
        let p = recurrence_program();
        let (_, log) = analyze_program_with_log(&p);
        let d = &log.loops[0];
        assert_eq!(d.function, "scan");
        assert_eq!(d.step_label, "prefix");
        assert!(!d.parallelizable);
        assert!(d.deps.iter().any(|r| r.grid == "a"
            && r.index == "i"
            && r.test == DepTest::StrongSiv
            && r.result == DepResult::LoopCarried));
        let text = log.render();
        assert!(text.contains("strong-siv -> loop-carried"), "render:\n{text}");
        assert!(text.contains("parallel=no"), "render:\n{text}");
    }
}
