//! Reduction recognition.
//!
//! The paper's back-end identifies loops "that contain reductions (and that
//! have been identified as such by GLAF auto-parallelization back-end)"
//! (§4.1.2), and the FUN3D adaptation extends "reduction clauses ... to
//! specify multiple reduction variables when a loop has effectively more
//! than one output" (§4.2.1). We recognize:
//!
//! * **Scalar reductions** — `s = s ⊕ e` where `s` is a scalar grid, `⊕` is
//!   `+`, `*`, `MAX` or `MIN`, and `e` does not read `s`.
//! * **Array accumulations** — `a(k) = a(k) + e` where the subscripts do
//!   not involve the parallel index; these cannot use a REDUCTION clause
//!   and are instead flagged for `ATOMIC` protection (§4.2.1's "atomic
//!   update clauses are added to parallel updates to module-scope arrays").

use glaf_ir::{BinOp, Callee, Expr, LibFunc, LValue, Stmt};

/// A reduction operator expressible as an OpenMP clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedOpKind {
    Sum,
    Prod,
    Max,
    Min,
}

impl RedOpKind {
    /// The OpenMP clause spelling.
    pub fn omp_name(self) -> &'static str {
        match self {
            RedOpKind::Sum => "+",
            RedOpKind::Prod => "*",
            RedOpKind::Max => "MAX",
            RedOpKind::Min => "MIN",
        }
    }
}

/// A recognized reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Reduction {
    pub grid: String,
    pub op: RedOpKind,
    /// True when the accumulator is a scalar (REDUCTION clause eligible);
    /// false for array accumulation (needs ATOMIC).
    pub scalar: bool,
    /// True when the accumulation target's subscripts involve a loop
    /// index: each iteration touches its own element, so ordinary
    /// dependence testing applies and no ATOMIC is needed.
    pub index_dependent: bool,
}

/// Scans loop-body statements for reduction patterns.
///
/// A candidate is *disqualified* when any statement that is not itself a
/// matching update of the same accumulator reads or writes it — e.g. the
/// FUN3D/SW pattern `taucum = taucum + tau(i); f(i) = f(i) + g(taucum)`
/// reads the running value mid-loop and is a true recurrence, not a
/// reduction.
pub fn find_reductions(body: &[Stmt], indices: &[String]) -> Vec<Reduction> {
    let mut out: Vec<Reduction> = Vec::new();
    for s in body {
        scan_stmt(s, indices, &mut out);
    }
    // Disqualification pass.
    out.retain(|r| {
        let mut ok = true;
        for s in body {
            s.walk(&mut |st| match st {
                Stmt::Assign { target, value } => {
                    let is_own_update = matches!(
                        match_reduction(target, value),
                        Some(m) if m.grid == r.grid
                    ) && target.grid == r.grid;
                    if !is_own_update
                        && (target.grid == r.grid
                            || value.grids_read().contains(&r.grid)
                            || target.indices.iter().any(|ix| {
                                ix.grids_read().contains(&r.grid)
                            }))
                        {
                            ok = false;
                        }
                }
                Stmt::If { cond, .. }
                    if cond.grids_read().contains(&r.grid) => {
                        ok = false;
                    }
                Stmt::CallSub { args, .. } => {
                    for a in args {
                        if a.grids_read().contains(&r.grid) {
                            ok = false;
                        }
                    }
                }
                Stmt::Return(Some(e))
                    if e.grids_read().contains(&r.grid) => {
                        ok = false;
                    }
                _ => {}
            });
        }
        ok
    });
    out
}

fn scan_stmt(stmt: &Stmt, indices: &[String], out: &mut Vec<Reduction>) {
    match stmt {
        Stmt::Assign { target, value } => {
            if let Some(mut r) = match_reduction(target, value) {
                r.index_dependent = target
                    .indices
                    .iter()
                    .any(|e| indices.iter().any(|v| e.uses_index(v)));
                if !out.iter().any(|x| x.grid == r.grid) {
                    out.push(r);
                }
            }
        }
        Stmt::If { then_body, else_body, .. } => {
            for s in then_body.iter().chain(else_body.iter()) {
                scan_stmt(s, indices, out);
            }
        }
        _ => {}
    }
}

/// Matches `t = t ⊕ e`, `t = e ⊕ t` (commutative ⊕) and
/// `t = MAX/MIN(t, e)` / `(e, t)`.
pub fn match_reduction(target: &LValue, value: &Expr) -> Option<Reduction> {
    let is_target = |e: &Expr| -> bool {
        match e {
            Expr::GridRef { grid, indices, field } => {
                grid == &target.grid
                    && field == &target.field
                    && indices.len() == target.indices.len()
                    && indices.iter().zip(target.indices.iter()).all(|(a, b)| a == b)
            }
            _ => false,
        }
    };
    let reads_target = |e: &Expr| e.grids_read().iter().any(|g| g == &target.grid);

    match value {
        Expr::Binary { op, lhs, rhs } => {
            let kind = match op {
                BinOp::Add => RedOpKind::Sum,
                BinOp::Mul => RedOpKind::Prod,
                // `t = t - e` is still a sum reduction over `-e`.
                BinOp::Sub => RedOpKind::Sum,
                _ => return None,
            };
            let (acc_side, other) = if is_target(lhs) {
                (true, rhs)
            } else if is_target(rhs) && *op != BinOp::Sub {
                (true, lhs)
            } else {
                (false, rhs)
            };
            if acc_side && !reads_target(other) {
                Some(Reduction {
                    grid: target.grid.clone(),
                    op: kind,
                    scalar: target.indices.is_empty(),
                    index_dependent: false,
                })
            } else {
                None
            }
        }
        Expr::Call { callee: Callee::Lib(f), args } if args.len() == 2 => {
            let kind = match f {
                LibFunc::Max => RedOpKind::Max,
                LibFunc::Min => RedOpKind::Min,
                _ => return None,
            };
            let (a, b) = (&args[0], &args[1]);
            let hit = (is_target(a) && !reads_target(b)) || (is_target(b) && !reads_target(a));
            if hit {
                Some(Reduction {
                    grid: target.grid.clone(),
                    op: kind,
                    scalar: target.indices.is_empty(),
                    index_dependent: false,
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaf_ir::{Expr, LValue, Stmt};

    #[test]
    fn sum_reduction_recognized() {
        let s = Stmt::assign(
            LValue::scalar("acc"),
            Expr::scalar("acc") + Expr::at("a", vec![Expr::idx("i")]),
        );
        let r = find_reductions(&[s], &["i".to_string()]);
        assert_eq!(
            r,
            vec![Reduction {
                grid: "acc".into(),
                op: RedOpKind::Sum,
                scalar: true,
                index_dependent: false
            }]
        );
    }

    #[test]
    fn commuted_sum_recognized() {
        let s = Stmt::assign(
            LValue::scalar("acc"),
            Expr::at("a", vec![Expr::idx("i")]) + Expr::scalar("acc"),
        );
        assert_eq!(find_reductions(&[s], &["i".to_string()]).len(), 1);
    }

    #[test]
    fn subtraction_is_sum_reduction_only_on_lhs() {
        let ok = Stmt::assign(
            LValue::scalar("acc"),
            Expr::scalar("acc") - Expr::scalar("x"),
        );
        assert_eq!(find_reductions(&[ok], &["i".to_string()])[0].op, RedOpKind::Sum);
        // x - acc is NOT a reduction.
        let bad = Stmt::assign(
            LValue::scalar("acc"),
            Expr::scalar("x") - Expr::scalar("acc"),
        );
        assert!(find_reductions(&[bad], &["i".to_string()]).is_empty());
    }

    #[test]
    fn max_reduction_recognized() {
        let s = Stmt::assign(
            LValue::scalar("m"),
            Expr::lib(LibFunc::Max, vec![Expr::scalar("m"), Expr::scalar("x")]),
        );
        let r = find_reductions(&[s], &["i".to_string()]);
        assert_eq!(r[0].op, RedOpKind::Max);
    }

    #[test]
    fn accumulator_read_elsewhere_rejected() {
        // acc = acc + acc * 2 — `acc` read on the non-accumulator side.
        let s = Stmt::assign(
            LValue::scalar("acc"),
            Expr::scalar("acc") + Expr::scalar("acc") * Expr::real(2.0),
        );
        assert!(find_reductions(&[s], &["i".to_string()]).is_empty());
    }

    #[test]
    fn array_accumulation_flagged_non_scalar() {
        // jac(k) = jac(k) + e with k loop-invariant.
        let s = Stmt::assign(
            LValue::at("jac", vec![Expr::scalar("k")]),
            Expr::at("jac", vec![Expr::scalar("k")]) + Expr::scalar("flux"),
        );
        let r = find_reductions(&[s], &["i".to_string()]);
        assert_eq!(r.len(), 1);
        assert!(!r[0].scalar);
    }

    #[test]
    fn mismatched_subscripts_rejected() {
        // a(i) = a(i-1) + e is a recurrence, not a reduction.
        let s = Stmt::assign(
            LValue::at("a", vec![Expr::idx("i")]),
            Expr::at("a", vec![Expr::idx("i") - Expr::int(1)]) + Expr::real(1.0),
        );
        assert!(find_reductions(&[s], &["i".to_string()]).is_empty());
    }

    #[test]
    fn reductions_inside_if_found() {
        let s = Stmt::If {
            cond: Expr::BoolLit(true),
            then_body: vec![Stmt::assign(
                LValue::scalar("acc"),
                Expr::scalar("acc") + Expr::real(1.0),
            )],
            else_body: vec![],
        };
        assert_eq!(find_reductions(&[s], &["i".to_string()]).len(), 1);
    }

    #[test]
    fn accumulator_read_by_other_statement_disqualified() {
        // taucum = taucum + tau(i); f(i) = taucum * 2 — a recurrence.
        let s1 = Stmt::assign(
            LValue::scalar("taucum"),
            Expr::scalar("taucum") + Expr::at("tau", vec![Expr::idx("i")]),
        );
        let s2 = Stmt::assign(
            LValue::at("f", vec![Expr::idx("i")]),
            Expr::scalar("taucum") * Expr::real(2.0),
        );
        assert!(find_reductions(&[s1, s2], &["i".to_string()]).is_empty());
    }

    #[test]
    fn accumulator_passed_to_call_disqualified() {
        let s1 = Stmt::assign(
            LValue::scalar("acc"),
            Expr::scalar("acc") + Expr::real(1.0),
        );
        let s2 = Stmt::CallSub { name: "use_it".into(), args: vec![Expr::scalar("acc")] };
        assert!(find_reductions(&[s1, s2], &["i".to_string()]).is_empty());
    }

    #[test]
    fn multiple_reductions_deduplicated() {
        let s1 = Stmt::assign(LValue::scalar("a"), Expr::scalar("a") + Expr::real(1.0));
        let s2 = Stmt::assign(LValue::scalar("a"), Expr::scalar("a") + Expr::real(2.0));
        let s3 = Stmt::assign(LValue::scalar("b"), Expr::scalar("b") + Expr::real(3.0));
        let r = find_reductions(&[s1, s2, s3], &["i".to_string()]);
        assert_eq!(r.len(), 2, "multi-variable reductions kept, duplicates merged");
    }
}
