//! The performance-prediction back-end.
//!
//! §4.1.2 of the paper: "As future work, we suggest the incorporation of a
//! performance prediction/modeling back-end that will guide the automatic
//! code generation in a more intelligent way (e.g., selecting SIMD
//! directives, instead of OpenMP, or neither)." This module implements
//! that back-end. Given a loop's structure and plan, it estimates
//!
//! * serial execution time, letting the (modeled) compiler vectorize or
//!   memset-optimize eligible loops, and
//! * threaded execution time, paying a fork/join cost per parallel region
//!   and any reduction-combine cost,
//!
//! then chooses whichever is cheaper. The estimates intentionally use the
//! same first-order structure as the `simcpu` machine model, so the
//! advisor's decisions line up with the simulated measurements the benches
//! report (ablation: `bench/benches/ablation_costmodel.rs`).

use glaf_ir::{Expr, LoopNest};

use crate::classify::LoopClass;
use crate::plan::LoopPlan;

/// Tunable machine parameters for the advisor. Defaults mirror the
/// `simcpu` "i5-2400-like" preset.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// Threads available to a parallel region.
    pub threads: usize,
    /// Cycles to fork + join a parallel region (OpenMP runtime overhead).
    pub fork_join_cycles: f64,
    /// Extra cycles per thread joining a reduction combine.
    pub reduction_cycles_per_thread: f64,
    /// Effective SIMD speedup for a vectorizable loop body.
    pub simd_speedup: f64,
    /// Effective speedup for a zero-initialization loop replaced by
    /// memset.
    pub memset_speedup: f64,
    /// Cycles per expression node (crude per-operation cost).
    pub cycles_per_node: f64,
    /// Assumed trip count when a bound is not a literal.
    pub default_trip: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            threads: 4,
            fork_join_cycles: 1_650.0,
            reduction_cycles_per_thread: 150.0,
            simd_speedup: 4.0,
            memset_speedup: 16.0,
            cycles_per_node: 3.0,
            default_trip: 64,
        }
    }
}

/// What the advisor recommends for one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Emit `!$OMP PARALLEL DO`.
    Threads,
    /// Leave serial; the compiler's SIMD/memset/unroll wins.
    Simd,
    /// Leave serial; too small for either to matter.
    Serial,
}

impl Decision {
    /// Stable lower-case name for decision logs.
    pub fn name(self) -> &'static str {
        match self {
            Decision::Threads => "threads",
            Decision::Simd => "simd",
            Decision::Serial => "serial",
        }
    }
}

/// The advisor.
#[derive(Debug, Clone, Default)]
pub struct CostAdvisor {
    pub params: CostParams,
}

impl CostAdvisor {
    pub fn new(params: CostParams) -> Self {
        CostAdvisor { params }
    }

    /// Estimated trip count of the full nest (product of per-range trips).
    pub fn trip_count(&self, nest: &LoopNest) -> u64 {
        nest.ranges
            .iter()
            .map(|r| match (&r.start, &r.end) {
                (Expr::IntLit(a), Expr::IntLit(b)) if b >= a => (b - a + 1) as u64,
                _ => self.default_trip(),
            })
            .product::<u64>()
            .max(1)
    }

    fn default_trip(&self) -> u64 {
        self.params.default_trip
    }

    /// Crude per-iteration cost: expression nodes across the body times
    /// `cycles_per_node`.
    pub fn body_cycles(&self, nest: &LoopNest) -> f64 {
        let mut nodes = 0usize;
        for s in &nest.body {
            s.walk_exprs(&mut |_| nodes += 1);
            s.walk(&mut |_| nodes += 1);
        }
        if let Some(c) = &nest.condition {
            nodes += c.node_count();
        }
        (nodes.max(1)) as f64 * self.params.cycles_per_node
    }

    /// Serial time with compiler optimizations applied.
    pub fn serial_cycles(&self, nest: &LoopNest, plan: &LoopPlan) -> f64 {
        let trip = self.trip_count(nest) as f64;
        let body = self.body_cycles(nest);
        let factor = match plan.class {
            LoopClass::ZeroInit => self.params.memset_speedup,
            _ if plan.vectorizable => self.params.simd_speedup,
            _ => 1.0,
        };
        trip * body / factor
    }

    /// Threaded time: fork/join + ideally-divided body (no SIMD inside
    /// OpenMP regions in the paper's observations) + reduction combine.
    pub fn parallel_cycles(&self, nest: &LoopNest, plan: &LoopPlan) -> f64 {
        let trip = self.trip_count(nest) as f64;
        let body = self.body_cycles(nest);
        let t = self.params.threads.max(1) as f64;
        // With COLLAPSE the full nest trip divides across threads; without,
        // only the outer range does — collapse ≥ 1 always here.
        let chunk = (trip / t).ceil();
        self.params.fork_join_cycles
            + chunk * body
            + plan.reductions.len() as f64 * self.params.reduction_cycles_per_thread * t
    }

    /// The recommendation for this loop.
    pub fn decide(&self, nest: &LoopNest, plan: &LoopPlan) -> Decision {
        if !plan.parallelizable {
            return if plan.vectorizable { Decision::Simd } else { Decision::Serial };
        }
        let ser = self.serial_cycles(nest, plan);
        let par = self.parallel_cycles(nest, plan);
        if par < ser {
            Decision::Threads
        } else if plan.vectorizable || plan.class == LoopClass::ZeroInit {
            Decision::Simd
        } else {
            Decision::Serial
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::analyze_program;
    use glaf_grid::{DataType, Grid};
    use glaf_ir::{IndexRange, LValue, ProgramBuilder, StepBody};

    fn make(nest_end: i64, heavy: bool) -> (LoopNest, LoopPlan) {
        let a = Grid::build("a").typed(DataType::Real8).dim1(1_000_000).finish().unwrap();
        let b = Grid::build("b").typed(DataType::Real8).dim1(1_000_000).finish().unwrap();
        let mut fb = ProgramBuilder::new()
            .module("m")
            .subroutine("f")
            .param(a)
            .param(b)
            .loop_step("l")
            .foreach("i", Expr::int(1), Expr::int(nest_end));
        let mut rhs = Expr::at("b", vec![Expr::idx("i")]);
        if heavy {
            // A big body *with control flow*: the modeled compiler cannot
            // vectorize it, so threading is the only speedup available —
            // the exact situation where the paper's two longwave loops
            // keep their OMP directives.
            for _ in 0..40 {
                rhs = Expr::lib(glaf_ir::LibFunc::Exp, vec![rhs]) * Expr::real(1.0001)
                    + Expr::real(0.5);
            }
            fb = fb.stmt(glaf_ir::Stmt::If {
                cond: Expr::at("b", vec![Expr::idx("i")]).cmp(glaf_ir::BinOp::Gt, Expr::real(0.0)),
                then_body: vec![glaf_ir::Stmt::assign(
                    LValue::at("a", vec![Expr::idx("i")]),
                    rhs,
                )],
                else_body: vec![glaf_ir::Stmt::assign(
                    LValue::at("a", vec![Expr::idx("i")]),
                    Expr::real(0.0),
                )],
            });
        } else {
            fb = fb.formula(LValue::at("a", vec![Expr::idx("i")]), rhs);
        }
        let p = fb.done().done().done().finish();
        let plan = analyze_program(&p);
        let lp = plan.for_function("f").unwrap().loops[0].clone();
        let (_, f) = p.find_function("f").unwrap();
        let nest = match &f.steps[0].body {
            StepBody::Loop(n) => n.clone(),
            _ => unreachable!(),
        };
        (nest, lp)
    }

    #[test]
    fn tiny_loop_stays_serial_or_simd() {
        let (nest, plan) = make(8, false);
        let adv = CostAdvisor::default();
        assert_ne!(adv.decide(&nest, &plan), Decision::Threads);
    }

    #[test]
    fn huge_heavy_loop_gets_threads() {
        let (nest, plan) = make(1_000_000, true);
        let adv = CostAdvisor::default();
        assert_eq!(adv.decide(&nest, &plan), Decision::Threads);
    }

    #[test]
    fn vectorizable_medium_loop_prefers_simd() {
        // Medium trip count, trivially light body: SIMD serial beats
        // threads because fork/join dominates.
        let (nest, plan) = make(4_000, false);
        let adv = CostAdvisor::default();
        assert_eq!(adv.decide(&nest, &plan), Decision::Simd);
    }

    #[test]
    fn non_parallelizable_never_threads() {
        let (nest, mut plan) = make(1_000_000, true);
        plan.parallelizable = false;
        plan.vectorizable = false;
        let adv = CostAdvisor::default();
        assert_eq!(adv.decide(&nest, &plan), Decision::Serial);
    }

    #[test]
    fn trip_count_products_and_defaults() {
        let adv = CostAdvisor::default();
        let nest = LoopNest {
            ranges: vec![
                IndexRange::new("i", Expr::int(1), Expr::int(2)),
                IndexRange::new("j", Expr::int(1), Expr::int(60)),
            ],
            condition: None,
            body: vec![],
        };
        assert_eq!(adv.trip_count(&nest), 120);
        let sym = LoopNest {
            ranges: vec![IndexRange::new("i", Expr::int(1), Expr::scalar("n"))],
            condition: None,
            body: vec![],
        };
        assert_eq!(adv.trip_count(&sym), adv.params.default_trip);
    }
}
