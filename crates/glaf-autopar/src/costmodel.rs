//! The performance-prediction back-end.
//!
//! §4.1.2 of the paper: "As future work, we suggest the incorporation of a
//! performance prediction/modeling back-end that will guide the automatic
//! code generation in a more intelligent way (e.g., selecting SIMD
//! directives, instead of OpenMP, or neither)." This module implements
//! that back-end. Given a loop's structure and plan, it estimates
//!
//! * serial execution time, letting the (modeled) compiler vectorize or
//!   memset-optimize eligible loops, and
//! * threaded execution time, paying a fork/join cost per parallel region
//!   and any reduction-combine cost,
//!
//! then chooses whichever is cheaper. The estimates intentionally use the
//! same first-order structure as the `simcpu` machine model, so the
//! advisor's decisions line up with the simulated measurements the benches
//! report (ablation: `bench/benches/ablation_costmodel.rs`).

use glaf_ir::{Callee, Expr, Function, LoopNest, StepBody, Stmt};

use crate::classify::LoopClass;
use crate::plan::LoopPlan;

/// Tunable machine parameters for the advisor. Defaults mirror the
/// `simcpu` "i5-2400-like" preset.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// Threads available to a parallel region.
    pub threads: usize,
    /// Cycles to fork + join a parallel region (OpenMP runtime overhead).
    pub fork_join_cycles: f64,
    /// Extra cycles per thread joining a reduction combine.
    pub reduction_cycles_per_thread: f64,
    /// Effective SIMD speedup for a vectorizable loop body.
    pub simd_speedup: f64,
    /// Effective speedup of the native (tier-3 JIT) execution path for a
    /// vectorizable loop body, over the scalar baseline. The default of
    /// 1.0 models a target without a native tier, so it changes nothing
    /// until a measured calibration (see [`calibrate_native_speedup`])
    /// raises it; a vectorizable loop is then priced at the better of
    /// the SIMD and native paths — the engine promotes exactly those
    /// regions the vectorizer accepts, and runs whichever tier wins.
    pub native_speedup: f64,
    /// Effective speedup for a zero-initialization loop replaced by
    /// memset.
    pub memset_speedup: f64,
    /// Cycles per expression node (crude per-operation cost).
    pub cycles_per_node: f64,
    /// Assumed trip count when a bound is not a literal.
    pub default_trip: u64,
    /// Cycles of per-loop entry/exit overhead (counter setup, bounds
    /// load, end-of-loop bookkeeping) — what fusing adjacent loops saves
    /// once per eliminated loop, on top of the reuse benefit.
    pub loop_entry_cycles: f64,
    /// Minimum (estimated) trip count at which an irregular loop is
    /// scheduled `GUIDED` instead of `DYNAMIC`: with many iterations the
    /// geometrically decaying chunks amortize dispatch overhead while
    /// still balancing the tail.
    pub guided_trip_threshold: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            threads: 4,
            fork_join_cycles: 1_650.0,
            reduction_cycles_per_thread: 150.0,
            simd_speedup: 4.0,
            native_speedup: 1.0,
            memset_speedup: 16.0,
            cycles_per_node: 3.0,
            default_trip: 64,
            loop_entry_cycles: 12.0,
            guided_trip_threshold: 512,
        }
    }
}

impl CostParams {
    /// Default parameters with `simd_speedup` replaced by a measured
    /// calibration (see [`calibrate_simd_speedup`]); falls back to the
    /// flat default when the samples carry no evidence.
    pub fn calibrated_simd(samples: &[(f64, u64)]) -> CostParams {
        let mut p = CostParams::default();
        if let Some(s) = calibrate_simd_speedup(samples) {
            p.simd_speedup = s;
        }
        p
    }

    /// Default parameters with `native_speedup` replaced by a measured
    /// calibration (see [`calibrate_native_speedup`]); falls back to the
    /// no-native-tier default when the samples carry no evidence.
    pub fn calibrated_native(samples: &[(f64, u64)]) -> CostParams {
        let mut p = CostParams::default();
        if let Some(s) = calibrate_native_speedup(samples) {
            p.native_speedup = s;
        }
        p
    }
}

/// Recalibrates the `simd_speedup` parameter from measured vector-tier
/// results: each sample is `(measured speedup, vector entry count)` for
/// one kernel, as reported by `Session::vector_report` /
/// `vector_entry_count` plus scalar-vs-vector timings. The estimate is
/// the *entry-weighted geometric mean* — geometric because speedups
/// compose multiplicatively (the flat default was itself a ratio), and
/// weighted by vector-loop entries so a kernel whose vector loops
/// actually dominate execution moves the estimate more than a micro
/// benchmark entered a handful of times. The result is clamped to
/// `[1, 16]` (below 1 the tier would have been disabled; above 16 no
/// 512-bit lane budget is plausible for f64). Returns `None` — keep the
/// prior — when no sample has both a positive speedup and nonzero
/// weight.
pub fn calibrate_simd_speedup(samples: &[(f64, u64)]) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut weight = 0.0;
    for &(speedup, entries) in samples {
        if speedup > 0.0 && entries > 0 {
            log_sum += entries as f64 * speedup.ln();
            weight += entries as f64;
        }
    }
    if weight == 0.0 {
        return None;
    }
    Some((log_sum / weight).exp().clamp(1.0, 16.0))
}

/// Recalibrates the `native_speedup` parameter from measured tier-3
/// results: each sample is `(measured scalar-over-native speedup, native
/// entry count)` for one kernel, as reported by
/// `Session::native_entry_count` plus scalar-vs-native timings. Same
/// estimator as [`calibrate_simd_speedup`] — the entry-weighted
/// geometric mean — so the two tiers' evidence is directly comparable.
/// The clamp is wider, `[1, 32]`: native code eliminates dispatch
/// overhead *and* vectorizes, so reduction microkernels legitimately
/// measure past any SIMD lane budget. Returns `None` — keep the
/// no-native-tier prior — when no sample has both a positive speedup
/// and nonzero weight.
pub fn calibrate_native_speedup(samples: &[(f64, u64)]) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut weight = 0.0;
    for &(speedup, entries) in samples {
        if speedup > 0.0 && entries > 0 {
            log_sum += entries as f64 * speedup.ln();
            weight += entries as f64;
        }
    }
    if weight == 0.0 {
        return None;
    }
    Some((log_sum / weight).exp().clamp(1.0, 32.0))
}

/// Which OpenMP loop schedule the advisor recommends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    Static,
    Dynamic,
    Guided,
}

impl SchedKind {
    /// Stable lower-case name for decision logs and `SCHEDULE(...)`
    /// clauses.
    pub fn name(self) -> &'static str {
        match self {
            SchedKind::Static => "static",
            SchedKind::Dynamic => "dynamic",
            SchedKind::Guided => "guided",
        }
    }
}

/// The advisor's schedule pick for one parallelized loop, with the
/// rationale behind it (recorded in the decision log).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleChoice {
    pub kind: SchedKind,
    /// Explicit chunk size for the `SCHEDULE` clause; `None` leaves the
    /// runtime default (block partition for static, 1 for dynamic/guided).
    pub chunk: Option<usize>,
    /// Why this schedule was chosen.
    pub why: String,
}

impl ScheduleChoice {
    /// Clause text without the keyword: `static`, `dynamic`, `guided,4`.
    pub fn render(&self) -> String {
        match self.chunk {
            Some(c) => format!("{},{}", self.kind.name(), c),
            None => self.kind.name().to_string(),
        }
    }
}

/// What the advisor recommends for one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Emit `!$OMP PARALLEL DO`.
    Threads,
    /// Leave serial; the compiler's SIMD/memset/unroll wins.
    Simd,
    /// Leave serial; too small for either to matter.
    Serial,
}

impl Decision {
    /// Stable lower-case name for decision logs.
    pub fn name(self) -> &'static str {
        match self {
            Decision::Threads => "threads",
            Decision::Simd => "simd",
            Decision::Serial => "serial",
        }
    }
}

/// The advisor.
#[derive(Debug, Clone, Default)]
pub struct CostAdvisor {
    pub params: CostParams,
}

impl CostAdvisor {
    pub fn new(params: CostParams) -> Self {
        CostAdvisor { params }
    }

    /// Estimated trip count of the full nest (product of per-range trips).
    pub fn trip_count(&self, nest: &LoopNest) -> u64 {
        nest.ranges
            .iter()
            .map(|r| match (&r.start, &r.end) {
                (Expr::IntLit(a), Expr::IntLit(b)) if b >= a => (b - a + 1) as u64,
                _ => self.default_trip(),
            })
            .product::<u64>()
            .max(1)
    }

    fn default_trip(&self) -> u64 {
        self.params.default_trip
    }

    /// Crude per-iteration cost: expression nodes across the body times
    /// `cycles_per_node`.
    pub fn body_cycles(&self, nest: &LoopNest) -> f64 {
        let mut nodes = 0usize;
        for s in &nest.body {
            s.walk_exprs(&mut |_| nodes += 1);
            s.walk(&mut |_| nodes += 1);
        }
        if let Some(c) = &nest.condition {
            nodes += c.node_count();
        }
        (nodes.max(1)) as f64 * self.params.cycles_per_node
    }

    /// Serial time with compiler optimizations applied.
    pub fn serial_cycles(&self, nest: &LoopNest, plan: &LoopPlan) -> f64 {
        let trip = self.trip_count(nest) as f64;
        let body = self.body_cycles(nest);
        let factor = match plan.class {
            LoopClass::ZeroInit => self.params.memset_speedup,
            // A vectorizable body runs on whichever serial tier wins:
            // compiler SIMD or (when the target has one) the native JIT.
            _ if plan.vectorizable => self.params.simd_speedup.max(self.params.native_speedup),
            _ => 1.0,
        };
        trip * body / factor
    }

    /// Threaded time: fork/join + ideally-divided body (no SIMD inside
    /// OpenMP regions in the paper's observations) + reduction combine.
    pub fn parallel_cycles(&self, nest: &LoopNest, plan: &LoopPlan) -> f64 {
        let trip = self.trip_count(nest) as f64;
        let body = self.body_cycles(nest);
        let t = self.params.threads.max(1) as f64;
        // With COLLAPSE the full nest trip divides across threads; without,
        // only the outer range does — collapse ≥ 1 always here.
        let chunk = (trip / t).ceil();
        self.params.fork_join_cycles
            + chunk * body
            + plan.reductions.len() as f64 * self.params.reduction_cycles_per_thread * t
    }

    /// Picks the OpenMP schedule for a parallelized loop, or `None` when
    /// the plan says the loop stays serial.
    ///
    /// The static prediction mirrors the imbalance sources the runtime
    /// can observe: per-iteration work is uniform for straight-line affine
    /// bodies (static block partition is optimal — no dispatch overhead),
    /// while conditional control flow, non-affine subscripts, or
    /// subscripts through indirectly-loaded scalars (connectivity lookups
    /// like FUN3D's `c2n`/`ioff_search` chain) make per-iteration cost
    /// data-dependent, where dynamic self-scheduling wins. Irregular
    /// loops with large trip counts get `GUIDED` so chunk dispatch
    /// amortizes. Measured profiles can later override this via
    /// `Engine::set_schedule_overrides` (feedback-directed rescheduling).
    pub fn choose_schedule(
        &self,
        func: &Function,
        nest: &LoopNest,
        plan: &LoopPlan,
    ) -> Option<ScheduleChoice> {
        if !plan.parallelizable {
            return None;
        }
        if let Some(why) = irregularity(func, nest) {
            let trip = self.trip_count(nest);
            if trip >= self.params.guided_trip_threshold {
                return Some(ScheduleChoice {
                    kind: SchedKind::Guided,
                    chunk: None,
                    why: format!(
                        "{why}; est. trip {trip} >= {} amortizes guided dispatch",
                        self.params.guided_trip_threshold
                    ),
                });
            }
            return Some(ScheduleChoice { kind: SchedKind::Dynamic, chunk: None, why });
        }
        Some(ScheduleChoice {
            kind: SchedKind::Static,
            chunk: None,
            why: "uniform affine iterations; static block partition has no dispatch overhead"
                .into(),
        })
    }

    /// Predicted saving (in cycles) from fusing a run of conformable
    /// loops, with the rationale. Two first-order effects: each
    /// eliminated loop saves its entry/exit overhead, and every grid
    /// touched by more than one member of the run stays hot across the
    /// fused body instead of being re-streamed per loop (one avoided
    /// reload per iteration per shared grid).
    pub fn fuse_gain(&self, nests: &[LoopNest]) -> (f64, String) {
        let k = nests.len();
        if k < 2 {
            return (0.0, "a single loop has nothing to fuse".into());
        }
        let trip = self.trip_count(&nests[0]) as f64;
        let entry_saved = (k - 1) as f64 * self.params.loop_entry_cycles;
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for nest in nests {
            let grids: std::collections::BTreeSet<String> =
                crate::access::collect_accesses(nest).into_iter().map(|a| a.grid).collect();
            for g in grids {
                *counts.entry(g).or_insert(0) += 1;
            }
        }
        let shared = counts.values().filter(|&&c| c >= 2).count();
        let reuse_saved = shared as f64 * trip * self.params.cycles_per_node;
        let gain = entry_saved + reuse_saved;
        let why = format!(
            "fusing {k} loops saves {entry_saved:.0} cycles of loop entry overhead and \
             keeps {shared} shared grid(s) hot across {trip:.0} iterations \
             (predicted gain {gain:.0} cycles)",
        );
        (gain, why)
    }

    /// The recommendation for this loop.
    pub fn decide(&self, nest: &LoopNest, plan: &LoopPlan) -> Decision {
        if !plan.parallelizable {
            return if plan.vectorizable { Decision::Simd } else { Decision::Serial };
        }
        let ser = self.serial_cycles(nest, plan);
        let par = self.parallel_cycles(nest, plan);
        if par < ser {
            Decision::Threads
        } else if plan.vectorizable || plan.class == LoopClass::ZeroInit {
            Decision::Simd
        } else {
            Decision::Serial
        }
    }
}

/// Why (if at all) the loop's per-iteration work is non-uniform. Returns
/// a human-readable reason for the first irregularity source found, in a
/// fixed priority order so the rationale is deterministic.
fn irregularity(func: &Function, nest: &LoopNest) -> Option<String> {
    if nest.condition.is_some() {
        return Some("loop-level condition skips iterations unevenly".into());
    }
    for s in &nest.body {
        let mut has_if = false;
        s.walk(&mut |s| {
            if matches!(s, Stmt::If { .. }) {
                has_if = true;
            }
        });
        if has_if {
            return Some("conditional control flow makes iteration cost data-dependent".into());
        }
    }
    // Non-affine subscripts: the dependence tester already gave up on
    // them, and they usually mean indirection (gather/scatter) with
    // data-dependent locality.
    for a in crate::access::collect_accesses(nest) {
        if a.subscripts.iter().any(|s| matches!(s, crate::affine::SubscriptForm::NonAffine)) {
            return Some(format!("non-affine subscript on grid `{}`", a.grid));
        }
    }
    // Subscripts through indirectly-loaded scalars: `n1 = c2n(...)` then
    // `qn(m, n1)` — the classic unstructured-mesh gather. The load value
    // (and so the touched cache lines) varies per call, which skews
    // per-iteration cost.
    let indirect = indirect_scalars(func);
    if !indirect.is_empty() {
        let mut found: Option<String> = None;
        let mut check_sub = |e: &Expr| {
            if found.is_none() {
                if let Some(name) = mentions_scalar(e, &indirect) {
                    found = Some(name);
                }
            }
        };
        for s in &nest.body {
            s.walk(&mut |s| {
                if let Stmt::Assign { target, .. } = s {
                    for ix in &target.indices {
                        check_sub(ix);
                    }
                }
            });
            s.walk_exprs(&mut |e| {
                if let Expr::GridRef { indices: ix, .. } = e {
                    for sub in ix {
                        check_sub(sub);
                    }
                }
            });
        }
        if let Some(name) = found {
            return Some(format!("subscript depends on indirectly-loaded scalar `{name}`"));
        }
    }
    None
}

/// Scalars of `func` assigned (anywhere in the function) from an indexed
/// grid read or a user-function call — values the compiler cannot predict
/// per iteration.
fn indirect_scalars(func: &Function) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    for step in &func.steps {
        let stmts: Vec<&Stmt> = match &step.body {
            StepBody::Straight(v) => v.iter().collect(),
            StepBody::Loop(nest) => nest.body.iter().collect(),
        };
        for s in stmts {
            s.walk(&mut |s| {
                if let Stmt::Assign { target, value } = s {
                    if target.indices.is_empty() && loads_indirectly(value) {
                        out.insert(target.grid.clone());
                    }
                }
            });
        }
    }
    out
}

/// True when evaluating `e` reads an indexed grid element or calls a user
/// function.
fn loads_indirectly(e: &Expr) -> bool {
    match e {
        Expr::GridRef { indices, .. } => !indices.is_empty(),
        Expr::WholeGrid(_) => true,
        Expr::Unary { operand, .. } => loads_indirectly(operand),
        Expr::Binary { lhs, rhs, .. } => loads_indirectly(lhs) || loads_indirectly(rhs),
        Expr::Call { callee, args } => {
            matches!(callee, Callee::User(_)) || args.iter().any(loads_indirectly)
        }
        _ => false,
    }
}

/// The first scalar from `names` read (as a scalar) inside `e`, if any.
fn mentions_scalar(e: &Expr, names: &std::collections::BTreeSet<String>) -> Option<String> {
    match e {
        Expr::GridRef { grid, indices, .. } => {
            if indices.is_empty() && names.contains(grid) {
                return Some(grid.clone());
            }
            indices.iter().find_map(|s| mentions_scalar(s, names))
        }
        Expr::Unary { operand, .. } => mentions_scalar(operand, names),
        Expr::Binary { lhs, rhs, .. } => {
            mentions_scalar(lhs, names).or_else(|| mentions_scalar(rhs, names))
        }
        Expr::Call { args, .. } => args.iter().find_map(|a| mentions_scalar(a, names)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::analyze_program;
    use glaf_grid::{DataType, Grid};
    use glaf_ir::{IndexRange, LValue, ProgramBuilder, StepBody};

    fn make(nest_end: i64, heavy: bool) -> (LoopNest, LoopPlan) {
        let a = Grid::build("a").typed(DataType::Real8).dim1(1_000_000).finish().unwrap();
        let b = Grid::build("b").typed(DataType::Real8).dim1(1_000_000).finish().unwrap();
        let mut fb = ProgramBuilder::new()
            .module("m")
            .subroutine("f")
            .param(a)
            .param(b)
            .loop_step("l")
            .foreach("i", Expr::int(1), Expr::int(nest_end));
        let mut rhs = Expr::at("b", vec![Expr::idx("i")]);
        if heavy {
            // A big body *with control flow*: the modeled compiler cannot
            // vectorize it, so threading is the only speedup available —
            // the exact situation where the paper's two longwave loops
            // keep their OMP directives.
            for _ in 0..40 {
                rhs = Expr::lib(glaf_ir::LibFunc::Exp, vec![rhs]) * Expr::real(1.0001)
                    + Expr::real(0.5);
            }
            fb = fb.stmt(glaf_ir::Stmt::If {
                cond: Expr::at("b", vec![Expr::idx("i")]).cmp(glaf_ir::BinOp::Gt, Expr::real(0.0)),
                then_body: vec![glaf_ir::Stmt::assign(
                    LValue::at("a", vec![Expr::idx("i")]),
                    rhs,
                )],
                else_body: vec![glaf_ir::Stmt::assign(
                    LValue::at("a", vec![Expr::idx("i")]),
                    Expr::real(0.0),
                )],
            });
        } else {
            fb = fb.formula(LValue::at("a", vec![Expr::idx("i")]), rhs);
        }
        let p = fb.done().done().done().finish();
        let plan = analyze_program(&p);
        let lp = plan.for_function("f").unwrap().loops[0].clone();
        let (_, f) = p.find_function("f").unwrap();
        let nest = match &f.steps[0].body {
            StepBody::Loop(n) => n.clone(),
            _ => unreachable!(),
        };
        (nest, lp)
    }

    #[test]
    fn tiny_loop_stays_serial_or_simd() {
        let (nest, plan) = make(8, false);
        let adv = CostAdvisor::default();
        assert_ne!(adv.decide(&nest, &plan), Decision::Threads);
    }

    #[test]
    fn huge_heavy_loop_gets_threads() {
        let (nest, plan) = make(1_000_000, true);
        let adv = CostAdvisor::default();
        assert_eq!(adv.decide(&nest, &plan), Decision::Threads);
    }

    #[test]
    fn vectorizable_medium_loop_prefers_simd() {
        // Medium trip count, trivially light body: SIMD serial beats
        // threads because fork/join dominates.
        let (nest, plan) = make(4_000, false);
        let adv = CostAdvisor::default();
        assert_eq!(adv.decide(&nest, &plan), Decision::Simd);
    }

    #[test]
    fn non_parallelizable_never_threads() {
        let (nest, mut plan) = make(1_000_000, true);
        plan.parallelizable = false;
        plan.vectorizable = false;
        let adv = CostAdvisor::default();
        assert_eq!(adv.decide(&nest, &plan), Decision::Serial);
    }

    #[test]
    fn uniform_loop_schedules_static() {
        let (_, plan) = make(4_000, false);
        let sc = plan.schedule.expect("parallelizable loop gets a schedule");
        assert_eq!(sc.kind, SchedKind::Static);
        assert_eq!(sc.render(), "static");
    }

    #[test]
    fn large_conditional_loop_schedules_guided() {
        let (_, plan) = make(1_000_000, true);
        let sc = plan.schedule.expect("parallelizable loop gets a schedule");
        assert_eq!(sc.kind, SchedKind::Guided, "why: {}", sc.why);
        assert!(sc.why.contains("conditional control flow"), "why: {}", sc.why);
    }

    #[test]
    fn small_conditional_loop_schedules_dynamic() {
        let (_, plan) = make(100, true);
        let sc = plan.schedule.expect("parallelizable loop gets a schedule");
        assert_eq!(sc.kind, SchedKind::Dynamic, "why: {}", sc.why);
    }

    #[test]
    fn non_parallelizable_loop_has_no_schedule() {
        let n = Grid::build("n").typed(DataType::Integer).finish().unwrap();
        let a = Grid::build("a").typed(DataType::Real8).dim1(100).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("scan")
            .param(n)
            .param(a)
            .loop_step("prefix")
            .foreach("i", Expr::int(2), Expr::scalar("n"))
            .formula(
                LValue::at("a", vec![Expr::idx("i")]),
                Expr::at("a", vec![Expr::idx("i") - Expr::int(1)])
                    + Expr::at("a", vec![Expr::idx("i")]),
            )
            .done()
            .done()
            .done()
            .finish();
        let plan = analyze_program(&p);
        assert_eq!(plan.for_function("scan").unwrap().loops[0].schedule, None);
    }

    #[test]
    fn indirect_scalar_subscript_schedules_dynamic() {
        // k is loaded through an indexed read before the loop, then used
        // inside a subscript — the FUN3D `n1 = c2n(...)`/`qn(m, n1)`
        // pattern in miniature.
        let map = Grid::build("map").typed(DataType::Integer).dim1(100).finish().unwrap();
        let a = Grid::build("a").typed(DataType::Real8).dim1(200).finish().unwrap();
        let b = Grid::build("b").typed(DataType::Real8).dim1(200).finish().unwrap();
        let k = Grid::build("k").typed(DataType::Integer).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("gather")
            .param(map)
            .param(a)
            .param(b)
            .local(k)
            .straight_step(
                "load offset",
                vec![glaf_ir::Stmt::assign(
                    LValue::scalar("k"),
                    Expr::at("map", vec![Expr::int(3)]),
                )],
            )
            .loop_step("shifted copy")
            .foreach("i", Expr::int(1), Expr::int(100))
            .formula(
                LValue::at("a", vec![Expr::idx("i")]),
                Expr::at("b", vec![Expr::scalar("k") + Expr::idx("i")]),
            )
            .done()
            .done()
            .done()
            .finish();
        let plan = analyze_program(&p);
        let sc = plan.for_function("gather").unwrap().loops[0]
            .schedule
            .clone()
            .expect("parallelizable loop gets a schedule");
        assert_eq!(sc.kind, SchedKind::Dynamic, "why: {}", sc.why);
        assert!(sc.why.contains("indirectly-loaded scalar `k`"), "why: {}", sc.why);
    }

    #[test]
    fn calibration_is_weighted_geometric_mean_clamped() {
        // Equal weights -> plain geometric mean.
        let g = calibrate_simd_speedup(&[(2.0, 10), (8.0, 10)]).unwrap();
        assert!((g - 4.0).abs() < 1e-12, "{g}");
        // Weight dominance: the heavy sample pulls the mean toward itself.
        let g = calibrate_simd_speedup(&[(2.0, 1_000_000), (8.0, 1)]).unwrap();
        assert!(g < 2.01, "{g}");
        // Zero-weight and non-positive samples are ignored.
        assert_eq!(
            calibrate_simd_speedup(&[(2.0, 0), (0.0, 5), (-3.0, 5)]),
            None
        );
        assert_eq!(calibrate_simd_speedup(&[]), None);
        // Clamp band.
        assert_eq!(calibrate_simd_speedup(&[(100.0, 1)]).unwrap(), 16.0);
        assert_eq!(calibrate_simd_speedup(&[(0.25, 1)]).unwrap(), 1.0);
        // CostParams plumbing: calibrated value lands in simd_speedup,
        // everything else stays default.
        let p = CostParams::calibrated_simd(&[(2.0, 1)]);
        assert_eq!(p.simd_speedup, 2.0);
        assert_eq!(p.threads, CostParams::default().threads);
        assert_eq!(CostParams::calibrated_simd(&[]).simd_speedup, 4.0);
    }

    #[test]
    fn native_calibration_mirrors_simd_with_wider_clamp() {
        // Same estimator: equal weights -> plain geometric mean.
        let g = calibrate_native_speedup(&[(2.0, 10), (8.0, 10)]).unwrap();
        assert!((g - 4.0).abs() < 1e-12, "{g}");
        // The clamp admits the deep-reduction regime SIMD cannot reach...
        assert_eq!(calibrate_native_speedup(&[(100.0, 1)]).unwrap(), 32.0);
        assert!(calibrate_simd_speedup(&[(20.0, 1)]).unwrap() < calibrate_native_speedup(&[(20.0, 1)]).unwrap());
        // ...but still floors at parity with the scalar tier.
        assert_eq!(calibrate_native_speedup(&[(0.25, 1)]).unwrap(), 1.0);
        assert_eq!(calibrate_native_speedup(&[]), None);
        // CostParams plumbing: calibrated value lands in native_speedup,
        // everything else (incl. simd_speedup) stays default; no evidence
        // keeps the no-native-tier prior of 1.0.
        let p = CostParams::calibrated_native(&[(6.0, 1)]);
        assert_eq!(p.native_speedup, 6.0);
        assert_eq!(p.simd_speedup, CostParams::default().simd_speedup);
        assert_eq!(CostParams::calibrated_native(&[]).native_speedup, 1.0);
    }

    #[test]
    fn native_speedup_prices_the_better_serial_tier() {
        // A wide vectorizable map: parallelizable, so `decide` compares
        // serial (tiered) vs threaded cost. In the measured-SIMD regime
        // (PR 7 calibrated ~1.7x, far below the 4.0 prior) threading
        // wins; a measured native tier fast enough flips the verdict
        // back to the serial path.
        let a = Grid::build("a").typed(DataType::Real8).dim1(4096).finish().unwrap();
        let b = Grid::build("b").typed(DataType::Real8).dim1(4096).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("saxpyish")
            .param(a)
            .param(b)
            .loop_step("map")
            .foreach("i", Expr::int(1), Expr::int(4096))
            .formula(
                LValue::at("a", vec![Expr::idx("i")]),
                Expr::at("a", vec![Expr::idx("i")]) + Expr::at("b", vec![Expr::idx("i")]),
            )
            .done()
            .done()
            .done()
            .finish();
        let plan = analyze_program(&p);
        let lplan = plan.for_function("saxpyish").unwrap().loops[0].clone();
        assert!(lplan.vectorizable && lplan.parallelizable);
        let (_, f) = p.find_function("saxpyish").unwrap();
        let nest = match &f.steps[0].body {
            StepBody::Loop(n) => n.clone(),
            _ => unreachable!(),
        };

        let mut measured = CostParams { simd_speedup: 1.7, ..Default::default() };
        assert_eq!(CostAdvisor::new(measured.clone()).decide(&nest, &lplan), Decision::Threads);
        measured.native_speedup = 12.0;
        assert_eq!(CostAdvisor::new(measured).decide(&nest, &lplan), Decision::Simd);
    }

    #[test]
    fn trip_count_products_and_defaults() {
        let adv = CostAdvisor::default();
        let nest = LoopNest {
            ranges: vec![
                IndexRange::new("i", Expr::int(1), Expr::int(2)),
                IndexRange::new("j", Expr::int(1), Expr::int(60)),
            ],
            condition: None,
            body: vec![],
        };
        assert_eq!(adv.trip_count(&nest), 120);
        let sym = LoopNest {
            ranges: vec![IndexRange::new("i", Expr::int(1), Expr::scalar("n"))],
            condition: None,
            body: vec![],
        };
        assert_eq!(adv.trip_count(&sym), adv.params.default_trip);
    }
}
