//! Scalar privatization analysis.
//!
//! A scalar written *unconditionally before any read* in the loop body
//! carries no value between iterations: each thread can keep its own copy.
//! These are exactly the variables the paper's FUN3D case study needed
//! "declared as OpenMP private" — 219 of them in the manually parallelized
//! version (§4.2.2), identified for the scientists by GLAF.

use std::collections::{BTreeMap, BTreeSet};

use crate::access::{Access, AccessKind};

/// Returns the names of scalar grids in `accesses` that are privatizable:
/// their first access (in statement order) is an unconditional write, and
/// they are scalars (no subscripts).
///
/// `exclude` removes names that are already handled another way (reduction
/// accumulators, the loop indices themselves).
pub fn find_private_scalars(accesses: &[Access], exclude: &BTreeSet<String>) -> Vec<String> {
    // First access per scalar grid, by order.
    let mut first: BTreeMap<&str, &Access> = BTreeMap::new();
    let mut ever_nonscalar: BTreeSet<&str> = BTreeSet::new();
    for a in accesses {
        if !a.subscripts.is_empty() {
            ever_nonscalar.insert(a.grid.as_str());
            continue;
        }
        match first.get(a.grid.as_str()) {
            Some(prev) if prev.order <= a.order => {}
            _ => {
                first.insert(a.grid.as_str(), a);
            }
        }
    }
    let mut out: Vec<String> = first
        .into_iter()
        .filter(|(name, acc)| {
            !exclude.contains(*name)
                && !ever_nonscalar.contains(name)
                && acc.kind == AccessKind::Write
                && !acc.conditional
        })
        .map(|(name, _)| name.to_string())
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::collect_accesses;
    use glaf_ir::{Expr, IndexRange, LValue, LoopNest, Stmt};

    fn nest(body: Vec<Stmt>) -> LoopNest {
        LoopNest {
            ranges: vec![IndexRange::new("i", Expr::int(1), Expr::scalar("n"))],
            condition: None,
            body,
        }
    }

    #[test]
    fn write_before_read_is_private() {
        // t = b(i); a(i) = t * 2  → t private.
        let l = nest(vec![
            Stmt::assign(LValue::scalar("t"), Expr::at("b", vec![Expr::idx("i")])),
            Stmt::assign(
                LValue::at("a", vec![Expr::idx("i")]),
                Expr::scalar("t") * Expr::real(2.0),
            ),
        ]);
        let acc = collect_accesses(&l);
        let p = find_private_scalars(&acc, &BTreeSet::new());
        assert_eq!(p, vec!["t".to_string()]);
    }

    #[test]
    fn read_before_write_not_private() {
        // a(i) = t; t = b(i)  → t carries a value in.
        let l = nest(vec![
            Stmt::assign(LValue::at("a", vec![Expr::idx("i")]), Expr::scalar("t")),
            Stmt::assign(LValue::scalar("t"), Expr::at("b", vec![Expr::idx("i")])),
        ]);
        let acc = collect_accesses(&l);
        let p = find_private_scalars(&acc, &BTreeSet::new());
        assert!(p.is_empty());
    }

    #[test]
    fn conditional_write_not_private() {
        let l = nest(vec![Stmt::If {
            cond: Expr::idx("i").cmp(glaf_ir::BinOp::Gt, Expr::int(2)),
            then_body: vec![Stmt::assign(LValue::scalar("t"), Expr::real(1.0))],
            else_body: vec![],
        }]);
        let acc = collect_accesses(&l);
        let p = find_private_scalars(&acc, &BTreeSet::new());
        assert!(p.is_empty());
    }

    #[test]
    fn excluded_names_skipped() {
        let l = nest(vec![Stmt::assign(LValue::scalar("t"), Expr::real(1.0))]);
        let acc = collect_accesses(&l);
        let mut ex = BTreeSet::new();
        ex.insert("t".to_string());
        assert!(find_private_scalars(&acc, &ex).is_empty());
    }

    #[test]
    fn arrays_never_private_here() {
        let l = nest(vec![Stmt::assign(
            LValue::at("a", vec![Expr::idx("i")]),
            Expr::real(0.0),
        )]);
        let acc = collect_accesses(&l);
        assert!(find_private_scalars(&acc, &BTreeSet::new()).is_empty());
    }
}
