//! # glaf-autopar — GLAF's auto-parallelization back-end
//!
//! "Auto-parallelization includes algorithms that parse the internal
//! representation of the algorithm, identify dependencies, and guide code
//! generation of parallel code" (paper §2.1). This crate is that back-end:
//!
//! 1. [`affine`] — canonicalizes subscript expressions into affine forms
//!    over the loop indices (`c0 + Σ ci·index_i`), the representation every
//!    classical dependence test needs.
//! 2. [`access`] — walks a loop nest collecting every grid read and write
//!    together with its affine subscripts.
//! 3. [`depend`] — pairwise dependence testing: ZIV, strong SIV and the GCD
//!    test, with a conservative fallback. Produces per-loop-index verdicts
//!    (loop-carried or not).
//! 4. [`reduction`] — recognizes scalar and array reduction patterns
//!    (`s = s + e`, `a(k) = a(k) + e`) so they can be parallelized with
//!    OpenMP `REDUCTION` clauses or `ATOMIC` updates.
//! 5. [`privatize`] — finds scalars that are written before read in every
//!    iteration and can therefore carry the OpenMP `PRIVATE` clause (the
//!    paper reports 219 such variables in the FUN3D kernel).
//! 6. [`classify`] — the loop taxonomy behind the paper's Table 2
//!    (initialization-to-zero, single-value-load initialization, simple
//!    single loops, simple double loops, complex) plus a vectorizability
//!    verdict used by the machine model.
//! 7. [`plan`] — ties it together into a [`plan::LoopPlan`] per loop step
//!    and a [`plan::ProgramPlan`] for the whole program.
//! 8. [`costmodel`] — the "performance prediction/modeling back-end" the
//!    paper proposes as future work (§4.1.2): predicts whether threading a
//!    loop beats leaving it to compiler SIMD, and guides directive
//!    placement automatically.
//! 9. [`transform`] — the optimization back-end's loop-interchange and
//!    loop-fusion options (§2.1) with dependence-based legality checks
//!    and a cost-driven fusion driver.

pub mod access;
pub mod affine;
pub mod classify;
pub mod costmodel;
pub mod decision;
pub mod depend;
pub mod plan;
pub mod privatize;
pub mod reduction;
pub mod transform;

pub use access::{collect_accesses, Access, AccessKind};
pub use affine::{Affine, SubscriptForm};
pub use classify::{classify_loop, LoopClass};
pub use costmodel::{
    calibrate_native_speedup, calibrate_simd_speedup, CostAdvisor, CostParams, Decision, SchedKind,
    ScheduleChoice,
};
pub use decision::{
    analyze_function_with_log, analyze_function_with_log_using, analyze_program_with_log,
    analyze_program_with_log_using, DecisionLog, DepRecord, LoopDecision,
};
pub use depend::{test_dependence, test_dependence_explained, DepEvidence, DepResult, DepTest};
pub use plan::{analyze_function, analyze_program, FunctionPlan, LoopPlan, ProgramPlan, RedOp};
pub use privatize::find_private_scalars;
pub use reduction::{find_reductions, Reduction};
pub use transform::{
    fuse, fuse_legal, fuse_program, interchange, interchange_legal, FusionError, FusionReport,
    InterchangeError,
};
