//! Access collection: every grid read/write in a loop body, with
//! canonicalized subscripts.

use glaf_ir::{Callee, Expr, LoopNest, Stmt};

use crate::affine::{to_affine, SubscriptForm};

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
}

/// One access to a grid inside a loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    pub grid: String,
    pub field: Option<String>,
    pub kind: AccessKind,
    /// Canonicalized subscripts (empty for scalars).
    pub subscripts: Vec<SubscriptForm>,
    /// Position in a statement-order walk of the body; lets the
    /// privatization pass reason about write-before-read.
    pub order: usize,
    /// True when the access sits under an `If` (including the step-level
    /// condition) — writes under conditions can't be proven
    /// every-iteration, which blocks privatization.
    pub conditional: bool,
    /// True when the access occurs inside a called user function's argument
    /// list (we treat call arguments as reads; the callee's own effects are
    /// handled by the interprocedural summary in `plan`).
    pub in_call: bool,
}

/// Collects all accesses in the loop nest `nest`. `indices` are the nest's
/// loop variables (outer→inner).
pub fn collect_accesses(nest: &LoopNest) -> Vec<Access> {
    let indices: Vec<String> = nest.ranges.iter().map(|r| r.var.clone()).collect();
    let mut out = Vec::new();
    let mut order = 0usize;
    let base_cond = nest.condition.is_some();
    if let Some(c) = &nest.condition {
        collect_expr(c, &indices, &mut out, &mut order, false, false);
    }
    for s in &nest.body {
        collect_stmt(s, &indices, &mut out, &mut order, base_cond);
    }
    out
}

fn collect_stmt(
    stmt: &Stmt,
    indices: &[String],
    out: &mut Vec<Access>,
    order: &mut usize,
    conditional: bool,
) {
    match stmt {
        Stmt::Assign { target, value } => {
            // Subscript expressions of the target are reads.
            for ix in &target.indices {
                collect_expr(ix, indices, out, order, conditional, false);
            }
            collect_expr(value, indices, out, order, conditional, false);
            out.push(Access {
                grid: target.grid.clone(),
                field: target.field.clone(),
                kind: AccessKind::Write,
                subscripts: target.indices.iter().map(|e| to_affine(e, indices)).collect(),
                order: *order,
                conditional,
                in_call: false,
            });
            *order += 1;
        }
        Stmt::If { cond, then_body, else_body } => {
            collect_expr(cond, indices, out, order, conditional, false);
            for s in then_body.iter().chain(else_body.iter()) {
                collect_stmt(s, indices, out, order, true);
            }
        }
        Stmt::CallSub { args, .. } => {
            for a in args {
                collect_expr(a, indices, out, order, conditional, true);
            }
            *order += 1;
        }
        Stmt::Return(Some(e)) => {
            collect_expr(e, indices, out, order, conditional, false);
            *order += 1;
        }
        _ => {}
    }
}

fn collect_expr(
    expr: &Expr,
    indices: &[String],
    out: &mut Vec<Access>,
    order: &mut usize,
    conditional: bool,
    in_call: bool,
) {
    match expr {
        Expr::GridRef { grid, indices: ix, field } => {
            for sub in ix {
                collect_expr(sub, indices, out, order, conditional, in_call);
            }
            out.push(Access {
                grid: grid.clone(),
                field: field.clone(),
                kind: AccessKind::Read,
                subscripts: ix.iter().map(|e| to_affine(e, indices)).collect(),
                order: *order,
                conditional,
                in_call,
            });
            *order += 1;
        }
        Expr::WholeGrid(g) => {
            out.push(Access {
                grid: g.clone(),
                field: None,
                kind: AccessKind::Read,
                subscripts: vec![SubscriptForm::NonAffine],
                order: *order,
                conditional,
                in_call,
            });
            *order += 1;
        }
        Expr::Unary { operand, .. } => {
            collect_expr(operand, indices, out, order, conditional, in_call)
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_expr(lhs, indices, out, order, conditional, in_call);
            collect_expr(rhs, indices, out, order, conditional, in_call);
        }
        Expr::Call { callee, args } => {
            let nested_call = in_call || matches!(callee, Callee::User(_));
            for a in args {
                collect_expr(a, indices, out, order, conditional, nested_call);
            }
            *order += 1;
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaf_ir::{Expr, IndexRange, LValue, LoopNest, Stmt};

    fn simple_nest() -> LoopNest {
        // foreach i: a(i) = b(i) + s
        LoopNest {
            ranges: vec![IndexRange::new("i", Expr::int(1), Expr::scalar("n"))],
            condition: None,
            body: vec![Stmt::assign(
                LValue::at("a", vec![Expr::idx("i")]),
                Expr::at("b", vec![Expr::idx("i")]) + Expr::scalar("s"),
            )],
        }
    }

    #[test]
    fn reads_and_writes_collected() {
        let acc = collect_accesses(&simple_nest());
        let writes: Vec<_> = acc.iter().filter(|a| a.kind == AccessKind::Write).collect();
        let reads: Vec<_> = acc.iter().filter(|a| a.kind == AccessKind::Read).collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].grid, "a");
        // b(i), s and the subscript index of a(i) is not a grid read — so 2.
        assert_eq!(reads.len(), 2);
        assert!(reads.iter().any(|r| r.grid == "b"));
        assert!(reads.iter().any(|r| r.grid == "s"));
    }

    #[test]
    fn write_order_after_rhs_reads() {
        let acc = collect_accesses(&simple_nest());
        let w = acc.iter().find(|a| a.kind == AccessKind::Write).unwrap();
        let r = acc.iter().find(|a| a.grid == "b").unwrap();
        assert!(r.order < w.order, "RHS reads must precede the write in order");
    }

    #[test]
    fn conditional_marking() {
        let nest = LoopNest {
            ranges: vec![IndexRange::new("i", Expr::int(1), Expr::int(8))],
            condition: None,
            body: vec![Stmt::If {
                cond: Expr::idx("i").cmp(glaf_ir::BinOp::Gt, Expr::int(3)),
                then_body: vec![Stmt::assign(LValue::scalar("t"), Expr::real(1.0))],
                else_body: vec![],
            }],
        };
        let acc = collect_accesses(&nest);
        let w = acc.iter().find(|a| a.grid == "t").unwrap();
        assert!(w.conditional);
    }

    #[test]
    fn step_condition_marks_everything() {
        let mut nest = simple_nest();
        nest.condition = Some(Expr::idx("i").cmp(glaf_ir::BinOp::Lt, Expr::int(4)));
        let acc = collect_accesses(&nest);
        let w = acc.iter().find(|a| a.kind == AccessKind::Write).unwrap();
        assert!(w.conditional);
    }

    #[test]
    fn call_arguments_are_reads_in_call() {
        let nest = LoopNest {
            ranges: vec![IndexRange::new("i", Expr::int(1), Expr::int(8))],
            condition: None,
            body: vec![Stmt::CallSub {
                name: "edge_loop".into(),
                args: vec![Expr::at("c", vec![Expr::idx("i")])],
            }],
        };
        let acc = collect_accesses(&nest);
        let r = acc.iter().find(|a| a.grid == "c").unwrap();
        assert!(r.in_call);
        assert_eq!(r.kind, AccessKind::Read);
    }

    #[test]
    fn whole_grid_read_is_nonaffine() {
        let nest = LoopNest {
            ranges: vec![IndexRange::new("i", Expr::int(1), Expr::int(8))],
            condition: None,
            body: vec![Stmt::assign(
                LValue::scalar("t"),
                Expr::lib(glaf_ir::LibFunc::Sum, vec![Expr::WholeGrid("v".into())]),
            )],
        };
        let acc = collect_accesses(&nest);
        let r = acc.iter().find(|a| a.grid == "v").unwrap();
        assert_eq!(r.subscripts, vec![SubscriptForm::NonAffine]);
    }
}
