//! Classical data-dependence tests over affine subscript pairs.
//!
//! For a candidate parallel loop index `v`, two accesses to the same grid
//! conflict across iterations when their subscript systems admit a solution
//! with `v ≠ v'`. Each subscript dimension contributes a *constraint on the
//! iteration distance* `d = v − v'`:
//!
//! * **ZIV / other-index dimensions** (`v` absent on both sides): if the
//!   equation is unsatisfiable (constant mismatch, no free variables) the
//!   pair can never alias — `Impossible`; otherwise the dimension says
//!   nothing about `d` — `Any`.
//! * **Strong SIV** (`a·v + c1` vs `a·v + c2`, no other indices): the
//!   distance is pinned to `d = (c2 − c1)/a` — `Exactly(d)`, or
//!   `Impossible` when non-integral.
//! * **Weak SIV / MIV**: the **GCD test** — `gcd(a1, a2) ∤ (c2 − c1)` means
//!   `Impossible`; otherwise `Unknown`.
//! * Symbolic constant parts compare only when syntactically identical;
//!   otherwise `Unknown`.
//!
//! The dimensions' constraints intersect: any `Impossible` kills the
//! dependence; contradicting `Exactly` values kill it; `Exactly(0)` proves
//! the accesses only meet within one iteration (safe to parallelize);
//! anything else is (conservatively) loop-carried.

use crate::access::{Access, AccessKind};
use crate::affine::{comparable, Affine, SubscriptForm};

/// Verdict for a pair of accesses w.r.t. one loop index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DepResult {
    /// No two iterations (equal or distinct) touch the same element — or
    /// only provably-distinct elements are touched.
    Independent,
    /// Same element only within one iteration (distance 0): safe to run
    /// iterations in parallel.
    LoopIndependent,
    /// Different iterations touch the same element — forbids naive
    /// parallelization of this index.
    LoopCarried,
    /// Analysis could not decide — treated as carried.
    Unknown,
}

impl DepResult {
    /// True when the verdict permits parallel execution of the loop.
    pub fn allows_parallel(self) -> bool {
        matches!(self, DepResult::Independent | DepResult::LoopIndependent)
    }

    /// Stable lower-case name for decision logs.
    pub fn name(self) -> &'static str {
        match self {
            DepResult::Independent => "independent",
            DepResult::LoopIndependent => "loop-independent",
            DepResult::LoopCarried => "loop-carried",
            DepResult::Unknown => "unknown",
        }
    }
}

/// Which classical test produced a dependence verdict (for decision
/// logs; the verdict itself is the [`DepResult`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DepTest {
    /// Short-circuit before subscript analysis: read/read pair, distinct
    /// derived-type fields, scalar access, or rank mismatch.
    Trivial,
    /// A zero-index-variable dimension decided (constant comparison).
    Ziv,
    /// The strong-SIV distance equation decided.
    StrongSiv,
    /// GCD divisibility over unequal strides decided.
    Gcd,
    /// Symbolic or non-affine subscripts left the verdict undecided.
    Symbolic,
}

impl DepTest {
    /// Stable lower-case name for decision logs.
    pub fn name(self) -> &'static str {
        match self {
            DepTest::Trivial => "trivial",
            DepTest::Ziv => "ziv",
            DepTest::StrongSiv => "strong-siv",
            DepTest::Gcd => "gcd",
            DepTest::Symbolic => "symbolic",
        }
    }
}

/// A dependence verdict together with the test that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEvidence {
    pub result: DepResult,
    pub test: DepTest,
}

/// Constraint one subscript dimension places on the iteration distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Constraint {
    /// The dimension can never be satisfied: no dependence at all.
    Impossible,
    /// The distance is exactly this value.
    Exactly(i64),
    /// Satisfiable at every distance.
    Any,
    /// Could not analyze.
    Unknown,
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// True when any index other than `v` appears with a nonzero coefficient
/// in either form.
fn has_other_indices(a: &Affine, b: &Affine, v: &str) -> bool {
    a.coeffs.keys().chain(b.coeffs.keys()).any(|k| k != v)
}

/// Constraint contributed by one subscript dimension for index `v`,
/// together with the test that produced it. Unprimed (`a`, iteration v)
/// and primed (`b`, iteration v') instances of all *other* indices are
/// independent free variables.
fn test_dimension(a: &Affine, b: &Affine, v: &str) -> (Constraint, DepTest) {
    if !comparable(a, b) {
        return (Constraint::Unknown, DepTest::Symbolic);
    }
    let ca = a.coeff(v);
    let cb = b.coeff(v);
    let others = has_other_indices(a, b, v);
    let dc = b.konst - a.konst; // equation: ca·v − cb·v' = dc (+ other terms)

    match (ca, cb) {
        (0, 0) => {
            if others {
                // Free variables absorb anything.
                (Constraint::Any, DepTest::Ziv)
            } else if dc == 0 {
                (Constraint::Any, DepTest::Ziv)
            } else {
                (Constraint::Impossible, DepTest::Ziv)
            }
        }
        (x, y) if x == y => {
            if others {
                return (Constraint::Unknown, DepTest::Symbolic);
            }
            // x·(v − v') = dc.
            if dc % x != 0 {
                (Constraint::Impossible, DepTest::StrongSiv)
            } else {
                (Constraint::Exactly(dc / x), DepTest::StrongSiv)
            }
        }
        (x, y) => {
            if others {
                return (Constraint::Unknown, DepTest::Symbolic);
            }
            let g = gcd(x, y);
            if g != 0 && dc % g != 0 {
                (Constraint::Impossible, DepTest::Gcd)
            } else {
                (Constraint::Unknown, DepTest::Gcd)
            }
        }
    }
}

/// Tests a pair of accesses to the same grid for dependence w.r.t. loop
/// index `v`. Read/read pairs are trivially independent.
pub fn test_dependence(a: &Access, b: &Access, v: &str) -> DepResult {
    test_dependence_explained(a, b, v).result
}

/// Like [`test_dependence`], but also reports which classical test
/// produced the verdict — the raw material for autopar decision logs.
pub fn test_dependence_explained(a: &Access, b: &Access, v: &str) -> DepEvidence {
    if a.kind == AccessKind::Read && b.kind == AccessKind::Read {
        return DepEvidence { result: DepResult::Independent, test: DepTest::Trivial };
    }
    debug_assert_eq!(a.grid, b.grid);
    if a.field != b.field {
        // Different struct fields never alias.
        return DepEvidence { result: DepResult::Independent, test: DepTest::Trivial };
    }
    if a.subscripts.len() != b.subscripts.len() {
        return DepEvidence { result: DepResult::Unknown, test: DepTest::Trivial };
    }
    if a.subscripts.is_empty() {
        // Scalar: every iteration touches the same cell.
        return DepEvidence { result: DepResult::LoopCarried, test: DepTest::Trivial };
    }

    let mut exact: Option<i64> = None;
    let mut unknown_from: Option<DepTest> = None;
    for (sa, sb) in a.subscripts.iter().zip(b.subscripts.iter()) {
        let (c, test) = match (sa, sb) {
            (SubscriptForm::Affine(fa), SubscriptForm::Affine(fb)) => test_dimension(fa, fb, v),
            _ => (Constraint::Unknown, DepTest::Symbolic),
        };
        match c {
            // A single impossible dimension is decisive; credit its test.
            Constraint::Impossible => return DepEvidence { result: DepResult::Independent, test },
            Constraint::Exactly(d) => match exact {
                Some(prev) if prev != d => {
                    // Contradicting pinned distances: strong-SIV decided.
                    return DepEvidence {
                        result: DepResult::Independent,
                        test: DepTest::StrongSiv,
                    };
                }
                _ => exact = Some(d),
            },
            Constraint::Any => {}
            Constraint::Unknown => unknown_from = unknown_from.or(Some(test)),
        }
    }

    match exact {
        Some(0) => DepEvidence { result: DepResult::LoopIndependent, test: DepTest::StrongSiv },
        Some(_) => DepEvidence { result: DepResult::LoopCarried, test: DepTest::StrongSiv },
        None => match unknown_from {
            Some(test) => DepEvidence { result: DepResult::Unknown, test },
            // All dimensions satisfiable at any distance: the ZIV /
            // other-index analysis is what proved the overlap.
            None => DepEvidence { result: DepResult::LoopCarried, test: DepTest::Ziv },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::to_affine;
    use glaf_ir::Expr;
    use proptest::prelude::*;

    fn acc(grid: &str, kind: AccessKind, subs: Vec<Expr>) -> Access {
        let ix = vec!["i".to_string(), "j".to_string()];
        Access {
            grid: grid.into(),
            field: None,
            kind,
            subscripts: subs.iter().map(|e| to_affine(e, &ix)).collect(),
            order: 0,
            conditional: false,
            in_call: false,
        }
    }

    #[test]
    fn same_subscript_is_loop_independent() {
        let w = acc("a", AccessKind::Write, vec![Expr::idx("i")]);
        let r = acc("a", AccessKind::Read, vec![Expr::idx("i")]);
        assert_eq!(test_dependence(&w, &r, "i"), DepResult::LoopIndependent);
    }

    #[test]
    fn shifted_access_is_carried() {
        // a(i) = a(i-1): classic recurrence.
        let w = acc("a", AccessKind::Write, vec![Expr::idx("i")]);
        let r = acc("a", AccessKind::Read, vec![Expr::idx("i") - Expr::int(1)]);
        assert_eq!(test_dependence(&w, &r, "i"), DepResult::LoopCarried);
    }

    #[test]
    fn two_dim_identity_subscripts_parallel_on_both() {
        // a(i,j) write vs a(i,j) read: LoopIndependent for both i and j.
        let w = acc("a", AccessKind::Write, vec![Expr::idx("i"), Expr::idx("j")]);
        let r = acc("a", AccessKind::Read, vec![Expr::idx("i"), Expr::idx("j")]);
        assert_eq!(test_dependence(&w, &r, "i"), DepResult::LoopIndependent);
        assert_eq!(test_dependence(&w, &r, "j"), DepResult::LoopIndependent);
    }

    #[test]
    fn contradicting_distances_independent() {
        // a(i, i) vs a(i, i+1): dim1 forces d=0, dim2 forces d=-1.
        let w = acc("a", AccessKind::Write, vec![Expr::idx("i"), Expr::idx("i")]);
        let r = acc(
            "a",
            AccessKind::Read,
            vec![Expr::idx("i"), Expr::idx("i") + Expr::int(1)],
        );
        assert_eq!(test_dependence(&w, &r, "i"), DepResult::Independent);
    }

    #[test]
    fn ziv_unequal_constants_independent() {
        let w = acc("a", AccessKind::Write, vec![Expr::int(1)]);
        let r = acc("a", AccessKind::Read, vec![Expr::int(2)]);
        assert_eq!(test_dependence(&w, &r, "i"), DepResult::Independent);
    }

    #[test]
    fn ziv_equal_constants_carried() {
        let w = acc("a", AccessKind::Write, vec![Expr::int(1)]);
        let r = acc("a", AccessKind::Read, vec![Expr::int(1)]);
        assert_eq!(test_dependence(&w, &r, "i"), DepResult::LoopCarried);
    }

    #[test]
    fn stride_two_misses_odd_offset() {
        // a(2i) vs a(2i+1): distance (1)/2 non-integral → independent.
        let w = acc("a", AccessKind::Write, vec![Expr::int(2) * Expr::idx("i")]);
        let r = acc(
            "a",
            AccessKind::Read,
            vec![Expr::int(2) * Expr::idx("i") + Expr::int(1)],
        );
        assert_eq!(test_dependence(&w, &r, "i"), DepResult::Independent);
    }

    #[test]
    fn gcd_rules_out_mixed_strides() {
        // a(2i) vs a(4i+1): gcd(2,4)=2 ∤ 1 → independent.
        let w = acc("a", AccessKind::Write, vec![Expr::int(2) * Expr::idx("i")]);
        let r = acc(
            "a",
            AccessKind::Read,
            vec![Expr::int(4) * Expr::idx("i") + Expr::int(1)],
        );
        assert_eq!(test_dependence(&w, &r, "i"), DepResult::Independent);
        // gcd(2,4)=2 | 2 → unknown (conservative).
        let r2 = acc(
            "a",
            AccessKind::Read,
            vec![Expr::int(4) * Expr::idx("i") + Expr::int(2)],
        );
        assert_eq!(test_dependence(&w, &r2, "i"), DepResult::Unknown);
    }

    #[test]
    fn scalar_write_is_carried() {
        let w = acc("s", AccessKind::Write, vec![]);
        let r = acc("s", AccessKind::Read, vec![]);
        assert_eq!(test_dependence(&w, &r, "i"), DepResult::LoopCarried);
    }

    #[test]
    fn different_fields_never_alias() {
        let mut w = acc("atoms", AccessKind::Write, vec![Expr::idx("i")]);
        let mut r = acc("atoms", AccessKind::Read, vec![Expr::idx("i")]);
        w.field = Some("x".into());
        r.field = Some("q".into());
        assert_eq!(test_dependence(&w, &r, "i"), DepResult::Independent);
    }

    #[test]
    fn nonaffine_is_unknown() {
        let w = acc("a", AccessKind::Write, vec![Expr::at("idx", vec![Expr::idx("i")])]);
        let r = acc("a", AccessKind::Read, vec![Expr::idx("i")]);
        assert_eq!(test_dependence(&w, &r, "i"), DepResult::Unknown);
    }

    #[test]
    fn symbolic_offsets_compare_when_identical() {
        let w = acc("a", AccessKind::Write, vec![Expr::scalar("off") + Expr::idx("i")]);
        let r = acc("a", AccessKind::Read, vec![Expr::scalar("off") + Expr::idx("i")]);
        assert_eq!(test_dependence(&w, &r, "i"), DepResult::LoopIndependent);
        let r2 = acc("a", AccessKind::Read, vec![Expr::scalar("off2") + Expr::idx("i")]);
        assert_eq!(test_dependence(&w, &r2, "i"), DepResult::Unknown);
    }

    #[test]
    fn other_index_only_dimension_is_any() {
        // Parallelizing i over a(j) writes: every i-iteration sweeps the
        // same j-range → carried on i.
        let w = acc("a", AccessKind::Write, vec![Expr::idx("j")]);
        let r = acc("a", AccessKind::Read, vec![Expr::idx("j")]);
        assert_eq!(test_dependence(&w, &r, "i"), DepResult::LoopCarried);
        // ... but parallelizing j is fine.
        assert_eq!(test_dependence(&w, &r, "j"), DepResult::LoopIndependent);
    }

    #[test]
    fn read_read_pairs_trivially_independent() {
        let r1 = acc("a", AccessKind::Read, vec![Expr::idx("i")]);
        let r2 = acc("a", AccessKind::Read, vec![Expr::idx("i") - Expr::int(1)]);
        assert_eq!(test_dependence(&r1, &r2, "i"), DepResult::Independent);
    }

    #[test]
    fn any_independent_dimension_wins() {
        // a(i, 1) vs a(i, 2): second dim is Impossible.
        let w = acc("a", AccessKind::Write, vec![Expr::idx("i"), Expr::int(1)]);
        let r = acc("a", AccessKind::Read, vec![Expr::idx("i"), Expr::int(2)]);
        assert_eq!(test_dependence(&w, &r, "i"), DepResult::Independent);
    }

    #[test]
    fn explained_attributes_the_deciding_test() {
        // Read/read: trivial short-circuit.
        let r1 = acc("a", AccessKind::Read, vec![Expr::idx("i")]);
        let r2 = acc("a", AccessKind::Read, vec![Expr::idx("i")]);
        assert_eq!(
            test_dependence_explained(&r1, &r2, "i"),
            DepEvidence { result: DepResult::Independent, test: DepTest::Trivial }
        );
        // Constant subscripts: ZIV decides both ways.
        let w = acc("a", AccessKind::Write, vec![Expr::int(1)]);
        let r = acc("a", AccessKind::Read, vec![Expr::int(2)]);
        assert_eq!(test_dependence_explained(&w, &r, "i").test, DepTest::Ziv);
        // Identity subscripts: strong SIV pins the distance.
        let w = acc("a", AccessKind::Write, vec![Expr::idx("i")]);
        let r = acc("a", AccessKind::Read, vec![Expr::idx("i") - Expr::int(1)]);
        assert_eq!(
            test_dependence_explained(&w, &r, "i"),
            DepEvidence { result: DepResult::LoopCarried, test: DepTest::StrongSiv }
        );
        // Mixed strides: GCD decides.
        let w = acc("a", AccessKind::Write, vec![Expr::int(2) * Expr::idx("i")]);
        let r = acc("a", AccessKind::Read, vec![Expr::int(4) * Expr::idx("i") + Expr::int(1)]);
        assert_eq!(test_dependence_explained(&w, &r, "i").test, DepTest::Gcd);
        // Non-affine subscript: symbolic.
        let w = acc("a", AccessKind::Write, vec![Expr::at("idx", vec![Expr::idx("i")])]);
        let r = acc("a", AccessKind::Read, vec![Expr::idx("i")]);
        assert_eq!(
            test_dependence_explained(&w, &r, "i"),
            DepEvidence { result: DepResult::Unknown, test: DepTest::Symbolic }
        );
    }

    proptest! {
        /// The strong-SIV verdict agrees with brute-force enumeration of a
        /// small iteration space: `a·i + c1 == a·i' + c2`.
        #[test]
        fn siv_matches_bruteforce(a in 1i64..5, c1 in -6i64..6, c2 in -6i64..6) {
            let w = acc("g", AccessKind::Write,
                vec![Expr::int(a) * Expr::idx("i") + Expr::int(c1)]);
            let r = acc("g", AccessKind::Read,
                vec![Expr::int(a) * Expr::idx("i") + Expr::int(c2)]);
            let verdict = test_dependence(&w, &r, "i");

            let mut cross_iteration = false;
            let mut same_iteration = false;
            for i in -20i64..20 {
                for ip in -20i64..20 {
                    if a * i + c1 == a * ip + c2 {
                        if i == ip { same_iteration = true } else { cross_iteration = true }
                    }
                }
            }
            match verdict {
                DepResult::Independent => prop_assert!(!cross_iteration && !same_iteration),
                DepResult::LoopIndependent => prop_assert!(!cross_iteration && same_iteration),
                DepResult::LoopCarried => prop_assert!(cross_iteration),
                DepResult::Unknown => {}
            }
        }

        /// The GCD path never reports Independent when a brute-force
        /// solution with i != i' exists (soundness), and never reports a
        /// parallel-safe verdict when a cross-iteration alias exists.
        #[test]
        fn gcd_is_sound(a1 in 1i64..6, a2 in 1i64..6, c in -10i64..10) {
            let w = acc("g", AccessKind::Write,
                vec![Expr::int(a1) * Expr::idx("i")]);
            let r = acc("g", AccessKind::Read,
                vec![Expr::int(a2) * Expr::idx("i") + Expr::int(c)]);
            let verdict = test_dependence(&w, &r, "i");
            let mut cross = false;
            for i in -40i64..40 {
                for ip in -40i64..40 {
                    if i != ip && a1 * i == a2 * ip + c {
                        cross = true;
                    }
                }
            }
            if cross {
                prop_assert!(!verdict.allows_parallel());
            }
        }

        /// Two-dimensional identity subscripts with arbitrary constant
        /// shifts: the combined verdict matches brute force over both
        /// loops.
        #[test]
        fn two_dim_shifts_match_bruteforce(s1 in -3i64..3, s2 in -3i64..3) {
            let w = acc("g", AccessKind::Write,
                vec![Expr::idx("i"), Expr::idx("j")]);
            let r = acc("g", AccessKind::Read,
                vec![Expr::idx("i") + Expr::int(s1), Expr::idx("j") + Expr::int(s2)]);
            let verdict = test_dependence(&w, &r, "i");
            // Write at (i, j) iteration (i, j); read covers element
            // (i+s1, j+s2) at iteration (i, j). Cross-i alias exists iff
            // s1 != 0 (pick j' = j + s2 freely).
            if s1 == 0 {
                prop_assert!(verdict.allows_parallel());
            } else {
                prop_assert!(!verdict.allows_parallel());
            }
        }
    }
}
