//! Loop taxonomy: the classes behind the paper's Table 2 policies and the
//! machine model's compiler-optimization verdicts.
//!
//! §4.1.2 removes OpenMP directives incrementally from:
//!   v1 — "initialization of arrays (grids) to zero value" and
//!        "initialization of arrays with a single value loaded from
//!        another array";
//!   v2 — "all remaining single loops ... one-line assignments ... few
//!        lines of similar assignments, as well as loops that contain
//!        reductions";
//!   v3 — "double-nested loops that contain one or a few statements
//!        without including any control structure".
//!
//! The same structural features decide what the (modeled) compiler can do
//! with a serial loop: zero-initializations become `memset`, simple affine
//! loops vectorize, tiny trip counts unroll.

use glaf_ir::{Expr, LoopNest, Stmt};

/// Structural class of a loop nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopClass {
    /// Single loop setting array elements to a constant zero.
    ZeroInit,
    /// Single loop copying a single (loop-invariant or streaming) value
    /// into an array.
    SingleValueInit,
    /// Single loop of one-to-few straight assignments (incl. reductions),
    /// no control flow, no calls.
    SimpleSingle,
    /// Double-nested loop of one-to-few straight assignments, no control
    /// flow, no calls.
    SimpleDouble,
    /// Everything else: control flow, calls, deep nests, big bodies.
    Complex,
}

impl LoopClass {
    /// Human-readable tag used in reports.
    pub fn name(self) -> &'static str {
        match self {
            LoopClass::ZeroInit => "zero-init",
            LoopClass::SingleValueInit => "single-value-init",
            LoopClass::SimpleSingle => "simple-single",
            LoopClass::SimpleDouble => "simple-double",
            LoopClass::Complex => "complex",
        }
    }
}

/// "Few" straight-line assignments, per the paper's description ("few
/// lines (two to four) of similar assignments").
const FEW_STATEMENTS: usize = 4;

fn is_zero_literal(e: &Expr) -> bool {
    matches!(e, Expr::IntLit(0)) || matches!(e, Expr::RealLit(v) if *v == 0.0)
}

fn body_is_straight_assigns(body: &[Stmt]) -> bool {
    body.iter().all(|s| matches!(s, Stmt::Assign { .. }))
}

/// Classifies a loop nest.
pub fn classify_loop(nest: &LoopNest) -> LoopClass {
    let has_control = nest.condition.is_some() || nest.body.iter().any(Stmt::has_control);
    let has_call = nest.body.iter().any(Stmt::has_call);
    let straight = body_is_straight_assigns(&nest.body);
    let small = nest.body.len() <= FEW_STATEMENTS;

    if has_control || has_call || !straight || !small {
        return LoopClass::Complex;
    }

    match nest.depth() {
        1 => {
            if nest.body.len() == 1 {
                if let Stmt::Assign { target, value } = &nest.body[0] {
                    if !target.indices.is_empty() && is_zero_literal(value) {
                        return LoopClass::ZeroInit;
                    }
                    if !target.indices.is_empty() && is_single_value_load(value) {
                        return LoopClass::SingleValueInit;
                    }
                }
            }
            LoopClass::SimpleSingle
        }
        2 => LoopClass::SimpleDouble,
        _ => LoopClass::Complex,
    }
}

/// A "single value loaded from another array": the RHS is one grid read or
/// literal, with no arithmetic.
fn is_single_value_load(e: &Expr) -> bool {
    matches!(e, Expr::GridRef { .. } | Expr::IntLit(_) | Expr::RealLit(_))
}

/// Vectorizability verdict for the compiler model: an innermost loop with
/// straight-line affine assignments, no calls and no control flow. This is
/// intentionally the envelope of what `gfortran -O3`'s auto-vectorizer
/// accepts for the kernel shapes in the paper.
pub fn is_vectorizable(nest: &LoopNest) -> bool {
    if nest.condition.is_some() {
        return false;
    }
    if nest.body.iter().any(|s| s.has_control() || s.has_call()) {
        return false;
    }
    body_is_straight_assigns(&nest.body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaf_ir::{Expr, IndexRange, LValue, LoopNest, Stmt};

    fn loop1(body: Vec<Stmt>) -> LoopNest {
        LoopNest {
            ranges: vec![IndexRange::new("i", Expr::int(1), Expr::scalar("n"))],
            condition: None,
            body,
        }
    }

    fn loop2(body: Vec<Stmt>) -> LoopNest {
        LoopNest {
            ranges: vec![
                IndexRange::new("i", Expr::int(1), Expr::int(2)),
                IndexRange::new("j", Expr::int(1), Expr::int(60)),
            ],
            condition: None,
            body,
        }
    }

    #[test]
    fn zero_init_detected() {
        let l = loop1(vec![Stmt::assign(
            LValue::at("a", vec![Expr::idx("i")]),
            Expr::real(0.0),
        )]);
        assert_eq!(classify_loop(&l), LoopClass::ZeroInit);
    }

    #[test]
    fn integer_zero_also_counts() {
        let l = loop1(vec![Stmt::assign(
            LValue::at("cnt", vec![Expr::idx("i")]),
            Expr::int(0),
        )]);
        assert_eq!(classify_loop(&l), LoopClass::ZeroInit);
    }

    #[test]
    fn single_value_load_detected() {
        let l = loop1(vec![Stmt::assign(
            LValue::at("a", vec![Expr::idx("i")]),
            Expr::at("b", vec![Expr::idx("i")]),
        )]);
        assert_eq!(classify_loop(&l), LoopClass::SingleValueInit);
    }

    #[test]
    fn arithmetic_single_loop_is_simple_single() {
        let l = loop1(vec![Stmt::assign(
            LValue::at("a", vec![Expr::idx("i")]),
            Expr::at("b", vec![Expr::idx("i")]) * Expr::real(2.0) + Expr::real(1.0),
        )]);
        assert_eq!(classify_loop(&l), LoopClass::SimpleSingle);
    }

    #[test]
    fn reduction_loop_is_simple_single() {
        let l = loop1(vec![Stmt::assign(
            LValue::scalar("acc"),
            Expr::scalar("acc") + Expr::at("b", vec![Expr::idx("i")]),
        )]);
        assert_eq!(classify_loop(&l), LoopClass::SimpleSingle);
    }

    #[test]
    fn double_nest_simple() {
        let l = loop2(vec![Stmt::assign(
            LValue::at("a", vec![Expr::idx("i"), Expr::idx("j")]),
            Expr::at("b", vec![Expr::idx("i"), Expr::idx("j")]) + Expr::real(1.0),
        )]);
        assert_eq!(classify_loop(&l), LoopClass::SimpleDouble);
    }

    #[test]
    fn control_flow_makes_complex() {
        let l = loop2(vec![Stmt::If {
            cond: Expr::idx("i").cmp(glaf_ir::BinOp::Gt, Expr::int(1)),
            then_body: vec![Stmt::assign(LValue::scalar("x"), Expr::real(1.0))],
            else_body: vec![],
        }]);
        assert_eq!(classify_loop(&l), LoopClass::Complex);
        assert!(!is_vectorizable(&l));
    }

    #[test]
    fn calls_make_complex() {
        let l = loop1(vec![Stmt::CallSub { name: "edge_loop".into(), args: vec![] }]);
        assert_eq!(classify_loop(&l), LoopClass::Complex);
    }

    #[test]
    fn big_body_makes_complex() {
        let body: Vec<Stmt> = (0..6)
            .map(|k| {
                Stmt::assign(
                    LValue::at("a", vec![Expr::idx("i")]),
                    Expr::real(k as f64),
                )
            })
            .collect();
        assert_eq!(classify_loop(&loop1(body)), LoopClass::Complex);
    }

    #[test]
    fn vectorizable_envelope() {
        let l = loop1(vec![Stmt::assign(
            LValue::at("a", vec![Expr::idx("i")]),
            Expr::at("b", vec![Expr::idx("i")]) * Expr::real(2.0),
        )]);
        assert!(is_vectorizable(&l));
        let guarded = LoopNest { condition: Some(Expr::BoolLit(true)), ..l };
        assert!(!is_vectorizable(&guarded));
    }
}
