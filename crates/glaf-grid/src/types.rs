//! Scalar data types representable in a grid cell.
//!
//! GLAF's internal representation tags each grid dimension with data types
//! (`dataTypes[RowDim] = {T_INT}` in Fig. 1 of the paper). The type
//! vocabulary mirrors what the FORTRAN and C back-ends can declare.


/// A scalar data type as understood by all GLAF back-ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// FORTRAN `INTEGER` / C `int` (we model it as 64-bit throughout).
    Integer,
    /// FORTRAN `REAL` / C `float`. The execution substrate evaluates all
    /// reals in f64; the distinction only affects declarations and memory
    /// cost accounting.
    Real,
    /// FORTRAN `REAL(8)` (a.k.a. `DOUBLE PRECISION`) / C `double`.
    Real8,
    /// FORTRAN `LOGICAL` / C `_Bool`.
    Logical,
    /// FORTRAN `CHARACTER(LEN=n)` / C `char[n]`. Only used for captions and
    /// diagnostics in the evaluated kernels.
    Character,
    /// "No value": selecting `Void` as a subprogram return type makes the
    /// FORTRAN back-end emit a `SUBROUTINE` instead of a `FUNCTION`
    /// (paper §3.4, Fig. 4).
    Void,
}

impl DataType {
    /// Width in bytes of one element, as used by the memory-cost model and
    /// by C `sizeof` emission.
    pub fn size_bytes(self) -> usize {
        match self {
            DataType::Integer => 8,
            DataType::Real => 4,
            DataType::Real8 => 8,
            DataType::Logical => 1,
            DataType::Character => 1,
            DataType::Void => 0,
        }
    }

    /// True for the two floating-point types.
    pub fn is_real(self) -> bool {
        matches!(self, DataType::Real | DataType::Real8)
    }

    /// True for types that can participate in arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Integer | DataType::Real | DataType::Real8)
    }

    /// The FORTRAN declaration keyword for this type.
    pub fn fortran_name(self) -> &'static str {
        match self {
            DataType::Integer => "INTEGER",
            DataType::Real => "REAL",
            DataType::Real8 => "REAL(8)",
            DataType::Logical => "LOGICAL",
            DataType::Character => "CHARACTER(LEN=*)",
            DataType::Void => "",
        }
    }

    /// The C declaration keyword for this type.
    pub fn c_name(self) -> &'static str {
        match self {
            DataType::Integer => "long",
            DataType::Real => "float",
            DataType::Real8 => "double",
            DataType::Logical => "_Bool",
            DataType::Character => "char",
            DataType::Void => "void",
        }
    }

    /// Result type of a binary arithmetic operation between two operands,
    /// following FORTRAN's promotion rules (integer < real < real8).
    pub fn promote(a: DataType, b: DataType) -> DataType {
        use DataType::*;
        match (a, b) {
            (Real8, _) | (_, Real8) => Real8,
            (Real, _) | (_, Real) => Real,
            _ => Integer,
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DataType::Integer => "integer",
            DataType::Real => "real",
            DataType::Real8 => "real8",
            DataType::Logical => "logical",
            DataType::Character => "character",
            DataType::Void => "void",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DataType::Integer.size_bytes(), 8);
        assert_eq!(DataType::Real.size_bytes(), 4);
        assert_eq!(DataType::Real8.size_bytes(), 8);
        assert_eq!(DataType::Void.size_bytes(), 0);
    }

    #[test]
    fn promotion_follows_fortran_rules() {
        use DataType::*;
        assert_eq!(DataType::promote(Integer, Integer), Integer);
        assert_eq!(DataType::promote(Integer, Real), Real);
        assert_eq!(DataType::promote(Real, Real8), Real8);
        assert_eq!(DataType::promote(Real8, Integer), Real8);
    }

    #[test]
    fn language_names() {
        assert_eq!(DataType::Real8.fortran_name(), "REAL(8)");
        assert_eq!(DataType::Real8.c_name(), "double");
        assert_eq!(DataType::Void.c_name(), "void");
    }

    #[test]
    fn predicates() {
        assert!(DataType::Real.is_real());
        assert!(!DataType::Integer.is_real());
        assert!(DataType::Integer.is_numeric());
        assert!(!DataType::Logical.is_numeric());
    }
}
