//! Element addressing: array order and AoS/SoA layout.
//!
//! GLAF's code-optimization back-end exposes a data-layout choice
//! (array-of-structures vs. structure-of-arrays, paper §2.1). Both the code
//! generators and the property-based tests use the single source of truth in
//! this module, so an index formula emitted into FORTRAN or C is provably
//! the same bijection the tests check.


/// Memory order of a multi-dimensional grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayOrder {
    /// First index fastest — native FORTRAN order.
    ColumnMajor,
    /// Last index fastest — native C order.
    RowMajor,
}

/// Layout of a struct-element grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[derive(Default)]
pub enum Layout {
    /// `a(i)%f` elements of one record adjacent (array of structures).
    #[default]
    AoS,
    /// `f_a(i)` one array per field (structure of arrays).
    SoA,
}


/// Computes the 0-based linear offset of `indices` (already shifted to be
/// 0-based) inside extents `dims`, in the given order.
///
/// Panics in debug builds if arities differ or any index is out of range;
/// callers are expected to have validated against the owning grid.
pub fn linear_index(indices: &[usize], dims: &[usize], order: ArrayOrder) -> usize {
    debug_assert_eq!(indices.len(), dims.len());
    match order {
        ArrayOrder::ColumnMajor => {
            let mut off = 0usize;
            let mut stride = 1usize;
            for (&i, &d) in indices.iter().zip(dims.iter()) {
                debug_assert!(i < d, "index {i} out of extent {d}");
                off += i * stride;
                stride *= d;
            }
            off
        }
        ArrayOrder::RowMajor => {
            let mut off = 0usize;
            let mut stride = 1usize;
            for (&i, &d) in indices.iter().zip(dims.iter()).rev() {
                debug_assert!(i < d, "index {i} out of extent {d}");
                off += i * stride;
                stride *= d;
            }
            off
        }
    }
}

/// Inverse of [`linear_index`]: reconstructs the index vector from a linear
/// offset. Used by the tests to prove bijectivity and by the interpreter's
/// whole-array operations.
pub fn delinearize(mut off: usize, dims: &[usize], order: ArrayOrder) -> Vec<usize> {
    let mut out = vec![0usize; dims.len()];
    match order {
        ArrayOrder::ColumnMajor => {
            for (slot, &d) in out.iter_mut().zip(dims.iter()) {
                *slot = off % d;
                off /= d;
            }
        }
        ArrayOrder::RowMajor => {
            for (slot, &d) in out.iter_mut().zip(dims.iter()).rev() {
                *slot = off % d;
                off /= d;
            }
        }
    }
    out
}

/// Linear offset of field `f` (of `nfields`) for record `rec` (of `nrecs`)
/// under the chosen struct layout.
pub fn struct_offset(rec: usize, f: usize, nrecs: usize, nfields: usize, layout: Layout) -> usize {
    debug_assert!(rec < nrecs && f < nfields);
    match layout {
        Layout::AoS => rec * nfields + f,
        Layout::SoA => f * nrecs + rec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn column_major_matches_fortran() {
        // a(i,j) with extents (4,3): offset = (i-1) + (j-1)*4 for 1-based.
        let dims = [4, 3];
        assert_eq!(linear_index(&[0, 0], &dims, ArrayOrder::ColumnMajor), 0);
        assert_eq!(linear_index(&[1, 0], &dims, ArrayOrder::ColumnMajor), 1);
        assert_eq!(linear_index(&[0, 1], &dims, ArrayOrder::ColumnMajor), 4);
        assert_eq!(linear_index(&[3, 2], &dims, ArrayOrder::ColumnMajor), 11);
    }

    #[test]
    fn row_major_matches_c() {
        let dims = [4, 3];
        assert_eq!(linear_index(&[0, 0], &dims, ArrayOrder::RowMajor), 0);
        assert_eq!(linear_index(&[0, 1], &dims, ArrayOrder::RowMajor), 1);
        assert_eq!(linear_index(&[1, 0], &dims, ArrayOrder::RowMajor), 3);
        assert_eq!(linear_index(&[3, 2], &dims, ArrayOrder::RowMajor), 11);
    }

    #[test]
    fn struct_layouts_disagree_exactly_when_expected() {
        // 3 records x 2 fields.
        assert_eq!(struct_offset(1, 1, 3, 2, Layout::AoS), 3);
        assert_eq!(struct_offset(1, 1, 3, 2, Layout::SoA), 4);
        // record 0 field 0 agree.
        assert_eq!(struct_offset(0, 0, 3, 2, Layout::AoS), 0);
        assert_eq!(struct_offset(0, 0, 3, 2, Layout::SoA), 0);
    }

    fn dims_strategy() -> impl Strategy<Value = Vec<usize>> {
        prop::collection::vec(1usize..6, 1..4)
    }

    proptest! {
        /// linear_index . delinearize == id for every offset, both orders.
        #[test]
        fn linearize_bijective(dims in dims_strategy()) {
            let n: usize = dims.iter().product();
            for order in [ArrayOrder::ColumnMajor, ArrayOrder::RowMajor] {
                let mut seen = vec![false; n];
                for off in 0..n {
                    let idx = delinearize(off, &dims, order);
                    let back = linear_index(&idx, &dims, order);
                    prop_assert_eq!(back, off);
                    prop_assert!(!seen[back]);
                    seen[back] = true;
                }
            }
        }

        /// AoS and SoA are both bijections over the rec x field rectangle.
        #[test]
        fn struct_layout_bijective(nrecs in 1usize..8, nfields in 1usize..6) {
            for layout in [Layout::AoS, Layout::SoA] {
                let mut seen = vec![false; nrecs * nfields];
                for r in 0..nrecs {
                    for f in 0..nfields {
                        let off = struct_offset(r, f, nrecs, nfields, layout);
                        prop_assert!(off < nrecs * nfields);
                        prop_assert!(!seen[off]);
                        seen[off] = true;
                    }
                }
            }
        }
    }
}
