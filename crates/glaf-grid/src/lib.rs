//! # glaf-grid — the GLAF grid abstraction
//!
//! In GLAF every program datum — scalar, multi-dimensional array, or C-like
//! struct — is represented by a single uniform abstraction: the **grid**
//! (paper §2.1, Fig. 1). A grid records its dimensionality, per-dimension
//! extents and lower bounds, element typing, a caption (the variable name)
//! and a free-text comment that the code generators turn into a source
//! comment.
//!
//! This crate also carries the *legacy-integration attributes* that the ICPP
//! 2018 paper adds on top of the original framework (paper §3):
//!
//! * a grid may live in an **existing FORTRAN module** (§3.1) — code
//!   generation must emit `USE <module>` instead of a declaration;
//! * a grid may belong to a **COMMON block** (§3.2) — declarations are
//!   grouped per block and a `COMMON /name/ v1, v2, ...` line is emitted;
//! * a grid may be a **module-scope variable** of the generated module
//!   (§3.3) — declared and initialized once in the module's global scope;
//! * a grid may be an **element of an existing TYPE variable** (§3.5) — all
//!   uses are prefixed with `var%` in FORTRAN (`var.` in C).
//!
//! Finally, [`layout`] implements the optimization back-end's
//! array-of-structures / structure-of-arrays choice (§2.1) as plain index
//! arithmetic, so both code generation and the property tests share one
//! definition of element addressing.

pub mod grid;
pub mod layout;
pub mod scope;
pub mod types;

pub use grid::{Dim, ElemType, Field, Grid, GridBuilder};
pub use layout::{linear_index, ArrayOrder, Layout};
pub use scope::{GridOrigin, InitData, IntegrationAttr};
pub use types::DataType;

/// Crate-level error type for grid construction and addressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// A dimension was declared with a zero or negative extent.
    EmptyDimension { grid: String, dim: usize },
    /// An index vector had the wrong arity for the grid.
    WrongArity { grid: String, expected: usize, got: usize },
    /// An index was outside the declared bounds of its dimension.
    OutOfBounds { grid: String, dim: usize, index: i64, lo: i64, hi: i64 },
    /// A struct field was referenced that the grid does not define.
    NoSuchField { grid: String, field: String },
    /// Grid names must be valid FORTRAN/C identifiers.
    BadName(String),
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::EmptyDimension { grid, dim } => {
                write!(f, "grid `{grid}`: dimension {dim} has empty extent")
            }
            GridError::WrongArity { grid, expected, got } => {
                write!(f, "grid `{grid}`: expected {expected} indices, got {got}")
            }
            GridError::OutOfBounds { grid, dim, index, lo, hi } => write!(
                f,
                "grid `{grid}`: index {index} out of bounds {lo}..={hi} in dimension {dim}"
            ),
            GridError::NoSuchField { grid, field } => {
                write!(f, "grid `{grid}`: no struct field named `{field}`")
            }
            GridError::BadName(name) => write!(f, "`{name}` is not a valid identifier"),
        }
    }
}

impl std::error::Error for GridError {}

/// Returns true when `name` is a valid identifier in both FORTRAN and C:
/// a letter followed by letters, digits or underscores.
pub fn is_valid_identifier(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_validation() {
        assert!(is_valid_identifier("img_src"));
        assert!(is_valid_identifier("a1"));
        assert!(!is_valid_identifier("1a"));
        assert!(!is_valid_identifier(""));
        assert!(!is_valid_identifier("foo-bar"));
        assert!(!is_valid_identifier("_x"));
    }

    #[test]
    fn error_display() {
        let e = GridError::OutOfBounds {
            grid: "g".into(),
            dim: 1,
            index: 9,
            lo: 0,
            hi: 3,
        };
        assert!(e.to_string().contains("out of bounds"));
    }
}
