//! The grid itself: GLAF's uniform internal representation of program data.


use crate::layout::Layout;
use crate::scope::{GridOrigin, InitData};
use crate::types::DataType;
use crate::{is_valid_identifier, GridError};

/// One dimension of a grid: an inclusive index range `lo..=hi` plus an
/// optional dimension title shown by the GPI ("row", "col", ... in Fig. 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Dim {
    /// Lowest valid index (FORTRAN defaults to 1, GLAF's GPI shows 0-based
    /// `end0`, `end1` markers; both are representable).
    pub lo: i64,
    /// Highest valid index, inclusive.
    pub hi: i64,
    /// Dimension caption for GPI-style display.
    pub title: Option<String>,
}

impl Dim {
    /// A dimension spanning `lo..=hi`.
    pub fn new(lo: i64, hi: i64) -> Self {
        Dim { lo, hi, title: None }
    }

    /// Number of elements along this dimension.
    pub fn extent(&self) -> usize {
        (self.hi - self.lo + 1).max(0) as usize
    }
}

/// Element typing: a plain scalar type, or a record of named fields (how
/// GLAF models C-like structs through the grid abstraction, §2.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ElemType {
    /// All cells share one scalar type.
    Uniform(DataType),
    /// Each cell is a record; the optimization back-end may lay these out
    /// AoS or SoA.
    Struct(Vec<Field>),
}

/// A named, typed field of a struct-element grid.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    pub name: String,
    pub ty: DataType,
}

/// The grid: GLAF's single abstraction for scalars, arrays and structs
/// (paper Fig. 1). A scalar is simply a zero-dimensional grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// Caption — the variable name in generated code.
    pub name: String,
    /// Free-text comment; emitted as a source comment above declarations
    /// (`// Image before filtering` in Fig. 1).
    pub comment: Option<String>,
    /// Dimensions; empty for scalars.
    pub dims: Vec<Dim>,
    /// Cell typing.
    pub elem: ElemType,
    /// Where the grid lives (local / parameter / module scope / existing
    /// legacy datum).
    pub origin: GridOrigin,
    /// Struct layout chosen by the optimization back-end. Ignored for
    /// uniform grids.
    pub layout: Layout,
    /// Manually entered initial data, if any (Fig. 3 checkbox).
    pub init: Option<InitData>,
    /// Marked ALLOCATABLE: generated FORTRAN declares the array deferred
    /// and allocates it on entry (used heavily by the FUN3D kernels, §4.2).
    pub allocatable: bool,
    /// Carries the FORTRAN `SAVE` attribute (the §4.2.1 no-reallocation
    /// adaptation).
    pub save: bool,
}

impl Grid {
    /// Starts a builder for a grid named `name`.
    pub fn build(name: impl Into<String>) -> GridBuilder {
        GridBuilder::new(name)
    }

    /// True for zero-dimensional grids.
    pub fn is_scalar(&self) -> bool {
        self.dims.is_empty()
    }

    /// Number of array dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of cells (product of extents; 1 for scalars).
    pub fn cell_count(&self) -> usize {
        self.dims.iter().map(Dim::extent).product()
    }

    /// The scalar type of a uniform grid, or of field `field` for a struct
    /// grid.
    pub fn scalar_type(&self) -> Option<DataType> {
        match &self.elem {
            ElemType::Uniform(t) => Some(*t),
            ElemType::Struct(_) => None,
        }
    }

    /// Looks up a struct field by name.
    pub fn field(&self, field: &str) -> Result<&Field, GridError> {
        match &self.elem {
            ElemType::Struct(fs) => fs.iter().find(|f| f.name == field).ok_or_else(|| {
                GridError::NoSuchField { grid: self.name.clone(), field: field.to_string() }
            }),
            ElemType::Uniform(_) => Err(GridError::NoSuchField {
                grid: self.name.clone(),
                field: field.to_string(),
            }),
        }
    }

    /// Validates an index vector against the declared bounds, returning the
    /// 0-based per-dimension offsets.
    pub fn check_indices(&self, indices: &[i64]) -> Result<Vec<usize>, GridError> {
        if indices.len() != self.dims.len() {
            return Err(GridError::WrongArity {
                grid: self.name.clone(),
                expected: self.dims.len(),
                got: indices.len(),
            });
        }
        indices
            .iter()
            .zip(self.dims.iter())
            .enumerate()
            .map(|(d, (&ix, dim))| {
                if ix < dim.lo || ix > dim.hi {
                    Err(GridError::OutOfBounds {
                        grid: self.name.clone(),
                        dim: d,
                        index: ix,
                        lo: dim.lo,
                        hi: dim.hi,
                    })
                } else {
                    Ok((ix - dim.lo) as usize)
                }
            })
            .collect()
    }

    /// Bytes occupied by the whole grid (for malloc emission and the memory
    /// cost model).
    pub fn size_bytes(&self) -> usize {
        let per_cell = match &self.elem {
            ElemType::Uniform(t) => t.size_bytes(),
            ElemType::Struct(fs) => fs.iter().map(|f| f.ty.size_bytes()).sum(),
        };
        per_cell * self.cell_count()
    }

    /// Checks that any explicit init data matches the cell count.
    pub fn validate_init(&self) -> Result<(), GridError> {
        if let Some(InitData::Explicit(v)) = &self.init {
            if v.len() != self.cell_count() {
                return Err(GridError::WrongArity {
                    grid: self.name.clone(),
                    expected: self.cell_count(),
                    got: v.len(),
                });
            }
        }
        Ok(())
    }
}

/// Fluent constructor mirroring the GPI's grid-configuration dialogs
/// (Figs. 3 and 4 of the paper): pick a type, add dimensions, tick the
/// integration checkboxes.
#[derive(Debug, Clone)]
pub struct GridBuilder {
    grid: Grid,
}

impl GridBuilder {
    fn new(name: impl Into<String>) -> Self {
        GridBuilder {
            grid: Grid {
                name: name.into(),
                comment: None,
                dims: Vec::new(),
                elem: ElemType::Uniform(DataType::Real8),
                origin: GridOrigin::Local,
                layout: Layout::AoS,
                init: None,
                allocatable: false,
                save: false,
            },
        }
    }

    /// Sets the scalar element type.
    pub fn typed(mut self, ty: DataType) -> Self {
        self.grid.elem = ElemType::Uniform(ty);
        self
    }

    /// Makes the grid a struct with the given fields.
    pub fn struct_of(mut self, fields: Vec<Field>) -> Self {
        self.grid.elem = ElemType::Struct(fields);
        self
    }

    /// Appends a dimension `lo..=hi`.
    pub fn dim(mut self, lo: i64, hi: i64) -> Self {
        self.grid.dims.push(Dim::new(lo, hi));
        self
    }

    /// Appends a FORTRAN-style dimension `1..=n`.
    pub fn dim1(self, n: i64) -> Self {
        self.dim(1, n)
    }

    /// Attaches the GPI comment.
    pub fn comment(mut self, c: impl Into<String>) -> Self {
        self.grid.comment = Some(c.into());
        self
    }

    /// Marks the grid as the k-th formal parameter.
    pub fn parameter(mut self, k: usize) -> Self {
        self.grid.origin = GridOrigin::Parameter(k);
        self
    }

    /// Marks the grid as a module-scope variable of the generated module
    /// (§3.3).
    pub fn module_scope(mut self) -> Self {
        self.grid.origin = GridOrigin::ModuleScope;
        self
    }

    /// "Global variable exists in existing module" (Fig. 3, §3.1).
    pub fn in_existing_module(mut self, module: impl Into<String>) -> Self {
        self.grid.origin = GridOrigin::Existing(crate::IntegrationAttr::ExistingModule {
            module: module.into(),
        });
        self
    }

    /// "Grid belongs in COMMON block" (Fig. 3, §3.2).
    pub fn in_common_block(mut self, block: impl Into<String>) -> Self {
        self.grid.origin =
            GridOrigin::Existing(crate::IntegrationAttr::CommonBlock { block: block.into() });
        self
    }

    /// Element of an existing TYPE variable (§3.5): accesses generate a
    /// `type_var%` prefix.
    pub fn type_element(
        mut self,
        module: impl Into<String>,
        type_var: impl Into<String>,
    ) -> Self {
        self.grid.origin = GridOrigin::Existing(crate::IntegrationAttr::TypeElement {
            module: module.into(),
            type_var: type_var.into(),
        });
        self
    }

    /// Chooses the struct layout (optimization back-end).
    pub fn layout(mut self, layout: Layout) -> Self {
        self.grid.layout = layout;
        self
    }

    /// Manual initial data (Fig. 3 checkbox).
    pub fn init(mut self, data: InitData) -> Self {
        self.grid.init = Some(data);
        self
    }

    /// Deferred-shape, allocated on entry.
    pub fn allocatable(mut self) -> Self {
        self.grid.allocatable = true;
        self
    }

    /// FORTRAN `SAVE` attribute (§4.2.1 adaptation).
    pub fn save(mut self) -> Self {
        self.grid.save = true;
        self
    }

    /// Validates and finishes the grid.
    pub fn finish(self) -> Result<Grid, GridError> {
        if !is_valid_identifier(&self.grid.name) {
            return Err(GridError::BadName(self.grid.name));
        }
        for (i, d) in self.grid.dims.iter().enumerate() {
            if d.extent() == 0 {
                return Err(GridError::EmptyDimension { grid: self.grid.name, dim: i });
            }
        }
        self.grid.validate_init()?;
        Ok(self.grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::IntegrationAttr;

    #[test]
    fn figure1_grid() {
        // The 4x4 integer `img_src` grid of paper Fig. 1.
        let g = Grid::build("img_src")
            .typed(DataType::Integer)
            .dim(0, 3)
            .dim(0, 3)
            .comment("Image before filtering")
            .finish()
            .unwrap();
        assert_eq!(g.rank(), 2);
        assert_eq!(g.cell_count(), 16);
        assert_eq!(g.size_bytes(), 16 * 8);
        assert_eq!(g.comment.as_deref(), Some("Image before filtering"));
    }

    #[test]
    fn scalar_grid() {
        let g = Grid::build("ke").typed(DataType::Real8).finish().unwrap();
        assert!(g.is_scalar());
        assert_eq!(g.cell_count(), 1);
    }

    #[test]
    fn existing_module_grid() {
        let g = Grid::build("var_a")
            .typed(DataType::Integer)
            .in_existing_module("fuliou_mod")
            .finish()
            .unwrap();
        assert!(g.origin.is_externally_declared());
        assert_eq!(g.origin.use_module(), Some("fuliou_mod"));
    }

    #[test]
    fn common_block_grid() {
        let g = Grid::build("cc").typed(DataType::Real8).in_common_block("rad").finish().unwrap();
        match &g.origin {
            GridOrigin::Existing(IntegrationAttr::CommonBlock { block }) => {
                assert_eq!(block, "rad")
            }
            other => panic!("wrong origin: {other:?}"),
        }
    }

    #[test]
    fn type_element_grid() {
        let g = Grid::build("charge")
            .typed(DataType::Real8)
            .type_element("atoms_mod", "atom1")
            .finish()
            .unwrap();
        assert_eq!(g.origin.use_module(), Some("atoms_mod"));
    }

    #[test]
    fn bad_names_rejected() {
        assert!(matches!(
            Grid::build("9lives").finish(),
            Err(GridError::BadName(_))
        ));
    }

    #[test]
    fn empty_dim_rejected() {
        assert!(matches!(
            Grid::build("g").dim(5, 4).finish(),
            Err(GridError::EmptyDimension { .. })
        ));
    }

    #[test]
    fn index_checking() {
        let g = Grid::build("a").typed(DataType::Real8).dim(1, 4).dim(0, 2).finish().unwrap();
        assert_eq!(g.check_indices(&[1, 0]).unwrap(), vec![0, 0]);
        assert_eq!(g.check_indices(&[4, 2]).unwrap(), vec![3, 2]);
        assert!(matches!(g.check_indices(&[0, 0]), Err(GridError::OutOfBounds { .. })));
        assert!(matches!(g.check_indices(&[1]), Err(GridError::WrongArity { .. })));
    }

    #[test]
    fn struct_fields() {
        let g = Grid::build("atoms")
            .struct_of(vec![
                Field { name: "x".into(), ty: DataType::Real8 },
                Field { name: "q".into(), ty: DataType::Real8 },
            ])
            .dim1(10)
            .finish()
            .unwrap();
        assert!(g.field("x").is_ok());
        assert!(matches!(g.field("z"), Err(GridError::NoSuchField { .. })));
        assert_eq!(g.size_bytes(), 10 * 16);
    }

    #[test]
    fn explicit_init_must_match_cells() {
        let r = Grid::build("v")
            .typed(DataType::Real8)
            .dim1(3)
            .init(InitData::Explicit(vec![1.0, 2.0]))
            .finish();
        assert!(matches!(r, Err(GridError::WrongArity { .. })));
    }

    #[test]
    fn save_and_allocatable_flags() {
        let g = Grid::build("tmp")
            .typed(DataType::Real8)
            .dim1(50)
            .allocatable()
            .save()
            .finish()
            .unwrap();
        assert!(g.allocatable && g.save);
    }
}
