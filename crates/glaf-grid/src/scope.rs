//! Where a grid lives, and how it integrates with legacy code.
//!
//! The ICPP 2018 extension is almost entirely about *origin*: a grid created
//! in the GLAF Global Scope may be a brand-new variable (the original GLAF
//! behaviour) or a handle onto a datum that already exists somewhere in the
//! encompassing legacy program. The origin decides what the code generators
//! emit: a declaration, a `USE` statement, a `COMMON` membership, or nothing
//! but a `var%elem` access prefix.


/// The scope a grid was created in (mirrors the GPI's module/function/step
/// selector combined with the Global Scope special module).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GridOrigin {
    /// A local variable of the function currently being edited.
    Local,
    /// The n-th formal parameter of the function (the GPI shows
    /// "(Parameter k)" under the grid, cf. Fig. 2).
    Parameter(usize),
    /// A fresh variable in the GLAF Global Scope: becomes a module-scope
    /// variable of the *generated* module, declared and initialized by GLAF
    /// (paper §3.3).
    ModuleScope,
    /// A grid standing for a datum that already exists in the legacy code;
    /// see [`IntegrationAttr`] for the three supported flavours (§3.1, §3.2,
    /// §3.5).
    Existing(IntegrationAttr),
}

impl GridOrigin {
    /// True when code generation must *not* declare this grid inside the
    /// subprogram body (it is imported, common, or a parameter).
    pub fn is_externally_declared(&self) -> bool {
        matches!(self, GridOrigin::Existing(_))
    }

    /// The existing-module name to `USE`, if any.
    pub fn use_module(&self) -> Option<&str> {
        match self {
            GridOrigin::Existing(IntegrationAttr::ExistingModule { module })
            | GridOrigin::Existing(IntegrationAttr::TypeElement { module, .. }) => {
                Some(module.as_str())
            }
            _ => None,
        }
    }
}

/// How an *existing* legacy datum is reached from generated code.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IntegrationAttr {
    /// §3.1 — the variable is declared in an existing FORTRAN module; the
    /// generated subprogram gains a `USE <module>` and no local declaration.
    ExistingModule { module: String },
    /// §3.2 — the variable lives in a FORTRAN 77 `COMMON` block. All grids
    /// naming the same block are grouped into one
    /// `COMMON /<block>/ v1, v2, ...` statement, and each still gets a type
    /// declaration.
    CommonBlock { block: String },
    /// §3.5 — the grid is an element of a derived-TYPE variable that is
    /// itself declared in an existing module. Accesses are generated with
    /// the `type_var%` prefix (e.g. `atom1%charge`).
    TypeElement { module: String, type_var: String },
}

impl IntegrationAttr {
    /// Short human-readable tag used in diagnostics and DESIGN/EXPERIMENTS
    /// tables.
    pub fn kind(&self) -> &'static str {
        match self {
            IntegrationAttr::ExistingModule { .. } => "existing-module",
            IntegrationAttr::CommonBlock { .. } => "common-block",
            IntegrationAttr::TypeElement { .. } => "type-element",
        }
    }
}

/// Optional initial data manually entered through the GPI ("Enable manual
/// entering of initial data", Fig. 3). Stored row-major in entry order;
/// the code generators emit initialization loops or data statements.
#[derive(Debug, Clone, PartialEq)]
pub enum InitData {
    /// Every element set to the same integer.
    UniformInt(i64),
    /// Every element set to the same real.
    UniformReal(f64),
    /// Explicit per-element values (length must equal the grid's element
    /// count; validated by `Grid::validate_init`).
    Explicit(Vec<f64>),
}

impl InitData {
    /// Number of explicit values carried, if any.
    pub fn explicit_len(&self) -> Option<usize> {
        match self {
            InitData::Explicit(v) => Some(v.len()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_predicates() {
        let m = GridOrigin::Existing(IntegrationAttr::ExistingModule { module: "fuliou".into() });
        assert!(m.is_externally_declared());
        assert_eq!(m.use_module(), Some("fuliou"));

        let c = GridOrigin::Existing(IntegrationAttr::CommonBlock { block: "blk".into() });
        assert!(c.is_externally_declared());
        assert_eq!(c.use_module(), None);

        assert!(!GridOrigin::Local.is_externally_declared());
        assert!(!GridOrigin::Parameter(0).is_externally_declared());
        assert!(!GridOrigin::ModuleScope.is_externally_declared());
    }

    #[test]
    fn type_element_uses_module() {
        let t = GridOrigin::Existing(IntegrationAttr::TypeElement {
            module: "fuinput_mod".into(),
            type_var: "fi".into(),
        });
        assert_eq!(t.use_module(), Some("fuinput_mod"));
    }

    #[test]
    fn attr_kinds() {
        assert_eq!(
            IntegrationAttr::CommonBlock { block: "b".into() }.kind(),
            "common-block"
        );
    }

    #[test]
    fn init_data_len() {
        assert_eq!(InitData::Explicit(vec![1.0, 2.0]).explicit_len(), Some(2));
        assert_eq!(InitData::UniformInt(0).explicit_len(), None);
    }
}
