//! Machine model parameters and presets.


/// A first-order analytical CPU model. All `cyc_*` values are amortized
/// cycles per operation (reciprocal throughput, not latency).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    pub name: String,
    /// Clock, GHz — converts cycles to seconds.
    pub ghz: f64,
    /// Physical cores.
    pub physical_cores: usize,
    /// Logical threads per core (SMT).
    pub smt_per_core: usize,
    /// Fractional extra throughput delivered by the extra SMT thread(s)
    /// of a core (0.25 = a second thread adds 25%).
    pub smt_yield: f64,

    // --- per-op costs (cycles, scalar) ---
    pub cyc_flop: f64,
    pub cyc_fdiv: f64,
    pub cyc_fspecial: f64,
    pub cyc_iop: f64,
    pub cyc_load: f64,
    pub cyc_store: f64,
    pub cyc_branch: f64,
    pub cyc_call: f64,

    // --- compiler-optimization model (serial loops) ---
    /// f64 SIMD lanes (SSE2 = 2, AVX/AVX2 = 4).
    pub simd_width: f64,
    /// Achieved fraction of ideal SIMD speedup.
    pub simd_efficiency: f64,
    /// Bytes per cycle for compiler-emitted memset.
    pub memset_bytes_per_cycle: f64,

    // --- memory system ---
    /// Sustained bytes per cycle for the whole chip (bandwidth ceiling on
    /// parallel regions).
    pub mem_bw_bytes_per_cycle: f64,

    // --- OpenMP runtime ---
    /// Fixed fork+join cost per parallel region.
    pub fork_join_base: f64,
    /// Additional fork cost per team thread.
    pub fork_join_per_thread: f64,
    /// Multiplier exponent for oversubscription: fork costs scale by
    /// `(team / logical)^2` when the team exceeds logical CPUs, and the
    /// whole region pays `oversub_region_penalty` per excess thread ratio.
    pub oversub_region_penalty: f64,
    /// Cost of executing one `!$OMP ATOMIC`.
    pub cyc_atomic: f64,
    /// Extra atomic cost per additional contending thread.
    pub cyc_atomic_contention: f64,
    /// Reduction combine cost per team thread.
    pub cyc_reduction_per_thread: f64,
    /// Nested-region fork cost (team of one).
    pub cyc_nested_fork: f64,

    // --- allocator ---
    pub cyc_alloc: f64,
    pub cyc_alloc_per_kib: f64,
}

impl MachineModel {
    /// The Synoptic SARB testbed: "Intel Core i5-2400 CPU (four cores
    /// clocked at 3.10 GHz)" running code from `gfortran -O3` (§4.1.2).
    /// The paper treats it as 4 physical / 8 logical.
    pub fn i5_2400_like() -> Self {
        MachineModel {
            name: "i5-2400-like (4C/4T, 3.1 GHz, AVX)".into(),
            ghz: 3.1,
            physical_cores: 4,
            smt_per_core: 1,
            smt_yield: 0.0,
            cyc_flop: 0.7,
            cyc_fdiv: 9.0,
            cyc_fspecial: 22.0,
            cyc_iop: 0.4,
            cyc_load: 0.9,
            cyc_store: 1.1,
            cyc_branch: 1.6,
            cyc_call: 100.0,
            simd_width: 4.0,
            simd_efficiency: 0.65,
            memset_bytes_per_cycle: 16.0,
            // Aggregate cache-hierarchy bandwidth: interpreter loads count
            // every element access, the vast majority of which hit cache.
            mem_bw_bytes_per_cycle: 80.0,
            fork_join_base: 1_100.0,
            fork_join_per_thread: 130.0,
            oversub_region_penalty: 6.0,
            cyc_atomic: 8.0,
            cyc_atomic_contention: 1.0,
            cyc_reduction_per_thread: 150.0,
            cyc_nested_fork: 900.0,
            cyc_alloc: 150.0,
            cyc_alloc_per_kib: 40.0,
        }
    }

    /// The FUN3D testbed: "two Intel Xeon E5-2637 v4 CPUs (4 cores /
    /// 8 threads each) clocked at 3.50 GHz", ifort with AVX2 (§4.2.2).
    pub fn xeon_e5_2637v4_dual_like() -> Self {
        MachineModel {
            name: "2x E5-2637v4-like (8C/16T, 3.5 GHz, AVX2)".into(),
            ghz: 3.5,
            physical_cores: 8,
            smt_per_core: 2,
            smt_yield: 0.2,
            cyc_flop: 0.6,
            cyc_fdiv: 8.0,
            cyc_fspecial: 20.0,
            cyc_iop: 0.35,
            cyc_load: 0.8,
            cyc_store: 1.0,
            cyc_branch: 1.5,
            cyc_call: 170.0,
            simd_width: 4.0,
            simd_efficiency: 0.7,
            memset_bytes_per_cycle: 24.0,
            mem_bw_bytes_per_cycle: 150.0,
            // Two sockets: costlier barriers and fork across the QPI link.
            fork_join_base: 2_400.0,
            fork_join_per_thread: 220.0,
            oversub_region_penalty: 6.0,
            // Jacobian accumulations land on mostly-disjoint cache lines:
            // uncontended atomic adds overlap with surrounding compute.
            cyc_atomic: 3.0,
            cyc_atomic_contention: 0.15,
            cyc_reduction_per_thread: 180.0,
            cyc_nested_fork: 1_100.0,
            cyc_alloc: 120.0,
            cyc_alloc_per_kib: 30.0,
        }
    }

    /// Logical CPU count.
    pub fn logical_cpus(&self) -> usize {
        self.physical_cores * self.smt_per_core
    }

    /// Effective parallel compute capacity (in "cores") available to a
    /// team of `t` threads: saturates at physical cores plus the SMT
    /// yield of the extra logical threads.
    pub fn capacity(&self, t: usize) -> f64 {
        let t = t.max(1) as f64;
        let p = self.physical_cores as f64;
        if t <= p {
            t
        } else {
            let extra = (t - p).min(p * (self.smt_per_core as f64 - 1.0));
            p + extra * self.smt_yield
        }
    }

    /// SIMD speedup factor for vectorizable work.
    pub fn simd_factor(&self) -> f64 {
        (self.simd_width * self.simd_efficiency).max(1.0)
    }
}

impl Default for MachineModel {
    fn default() -> Self {
        MachineModel::i5_2400_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_saturates() {
        let m = MachineModel::i5_2400_like();
        assert_eq!(m.capacity(1), 1.0);
        assert_eq!(m.capacity(4), 4.0);
        assert_eq!(m.capacity(8), 4.0, "no HT on the i5-2400");
        let x = MachineModel::xeon_e5_2637v4_dual_like();
        let c16 = x.capacity(16);
        assert!(c16 > 8.0 && c16 < 11.0, "SMT adds a little: {c16}");
        assert_eq!(x.capacity(16), x.capacity(64), "beyond logical: no more");
    }

    #[test]
    fn presets_sane() {
        let a = MachineModel::i5_2400_like();
        assert_eq!(a.logical_cpus(), 4);
        assert!(a.simd_factor() > 2.0);
        let b = MachineModel::xeon_e5_2637v4_dual_like();
        assert_eq!(b.logical_cpus(), 16);
        assert!(b.fork_join_base > a.fork_join_base);
    }
}
