//! # simcpu — a deterministic machine model for simulated timings
//!
//! The paper evaluates on two real testbeds: a 4-core Intel i5-2400
//! (Synoptic SARB, §4.1.2) and a dual-socket Xeon E5-2637 v4 (FUN3D,
//! §4.2.2). This host has one CPU core, so per the reproduction's
//! substitution rule (DESIGN.md §2) wall-clock scaling is replaced by a
//! first-order analytical machine model applied to the cost traces the
//! `fortrans` interpreter emits in `Simulated` mode.
//!
//! The model captures exactly the effects the paper's results hinge on:
//!
//! * **compiler optimization of serial loops** — vectorizable work runs at
//!   `simd_width × simd_efficiency` lanes; zero-initialization runs at
//!   memset speed (§4.1.2: v1/v2/v3 win because "the compiler can apply
//!   optimizations that outperform thread-level parallelism");
//! * **fork/join overhead per parallel region**, growing with team size —
//!   and superlinearly once the team oversubscribes the physical cores
//!   (Fig. 6's 8-thread collapse);
//! * **static-schedule imbalance** — the region lasts as long as its most
//!   loaded thread (per-thread counters from the trace);
//! * **bounded parallel capacity** — compute throughput saturates at the
//!   physical core count plus a small SMT yield, and memory traffic is
//!   capped by a bandwidth ceiling;
//! * **synchronization** — atomics pay a contention term scaling with the
//!   team, critical-section work is serialized, reductions pay a combine
//!   cost per thread;
//! * **allocation cost** — per-`ALLOCATE` base cost plus a per-KiB term
//!   (the FUN3D "50 temporaries per edge-loop call" disaster of §4.2.2).

pub mod machine;
pub mod report;

pub use machine::MachineModel;
pub use report::{region_costs, time_trace, RegionCost, SimReport};

#[cfg(test)]
mod tests {
    use super::*;
    use fortrans::{CostCounters, CostTrace};

    #[test]
    fn crate_level_smoke() {
        let m = MachineModel::i5_2400_like();
        let mut trace = CostTrace::default();
        let mut c = CostCounters::default();
        c.scalar.flop = 1000;
        trace.push_serial(c);
        let r = time_trace(&trace, &m);
        assert!(r.total_cycles > 0.0);
        assert!(r.total_seconds() > 0.0);
    }
}
