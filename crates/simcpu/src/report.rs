//! Trace → time conversion and the breakdown report.

use fortrans::{CostCounters, CostTrace, OpCounts, RegionEvent, TraceEvent};

use crate::machine::MachineModel;

/// Cycle breakdown of one timed trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    pub machine: String,
    pub total_cycles: f64,
    pub serial_cycles: f64,
    pub region_compute_cycles: f64,
    pub fork_join_cycles: f64,
    pub atomic_cycles: f64,
    pub critical_extra_cycles: f64,
    pub reduction_cycles: f64,
    pub alloc_cycles: f64,
    pub regions: usize,
    ghz: f64,
}

impl SimReport {
    /// Simulated wall time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_cycles / (self.ghz * 1e9)
    }

    /// Speed-up of `self` relative to `other` (other/self).
    pub fn speedup_vs(&self, baseline: &SimReport) -> f64 {
        baseline.total_cycles / self.total_cycles
    }
}

/// Cycles for an op-count bucket at scalar throughput.
fn op_cycles(o: &OpCounts, m: &MachineModel) -> f64 {
    o.flop as f64 * m.cyc_flop
        + o.fdiv as f64 * m.cyc_fdiv
        + o.fspecial as f64 * m.cyc_fspecial
        + o.iop as f64 * m.cyc_iop
        + o.load as f64 * m.cyc_load
        + o.store as f64 * m.cyc_store
}

/// Compute cycles of one counter set, applying the compiler model: the
/// vector bucket runs `simd_factor()` times faster, memset bytes stream at
/// memset speed. (Allocation cycles are reported separately.)
fn counters_cycles(c: &CostCounters, m: &MachineModel) -> f64 {
    op_cycles(&c.scalar, m)
        + op_cycles(&c.vector, m) / m.simd_factor()
        + c.memset_bytes as f64 / m.memset_bytes_per_cycle
        + c.branches as f64 * m.cyc_branch
        + c.calls as f64 * m.cyc_call
        + c.nested_forks as f64 * m.cyc_nested_fork
}

fn alloc_cycles(c: &CostCounters, m: &MachineModel) -> f64 {
    c.alloc_calls as f64 * m.cyc_alloc + (c.alloc_bytes as f64 / 1024.0) * m.cyc_alloc_per_kib
}

fn mem_bytes(c: &CostCounters) -> f64 {
    (c.scalar.mem_bytes() + c.vector.mem_bytes() + c.memset_bytes) as f64
}

/// Times a parallel region.
fn region_cycles(r: &RegionEvent, m: &MachineModel, rep: &mut SimReport) -> f64 {
    let t = r.threads.max(1);

    // Fork/join: base + per-thread. Oversubscribing the *logical* CPUs
    // forces timesharing: context switches and cache thrash inflate every
    // fork superlinearly (Fig. 6's 8-thread collapse on a 4C/4T part).
    let mut fork = m.fork_join_base + m.fork_join_per_thread * t as f64;
    let logical = m.logical_cpus();
    if t > logical {
        let ratio = t as f64 / logical as f64;
        let excess = (t - logical) as f64 / logical as f64;
        fork *= ratio * ratio * (1.0 + m.oversub_region_penalty * excess);
    }
    rep.fork_join_cycles += fork;

    // Compute: imbalance (max thread) vs capacity-limited total.
    let per_thread: Vec<f64> = r.per_thread.iter().map(|c| counters_cycles(c, m)).collect();
    let max_thread = per_thread.iter().cloned().fold(0.0, f64::max);
    let total: f64 = per_thread.iter().sum();
    let capacity_limited = total / m.capacity(t);
    // Memory-bandwidth ceiling.
    let bytes: f64 = r.per_thread.iter().map(mem_bytes).sum();
    let bw_limited = bytes / m.mem_bw_bytes_per_cycle;
    let compute = max_thread.max(capacity_limited).max(bw_limited);
    rep.region_compute_cycles += compute;

    // Synchronization.
    let atomics: u64 = r.per_thread.iter().map(|c| c.atomics).sum();
    let atomic =
        atomics as f64 * (m.cyc_atomic + m.cyc_atomic_contention * (t.min(logical) - 1) as f64);
    rep.atomic_cycles += atomic;

    // Critical sections serialize: their work can overlap with nothing,
    // so the wall pays the *sum* instead of the max — charge the excess.
    let crit = counters_cycles(&r.critical, m);
    let crit_extra = crit * (1.0 - 1.0 / t as f64);
    rep.critical_extra_cycles += crit_extra;

    let red = r.reductions as f64 * m.cyc_reduction_per_thread * t as f64;
    rep.reduction_cycles += red;

    let alloc: f64 = r.per_thread.iter().map(|c| alloc_cycles(c, m)).sum();
    rep.alloc_cycles += alloc;

    fork + compute + atomic + crit_extra + red + alloc
}

/// Predicted cost of one parallel region, in trace (fork) order — the
/// "predicted" side of predicted-vs-measured observability reports.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionCost {
    /// Region ordinal within the trace.
    pub index: usize,
    pub threads: usize,
    /// Total iterations the region distributed.
    pub trip: u64,
    /// Source line of the parallel DO (0 when unknown) — the join key
    /// against measured `omp@line` profile spans.
    pub line: u32,
    /// Predicted cycles (fork/join + compute + sync), as charged by
    /// [`time_trace`].
    pub cycles: f64,
}

/// Per-region predicted cycles of `trace`, in fork order. The sum over
/// regions matches the region share of [`time_trace`]'s total.
pub fn region_costs(trace: &CostTrace, m: &MachineModel) -> Vec<RegionCost> {
    let mut scratch = SimReport::default();
    let mut out = Vec::new();
    for ev in &trace.events {
        if let TraceEvent::Region(r) = ev {
            let cycles = region_cycles(r, m, &mut scratch);
            out.push(RegionCost {
                index: out.len(),
                threads: r.threads,
                trip: r.trip,
                line: r.line,
                cycles,
            });
        }
    }
    out
}

/// Converts a cost trace to simulated time on `m`.
pub fn time_trace(trace: &CostTrace, m: &MachineModel) -> SimReport {
    let mut rep = SimReport { machine: m.name.clone(), ghz: m.ghz, ..Default::default() };
    for ev in &trace.events {
        match ev {
            TraceEvent::Serial(c) => {
                let cyc = counters_cycles(c, m) + alloc_cycles(c, m);
                rep.serial_cycles += counters_cycles(c, m);
                rep.alloc_cycles += alloc_cycles(c, m);
                rep.total_cycles += cyc;
                // Serial atomics still cost their base price.
                let a = c.atomics as f64 * m.cyc_atomic;
                rep.atomic_cycles += a;
                rep.total_cycles += a;
            }
            TraceEvent::Region(r) => {
                rep.regions += 1;
                rep.total_cycles += region_cycles(r, m, &mut rep);
            }
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use fortrans::CostCounters;

    fn counters(flop: u64, load: u64) -> CostCounters {
        let mut c = CostCounters::default();
        c.scalar.flop = flop;
        c.scalar.load = load;
        c
    }

    fn region(threads: usize, per_thread_flop: u64) -> RegionEvent {
        RegionEvent {
            threads,
            per_thread: (0..threads).map(|_| counters(per_thread_flop, 0)).collect(),
            critical: CostCounters::default(),
            reductions: 0,
            trip: threads as u64,
            line: 0,
        }
    }

    #[test]
    fn serial_time_scales_with_work() {
        let m = MachineModel::i5_2400_like();
        let mut t1 = CostTrace::default();
        t1.push_serial(counters(1000, 0));
        let mut t2 = CostTrace::default();
        t2.push_serial(counters(2000, 0));
        let r1 = time_trace(&t1, &m);
        let r2 = time_trace(&t2, &m);
        assert!((r2.total_cycles / r1.total_cycles - 2.0).abs() < 1e-9);
    }

    #[test]
    fn vector_bucket_is_faster_than_scalar() {
        let m = MachineModel::i5_2400_like();
        let mut sc = CostTrace::default();
        sc.push_serial(counters(10_000, 0));
        let mut vc = CostTrace::default();
        let mut c = CostCounters::default();
        c.vector.flop = 10_000;
        vc.push_serial(c);
        let rs = time_trace(&sc, &m);
        let rv = time_trace(&vc, &m);
        assert!(
            rs.total_cycles / rv.total_cycles > 2.0,
            "SIMD speedup: {} vs {}",
            rs.total_cycles,
            rv.total_cycles
        );
    }

    #[test]
    fn tiny_parallel_region_loses_to_serial() {
        // The v0 lesson: a 60-iteration trivial loop is slower threaded.
        let m = MachineModel::i5_2400_like();
        let mut ser = CostTrace::default();
        ser.push_serial(counters(600, 120));
        let rs = time_trace(&ser, &m);

        let mut par = CostTrace::default();
        par.push_region(region(4, 150));
        let rp = time_trace(&par, &m);
        assert!(
            rp.total_cycles > rs.total_cycles * 2.0,
            "fork dominates: {} vs {}",
            rp.total_cycles,
            rs.total_cycles
        );
    }

    #[test]
    fn big_parallel_region_wins() {
        let m = MachineModel::i5_2400_like();
        let work = 40_000_000u64;
        let mut ser = CostTrace::default();
        ser.push_serial(counters(work, 0));
        let rs = time_trace(&ser, &m);

        let mut par = CostTrace::default();
        par.push_region(region(4, work / 4));
        let rp = time_trace(&par, &m);
        let speedup = rs.total_cycles / rp.total_cycles;
        assert!(speedup > 3.0 && speedup <= 4.0, "speedup {speedup}");
    }

    #[test]
    fn imbalance_costs() {
        let m = MachineModel::i5_2400_like();
        let mut balanced = CostTrace::default();
        balanced.push_region(region(4, 1_000_000));
        let mut skewed = CostTrace::default();
        skewed.push_region(RegionEvent {
            threads: 4,
            per_thread: vec![
                counters(4_000_000, 0),
                counters(0, 0),
                counters(0, 0),
                counters(0, 0),
            ],
            critical: CostCounters::default(),
            reductions: 0,
            trip: 4,
            line: 0,
        });
        let rb = time_trace(&balanced, &m);
        let rskew = time_trace(&skewed, &m);
        assert!(rskew.total_cycles > rb.total_cycles * 3.0);
    }

    #[test]
    fn oversubscription_hurts() {
        let m = MachineModel::i5_2400_like();
        // Smallish region: fork overhead matters.
        let work = 200_000u64;
        let t4 = {
            let mut t = CostTrace::default();
            t.push_region(region(4, work / 4));
            time_trace(&t, &m)
        };
        let t8 = {
            let mut t = CostTrace::default();
            t.push_region(region(8, work / 8));
            time_trace(&t, &m)
        };
        let t16 = {
            let mut t = CostTrace::default();
            t.push_region(region(16, work / 16));
            time_trace(&t, &m)
        };
        assert!(t8.total_cycles > t4.total_cycles, "8T slower than 4T on 4 cores");
        assert!(t16.total_cycles > t8.total_cycles, "16T slower still");
    }

    #[test]
    fn atomics_scale_with_contention() {
        let m = MachineModel::i5_2400_like();
        let mk = |threads: usize, atomics: u64| {
            let mut r = region(threads, 0);
            for c in &mut r.per_thread {
                c.atomics = atomics / threads as u64;
            }
            let mut t = CostTrace::default();
            t.push_region(r);
            time_trace(&t, &m)
        };
        let a1 = mk(1, 10_000);
        let a4 = mk(4, 10_000);
        assert!(
            a4.atomic_cycles > a1.atomic_cycles,
            "contention grows with the team: {} vs {}",
            a4.atomic_cycles,
            a1.atomic_cycles
        );
    }

    #[test]
    fn critical_serializes() {
        let m = MachineModel::i5_2400_like();
        let mut r = region(4, 1000);
        r.critical = counters(4000, 0);
        let mut t = CostTrace::default();
        t.push_region(r);
        let rep = time_trace(&t, &m);
        assert!(rep.critical_extra_cycles > 0.0);
    }

    #[test]
    fn allocation_cycles_counted() {
        let m = MachineModel::xeon_e5_2637v4_dual_like();
        let c = CostCounters {
            alloc_calls: 500,
            alloc_bytes: 500 * 4096,
            ..Default::default()
        };
        let mut t = CostTrace::default();
        t.push_serial(c);
        let rep = time_trace(&t, &m);
        assert!(rep.alloc_cycles > 500.0 * m.cyc_alloc);
    }

    #[test]
    fn region_costs_align_with_time_trace() {
        let m = MachineModel::i5_2400_like();
        let mut t = CostTrace::default();
        t.push_serial(counters(5000, 0));
        t.push_region(region(4, 100_000));
        t.push_region(region(2, 50_000));
        let costs = region_costs(&t, &m);
        assert_eq!(costs.len(), 2);
        assert_eq!((costs[0].index, costs[0].threads), (0, 4));
        assert_eq!((costs[1].index, costs[1].threads), (1, 2));
        // The per-region sum equals total minus the serial share.
        let rep = time_trace(&t, &m);
        let serial_only = {
            let mut s = CostTrace::default();
            s.push_serial(counters(5000, 0));
            time_trace(&s, &m).total_cycles
        };
        let region_sum: f64 = costs.iter().map(|c| c.cycles).sum();
        assert!(
            (region_sum - (rep.total_cycles - serial_only)).abs() < 1e-6,
            "sum {region_sum} vs {}",
            rep.total_cycles - serial_only
        );
    }

    #[test]
    fn speedup_helper() {
        let m = MachineModel::i5_2400_like();
        let mut a = CostTrace::default();
        a.push_serial(counters(1000, 0));
        let mut b = CostTrace::default();
        b.push_serial(counters(2000, 0));
        let ra = time_trace(&a, &m);
        let rb = time_trace(&b, &m);
        assert!((ra.speedup_vs(&rb) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_ceiling_applies() {
        let m = MachineModel::i5_2400_like();
        // Pure-memory region: loads dominate; bw ceiling must bind.
        let mut r = region(4, 0);
        for c in &mut r.per_thread {
            c.scalar.load = 10_000_000;
        }
        let mut t = CostTrace::default();
        t.push_region(r);
        let rep = time_trace(&t, &m);
        let bytes = 4.0 * 10_000_000.0 * 8.0;
        assert!(rep.region_compute_cycles >= bytes / m.mem_bw_bytes_per_cycle * 0.99);
    }
}
