//! A deadline watchdog: one background thread that fires callbacks when
//! armed deadlines pass.
//!
//! The service layer's `JobQueue` arms one entry per policed job; the
//! callback fires that job's cancel token so the run returns
//! `Cancelled` at its next safepoint instead of hanging the batch. The
//! design is deliberately minimal: a sorted-scan over a small `Vec`
//! under one mutex (batches police tens of jobs, not millions), a
//! condvar with `wait_timeout` to sleep exactly until the earliest
//! deadline, and a `fired` counter for batch reports.
//!
//! Uses `std::sync` primitives directly: the workspace's `parking_lot`
//! is a vendored API-subset shim without `Condvar::wait_timeout`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

type Callback = Box<dyn FnOnce() + Send + 'static>;

struct Entry {
    id: u64,
    at: Instant,
    fire: Option<Callback>,
}

#[derive(Default)]
struct State {
    entries: Vec<Entry>,
    next_id: u64,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
    fired: AtomicU64,
}

/// A deadline watchdog thread. Arm it with an [`Instant`] and a
/// callback; the callback runs on the watchdog thread shortly after the
/// deadline passes, unless [`Watchdog::disarm`]ed first. Dropping the
/// watchdog shuts the thread down (pending entries do not fire).
pub struct Watchdog {
    inner: Arc<Inner>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog::new()
    }
}

impl Watchdog {
    pub fn new() -> Watchdog {
        let inner = Arc::new(Inner {
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            fired: AtomicU64::new(0),
        });
        let thread_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("omprt-watchdog".into())
            .spawn(move || watch_loop(&thread_inner))
            .ok();
        Watchdog { inner, handle }
    }

    /// Arms a deadline: `fire` runs on the watchdog thread once `at`
    /// passes. Returns an id for [`Watchdog::disarm`].
    pub fn arm(&self, at: Instant, fire: impl FnOnce() + Send + 'static) -> u64 {
        let mut st = lock(&self.inner.state);
        st.next_id += 1;
        let id = st.next_id;
        st.entries.push(Entry { id, at, fire: Some(Box::new(fire)) });
        drop(st);
        self.inner.cv.notify_all();
        id
    }

    /// Disarms `id`. Returns `true` when the entry was still pending
    /// (its callback will never run); `false` when it had already fired
    /// or was never armed.
    pub fn disarm(&self, id: u64) -> bool {
        let mut st = lock(&self.inner.state);
        match st.entries.iter().position(|e| e.id == id) {
            Some(pos) => {
                st.entries.swap_remove(pos);
                true
            }
            None => false,
        }
    }

    /// How many deadlines have actually fired.
    pub fn fired(&self) -> u64 {
        self.inner.fired.load(Ordering::Relaxed)
    }

    /// How many deadlines are currently armed.
    pub fn armed(&self) -> usize {
        lock(&self.inner.state).entries.len()
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        lock(&self.inner.state).shutdown = true;
        self.inner.cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Std mutexes poison on panic; the watchdog's critical sections cannot
/// panic (Vec ops on plain data), and even if a callback-adjacent bug
/// poisoned the lock, carrying on with the inner state is strictly
/// better for the batch than poisoning every subsequent arm/disarm.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn watch_loop(inner: &Inner) {
    let mut st = lock(&inner.state);
    loop {
        if st.shutdown {
            return;
        }
        let now = Instant::now();
        // Collect everything due, then run the callbacks outside the
        // lock so a slow callback never blocks arm/disarm.
        let mut due: Vec<Callback> = Vec::new();
        let mut i = 0;
        while i < st.entries.len() {
            if st.entries[i].at <= now {
                let mut e = st.entries.swap_remove(i);
                if let Some(cb) = e.fire.take() {
                    due.push(cb);
                }
            } else {
                i += 1;
            }
        }
        if !due.is_empty() {
            inner.fired.fetch_add(due.len() as u64, Ordering::Relaxed);
            drop(st);
            for cb in due {
                cb();
            }
            st = lock(&inner.state);
            continue;
        }
        let next = st.entries.iter().map(|e| e.at).min();
        st = match next {
            Some(at) => {
                let wait = at.saturating_duration_since(now);
                match inner.cv.wait_timeout(st, wait) {
                    Ok((g, _)) => g,
                    Err(poisoned) => poisoned.into_inner().0,
                }
            }
            // Nothing armed: sleep until an arm() or shutdown nudges us
            // (bounded, so a missed notify can't wedge the thread).
            None => match inner.cv.wait_timeout(st, Duration::from_millis(200)) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            },
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn fires_past_deadline() {
        let wd = Watchdog::new();
        let hit = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hit);
        wd.arm(Instant::now() + Duration::from_millis(10), move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        let t0 = Instant::now();
        while hit.load(Ordering::SeqCst) == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(hit.load(Ordering::SeqCst), 1);
        assert_eq!(wd.fired(), 1);
        assert_eq!(wd.armed(), 0);
    }

    #[test]
    fn disarm_prevents_fire() {
        let wd = Watchdog::new();
        let hit = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hit);
        let id = wd.arm(Instant::now() + Duration::from_millis(50), move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert!(wd.disarm(id));
        assert!(!wd.disarm(id), "second disarm reports not-pending");
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(hit.load(Ordering::SeqCst), 0);
        assert_eq!(wd.fired(), 0);
    }

    #[test]
    fn many_entries_fire_independently() {
        let wd = Watchdog::new();
        let hit = Arc::new(AtomicUsize::new(0));
        let mut keep = Vec::new();
        for k in 0..8 {
            let h = Arc::clone(&hit);
            let id = wd.arm(Instant::now() + Duration::from_millis(5 + k), move || {
                h.fetch_add(1, Ordering::SeqCst);
            });
            if k % 2 == 1 {
                keep.push(id);
            }
        }
        // Disarm the odd ones before they fire... most of the time; on a
        // slow box some may already have fired, which is fine — the
        // invariant is fired + pending-disarmed == 8.
        let mut disarmed = 0;
        for id in keep {
            if wd.disarm(id) {
                disarmed += 1;
            }
        }
        let t0 = Instant::now();
        while (wd.fired() as usize + disarmed) < 8 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(wd.fired() as usize + disarmed, 8);
        assert_eq!(hit.load(Ordering::SeqCst), wd.fired() as usize);
    }

    #[test]
    fn drop_joins_cleanly_with_pending_entries() {
        let wd = Watchdog::new();
        let hit = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hit);
        wd.arm(Instant::now() + Duration::from_secs(3600), move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        drop(wd); // must not hang for the hour
        assert_eq!(hit.load(Ordering::SeqCst), 0);
    }
}
