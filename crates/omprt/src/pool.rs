//! A persistent fork-join worker pool.
//!
//! `ThreadPool::new(t)` spawns `t - 1` workers that park on a condvar; the
//! calling thread acts as thread 0 of every region (exactly how OpenMP
//! implementations reuse the master thread). [`ThreadPool::run`] executes a
//! closure once per thread id and returns when every thread has finished —
//! the fork-join contract that makes the single `unsafe` lifetime-erasure
//! below sound.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Type-erased job pointer: a borrowed `&(dyn Fn(usize) + Sync)` smuggled
/// across the `'static` requirement of worker threads. Soundness argument:
/// `run` stores the pointer, wakes the workers, and *does not return* until
/// `active` drops to zero, i.e. until no worker can touch the pointer again.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared invocation from many threads is its
// contract) and the pool guarantees the pointee outlives all uses (see
// `run`).
unsafe impl Send for JobPtr {}
unsafe impl Sync for JobPtr {}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Workers still executing the current generation's job.
    active: AtomicUsize,
}

struct State {
    job: Option<JobPtr>,
    generation: u64,
    shutdown: bool,
}

/// A fixed-size fork-join pool. Thread ids run `0..threads`, with the
/// caller as id 0.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool presenting `threads` logical OpenMP threads
    /// (`threads - 1` OS workers plus the caller). `threads == 0` is
    /// treated as 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State { job: None, generation: 0, shutdown: false }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            active: AtomicUsize::new(0),
        });
        let mut handles = Vec::with_capacity(threads - 1);
        for tid in 1..threads {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("omprt-worker-{tid}"))
                    .spawn(move || worker_loop(shared, tid))
                    .expect("spawn omprt worker"),
            );
        }
        ThreadPool { shared, handles, threads }
    }

    /// Number of logical threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(tid)` once for each `tid in 0..threads`, in parallel, and
    /// returns after all invocations complete (the join of fork-join).
    pub fn run<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.threads == 1 {
            f(0);
            return;
        }
        let erased: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: see `JobPtr` — we block until all workers are done with
        // the pointer before `f` can be dropped.
        let ptr = JobPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(erased)
                as *const _
        });
        {
            let mut st = self.shared.state.lock();
            debug_assert!(st.job.is_none(), "regions do not nest on one pool");
            self.shared.active.store(self.threads - 1, Ordering::Release);
            st.job = Some(ptr);
            st.generation += 1;
            self.shared.work_cv.notify_all();
        }
        // The caller is thread 0.
        f(0);
        // Join: wait for workers.
        let mut st = self.shared.state.lock();
        while self.shared.active.load(Ordering::Acquire) != 0 {
            self.shared.done_cv.wait(&mut st);
        }
        st.job = None;
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, tid: usize) {
    let mut last_gen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != last_gen {
                    last_gen = st.generation;
                    break st.job.expect("generation bumped with job set");
                }
                shared.work_cv.wait(&mut st);
            }
        };
        // SAFETY: the pointer is valid for the duration of the generation —
        // `run` blocks until `active` hits zero.
        unsafe { (*job.0)(tid) };
        if shared.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = shared.state.lock();
            shared.done_cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn every_thread_id_runs_once() {
        for t in [1usize, 2, 4, 8] {
            let pool = ThreadPool::new(t);
            let hits: Vec<AtomicU64> = (0..t).map(|_| AtomicU64::new(0)).collect();
            pool.run(|tid| {
                hits[tid].fetch_add(1, Ordering::Relaxed);
            });
            for (tid, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "thread {tid} of {t}");
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_regions() {
        let pool = ThreadPool::new(4);
        let total = AtomicU64::new(0);
        for _ in 0..100 {
            pool.run(|_tid| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn borrows_local_data_soundly() {
        let pool = ThreadPool::new(3);
        let data = [1u64, 2, 3, 4, 5, 6];
        let sum = AtomicU64::new(0);
        pool.run(|tid| {
            for (i, v) in data.iter().enumerate() {
                if i % 3 == tid {
                    sum.fetch_add(*v, Ordering::Relaxed);
                }
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 21);
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let ran = AtomicU64::new(0);
        pool.run(|tid| {
            assert_eq!(tid, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn results_deterministic_with_partitioned_writes() {
        let pool = ThreadPool::new(4);
        let n = 1000;
        let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.run(|tid| {
            let chunk = n / 4;
            let lo = tid * chunk;
            let hi = if tid == 3 { n } else { lo + chunk };
            for i in lo..hi {
                out[i].store((i * i) as u64, Ordering::Relaxed);
            }
        });
        for (i, c) in out.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), (i * i) as u64);
        }
        // (indexing above is the point of the test: per-slot ownership)
    }
}
