//! A persistent fork-join worker pool.
//!
//! `ThreadPool::new(t)` spawns `t - 1` workers that park on a condvar; the
//! calling thread acts as thread 0 of every region (exactly how OpenMP
//! implementations reuse the master thread). [`ThreadPool::run`] executes a
//! closure once per thread id and returns when every thread has finished —
//! the fork-join contract that makes the single `unsafe` lifetime-erasure
//! below sound.
//!
//! Panics are contained at the pool boundary: a closure that panics (on a
//! worker *or* on thread 0) does not kill the pool or leak the job
//! pointer. Each invocation runs under `catch_unwind`, the join always
//! completes, and [`ThreadPool::run`] reports the first panic as a
//! [`RegionPanic`]. Because the catch happens *inside* the worker's loop,
//! a panicked worker parks again and serves later regions — the pool
//! self-heals without respawning threads.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::metrics::RegionMetrics;
use crate::schedule::Schedule;

/// Type-erased job pointer: a borrowed `&(dyn Fn(usize) + Sync)` smuggled
/// across the `'static` requirement of worker threads. Soundness argument:
/// `run` stores the pointer, wakes the workers, and *does not return* until
/// `active` drops to zero, i.e. until no worker can touch the pointer again.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared invocation from many threads is its
// contract) and the pool guarantees the pointee outlives all uses (see
// `run`).
unsafe impl Send for JobPtr {}
unsafe impl Sync for JobPtr {}

/// A panic that escaped a region closure, caught at the pool boundary.
#[derive(Debug)]
pub struct RegionPanic {
    /// Logical thread id whose closure panicked (lowest, if several did).
    pub tid: usize,
    /// Stringified panic payload.
    pub what: String,
}

impl std::fmt::Display for RegionPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker thread {} panicked: {}", self.tid, self.what)
    }
}

impl std::error::Error for RegionPanic {}

/// Best-effort stringification of a panic payload.
fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Workers still executing the current generation's job.
    active: AtomicUsize,
    /// Panics caught on workers during the current generation.
    panics: Mutex<Vec<RegionPanic>>,
    /// When set, every region records a [`RegionMetrics`] entry.
    metrics_on: AtomicBool,
    /// Per-thread busy time of the current region, zeroed at each fork.
    busy_ns: Vec<AtomicU64>,
    /// Lifetime count of panics caught at the pool boundary (workers and
    /// thread 0 alike). Never reset: a health probe for shared pools.
    contained: AtomicU64,
}

struct State {
    job: Option<JobPtr>,
    generation: u64,
    shutdown: bool,
}

/// A fixed-size fork-join pool. Thread ids run `0..threads`, with the
/// caller as id 0.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
    /// Completed-region metrics in fork order (only the forking caller
    /// touches this; workers write the `Shared::busy_ns` slots).
    records: Mutex<Vec<RegionMetrics>>,
    /// Serializes whole regions: a pool shared between sessions admits
    /// one forking caller at a time — later callers queue here instead of
    /// racing on the single job slot (and instead of oversubscribing the
    /// machine with overlapping teams).
    fork: Mutex<()>,
}

impl ThreadPool {
    /// Creates a pool presenting `threads` logical OpenMP threads
    /// (`threads - 1` OS workers plus the caller). `threads == 0` is
    /// treated as 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State { job: None, generation: 0, shutdown: false }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            active: AtomicUsize::new(0),
            panics: Mutex::new(Vec::new()),
            metrics_on: AtomicBool::new(false),
            busy_ns: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            contained: AtomicU64::new(0),
        });
        let mut handles = Vec::with_capacity(threads - 1);
        for tid in 1..threads {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("omprt-worker-{tid}"))
                    .spawn(move || worker_loop(shared, tid))
                    .expect("spawn omprt worker"),
            );
        }
        ThreadPool { shared, handles, threads, records: Mutex::new(Vec::new()), fork: Mutex::new(()) }
    }

    /// Number of logical threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Switches per-region utilization accounting on or off. Off (the
    /// default) keeps `run` free of timing syscalls.
    pub fn set_metrics(&self, on: bool) {
        self.shared.metrics_on.store(on, Ordering::Relaxed);
    }

    /// Drains the [`RegionMetrics`] accumulated since the last call, in
    /// fork order.
    pub fn take_metrics(&self) -> Vec<RegionMetrics> {
        std::mem::take(&mut *self.records.lock())
    }

    /// Lifetime count of panics the pool has contained (on any thread,
    /// including the forking caller). Monotone — it is a health probe for
    /// pools shared across sessions, not a per-region flag: a value that
    /// stopped growing means later regions ran clean.
    pub fn contained_panics(&self) -> u64 {
        self.shared.contained.load(Ordering::Relaxed)
    }

    /// Runs `f(tid)` once for each `tid in 0..threads`, in parallel, and
    /// returns after all invocations complete (the join of fork-join).
    ///
    /// A panicking closure does not poison the pool: the join still
    /// completes on every thread, and the first panic (lowest tid) comes
    /// back as `Err`. The pool remains usable for later regions.
    ///
    /// Safe for concurrent callers: regions on one pool are serialized,
    /// so sessions sharing a pool take turns instead of racing the job
    /// slot or oversubscribing the machine.
    pub fn run<F>(&self, f: F) -> Result<(), RegionPanic>
    where
        F: Fn(usize) + Sync,
    {
        self.run_tagged(0, Schedule::default(), f)
    }

    /// [`ThreadPool::run`], with the recorded [`RegionMetrics`] tagged by
    /// the source line and loop schedule of the forking construct, so
    /// profile consumers can join utilization back to a specific loop.
    pub fn run_tagged<F>(&self, line: u32, sched: Schedule, f: F) -> Result<(), RegionPanic>
    where
        F: Fn(usize) + Sync,
    {
        let timing = self.shared.metrics_on.load(Ordering::Relaxed);
        if self.threads == 1 {
            // Degenerate team: the region *is* the caller's inline call,
            // so busy time equals wall time by construction.
            let t0 = timing.then(Instant::now);
            let r = catch_unwind(AssertUnwindSafe(|| f(0))).map_err(|p| {
                self.shared.contained.fetch_add(1, Ordering::Relaxed);
                RegionPanic { tid: 0, what: payload_msg(&*p) }
            });
            if let Some(t0) = t0 {
                let ns = t0.elapsed().as_nanos() as u64;
                self.records.lock().push(RegionMetrics {
                    threads: 1,
                    wall_ns: ns,
                    busy_ns: vec![ns],
                    line,
                    sched,
                });
            }
            return r;
        }
        // Admit one region at a time: concurrent sessions sharing this
        // pool queue here rather than overlapping teams. Panics inside
        // the region are caught before the guard drops, so the lock is
        // never abandoned mid-region.
        let _region = self.fork.lock();
        if timing {
            for slot in &self.shared.busy_ns {
                slot.store(0, Ordering::Relaxed);
            }
        }
        let region_start = timing.then(Instant::now);
        let erased: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: see `JobPtr` — we block until all workers are done with
        // the pointer before `f` can be dropped.
        let ptr = JobPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(erased)
                as *const _
        });
        {
            let mut st = self.shared.state.lock();
            debug_assert!(st.job.is_none(), "regions do not nest on one pool");
            self.shared.active.store(self.threads - 1, Ordering::Release);
            st.job = Some(ptr);
            st.generation += 1;
            self.shared.work_cv.notify_all();
        }
        // The caller is thread 0. Catch its panic too: unwinding out of
        // `run` while workers still hold the job pointer would free `f`
        // under them.
        let t0_start = timing.then(Instant::now);
        let t0 = catch_unwind(AssertUnwindSafe(|| f(0)));
        if let Some(s) = t0_start {
            self.shared.busy_ns[0].store(s.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        // Join: wait for workers — unconditionally, for soundness.
        {
            let mut st = self.shared.state.lock();
            while self.shared.active.load(Ordering::Acquire) != 0 {
                self.shared.done_cv.wait(&mut st);
            }
            st.job = None;
        }
        if let Some(s) = region_start {
            self.records.lock().push(RegionMetrics {
                threads: self.threads,
                wall_ns: s.elapsed().as_nanos() as u64,
                busy_ns: self.shared.busy_ns.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                line,
                sched,
            });
        }
        let mut caught: Vec<RegionPanic> = self.shared.panics.lock().drain(..).collect();
        if let Err(p) = t0 {
            self.shared.contained.fetch_add(1, Ordering::Relaxed);
            caught.push(RegionPanic { tid: 0, what: payload_msg(&*p) });
        }
        match caught.into_iter().min_by_key(|p| p.tid) {
            Some(p) => Err(p),
            None => Ok(()),
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, tid: usize) {
    let mut last_gen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != last_gen {
                    last_gen = st.generation;
                    break st.job.expect("generation bumped with job set");
                }
                shared.work_cv.wait(&mut st);
            }
        };
        // SAFETY: the pointer is valid for the duration of the generation —
        // `run` blocks until `active` hits zero.
        let t0 = shared.metrics_on.load(Ordering::Relaxed).then(Instant::now);
        let r = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(tid) }));
        if let Some(t0) = t0 {
            shared.busy_ns[tid].store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        if let Err(p) = r {
            shared.contained.fetch_add(1, Ordering::Relaxed);
            shared.panics.lock().push(RegionPanic { tid, what: payload_msg(&*p) });
        }
        // Decrement even after a panic — a hung join would be worse than
        // the panic itself.
        if shared.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = shared.state.lock();
            shared.done_cv.notify_one();
        }
    }
}

/// A registry of [`ThreadPool`]s keyed by team width, shared across
/// sessions so that N concurrent runs requesting `t` threads fork the
/// *same* `t`-wide pool instead of spawning `N × t` OS threads
/// (oversubscription). Cloning the returned `Arc` is the hand-off; pools
/// live until the set and every borrower drop them.
pub struct PoolSet {
    pools: Mutex<Vec<(usize, Arc<ThreadPool>)>>,
}

impl PoolSet {
    /// Creates an empty set; pools materialize lazily per width.
    pub fn new() -> Self {
        PoolSet { pools: Mutex::new(Vec::new()) }
    }

    /// Returns the shared pool presenting `threads` logical threads,
    /// creating it on first request. `threads == 0` is clamped to 1,
    /// matching [`ThreadPool::new`].
    pub fn pool_for(&self, threads: usize) -> Arc<ThreadPool> {
        let threads = threads.max(1);
        let mut pools = self.pools.lock();
        if let Some((_, p)) = pools.iter().find(|(t, _)| *t == threads) {
            return Arc::clone(p);
        }
        let p = Arc::new(ThreadPool::new(threads));
        pools.push((threads, Arc::clone(&p)));
        p
    }

    /// Team widths that have materialized, in creation order.
    pub fn widths(&self) -> Vec<usize> {
        self.pools.lock().iter().map(|(t, _)| *t).collect()
    }

    /// Total OS worker threads owned by the set (the caller thread of each
    /// fork is not an OS worker, so a `t`-wide pool contributes `t - 1`).
    pub fn os_workers(&self) -> usize {
        self.pools.lock().iter().map(|(t, _)| t - 1).sum()
    }

    /// Sum of [`ThreadPool::contained_panics`] over every pool in the set.
    pub fn contained_panics(&self) -> u64 {
        self.pools.lock().iter().map(|(_, p)| p.contained_panics()).sum()
    }
}

impl Default for PoolSet {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn every_thread_id_runs_once() {
        for t in [1usize, 2, 4, 8] {
            let pool = ThreadPool::new(t);
            let hits: Vec<AtomicU64> = (0..t).map(|_| AtomicU64::new(0)).collect();
            pool.run(|tid| {
                hits[tid].fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
            for (tid, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "thread {tid} of {t}");
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_regions() {
        let pool = ThreadPool::new(4);
        let total = AtomicU64::new(0);
        for _ in 0..100 {
            pool.run(|_tid| {
                total.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn borrows_local_data_soundly() {
        let pool = ThreadPool::new(3);
        let data = [1u64, 2, 3, 4, 5, 6];
        let sum = AtomicU64::new(0);
        pool.run(|tid| {
            for (i, v) in data.iter().enumerate() {
                if i % 3 == tid {
                    sum.fetch_add(*v, Ordering::Relaxed);
                }
            }
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 21);
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let ran = AtomicU64::new(0);
        pool.run(|tid| {
            assert_eq!(tid, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn results_deterministic_with_partitioned_writes() {
        // The partition derives from the pool size via `chunks_for`, so
        // the test stays correct for any team width.
        for t in [1usize, 3, 4, 7] {
            let pool = ThreadPool::new(t);
            let n = 1000;
            let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            pool.run(|tid| {
                for (lo, hi) in
                    crate::chunks_for(Schedule::StaticBlock, n, tid, pool.threads())
                {
                    for (i, slot) in out.iter().enumerate().take(hi).skip(lo) {
                        slot.store((i * i) as u64, Ordering::Relaxed);
                    }
                }
            })
            .unwrap();
            for (i, c) in out.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), (i * i) as u64, "threads={t}");
            }
        }
    }

    #[test]
    fn dispenser_covers_space_exactly_once_across_forked_region() {
        // Satellite coverage check: a *real* forked region drains the
        // dispenser from concurrent workers; every iteration must be
        // claimed exactly once (sequential consistency of the claim
        // protocol), for both runtime-dispatched kinds.
        for sched in [Schedule::Dynamic(3), Schedule::Guided(2)] {
            let pool = ThreadPool::new(4);
            let n = 10_000;
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            let disp = crate::Dispenser::new(sched, n, pool.threads());
            pool.run(|_tid| {
                while let Some((lo, hi)) = disp.claim() {
                    for slot in hits.iter().take(hi).skip(lo) {
                        slot.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
            .unwrap();
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "{sched:?} iteration {i}");
            }
        }
    }

    #[test]
    fn metrics_off_records_nothing() {
        let pool = ThreadPool::new(2);
        pool.run(|_tid| {}).unwrap();
        assert!(pool.take_metrics().is_empty());
    }

    #[test]
    fn metrics_record_one_region_per_fork() {
        for t in [1usize, 4] {
            let pool = ThreadPool::new(t);
            pool.set_metrics(true);
            for _ in 0..3 {
                pool.run(|_tid| {
                    // Make busy time observable on coarse clocks.
                    std::thread::sleep(std::time::Duration::from_millis(2));
                })
                .unwrap();
            }
            pool.set_metrics(false);
            pool.run(|_tid| {}).unwrap();
            let recs = pool.take_metrics();
            assert_eq!(recs.len(), 3, "threads={t}");
            for m in &recs {
                assert_eq!(m.threads, t);
                assert_eq!(m.busy_ns.len(), t);
                assert!(m.wall_ns > 0);
                // Every thread ran the closure, so every slot is busy.
                for (tid, b) in m.busy_ns.iter().enumerate() {
                    assert!(*b > 0, "threads={t} tid={tid}");
                }
                assert!(m.utilization() > 0.0 && m.utilization() <= 1.0);
                assert!(m.imbalance() >= 1.0);
            }
            // Drained: a second take is empty.
            assert!(pool.take_metrics().is_empty());
        }
    }

    #[test]
    fn worker_panic_is_contained_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let err = pool
            .run(|tid| {
                if tid == 2 {
                    panic!("worker {tid} exploded");
                }
            })
            .unwrap_err();
        assert_eq!(err.tid, 2);
        assert!(err.what.contains("exploded"), "payload: {}", err.what);
        // Self-heal: the same pool serves later regions on all threads.
        let hits: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        pool.run(|tid| {
            hits[tid].fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn thread_zero_panic_still_joins_workers() {
        let pool = ThreadPool::new(3);
        let worker_hits = AtomicU64::new(0);
        let err = pool
            .run(|tid| {
                if tid == 0 {
                    panic!("master exploded");
                }
                worker_hits.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap_err();
        assert_eq!(err.tid, 0);
        assert_eq!(worker_hits.load(Ordering::Relaxed), 2, "join completed on workers");
        // Pool stays healthy.
        pool.run(|_tid| {}).unwrap();
    }

    #[test]
    fn lowest_tid_panic_wins_when_several_fire() {
        let pool = ThreadPool::new(4);
        let err = pool
            .run(|tid| {
                if tid >= 1 {
                    panic!("boom {tid}");
                }
            })
            .unwrap_err();
        assert_eq!(err.tid, 1);
        assert!(err.what.contains("boom 1"));
    }

    #[test]
    fn contained_panics_counts_every_catch_and_is_monotone() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.contained_panics(), 0);
        let _ = pool.run(|tid| {
            if tid >= 2 {
                panic!("boom");
            }
        });
        assert_eq!(pool.contained_panics(), 2, "both panicking workers counted");
        pool.run(|_tid| {}).unwrap();
        assert_eq!(pool.contained_panics(), 2, "clean region leaves the count alone");
        let _ = pool.run(|tid| {
            if tid == 0 {
                panic!("master boom");
            }
        });
        assert_eq!(pool.contained_panics(), 3, "thread-0 catch counted too");
        // Single-thread degenerate path.
        let solo = ThreadPool::new(1);
        let _ = solo.run(|_tid| panic!("inline boom"));
        assert_eq!(solo.contained_panics(), 1);
    }

    #[test]
    fn poolset_shares_one_pool_per_width() {
        let set = PoolSet::new();
        let a = set.pool_for(4);
        let b = set.pool_for(4);
        assert!(Arc::ptr_eq(&a, &b), "same width -> same pool");
        assert_eq!(a.threads(), 4);
        let c = set.pool_for(2);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(set.widths(), vec![4, 2]);
        assert_eq!(set.os_workers(), 3 + 1);
        // Clamp matches ThreadPool::new.
        assert_eq!(set.pool_for(0).threads(), 1);
        // Health probe aggregates across pools.
        let _ = a.run(|tid| {
            if tid == 1 {
                panic!("boom");
            }
        });
        assert_eq!(set.contained_panics(), 1);
    }

    #[test]
    fn concurrent_callers_on_one_pool_serialize_regions() {
        // 8 OS threads all fork regions on the same 4-thread pool. The
        // fork lock admits one region at a time, so every region sees a
        // quiescent pool: its 4 increments land before the next begins.
        let pool = Arc::new(ThreadPool::new(4));
        let total = Arc::new(AtomicU64::new(0));
        let in_region = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (pool, total, in_region) = (pool.clone(), total.clone(), in_region.clone());
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        pool.run(|tid| {
                            if tid == 0 {
                                // Only one forking caller may be inside.
                                assert_eq!(in_region.fetch_add(1, Ordering::SeqCst), 0);
                            }
                            total.fetch_add(1, Ordering::Relaxed);
                            if tid == 0 {
                                in_region.fetch_sub(1, Ordering::SeqCst);
                            }
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 8 * 25 * 4);
        assert_eq!(pool.contained_panics(), 0);
    }
}
