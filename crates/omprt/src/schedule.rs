//! Loop scheduling: `SCHEDULE(STATIC|DYNAMIC|GUIDED[, chunk])`.
//!
//! Static kinds partition the iteration space up front with
//! [`chunks_for`]; dynamic and guided kinds dispatch chunks at run time
//! through the lock-free [`Dispenser`]. For deterministic replay
//! (Simulated mode, owner maps) the dynamic/guided kinds also have a
//! *canonical* static partition — [`chunks_for`] assigns the claim
//! sequence round-robin to threads, which covers the same chunks the
//! dispenser would hand out, just with a fixed owner per chunk.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Loop schedule kinds supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[derive(Default)]
pub enum Schedule {
    /// One contiguous block per thread (OpenMP `STATIC` without a chunk).
    #[default]
    StaticBlock,
    /// Round-robin chunks of the given size (`STATIC, chunk`).
    StaticChunk(usize),
    /// First-come-first-served chunks of the given size (`DYNAMIC[, chunk]`,
    /// default chunk 1), claimed via an atomic fetch-add.
    Dynamic(usize),
    /// Geometrically decaying chunks with the given minimum size
    /// (`GUIDED[, chunk]`, default minimum 1), claimed via a CAS loop.
    Guided(usize),
}

impl Schedule {
    /// The schedule family name: `static`, `dynamic` or `guided`.
    pub fn name(&self) -> &'static str {
        match self {
            Schedule::StaticBlock | Schedule::StaticChunk(_) => "static",
            Schedule::Dynamic(_) => "dynamic",
            Schedule::Guided(_) => "guided",
        }
    }

    /// Render as an OpenMP-style clause body, e.g. `static`, `static,8`,
    /// `dynamic,1`, `guided,4`.
    pub fn render(&self) -> String {
        match self {
            Schedule::StaticBlock => "static".to_string(),
            Schedule::StaticChunk(c) => format!("static,{}", c.max(&1)),
            Schedule::Dynamic(c) => format!("dynamic,{}", c.max(&1)),
            Schedule::Guided(c) => format!("guided,{}", c.max(&1)),
        }
    }

    /// Whether chunks are claimed at run time (dynamic/guided) rather
    /// than partitioned up front (static).
    pub fn is_runtime_dispatched(&self) -> bool {
        matches!(self, Schedule::Dynamic(_) | Schedule::Guided(_))
    }

    /// Legalizes the schedule for a loop that stages data through
    /// per-thread (threadprivate) storage. Cross-region write→read
    /// consistency through such storage holds only when the same thread
    /// executes the same iterations every time the loop shape recurs —
    /// the guarantee OpenMP gives for static schedules and explicitly
    /// withholds for dynamic/guided, whose iteration→thread mapping is
    /// first-come-first-served. Dynamic and guided therefore fall back
    /// to the static block default; static schedules pass through.
    pub fn legalize_for_per_thread(self) -> Schedule {
        if self.is_runtime_dispatched() {
            Schedule::StaticBlock
        } else {
            self
        }
    }
}

/// The deterministic guided chunk sequence over `n` iterations for a
/// team of `threads`: each chunk is `remaining / (2 * threads)` clamped
/// to at least `min_chunk` and at most the remaining count.
///
/// The dispenser's CAS serializes claims, so concurrent workers carve
/// the space into exactly this sequence of `(lo, hi)` ranges — only the
/// *owner* of each chunk is racy, never the chunk boundaries.
pub fn guided_chunks(n: usize, threads: usize, min_chunk: usize) -> Vec<(usize, usize)> {
    let threads = threads.max(1);
    let min_chunk = min_chunk.max(1);
    let mut out = Vec::new();
    let mut lo = 0usize;
    while lo < n {
        let remaining = n - lo;
        let chunk = (remaining / (2 * threads)).max(min_chunk).min(remaining);
        out.push((lo, lo + chunk));
        lo += chunk;
    }
    out
}

/// Lock-free iteration dispenser for the dynamic and guided schedules.
///
/// Workers call [`Dispenser::claim`] in a loop until it returns `None`.
/// Every iteration in `0..n` is handed out exactly once across the
/// team; for `Guided` the chunk *boundaries* match [`guided_chunks`]
/// regardless of which worker claims which chunk.
#[derive(Debug)]
pub struct Dispenser {
    next: AtomicUsize,
    n: usize,
    threads: usize,
    sched: Schedule,
}

impl Dispenser {
    /// A dispenser over `n` iterations for a team of `threads`.
    ///
    /// Static schedules are accepted for uniformity and behave like
    /// `Dynamic` with the equivalent chunk size (block schedules use
    /// one `n/threads`-sized chunk floor-ed at 1).
    pub fn new(sched: Schedule, n: usize, threads: usize) -> Dispenser {
        Dispenser { next: AtomicUsize::new(0), n, threads: threads.max(1), sched }
    }

    /// Fixed chunk size for the non-guided kinds.
    fn fixed_chunk(&self) -> usize {
        match self.sched {
            Schedule::StaticBlock => (self.n / self.threads).max(1),
            Schedule::StaticChunk(c) | Schedule::Dynamic(c) => c.max(1),
            Schedule::Guided(_) => unreachable!("guided uses the CAS path"),
        }
    }

    /// Claim the next chunk, or `None` once the space is exhausted.
    pub fn claim(&self) -> Option<(usize, usize)> {
        if let Schedule::Guided(min_chunk) = self.sched {
            let min_chunk = min_chunk.max(1);
            loop {
                let lo = self.next.load(Ordering::Acquire);
                if lo >= self.n {
                    return None;
                }
                let remaining = self.n - lo;
                let chunk =
                    (remaining / (2 * self.threads)).max(min_chunk).min(remaining);
                match self.next.compare_exchange_weak(
                    lo,
                    lo + chunk,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return Some((lo, lo + chunk)),
                    Err(_) => continue,
                }
            }
        }
        let chunk = self.fixed_chunk();
        let lo = self.next.fetch_add(chunk, Ordering::AcqRel);
        if lo >= self.n {
            // Park the counter so repeated drained claims cannot
            // overflow the atomic no matter how often they retry.
            self.next.store(self.n, Ordering::Release);
            return None;
        }
        Some((lo, (lo + chunk).min(self.n)))
    }
}

/// The iteration chunks (as half-open `lo..hi` index ranges over a
/// zero-based iteration space of `n` iterations) owned by thread `tid` of
/// `threads`.
///
/// For `Dynamic` and `Guided` this is the *canonical* owner assignment
/// used by Simulated mode and owner maps: the dispenser's chunk
/// sequence dealt round-robin to threads. Real parallel runs claim the
/// same chunks first-come-first-served.
pub fn chunks_for(sched: Schedule, n: usize, tid: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.max(1);
    debug_assert!(tid < threads);
    match sched {
        Schedule::StaticBlock => {
            // Balanced blocks: the first `rem` threads get one extra
            // iteration.
            let base = n / threads;
            let rem = n % threads;
            let lo = tid * base + tid.min(rem);
            let len = base + usize::from(tid < rem);
            if len == 0 {
                vec![]
            } else {
                vec![(lo, lo + len)]
            }
        }
        Schedule::StaticChunk(chunk) | Schedule::Dynamic(chunk) => {
            let chunk = chunk.max(1);
            let mut out = Vec::new();
            let mut start = tid * chunk;
            while start < n {
                out.push((start, (start + chunk).min(n)));
                start += threads * chunk;
            }
            out
        }
        Schedule::Guided(min_chunk) => guided_chunks(n, threads, min_chunk)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % threads == tid)
            .map(|(_, c)| c)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn covers_exactly(sched: Schedule, n: usize, threads: usize) {
        let mut seen = vec![0u32; n];
        for tid in 0..threads {
            for (lo, hi) in chunks_for(sched, n, tid, threads) {
                assert!(lo <= hi && hi <= n);
                for slot in seen.iter_mut().take(hi).skip(lo) {
                    *slot += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{sched:?} n={n} t={threads}: {seen:?}");
    }

    #[test]
    fn legalize_demotes_dispatched_kinds_only() {
        assert_eq!(Schedule::Dynamic(3).legalize_for_per_thread(), Schedule::StaticBlock);
        assert_eq!(Schedule::Guided(2).legalize_for_per_thread(), Schedule::StaticBlock);
        assert_eq!(Schedule::StaticBlock.legalize_for_per_thread(), Schedule::StaticBlock);
        assert_eq!(
            Schedule::StaticChunk(4).legalize_for_per_thread(),
            Schedule::StaticChunk(4)
        );
    }

    /// All schedule kinds exercised by the edge-case tests below.
    fn all_kinds(chunk: usize) -> Vec<Schedule> {
        vec![
            Schedule::StaticBlock,
            Schedule::StaticChunk(chunk),
            Schedule::Dynamic(chunk),
            Schedule::Guided(chunk),
        ]
    }

    #[test]
    fn block_schedule_balanced() {
        // 10 iterations over 4 threads: 3,3,2,2.
        let lens: Vec<usize> = (0..4)
            .map(|t| {
                chunks_for(Schedule::StaticBlock, 10, t, 4)
                    .iter()
                    .map(|(lo, hi)| hi - lo)
                    .sum()
            })
            .collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
    }

    #[test]
    fn empty_iteration_space() {
        for sched in all_kinds(4) {
            for tid in 0..4 {
                assert!(
                    chunks_for(sched, 0, tid, 4).is_empty(),
                    "{sched:?} tid={tid}"
                );
            }
            let d = Dispenser::new(sched, 0, 4);
            assert_eq!(d.claim(), None, "{sched:?}");
            assert_eq!(d.claim(), None, "{sched:?} repeated claim");
        }
    }

    #[test]
    fn more_threads_than_iterations() {
        for sched in all_kinds(2) {
            covers_exactly(sched, 3, 8);
        }
    }

    #[test]
    fn chunk_larger_than_space() {
        // chunk > n: one chunk, clamped to the space.
        for sched in [Schedule::StaticChunk(64), Schedule::Dynamic(64), Schedule::Guided(64)] {
            covers_exactly(sched, 5, 4);
            let owned: Vec<(usize, usize)> = (0..4)
                .flat_map(|t| chunks_for(sched, 5, t, 4))
                .collect();
            assert_eq!(owned, vec![(0, 5)], "{sched:?}");
        }
    }

    #[test]
    fn guided_chunks_decay_and_cover() {
        let seq = guided_chunks(100, 4, 1);
        // Contiguous cover of 0..100.
        assert_eq!(seq.first(), Some(&(0, 12)));
        assert_eq!(seq.last().map(|&(_, hi)| hi), Some(100));
        for w in seq.windows(2) {
            assert_eq!(w[0].1, w[1].0, "chunks contiguous");
            assert!(w[0].1 - w[0].0 >= w[1].1 - w[1].0, "chunks non-increasing");
        }
        // The minimum chunk is respected until the tail remnant.
        let seq = guided_chunks(100, 4, 8);
        for &(lo, hi) in &seq[..seq.len() - 1] {
            assert!(hi - lo >= 8);
        }
    }

    #[test]
    fn dispenser_sequential_drain_matches_canonical_chunks() {
        // Drained from one thread, the dispenser hands out exactly the
        // canonical chunk sequence in order.
        for sched in [Schedule::Dynamic(7), Schedule::Guided(3)] {
            let n = 95;
            let threads = 4;
            let d = Dispenser::new(sched, n, threads);
            let mut claimed = Vec::new();
            while let Some(c) = d.claim() {
                claimed.push(c);
            }
            let mut canonical: Vec<(usize, usize)> =
                (0..threads).flat_map(|t| chunks_for(sched, n, t, threads)).collect();
            canonical.sort_unstable();
            assert_eq!(claimed, canonical, "{sched:?}");
        }
    }

    proptest! {
        #[test]
        fn block_partitions(n in 0usize..200, threads in 1usize..17) {
            covers_exactly(Schedule::StaticBlock, n, threads);
        }

        #[test]
        fn chunked_partitions(n in 0usize..200, threads in 1usize..17, chunk in 1usize..9) {
            covers_exactly(Schedule::StaticChunk(chunk), n, threads);
        }

        #[test]
        fn dynamic_partitions(n in 0usize..200, threads in 1usize..17, chunk in 1usize..9) {
            covers_exactly(Schedule::Dynamic(chunk), n, threads);
        }

        #[test]
        fn guided_partitions(n in 0usize..200, threads in 1usize..17, chunk in 1usize..9) {
            covers_exactly(Schedule::Guided(chunk), n, threads);
        }

        #[test]
        fn dispenser_drains_exactly_once(
            n in 0usize..200, threads in 1usize..17, chunk in 1usize..9, guided in 0usize..2,
        ) {
            let sched = if guided == 1 { Schedule::Guided(chunk) } else { Schedule::Dynamic(chunk) };
            let d = Dispenser::new(sched, n, threads);
            let mut seen = vec![0u32; n];
            while let Some((lo, hi)) = d.claim() {
                prop_assert!(lo < hi && hi <= n);
                for slot in seen.iter_mut().take(hi).skip(lo) {
                    *slot += 1;
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1));
        }
    }
}
