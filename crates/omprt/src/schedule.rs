//! Static loop scheduling: `SCHEDULE(STATIC[, chunk])`.

/// Loop schedule kinds supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub enum Schedule {
    /// One contiguous block per thread (OpenMP `STATIC` without a chunk).
    #[default]
    StaticBlock,
    /// Round-robin chunks of the given size (`STATIC, chunk`).
    StaticChunk(usize),
}


/// The iteration chunks (as half-open `lo..hi` index ranges over a
/// zero-based iteration space of `n` iterations) owned by thread `tid` of
/// `threads`.
pub fn chunks_for(sched: Schedule, n: usize, tid: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.max(1);
    debug_assert!(tid < threads);
    match sched {
        Schedule::StaticBlock => {
            // Balanced blocks: the first `rem` threads get one extra
            // iteration.
            let base = n / threads;
            let rem = n % threads;
            let lo = tid * base + tid.min(rem);
            let len = base + usize::from(tid < rem);
            if len == 0 {
                vec![]
            } else {
                vec![(lo, lo + len)]
            }
        }
        Schedule::StaticChunk(chunk) => {
            let chunk = chunk.max(1);
            let mut out = Vec::new();
            let mut start = tid * chunk;
            while start < n {
                out.push((start, (start + chunk).min(n)));
                start += threads * chunk;
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn covers_exactly(sched: Schedule, n: usize, threads: usize) {
        let mut seen = vec![0u32; n];
        for tid in 0..threads {
            for (lo, hi) in chunks_for(sched, n, tid, threads) {
                assert!(lo <= hi && hi <= n);
                for slot in seen.iter_mut().take(hi).skip(lo) {
                    *slot += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{sched:?} n={n} t={threads}: {seen:?}");
    }

    #[test]
    fn block_schedule_balanced() {
        // 10 iterations over 4 threads: 3,3,2,2.
        let lens: Vec<usize> = (0..4)
            .map(|t| {
                chunks_for(Schedule::StaticBlock, 10, t, 4)
                    .iter()
                    .map(|(lo, hi)| hi - lo)
                    .sum()
            })
            .collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
    }

    #[test]
    fn empty_iteration_space() {
        assert!(chunks_for(Schedule::StaticBlock, 0, 0, 4).is_empty());
        assert!(chunks_for(Schedule::StaticChunk(4), 0, 3, 4).is_empty());
    }

    #[test]
    fn more_threads_than_iterations() {
        covers_exactly(Schedule::StaticBlock, 3, 8);
        covers_exactly(Schedule::StaticChunk(2), 3, 8);
    }

    proptest! {
        #[test]
        fn block_partitions(n in 0usize..200, threads in 1usize..17) {
            covers_exactly(Schedule::StaticBlock, n, threads);
        }

        #[test]
        fn chunked_partitions(n in 0usize..200, threads in 1usize..17, chunk in 1usize..9) {
            covers_exactly(Schedule::StaticChunk(chunk), n, threads);
        }
    }
}
