//! A sense-reversing barrier for in-region synchronization.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// A reusable barrier for a fixed team size. Unlike `std::sync::Barrier`
/// this one is spin+yield based (regions are short) and exposes the
/// "serial thread" return like OpenMP's implicit barriers do.
pub struct Barrier {
    team: usize,
    count: AtomicUsize,
    sense: AtomicBool,
    /// Lifetime total of `wait` arrivals, for utilization reports.
    waits: AtomicU64,
}

impl Barrier {
    pub fn new(team: usize) -> Self {
        Barrier {
            team: team.max(1),
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            waits: AtomicU64::new(0),
        }
    }

    /// Total arrivals observed so far: each thread's `wait` call counts
    /// once, so a full barrier phase adds `team`.
    pub fn wait_count(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }

    /// Waits until all `team` threads arrive. Returns `true` on exactly one
    /// thread (the last to arrive).
    pub fn wait(&self) -> bool {
        self.waits.fetch_add(1, Ordering::Relaxed);
        let my_sense = !self.sense.load(Ordering::Relaxed);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.team {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
            true
        } else {
            while self.sense.load(Ordering::Acquire) != my_sense {
                std::thread::yield_now();
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_thread_barrier_is_noop() {
        let b = Barrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    fn barrier_orders_phases() {
        let t = 4;
        let pool = ThreadPool::new(t);
        let barrier = Barrier::new(t);
        let phase1 = AtomicU64::new(0);
        let observed_at_phase2: Vec<AtomicU64> = (0..t).map(|_| AtomicU64::new(0)).collect();
        pool.run(|tid| {
            phase1.fetch_add(1, Ordering::Relaxed);
            barrier.wait();
            // After the barrier every thread must see all phase-1 work.
            observed_at_phase2[tid].store(phase1.load(Ordering::Relaxed), Ordering::Relaxed);
        })
        .unwrap();
        for o in &observed_at_phase2 {
            assert_eq!(o.load(Ordering::Relaxed), t as u64);
        }
    }

    #[test]
    fn wait_count_tracks_arrivals() {
        let t = 4;
        let pool = ThreadPool::new(t);
        let barrier = Barrier::new(t);
        assert_eq!(barrier.wait_count(), 0);
        pool.run(|_tid| {
            for _ in 0..5 {
                barrier.wait();
            }
        })
        .unwrap();
        assert_eq!(barrier.wait_count(), 5 * t as u64);
    }

    #[test]
    fn exactly_one_last_arriver_per_phase() {
        let t = 4;
        let pool = ThreadPool::new(t);
        let barrier = Barrier::new(t);
        let lasts = AtomicU64::new(0);
        pool.run(|_tid| {
            for _ in 0..10 {
                if barrier.wait() {
                    lasts.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
        .unwrap();
        assert_eq!(lasts.load(Ordering::Relaxed), 10);
    }
}
