//! Per-region utilization metrics.
//!
//! The [`crate::pool::ThreadPool`] can account, per fork-join region, how
//! long each team thread spent inside the region closure versus the
//! region's fork-to-join wall time. Collection is off by default and
//! switched with [`crate::pool::ThreadPool::set_metrics`]; while off, the
//! only residue in the hot path is one relaxed atomic load per region.

use crate::schedule::Schedule;

/// Utilization record for one parallel region (one fork-join).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionMetrics {
    /// Logical team size (caller as thread 0, plus workers).
    pub threads: usize,
    /// Fork-to-join wall time of the region, in nanoseconds.
    pub wall_ns: u64,
    /// Per-thread busy time inside the region closure, indexed by tid.
    pub busy_ns: Vec<u64>,
    /// Source line of the parallel construct that forked the region
    /// (0 when the caller did not tag the fork).
    pub line: u32,
    /// Loop schedule the region ran under.
    pub sched: Schedule,
}

impl RegionMetrics {
    /// Total idle time summed over the team: the capacity
    /// `threads * wall` minus the busy time actually used.
    pub fn idle_ns(&self) -> u64 {
        let cap = self.wall_ns.saturating_mul(self.threads as u64);
        cap.saturating_sub(self.busy_ns.iter().sum())
    }

    /// Mean busy fraction of the team, in [0, 1].
    pub fn utilization(&self) -> f64 {
        let cap = self.wall_ns.saturating_mul(self.threads as u64);
        if cap == 0 {
            return 0.0;
        }
        let busy: u64 = self.busy_ns.iter().sum();
        (busy as f64 / cap as f64).min(1.0)
    }

    /// Max-over-mean busy time — 1.0 means a perfectly balanced team.
    pub fn imbalance(&self) -> f64 {
        let max = self.busy_ns.iter().copied().max().unwrap_or(0);
        let n = self.busy_ns.len().max(1) as f64;
        let mean = self.busy_ns.iter().sum::<u64>() as f64 / n;
        if mean == 0.0 {
            return 1.0;
        }
        max as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(threads: usize, wall_ns: u64, busy_ns: Vec<u64>) -> RegionMetrics {
        RegionMetrics { threads, wall_ns, busy_ns, line: 0, sched: Schedule::default() }
    }

    #[test]
    fn derived_ratios() {
        let m = metrics(2, 100, vec![100, 50]);
        assert_eq!(m.idle_ns(), 50);
        assert!((m.utilization() - 0.75).abs() < 1e-12);
        assert!((m.imbalance() - 100.0 / 75.0).abs() < 1e-12);
    }

    #[test]
    fn empty_region_is_defined() {
        let m = metrics(4, 0, vec![0; 4]);
        assert_eq!(m.idle_ns(), 0);
        assert_eq!(m.utilization(), 0.0);
        assert_eq!(m.imbalance(), 1.0);
    }
}
