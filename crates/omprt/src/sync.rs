//! Synchronization primitives: atomic update cells and critical sections.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, MutexGuard};

/// A lock-free f64 cell supporting the update forms `!$OMP ATOMIC`
/// protects: add, mul, max, min. Stored as IEEE-754 bits in an
/// `AtomicU64`; updates are CAS loops.
#[derive(Debug, Default)]
pub struct AtomicF64Cell(AtomicU64);

impl AtomicF64Cell {
    pub fn new(v: f64) -> Self {
        AtomicF64Cell(AtomicU64::new(v.to_bits()))
    }

    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    pub fn store(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed)
    }

    fn update(&self, f: impl Fn(f64) -> f64) -> f64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = f(f64::from_bits(cur)).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return f64::from_bits(next),
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn fetch_add(&self, v: f64) -> f64 {
        self.update(|x| x + v)
    }

    pub fn fetch_mul(&self, v: f64) -> f64 {
        self.update(|x| x * v)
    }

    pub fn fetch_max(&self, v: f64) -> f64 {
        self.update(|x| x.max(v))
    }

    pub fn fetch_min(&self, v: f64) -> f64 {
        self.update(|x| x.min(v))
    }
}

/// The i64 counterpart of [`AtomicF64Cell`].
#[derive(Debug, Default)]
pub struct AtomicI64Cell(AtomicU64);

impl AtomicI64Cell {
    pub fn new(v: i64) -> Self {
        AtomicI64Cell(AtomicU64::new(v as u64))
    }

    pub fn load(&self) -> i64 {
        self.0.load(Ordering::Relaxed) as i64
    }

    pub fn store(&self, v: i64) {
        self.0.store(v as u64, Ordering::Relaxed)
    }

    fn update(&self, f: impl Fn(i64) -> i64) -> i64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = f(cur as i64) as u64;
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return next as i64,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn fetch_add(&self, v: i64) -> i64 {
        self.update(|x| x.wrapping_add(v))
    }

    pub fn fetch_max(&self, v: i64) -> i64 {
        self.update(|x| x.max(v))
    }

    pub fn fetch_min(&self, v: i64) -> i64 {
        self.update(|x| x.min(v))
    }
}

/// Named critical sections: `!$OMP CRITICAL (name)` maps every use of the
/// same name, program-wide, to one lock — exactly OpenMP's semantics
/// (unnamed criticals share the one anonymous lock).
#[derive(Debug, Default)]
pub struct CriticalRegistry {
    locks: Mutex<HashMap<String, &'static Mutex<()>>>,
}

impl CriticalRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Enters the critical section `name` (empty string = the anonymous
    /// section). The guard releases on drop.
    pub fn enter(&self, name: &str) -> MutexGuard<'static, ()> {
        let lock: &'static Mutex<()> = {
            let mut map = self.locks.lock();
            match map.get(name) {
                Some(l) => l,
                None => {
                    let l: &'static Mutex<()> = Box::leak(Box::new(Mutex::new(())));
                    map.insert(name.to_string(), l);
                    l
                }
            }
        };
        lock.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use proptest::prelude::*;

    #[test]
    fn atomic_f64_updates() {
        let c = AtomicF64Cell::new(1.0);
        c.fetch_add(2.5);
        assert_eq!(c.load(), 3.5);
        c.fetch_mul(2.0);
        assert_eq!(c.load(), 7.0);
        c.fetch_max(100.0);
        assert_eq!(c.load(), 100.0);
        c.fetch_min(-1.0);
        assert_eq!(c.load(), -1.0);
    }

    #[test]
    fn atomic_i64_updates() {
        let c = AtomicI64Cell::new(-5);
        assert_eq!(c.load(), -5);
        c.fetch_add(10);
        assert_eq!(c.load(), 5);
        c.fetch_max(3);
        assert_eq!(c.load(), 5);
        c.fetch_min(-7);
        assert_eq!(c.load(), -7);
    }

    #[test]
    fn concurrent_atomic_adds_lose_nothing() {
        let pool = ThreadPool::new(4);
        let cell = AtomicF64Cell::new(0.0);
        pool.run(|_tid| {
            for _ in 0..1000 {
                cell.fetch_add(1.0);
            }
        })
        .unwrap();
        assert_eq!(cell.load(), 4000.0);
    }

    #[test]
    fn critical_sections_exclude() {
        let pool = ThreadPool::new(4);
        let reg = CriticalRegistry::new();
        // A non-atomic counter mutated only inside the critical section.
        let counter = std::cell::UnsafeCell::new(0u64);
        struct Wrap(std::cell::UnsafeCell<u64>);
        unsafe impl Sync for Wrap {}
        let w = Wrap(counter);
        let wr = &w; // capture the Sync wrapper, not the raw field
        pool.run(|_tid| {
            for _ in 0..500 {
                let _g = reg.enter("upd");
                // SAFETY: serialized by the critical section.
                unsafe { *wr.0.get() += 1 };
            }
        })
        .unwrap();
        let _g = reg.enter("upd");
        assert_eq!(unsafe { *w.0.get() }, 2000);
    }

    #[test]
    fn distinct_names_distinct_locks() {
        let reg = CriticalRegistry::new();
        let g1 = reg.enter("a");
        // Entering a *different* name must not deadlock.
        let g2 = reg.enter("b");
        drop(g1);
        drop(g2);
    }

    proptest! {
        #[test]
        fn f64_bits_roundtrip(v in prop::num::f64::ANY) {
            let c = AtomicF64Cell::new(v);
            let got = c.load();
            prop_assert!(got == v || (got.is_nan() && v.is_nan()));
        }
    }
}
