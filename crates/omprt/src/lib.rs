//! # omprt — an OpenMP-runtime substrate
//!
//! The paper's generated FORTRAN relies on an OpenMP runtime (libgomp /
//! Intel's). The `fortrans` execution engine needs the same services, so
//! this crate provides them from scratch:
//!
//! * a **persistent worker pool** ([`pool::ThreadPool`]) with fork-join
//!   semantics — workers park between regions instead of being respawned,
//!   like a real OpenMP runtime;
//! * **loop scheduling** ([`schedule`]) — contiguous and round-robin
//!   chunked variants of `SCHEDULE(STATIC[,chunk])`, plus a lock-free
//!   iteration dispenser for `SCHEDULE(DYNAMIC)` / `SCHEDULE(GUIDED)`;
//! * **synchronization** ([`sync`]) — lock-free f64/i64 atomic update cells
//!   (CAS over `AtomicU64`) for `!$OMP ATOMIC`, and named critical-section
//!   registries for `!$OMP CRITICAL`;
//! * a **sense-reversing barrier** ([`barrier`]);
//! * **reduction combine** helpers ([`reduce`]);
//! * a **deadline watchdog** ([`watchdog`]) — a background thread firing
//!   callbacks (typically cancel tokens) when armed deadlines pass.
//!
//! Everything is exercised for correctness by tests (reductions, atomics,
//! barriers); wall-clock scaling is a property of the host — the paper's
//! performance *figures* are reproduced on the `simcpu` machine model.

pub mod barrier;
pub mod metrics;
pub mod pool;
pub mod reduce;
pub mod schedule;
pub mod sync;
pub mod watchdog;

pub use barrier::Barrier;
pub use metrics::RegionMetrics;
pub use pool::{PoolSet, RegionPanic, ThreadPool};
pub use reduce::{combine, fold_depth, RedIdentity};
pub use schedule::{chunks_for, guided_chunks, Dispenser, Schedule};
pub use sync::{AtomicF64Cell, AtomicI64Cell, CriticalRegistry};
pub use watchdog::Watchdog;
