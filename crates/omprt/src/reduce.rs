//! Reduction identities and combine, shared by the engine's
//! `REDUCTION(op: var)` handling.

/// The OpenMP reduction operators the GLAF pipeline generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedIdentity {
    SumF,
    ProdF,
    MaxF,
    MinF,
    SumI,
    ProdI,
    MaxI,
    MinI,
}

impl RedIdentity {
    /// The operator's identity element, as f64 bits or i64 depending on
    /// flavor (the engine stores both in u64 cells).
    pub fn identity_f(self) -> f64 {
        match self {
            RedIdentity::SumF => 0.0,
            RedIdentity::ProdF => 1.0,
            RedIdentity::MaxF => f64::NEG_INFINITY,
            RedIdentity::MinF => f64::INFINITY,
            _ => unreachable!("integer identity requested as float"),
        }
    }

    pub fn identity_i(self) -> i64 {
        match self {
            RedIdentity::SumI => 0,
            RedIdentity::ProdI => 1,
            RedIdentity::MaxI => i64::MIN,
            RedIdentity::MinI => i64::MAX,
            _ => unreachable!("float identity requested as integer"),
        }
    }

    pub fn combine_f(self, a: f64, b: f64) -> f64 {
        match self {
            RedIdentity::SumF => a + b,
            RedIdentity::ProdF => a * b,
            RedIdentity::MaxF => a.max(b),
            RedIdentity::MinF => a.min(b),
            _ => unreachable!(),
        }
    }

    pub fn combine_i(self, a: i64, b: i64) -> i64 {
        match self {
            RedIdentity::SumI => a.wrapping_add(b),
            RedIdentity::ProdI => a.wrapping_mul(b),
            RedIdentity::MaxI => a.max(b),
            RedIdentity::MinI => a.min(b),
            _ => unreachable!(),
        }
    }
}

/// Number of combine applications the runtime performs to fold a team of
/// `team` partials. The current combiner is a linear left fold over the
/// identity, so the depth is `team` applications (0 for an empty team);
/// observability reports expose this so a future tree combiner shows up
/// as a depth change rather than silently.
pub fn fold_depth(team: usize) -> usize {
    team
}

/// Folds per-thread partial results (float flavor).
pub fn combine(op: RedIdentity, partials: &[f64]) -> f64 {
    partials
        .iter()
        .copied()
        .fold(op.identity_f(), |a, b| op.combine_f(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identities() {
        assert_eq!(RedIdentity::SumF.identity_f(), 0.0);
        assert_eq!(RedIdentity::ProdF.identity_f(), 1.0);
        assert_eq!(RedIdentity::MaxI.identity_i(), i64::MIN);
        assert_eq!(RedIdentity::MinI.identity_i(), i64::MAX);
    }

    #[test]
    fn fold_depth_is_linear_in_team() {
        assert_eq!(fold_depth(0), 0);
        assert_eq!(fold_depth(1), 1);
        assert_eq!(fold_depth(8), 8);
    }

    #[test]
    fn combine_folds() {
        assert_eq!(combine(RedIdentity::SumF, &[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(combine(RedIdentity::MaxF, &[1.0, 5.0, 3.0]), 5.0);
        assert_eq!(combine(RedIdentity::MinF, &[1.0, 5.0, 3.0]), 1.0);
        assert_eq!(combine(RedIdentity::ProdF, &[2.0, 4.0]), 8.0);
        assert_eq!(combine(RedIdentity::SumF, &[]), 0.0);
    }

    proptest! {
        /// Partitioned reduction equals sequential reduction (up to fp
        /// associativity — use integers-as-floats to sidestep rounding).
        #[test]
        fn partitioned_sum_matches(vals in prop::collection::vec(-100i64..100, 0..64), cut in 0usize..64) {
            let vals: Vec<f64> = vals.into_iter().map(|v| v as f64).collect();
            let cut = cut.min(vals.len());
            let p1: f64 = vals[..cut].iter().sum();
            let p2: f64 = vals[cut..].iter().sum();
            let whole: f64 = vals.iter().sum();
            prop_assert_eq!(combine(RedIdentity::SumF, &[p1, p2]), whole);
        }

        #[test]
        fn max_is_order_insensitive(vals in prop::collection::vec(prop::num::f64::NORMAL, 1..32)) {
            let mut rev = vals.clone();
            rev.reverse();
            prop_assert_eq!(
                combine(RedIdentity::MaxF, &vals),
                combine(RedIdentity::MaxF, &rev)
            );
        }
    }
}
