//! The FORTRAN code generator.
//!
//! Emits one free-form FORTRAN 90 `MODULE` per GLAF module, containing one
//! `SUBROUTINE`/`FUNCTION` per GLAF function, with all the §3 integration
//! features (USE, COMMON, TYPE elements, module-scope variables, SAVE) and
//! OpenMP directives placed according to the auto-parallelization plan and
//! the directive policy.
//!
//! The output is accepted verbatim by the `fortrans` execution substrate —
//! the integration tests parse, run and compare it against the original
//! legacy sources, mirroring the paper's §4.1.1 methodology.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write;

use glaf_autopar::{LoopPlan, ProgramPlan};
use glaf_grid::{DataType, ElemType, Grid, GridOrigin, InitData, IntegrationAttr, Layout};
use glaf_ir::{
    BinOp, Callee, Expr, Function, GlafModule, LValue, LoopNest, Program, StepBody, Stmt, UnOp,
};

use crate::policy::CodegenOptions;

/// Generates FORTRAN source for the whole program.
pub fn generate_fortran(program: &Program, plan: &ProgramPlan, opts: &CodegenOptions) -> String {
    let atomic_grids = union_atomic_grids(program, plan, opts);
    let mut out = String::new();
    for module in &program.modules {
        emit_module(&mut out, program, module, plan, opts, &atomic_grids);
    }
    out
}

/// Generates just one function (useful for golden tests and SLOC counts).
pub fn generate_fortran_function(
    program: &Program,
    module: &GlafModule,
    function: &Function,
    plan: &ProgramPlan,
    opts: &CodegenOptions,
) -> String {
    let atomic_grids = union_atomic_grids(program, plan, opts);
    let mut out = String::new();
    emit_function(&mut out, program, module, function, plan, opts, &atomic_grids, 1);
    out
}

/// Atomic-protected grids: union of the atomic sets of exactly the loops
/// that *receive a directive* under the active policy. Any accumulation
/// into one of these, anywhere, gets `!$OMP ATOMIC` — the update may live
/// in a callee while the directive sits on the caller's loop (§4.2.1).
fn union_atomic_grids(
    program: &Program,
    plan: &ProgramPlan,
    opts: &CodegenOptions,
) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for module in &program.modules {
        for func in &module.functions {
            let Some(fplan) = plan.for_function(&func.name) else { continue };
            for (step_index, step) in func.steps.iter().enumerate() {
                let StepBody::Loop(nest) = &step.body else { continue };
                let Some(lp) = fplan.for_step(step_index) else { continue };
                if opts.directive_for(&func.name, nest, lp) {
                    out.extend(lp.atomic.iter().cloned());
                }
            }
        }
    }
    out.extend(opts.force_atomic.iter().cloned());
    out
}

fn emit_module(
    out: &mut String,
    program: &Program,
    module: &GlafModule,
    plan: &ProgramPlan,
    opts: &CodegenOptions,
    atomic_grids: &BTreeSet<String>,
) {
    let _ = writeln!(out, "MODULE {}", module.name);

    // USE statements for existing modules referenced by global grids.
    let mut used: BTreeSet<&str> = BTreeSet::new();
    for g in &module.globals {
        if let Some(m) = g.origin.use_module() {
            used.insert(m);
        }
    }
    for m in &used {
        let _ = writeln!(out, "  USE {m}");
    }
    let _ = writeln!(out, "  IMPLICIT NONE");

    // Derived TYPE definitions for AoS struct grids (module scope and
    // local alike are declared here so subprograms can use them).
    let mut declared_types: BTreeSet<String> = BTreeSet::new();
    for g in module
        .globals
        .iter()
        .chain(module.functions.iter().flat_map(|f| f.grids.iter()))
    {
        if let ElemType::Struct(fields) = &g.elem {
            if g.layout == Layout::AoS && declared_types.insert(g.name.clone()) {
                let _ = writeln!(out, "  TYPE {}_t", g.name);
                for f in fields {
                    let _ = writeln!(out, "    {} :: {}", f.ty.fortran_name(), f.name);
                }
                let _ = writeln!(out, "  END TYPE {}_t", g.name);
            }
        }
    }

    // Module-scope grids: declared and initialized by GLAF (§3.3).
    for g in &module.globals {
        if g.origin == GridOrigin::ModuleScope {
            if let Some(c) = &g.comment {
                let _ = writeln!(out, "  ! {c}");
            }
            for line in declaration_lines(g) {
                let _ = writeln!(out, "  {line}");
            }
            if opts.threadprivate.contains(&g.name) {
                let _ = writeln!(out, "  !$OMP THREADPRIVATE({})", g.name);
            }
        }
    }

    let _ = writeln!(out, "CONTAINS");
    for f in &module.functions {
        let _ = writeln!(out);
        emit_function(out, program, module, f, plan, opts, atomic_grids, 1);
    }
    let _ = writeln!(out, "END MODULE {}", module.name);
}

/// All declaration lines for a grid (type line; possibly field arrays for
/// SoA structs).
fn declaration_lines(g: &Grid) -> Vec<String> {
    let dims = dim_spec(g);
    match &g.elem {
        ElemType::Uniform(t) => vec![one_declaration(*t, &dims, g)],
        ElemType::Struct(fields) => match g.layout {
            Layout::AoS => {
                let mut attrs = String::new();
                if !g.dims.is_empty() {
                    let _ = write!(attrs, ", DIMENSION({dims})");
                }
                if g.save {
                    attrs.push_str(", SAVE");
                }
                vec![format!("TYPE({}_t){attrs} :: {}", g.name, g.name)]
            }
            Layout::SoA => fields
                .iter()
                .map(|f| {
                    let mut line = f.ty.fortran_name().to_string();
                    if !g.dims.is_empty() {
                        let _ = write!(line, ", DIMENSION({dims})");
                    }
                    if g.save {
                        line.push_str(", SAVE");
                    }
                    let _ = write!(line, " :: {}_{}", g.name, f.name);
                    line
                })
                .collect(),
        },
    }
}

fn one_declaration(t: DataType, dims: &str, g: &Grid) -> String {
    let mut line = t.fortran_name().to_string();
    if !g.dims.is_empty() {
        if g.allocatable {
            let colons = vec![":"; g.dims.len()].join(",");
            let _ = write!(line, ", DIMENSION({colons}), ALLOCATABLE");
        } else {
            let _ = write!(line, ", DIMENSION({dims})");
        }
    }
    if g.save {
        line.push_str(", SAVE");
    }
    let _ = write!(line, " :: {}", g.name);
    if let (true, Some(init)) = (g.dims.is_empty(), &g.init) {
        match init {
            InitData::UniformInt(v) => {
                let _ = write!(line, " = {v}");
            }
            InitData::UniformReal(v) => {
                let _ = write!(line, " = {}", real_literal(*v));
            }
            InitData::Explicit(_) => {}
        }
    }
    line
}

fn dim_spec(g: &Grid) -> String {
    g.dims
        .iter()
        .map(|d| format!("{}:{}", d.lo, d.hi))
        .collect::<Vec<_>>()
        .join(",")
}

fn real_literal(v: f64) -> String {
    // 1.5 -> "1.5D0", 0.001 -> "1D-3": shortest round-trip mantissa with a
    // FORTRAN double-precision exponent marker.
    let s = format!("{v:e}");
    s.replacen('e', "D", 1)
}

#[allow(clippy::too_many_arguments)]
fn emit_function(
    out: &mut String,
    program: &Program,
    module: &GlafModule,
    func: &Function,
    plan: &ProgramPlan,
    opts: &CodegenOptions,
    atomic_grids: &BTreeSet<String>,
    indent: usize,
) {
    let pad = "  ".repeat(indent);
    let ctx = Ctx { program, module, func };

    // Header (§3.4): Void return type -> SUBROUTINE.
    if func.is_subroutine() {
        let _ = writeln!(out, "{pad}SUBROUTINE {}({})", func.name, func.params.join(", "));
    } else {
        let _ = writeln!(
            out,
            "{pad}{} FUNCTION {}({})",
            func.return_type.fortran_name(),
            func.name,
            func.params.join(", ")
        );
    }

    // USE for existing modules referenced by grids used in this function
    // (§3.1, §3.5).
    let mut used: BTreeSet<&str> = BTreeSet::new();
    for g in func.grids.iter().chain(module.globals.iter()) {
        if let Some(m) = g.origin.use_module() {
            used.insert(m);
        }
    }
    for m in used {
        let _ = writeln!(out, "{pad}  USE {m}");
    }

    // Declarations: parameters then locals. Existing-module / TYPE-element
    // grids are *not* redeclared (§3.1); COMMON grids are declared and then
    // grouped (§3.2).
    let mut common_blocks: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for g in &func.grids {
        match &g.origin {
            GridOrigin::Existing(IntegrationAttr::ExistingModule { .. })
            | GridOrigin::Existing(IntegrationAttr::TypeElement { .. }) => {}
            GridOrigin::Existing(IntegrationAttr::CommonBlock { block }) => {
                if let Some(c) = &g.comment {
                    let _ = writeln!(out, "{pad}  ! {c}");
                }
                for line in declaration_lines(g) {
                    let _ = writeln!(out, "{pad}  {line}");
                }
                common_blocks.entry(block).or_default().push(&g.name);
            }
            _ => {
                if let Some(c) = &g.comment {
                    let _ = writeln!(out, "{pad}  ! {c}");
                }
                let mut g2 = g.clone();
                if opts.auto_save_arrays && g.allocatable {
                    g2.save = true;
                }
                for line in declaration_lines(&g2) {
                    let _ = writeln!(out, "{pad}  {line}");
                }
            }
        }
    }
    // COMMON grids declared at module scope too (globals).
    for g in &module.globals {
        if let GridOrigin::Existing(IntegrationAttr::CommonBlock { block }) = &g.origin {
            for line in declaration_lines(g) {
                let _ = writeln!(out, "{pad}  {line}");
            }
            common_blocks.entry(block).or_default().push(&g.name);
        }
    }
    // Grouped COMMON statements (§3.2): "all the variables in a given
    // program unit that ... belong to the same COMMON block are
    // automatically grouped".
    for (block, vars) in &common_blocks {
        let _ = writeln!(out, "{pad}  COMMON /{block}/ {}", vars.join(", "));
    }

    // Loop-index variables.
    let mut index_vars: BTreeSet<&str> = BTreeSet::new();
    for step in &func.steps {
        if let StepBody::Loop(nest) = &step.body {
            for r in &nest.ranges {
                index_vars.insert(&r.var);
            }
        }
    }
    if !index_vars.is_empty() {
        let list = index_vars.into_iter().collect::<Vec<_>>().join(", ");
        let _ = writeln!(out, "{pad}  INTEGER :: {list}");
    }

    // Allocations for allocatable locals. With SAVE (explicit or via the
    // auto-save option) the array persists across calls: allocate once.
    for g in &func.grids {
        if g.allocatable && !g.origin.is_externally_declared() {
            let spec = dim_spec(g);
            let saved = g.save || opts.auto_save_arrays;
            if saved {
                let _ = writeln!(
                    out,
                    "{pad}  IF (.NOT. ALLOCATED({})) ALLOCATE({}({spec}))",
                    g.name, g.name
                );
            } else {
                let _ = writeln!(out, "{pad}  ALLOCATE({}({spec}))", g.name);
            }
        }
    }

    // Body.
    let fplan = plan.for_function(&func.name);
    for (step_index, step) in func.steps.iter().enumerate() {
        if let Some(label) = &step.label {
            let _ = writeln!(out, "{pad}  ! {label}");
        }
        let critical = opts.critical_steps.contains(&(func.name.clone(), step_index));
        if critical {
            let _ = writeln!(out, "{pad}  !$OMP CRITICAL");
        }
        match &step.body {
            StepBody::Straight(stmts) => {
                for s in stmts {
                    emit_stmt(out, &ctx, s, atomic_grids, opts, indent + 1);
                }
            }
            StepBody::Loop(nest) => {
                let lp = fplan.and_then(|fp| fp.for_step(step_index));
                emit_loop(out, &ctx, nest, lp, opts, atomic_grids, indent + 1);
            }
        }
        if critical {
            let _ = writeln!(out, "{pad}  !$OMP END CRITICAL");
        }
    }

    // Deallocate non-persistent allocatables.
    for g in &func.grids {
        let saved = g.save || opts.auto_save_arrays;
        if g.allocatable && !saved && !g.origin.is_externally_declared() {
            let _ = writeln!(out, "{pad}  DEALLOCATE({})", g.name);
        }
    }

    if func.is_subroutine() {
        let _ = writeln!(out, "{pad}END SUBROUTINE {}", func.name);
    } else {
        let _ = writeln!(out, "{pad}END FUNCTION {}", func.name);
    }
}

/// Expression-emission context: resolves grid origins for `%` prefixes and
/// SoA renaming.
struct Ctx<'a> {
    program: &'a Program,
    module: &'a GlafModule,
    func: &'a Function,
}

impl Ctx<'_> {
    fn grid(&self, name: &str) -> Option<&Grid> {
        self.program.resolve_grid(self.module, self.func, name)
    }

    /// The generated base name for a reference to `grid` (+field).
    /// Handles §3.5 TYPE-element prefixes and SoA field arrays.
    fn base_name(&self, grid: &str, field: Option<&str>) -> String {
        let g = match self.grid(grid) {
            Some(g) => g,
            None => return grid.to_string(),
        };
        let base = match &g.origin {
            GridOrigin::Existing(IntegrationAttr::TypeElement { type_var, .. }) => {
                format!("{type_var}%{grid}")
            }
            _ => grid.to_string(),
        };
        match (&g.elem, field) {
            (ElemType::Struct(_), Some(f)) => match g.layout {
                Layout::SoA => format!("{base}_{f}"),
                Layout::AoS => base, // %field appended after indices
            },
            _ => base,
        }
    }
}

fn emit_loop(
    out: &mut String,
    ctx: &Ctx,
    nest: &LoopNest,
    plan: Option<&LoopPlan>,
    opts: &CodegenOptions,
    atomic_grids: &BTreeSet<String>,
    indent: usize,
) {
    let pad = "  ".repeat(indent);
    let directive = plan
        .map(|lp| opts.directive_for(&ctx.func.name, nest, lp))
        .unwrap_or(false);

    if directive {
        let lp = plan.unwrap();
        let mut line = format!("{pad}!$OMP PARALLEL DO DEFAULT(SHARED)");
        let collapse = lp.collapse.min(nest.ranges.len());
        if collapse >= 2 {
            let _ = write!(line, " COLLAPSE({collapse})");
        }
        // Private: analyzed scalars plus non-collapsed inner loop indices.
        let mut private: Vec<String> = lp.private.clone();
        for r in nest.ranges.iter().skip(collapse.max(1)) {
            private.push(r.var.clone());
        }
        if !private.is_empty() {
            let _ = write!(line, " PRIVATE({})", private.join(", "));
        }
        // Reductions grouped by operator — multiple reduction variables per
        // clause, the §4.2.1 adaptation.
        let mut by_op: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for r in &lp.reductions {
            by_op.entry(r.op.omp_name()).or_default().push(&r.grid);
        }
        for (op, vars) in by_op {
            let _ = write!(line, " REDUCTION({op}:{})", vars.join(", "));
        }
        // Non-default schedules only: STATIC block partition is the
        // OpenMP default, so the clause would be noise.
        if let Some(sc) = &lp.schedule {
            if sc.kind != glaf_autopar::SchedKind::Static {
                let _ = write!(line, " SCHEDULE({})", sc.render().to_uppercase());
            }
        }
        let _ = writeln!(out, "{line}");
    }

    // The DO nest.
    for (depth, r) in nest.ranges.iter().enumerate() {
        let p = "  ".repeat(indent + depth);
        let _ = write!(out, "{p}DO {} = {}, {}", r.var, fexpr(ctx, &r.start), fexpr(ctx, &r.end));
        if !matches!(r.step, Expr::IntLit(1)) {
            let _ = write!(out, ", {}", fexpr(ctx, &r.step));
        }
        let _ = writeln!(out);
    }
    let body_indent = indent + nest.ranges.len();
    let guarded = nest.condition.is_some();
    if let Some(c) = &nest.condition {
        let p = "  ".repeat(body_indent);
        let _ = writeln!(out, "{p}IF ({}) THEN", fexpr(ctx, c));
    }
    for s in &nest.body {
        emit_stmt(out, ctx, s, atomic_grids, opts, body_indent + usize::from(guarded));
    }
    if guarded {
        let p = "  ".repeat(body_indent);
        let _ = writeln!(out, "{p}END IF");
    }
    for depth in (0..nest.ranges.len()).rev() {
        let p = "  ".repeat(indent + depth);
        let _ = writeln!(out, "{p}END DO");
    }
    if directive {
        let _ = writeln!(out, "{pad}!$OMP END PARALLEL DO");
    }
}

fn emit_stmt(
    out: &mut String,
    ctx: &Ctx,
    stmt: &Stmt,
    atomic_grids: &BTreeSet<String>,
    opts: &CodegenOptions,
    indent: usize,
) {
    let pad = "  ".repeat(indent);
    match stmt {
        Stmt::Assign { target, value } => {
            if opts.atomic_updates
                && atomic_grids.contains(&target.grid)
                && glaf_autopar::reduction::match_reduction(target, value).is_some()
            {
                let _ = writeln!(out, "{pad}!$OMP ATOMIC");
            }
            let _ = writeln!(out, "{pad}{} = {}", flvalue(ctx, target), fexpr(ctx, value));
        }
        Stmt::If { cond, then_body, else_body } => {
            let _ = writeln!(out, "{pad}IF ({}) THEN", fexpr(ctx, cond));
            for s in then_body {
                emit_stmt(out, ctx, s, atomic_grids, opts, indent + 1);
            }
            if !else_body.is_empty() {
                let _ = writeln!(out, "{pad}ELSE");
                for s in else_body {
                    emit_stmt(out, ctx, s, atomic_grids, opts, indent + 1);
                }
            }
            let _ = writeln!(out, "{pad}END IF");
        }
        Stmt::CallSub { name, args } => {
            let args: Vec<String> = args.iter().map(|a| fexpr(ctx, a)).collect();
            let _ = writeln!(out, "{pad}CALL {name}({})", args.join(", "));
        }
        Stmt::Return(v) => {
            if let Some(e) = v {
                let _ = writeln!(out, "{pad}{} = {}", ctx.func.name, fexpr(ctx, e));
            }
            let _ = writeln!(out, "{pad}RETURN");
        }
        Stmt::Exit => {
            let _ = writeln!(out, "{pad}EXIT");
        }
        Stmt::Cycle => {
            let _ = writeln!(out, "{pad}CYCLE");
        }
    }
}

fn flvalue(ctx: &Ctx, lv: &LValue) -> String {
    render_ref(ctx, &lv.grid, &lv.indices, lv.field.as_deref())
}

fn render_ref(ctx: &Ctx, grid: &str, indices: &[Expr], field: Option<&str>) -> String {
    let base = ctx.base_name(grid, field);
    let mut s = base;
    if !indices.is_empty() {
        let ix: Vec<String> = indices.iter().map(|e| fexpr(ctx, e)).collect();
        let _ = write!(s, "({})", ix.join(", "));
    }
    // AoS field access comes after the element selection.
    if let Some(f) = field {
        if let Some(g) = ctx.grid(grid) {
            if matches!(g.elem, ElemType::Struct(_)) && g.layout == Layout::AoS {
                let _ = write!(s, "%{f}");
            }
        }
    }
    s
}

fn fprec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div => 5,
        BinOp::Pow => 6,
    }
}

fn fop(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Pow => "**",
        BinOp::Eq => "==",
        BinOp::Ne => "/=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => ".AND.",
        BinOp::Or => ".OR.",
    }
}

/// Renders an expression in FORTRAN syntax.
fn fexpr(ctx: &Ctx, e: &Expr) -> String {
    let mut s = String::new();
    wexpr(&mut s, ctx, e, 0);
    s
}

fn wexpr(out: &mut String, ctx: &Ctx, e: &Expr, parent: u8) {
    match e {
        Expr::IntLit(v) => {
            if *v < 0 {
                let _ = write!(out, "({v})");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Expr::RealLit(v) => {
            if *v < 0.0 {
                let _ = write!(out, "({})", real_literal(*v));
            } else {
                out.push_str(&real_literal(*v));
            }
        }
        Expr::BoolLit(b) => out.push_str(if *b { ".TRUE." } else { ".FALSE." }),
        Expr::Index(v) => out.push_str(v),
        Expr::GridRef { grid, indices, field } => {
            out.push_str(&render_ref(ctx, grid, indices, field.as_deref()));
        }
        Expr::WholeGrid(g) => out.push_str(&ctx.base_name(g, None)),
        Expr::Unary { op, operand } => {
            match op {
                UnOp::Neg => out.push_str("(-"),
                UnOp::Not => out.push_str("(.NOT. "),
            }
            wexpr(out, ctx, operand, 7);
            out.push(')');
        }
        Expr::Binary { op, lhs, rhs } => {
            let p = fprec(*op);
            let need = p < parent;
            if need {
                out.push('(');
            }
            wexpr(out, ctx, lhs, p);
            let _ = write!(out, " {} ", fop(*op));
            wexpr(out, ctx, rhs, p + 1);
            if need {
                out.push(')');
            }
        }
        Expr::Call { callee, args } => {
            match callee {
                Callee::Lib(f) => out.push_str(f.fortran_name()),
                Callee::User(n) => out.push_str(n),
            }
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                wexpr(out, ctx, a, 0);
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaf_autopar::analyze_program;
    use glaf_grid::Field;
    use glaf_ir::ProgramBuilder;

    fn gen(p: &Program, opts: &CodegenOptions) -> String {
        let plan = analyze_program(p);
        generate_fortran(p, &plan, opts)
    }

    fn simple_program() -> Program {
        let n = Grid::build("n").typed(DataType::Integer).finish().unwrap();
        let a = Grid::build("a").typed(DataType::Real8).dim1(100).finish().unwrap();
        ProgramBuilder::new()
            .module("kernels")
            .subroutine("zero_a")
            .param(n)
            .param(a)
            .loop_step("init")
            .foreach("i", Expr::int(1), Expr::scalar("n"))
            .formula(LValue::at("a", vec![Expr::idx("i")]), Expr::real(0.0))
            .done()
            .done()
            .done()
            .finish()
    }

    #[test]
    fn subroutine_form_for_void() {
        let src = gen(&simple_program(), &CodegenOptions::serial());
        assert!(src.contains("SUBROUTINE zero_a(n, a)"), "{src}");
        assert!(src.contains("END SUBROUTINE zero_a"));
        assert!(!src.contains("FUNCTION zero_a"));
    }

    #[test]
    fn v0_gets_directive_v1_does_not() {
        let p = simple_program();
        let v0 = gen(&p, &CodegenOptions::parallel_version(0));
        assert!(v0.contains("!$OMP PARALLEL DO"), "{v0}");
        assert!(v0.contains("!$OMP END PARALLEL DO"));
        let v1 = gen(&p, &CodegenOptions::parallel_version(1));
        assert!(!v1.contains("!$OMP"), "zero-init loses its directive in v1:\n{v1}");
    }

    #[test]
    fn function_form_and_return_assignment() {
        let b = Grid::build("b").typed(DataType::Real8).dim1(10).finish().unwrap();
        let acc = Grid::build("acc").typed(DataType::Real8).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .function("total", DataType::Real8)
            .param(b)
            .local(acc)
            .loop_step("sum")
            .foreach("i", Expr::int(1), Expr::int(10))
            .formula(
                LValue::scalar("acc"),
                Expr::scalar("acc") + Expr::at("b", vec![Expr::idx("i")]),
            )
            .done()
            .straight_step("ret", vec![Stmt::Return(Some(Expr::scalar("acc")))])
            .done()
            .done()
            .finish();
        let src = gen(&p, &CodegenOptions::serial());
        assert!(src.contains("REAL(8) FUNCTION total(b)"), "{src}");
        assert!(src.contains("total = acc"));
        assert!(src.contains("RETURN"));
    }

    #[test]
    fn reduction_clause_emitted() {
        let b = Grid::build("b").typed(DataType::Real8).dim1(10).finish().unwrap();
        let acc = Grid::build("acc").typed(DataType::Real8).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .function("total", DataType::Real8)
            .param(b)
            .local(acc)
            .loop_step("sum")
            .foreach("i", Expr::int(1), Expr::int(10))
            .formula(
                LValue::scalar("acc"),
                Expr::scalar("acc") + Expr::at("b", vec![Expr::idx("i")]),
            )
            .done()
            .done()
            .done()
            .finish();
        let src = gen(&p, &CodegenOptions::parallel_version(0));
        assert!(src.contains("REDUCTION(+:acc)"), "{src}");
    }

    #[test]
    fn schedule_clause_emitted_for_irregular_loop() {
        // Conditional body → the advisor picks DYNAMIC; the clause must
        // reach the directive. Regular loops keep the bare directive
        // (static is the OpenMP default).
        let a = Grid::build("a").typed(DataType::Real8).dim1(100).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("clip")
            .param(a)
            .loop_step("clamp negatives")
            .foreach("i", Expr::int(1), Expr::int(100))
            .stmt(Stmt::If {
                cond: Expr::at("a", vec![Expr::idx("i")]).cmp(glaf_ir::BinOp::Lt, Expr::real(0.0)),
                then_body: vec![Stmt::assign(
                    LValue::at("a", vec![Expr::idx("i")]),
                    Expr::real(0.0),
                )],
                else_body: vec![],
            })
            .done()
            .done()
            .done()
            .finish();
        let src = gen(&p, &CodegenOptions::parallel_version(0));
        assert!(src.contains("SCHEDULE(DYNAMIC)"), "{src}");
        assert!(!src.contains("SCHEDULE(STATIC)"), "{src}");
    }

    #[test]
    fn existing_module_grid_uses_not_declares() {
        let ext = Grid::build("fi_input")
            .typed(DataType::Real8)
            .dim1(60)
            .in_existing_module("fuliou_mod")
            .finish()
            .unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("s")
            .local(ext)
            .straight_step(
                "use it",
                vec![Stmt::assign(
                    LValue::at("fi_input", vec![Expr::int(1)]),
                    Expr::real(1.0),
                )],
            )
            .done()
            .done()
            .finish();
        let src = gen(&p, &CodegenOptions::serial());
        assert!(src.contains("USE fuliou_mod"), "{src}");
        assert!(
            !src.contains(":: fi_input"),
            "existing-module variables must not be redeclared:\n{src}"
        );
    }

    #[test]
    fn common_block_grouped_and_declared() {
        let cc = Grid::build("cc").typed(DataType::Real8).in_common_block("rad").finish().unwrap();
        let dd = Grid::build("dd")
            .typed(DataType::Real8)
            .dim1(60)
            .in_common_block("rad")
            .finish()
            .unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("s")
            .local(cc)
            .local(dd)
            .straight_step(
                "touch",
                vec![Stmt::assign(LValue::scalar("cc"), Expr::real(2.0))],
            )
            .done()
            .done()
            .finish();
        let src = gen(&p, &CodegenOptions::serial());
        assert!(src.contains("COMMON /rad/ cc, dd"), "{src}");
        assert!(src.contains("REAL(8) :: cc"));
        assert!(src.contains("REAL(8), DIMENSION(1:60) :: dd"));
    }

    #[test]
    fn type_element_prefixed() {
        let q = Grid::build("charge")
            .typed(DataType::Real8)
            .type_element("atoms_mod", "atom1")
            .finish()
            .unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("s")
            .local(q)
            .straight_step(
                "set",
                vec![Stmt::assign(LValue::scalar("charge"), Expr::real(1.6e-19))],
            )
            .done()
            .done()
            .finish();
        let src = gen(&p, &CodegenOptions::serial());
        assert!(src.contains("atom1%charge ="), "paper §3.5 example:\n{src}");
        assert!(src.contains("USE atoms_mod"));
    }

    #[test]
    fn module_scope_grid_declared_in_module() {
        let g = Grid::build("shared_buf")
            .typed(DataType::Real8)
            .dim1(50)
            .module_scope()
            .finish()
            .unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .global(g)
            .subroutine("s")
            .straight_step(
                "touch",
                vec![Stmt::assign(
                    LValue::at("shared_buf", vec![Expr::int(1)]),
                    Expr::real(0.0),
                )],
            )
            .done()
            .done()
            .finish();
        let src = gen(&p, &CodegenOptions::serial());
        let module_part = &src[..src.find("CONTAINS").unwrap()];
        assert!(
            module_part.contains("REAL(8), DIMENSION(1:50) :: shared_buf"),
            "{src}"
        );
    }

    #[test]
    fn collapse_clause_for_double_nest() {
        let a = Grid::build("a").typed(DataType::Real8).dim1(2).dim1(60).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("s")
            .param(a)
            .loop_step("dbl")
            .foreach("i", Expr::int(1), Expr::int(2))
            .foreach("j", Expr::int(1), Expr::int(60))
            .formula(
                LValue::at("a", vec![Expr::idx("i"), Expr::idx("j")]),
                Expr::idx("i") + Expr::idx("j"),
            )
            .done()
            .done()
            .done()
            .finish();
        let src = gen(&p, &CodegenOptions::parallel_version(0));
        assert!(src.contains("COLLAPSE(2)"), "{src}");
    }

    #[test]
    fn allocatable_save_and_auto_save() {
        let tmp = Grid::build("tmp").typed(DataType::Real8).dim1(50).allocatable().finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("edge_loop")
            .local(tmp)
            .straight_step(
                "touch",
                vec![Stmt::assign(LValue::at("tmp", vec![Expr::int(1)]), Expr::real(0.0))],
            )
            .done()
            .done()
            .finish();
        let plain = gen(&p, &CodegenOptions::serial());
        assert!(plain.contains("ALLOCATE(tmp(1:50))"), "{plain}");
        assert!(plain.contains("DEALLOCATE(tmp)"));
        let mut opts = CodegenOptions::serial();
        opts.auto_save_arrays = true;
        let saved = gen(&p, &opts);
        assert!(saved.contains("IF (.NOT. ALLOCATED(tmp)) ALLOCATE(tmp(1:50))"), "{saved}");
        assert!(!saved.contains("DEALLOCATE"));
        assert!(saved.contains(", SAVE :: tmp"));
    }

    #[test]
    fn soa_and_aos_layouts() {
        let fields = vec![
            Field { name: "x".into(), ty: DataType::Real8 },
            Field { name: "q".into(), ty: DataType::Real8 },
        ];
        let aos = Grid::build("atoms").struct_of(fields.clone()).dim1(8).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("s")
            .local(aos)
            .straight_step(
                "w",
                vec![Stmt::assign(
                    LValue::at_field("atoms", vec![Expr::int(1)], "x"),
                    Expr::real(1.0),
                )],
            )
            .done()
            .done()
            .finish();
        let src = gen(&p, &CodegenOptions::serial());
        assert!(src.contains("TYPE atoms_t"), "{src}");
        assert!(src.contains("atoms(1)%x ="), "{src}");

        let mut p2 = p.clone();
        p2.modules[0].functions[0].grids[0].layout = Layout::SoA;
        let src2 = gen(&p2, &CodegenOptions::serial());
        assert!(src2.contains("REAL(8), DIMENSION(1:8) :: atoms_x"), "{src2}");
        assert!(src2.contains("atoms_x(1) ="), "{src2}");
    }

    #[test]
    fn critical_step_wrapped() {
        let p = simple_program();
        let mut opts = CodegenOptions::parallel_version(0);
        opts.critical_steps.insert(("zero_a".into(), 0));
        let src = gen(&p, &opts);
        assert!(src.contains("!$OMP CRITICAL"), "{src}");
        assert!(src.contains("!$OMP END CRITICAL"));
    }

    #[test]
    fn real_literals_double_precision() {
        assert_eq!(real_literal(1.5), "1.5D0");
        assert_eq!(real_literal(0.001), "1D-3");
        assert_eq!(real_literal(2.0), "2D0");
    }

    #[test]
    fn condition_becomes_if_guard() {
        let a = Grid::build("a").typed(DataType::Real8).dim1(10).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("s")
            .param(a)
            .loop_step("guarded")
            .foreach("i", Expr::int(1), Expr::int(10))
            .condition(Expr::idx("i").cmp(BinOp::Gt, Expr::int(5)))
            .formula(LValue::at("a", vec![Expr::idx("i")]), Expr::real(1.0))
            .done()
            .done()
            .done()
            .finish();
        let src = gen(&p, &CodegenOptions::serial());
        assert!(src.contains("IF (i > 5) THEN"), "{src}");
        assert!(src.contains("END IF"));
    }

    #[test]
    fn intrinsics_render_fortran_names() {
        let x = Grid::build("x").typed(DataType::Real8).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("s")
            .local(x)
            .straight_step(
                "w",
                vec![Stmt::assign(
                    LValue::scalar("x"),
                    Expr::lib(glaf_ir::LibFunc::Alog, vec![Expr::scalar("x")])
                        + Expr::lib(glaf_ir::LibFunc::Abs, vec![Expr::scalar("x")]),
                )],
            )
            .done()
            .done()
            .finish();
        let src = gen(&p, &CodegenOptions::serial());
        assert!(src.contains("ALOG(x) + ABS(x)"), "{src}");
    }
}
