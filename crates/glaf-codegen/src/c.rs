//! The C code generator.
//!
//! GLAF "generates human-readable, compatible code for the selected
//! language" — originally C and FORTRAN (paper §2.1, [15]). The C path
//! matters for this reproduction mostly as evidence that the integration
//! features generalize ("many of the solutions presented here can also be
//! applied to code generation for other languages", §3): COMMON blocks map
//! onto the classic `/`block`/_` struct interop convention, existing
//! modules onto `extern` declarations behind a header include, TYPE
//! elements onto struct member access.
//!
//! The output is tested as *golden text*; execution goes through the
//! FORTRAN path and the `fortrans` engine.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write;

use glaf_autopar::{LoopPlan, ProgramPlan};
use glaf_grid::{ElemType, Grid, GridOrigin, IntegrationAttr, Layout};
use glaf_ir::{
    BinOp, Callee, Expr, Function, GlafModule, LValue, LoopNest, Program, StepBody, Stmt, UnOp,
};

use crate::policy::CodegenOptions;

/// Generates a single C translation unit for the program.
pub fn generate_c(program: &Program, plan: &ProgramPlan, opts: &CodegenOptions) -> String {
    let mut out = String::new();
    out.push_str("#include <math.h>\n#include <stdlib.h>\n#include <string.h>\n");
    out.push_str("#define GLAF_MAX(a, b) ((a) > (b) ? (a) : (b))\n");
    out.push_str("#define GLAF_MIN(a, b) ((a) < (b) ? (a) : (b))\n");
    out.push_str("#define GLAF_MOD(a, p) ((a) % (p))\n");
    out.push_str("#define GLAF_SIGN(a, b) ((b) >= 0 ? fabs(a) : -fabs(a))\n\n");

    for module in &program.modules {
        emit_module(&mut out, program, module, plan, opts);
    }
    out
}

fn emit_module(
    out: &mut String,
    program: &Program,
    module: &GlafModule,
    plan: &ProgramPlan,
    opts: &CodegenOptions,
) {
    let _ = writeln!(out, "/* GLAF module {} */", module.name);

    // Existing modules become header includes with extern data (§3.1).
    let mut used: BTreeSet<&str> = BTreeSet::new();
    for g in module
        .globals
        .iter()
        .chain(module.functions.iter().flat_map(|f| f.grids.iter()))
    {
        if let Some(m) = g.origin.use_module() {
            used.insert(m);
        }
    }
    for m in used {
        let _ = writeln!(out, "#include \"{m}.h\"");
    }

    // COMMON blocks: the f77 interop convention — one struct per block,
    // symbol `<block>_`.
    let mut commons: BTreeMap<&str, Vec<&Grid>> = BTreeMap::new();
    for g in module
        .globals
        .iter()
        .chain(module.functions.iter().flat_map(|f| f.grids.iter()))
    {
        if let GridOrigin::Existing(IntegrationAttr::CommonBlock { block }) = &g.origin {
            commons.entry(block).or_default().push(g);
        }
    }
    for (block, grids) in &commons {
        let _ = writeln!(out, "extern struct {block}_common {{");
        for g in grids {
            let _ = writeln!(out, "  {};", c_declarator(g, &g.name));
        }
        let _ = writeln!(out, "}} {block}_;");
    }

    // Struct typedefs for AoS grids.
    let mut declared: BTreeSet<String> = BTreeSet::new();
    for g in module
        .globals
        .iter()
        .chain(module.functions.iter().flat_map(|f| f.grids.iter()))
    {
        if let ElemType::Struct(fields) = &g.elem {
            if g.layout == Layout::AoS && declared.insert(g.name.clone()) {
                let _ = writeln!(out, "typedef struct {{");
                for f in fields {
                    let _ = writeln!(out, "  {} {};", f.ty.c_name(), f.name);
                }
                let _ = writeln!(out, "}} {}_t;", g.name);
            }
        }
    }

    // Module-scope grids: file-scope definitions (§3.3).
    for g in &module.globals {
        if g.origin == GridOrigin::ModuleScope {
            if let Some(c) = &g.comment {
                let _ = writeln!(out, "// {c}");
            }
            let _ = writeln!(out, "static {};", c_declarator(g, &g.name));
        }
    }
    let _ = writeln!(out);

    for f in &module.functions {
        emit_function(out, program, module, f, plan, opts);
        let _ = writeln!(out);
    }
}

/// C declarator for a grid under its layout (arrays static-sized, C order).
fn c_declarator(g: &Grid, name: &str) -> String {
    let base = match &g.elem {
        ElemType::Uniform(t) => t.c_name().to_string(),
        ElemType::Struct(_) => format!("{}_t", g.name),
    };
    let mut s = format!("{base} {name}");
    for d in &g.dims {
        let _ = write!(s, "[{}]", d.extent());
    }
    s
}

fn emit_function(
    out: &mut String,
    program: &Program,
    module: &GlafModule,
    func: &Function,
    plan: &ProgramPlan,
    opts: &CodegenOptions,
) {
    let ctx = Ctx { program, module, func };
    let ret = func.return_type.c_name();
    let params: Vec<String> = func
        .params
        .iter()
        .map(|p| {
            let g = func.grid(p).expect("validated");
            if g.dims.is_empty() {
                format!("{} {}", scalar_c_type(g), p)
            } else {
                // Arrays decay to pointers; the body linearizes manually.
                format!("{} *{}", scalar_c_type(g), p)
            }
        })
        .collect();
    let _ = writeln!(out, "{ret} {}({}) {{", func.name, params.join(", "));

    // Locals (COMMON and existing-module grids are file scope / extern).
    for g in &func.grids {
        if g.origin.is_externally_declared() || matches!(g.origin, GridOrigin::Parameter(_)) {
            continue;
        }
        if let Some(c) = &g.comment {
            let _ = writeln!(out, "  // {c}");
        }
        if g.allocatable {
            let elems = g.cell_count();
            let t = scalar_c_type(g);
            let persist = if g.save || opts.auto_save_arrays { "static " } else { "" };
            let _ = writeln!(out, "  {persist}{t} *{} = NULL;", g.name);
            if persist.is_empty() {
                let _ = writeln!(out, "  {} = ({t} *)malloc({elems} * sizeof({t}));", g.name);
            } else {
                let _ = writeln!(
                    out,
                    "  if ({} == NULL) {} = ({t} *)malloc({elems} * sizeof({t}));",
                    g.name, g.name
                );
            }
        } else {
            let _ = writeln!(out, "  {};", c_declarator(g, &g.name));
        }
    }
    // Loop indices.
    let mut index_vars: BTreeSet<&str> = BTreeSet::new();
    for step in &func.steps {
        if let StepBody::Loop(nest) = &step.body {
            for r in &nest.ranges {
                index_vars.insert(&r.var);
            }
        }
    }
    if !index_vars.is_empty() {
        let list = index_vars.into_iter().collect::<Vec<_>>().join(", ");
        let _ = writeln!(out, "  long {list};");
    }

    let fplan = plan.for_function(&func.name);
    for (step_index, step) in func.steps.iter().enumerate() {
        if let Some(label) = &step.label {
            let _ = writeln!(out, "  // {label}");
        }
        match &step.body {
            StepBody::Straight(stmts) => {
                for s in stmts {
                    emit_stmt(out, &ctx, s, 1);
                }
            }
            StepBody::Loop(nest) => {
                let lp = fplan.and_then(|fp| fp.for_step(step_index));
                emit_loop(out, &ctx, nest, lp, opts, 1);
            }
        }
    }

    for g in &func.grids {
        if g.allocatable && !(g.save || opts.auto_save_arrays) && !g.origin.is_externally_declared()
        {
            let _ = writeln!(out, "  free({});", g.name);
        }
    }
    let _ = writeln!(out, "}}");
}

fn scalar_c_type(g: &Grid) -> &'static str {
    match &g.elem {
        ElemType::Uniform(t) => t.c_name(),
        ElemType::Struct(_) => "double",
    }
}

fn emit_loop(
    out: &mut String,
    ctx: &Ctx,
    nest: &LoopNest,
    plan: Option<&LoopPlan>,
    opts: &CodegenOptions,
    indent: usize,
) {
    let pad = "  ".repeat(indent);
    let directive = plan
        .map(|lp| opts.directive_for(&ctx.func.name, nest, lp))
        .unwrap_or(false);
    if directive {
        let lp = plan.unwrap();
        let mut line = format!("{pad}#pragma omp parallel for default(shared)");
        let collapse = lp.collapse.min(nest.ranges.len());
        if collapse >= 2 {
            let _ = write!(line, " collapse({collapse})");
        }
        if !lp.private.is_empty() {
            let _ = write!(line, " private({})", lp.private.join(", "));
        }
        let mut by_op: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for r in &lp.reductions {
            by_op.entry(r.op.omp_name()).or_default().push(&r.grid);
        }
        for (op, vars) in by_op {
            let op = match op {
                "MAX" => "max",
                "MIN" => "min",
                o => o,
            };
            let _ = write!(line, " reduction({op}:{})", vars.join(", "));
        }
        // Non-default schedules only; static block partition is the
        // OpenMP default.
        if let Some(sc) = &lp.schedule {
            if sc.kind != glaf_autopar::SchedKind::Static {
                let _ = write!(line, " schedule({})", sc.render());
            }
        }
        let _ = writeln!(out, "{line}");
    }
    for (depth, r) in nest.ranges.iter().enumerate() {
        let p = "  ".repeat(indent + depth);
        let _ = writeln!(
            out,
            "{p}for ({v} = {s}; {v} <= {e}; {v} += {st}) {{",
            v = r.var,
            s = cexpr(ctx, &r.start),
            e = cexpr(ctx, &r.end),
            st = cexpr(ctx, &r.step),
        );
    }
    let body_indent = indent + nest.ranges.len();
    let guarded = nest.condition.is_some();
    if let Some(c) = &nest.condition {
        let p = "  ".repeat(body_indent);
        let _ = writeln!(out, "{p}if ({}) {{", cexpr(ctx, c));
    }
    for s in &nest.body {
        emit_stmt(out, ctx, s, body_indent + usize::from(guarded));
    }
    if guarded {
        let p = "  ".repeat(body_indent);
        let _ = writeln!(out, "{p}}}");
    }
    for depth in (0..nest.ranges.len()).rev() {
        let p = "  ".repeat(indent + depth);
        let _ = writeln!(out, "{p}}}");
    }
}

fn emit_stmt(out: &mut String, ctx: &Ctx, stmt: &Stmt, indent: usize) {
    let pad = "  ".repeat(indent);
    match stmt {
        Stmt::Assign { target, value } => {
            let _ = writeln!(out, "{pad}{} = {};", clvalue(ctx, target), cexpr(ctx, value));
        }
        Stmt::If { cond, then_body, else_body } => {
            let _ = writeln!(out, "{pad}if ({}) {{", cexpr(ctx, cond));
            for s in then_body {
                emit_stmt(out, ctx, s, indent + 1);
            }
            if !else_body.is_empty() {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in else_body {
                    emit_stmt(out, ctx, s, indent + 1);
                }
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::CallSub { name, args } => {
            let args: Vec<String> = args.iter().map(|a| cexpr(ctx, a)).collect();
            let _ = writeln!(out, "{pad}{name}({});", args.join(", "));
        }
        Stmt::Return(v) => match v {
            Some(e) => {
                let _ = writeln!(out, "{pad}return {};", cexpr(ctx, e));
            }
            None => {
                let _ = writeln!(out, "{pad}return;");
            }
        },
        Stmt::Exit => {
            let _ = writeln!(out, "{pad}break;");
        }
        Stmt::Cycle => {
            let _ = writeln!(out, "{pad}continue;");
        }
    }
}

struct Ctx<'a> {
    program: &'a Program,
    module: &'a GlafModule,
    func: &'a Function,
}

impl Ctx<'_> {
    fn grid(&self, name: &str) -> Option<&Grid> {
        self.program.resolve_grid(self.module, self.func, name)
    }
}

fn clvalue(ctx: &Ctx, lv: &LValue) -> String {
    render_ref(ctx, &lv.grid, &lv.indices, lv.field.as_deref())
}

/// Renders a grid reference: 0-based index shifting, parameter pointers
/// linearized, COMMON members through `block_.name`, TYPE elements through
/// `type_var.name`.
fn render_ref(ctx: &Ctx, grid: &str, indices: &[Expr], field: Option<&str>) -> String {
    let g = match ctx.grid(grid) {
        Some(g) => g,
        None => return grid.to_string(),
    };
    let mut base = match &g.origin {
        GridOrigin::Existing(IntegrationAttr::CommonBlock { block }) => {
            format!("{block}_.{grid}")
        }
        GridOrigin::Existing(IntegrationAttr::TypeElement { type_var, .. }) => {
            format!("{type_var}.{grid}")
        }
        _ => grid.to_string(),
    };
    if let (ElemType::Struct(_), Some(f), Layout::SoA) = (&g.elem, field, g.layout) {
        base = format!("{base}_{f}");
    }
    let mut s = base;
    if !indices.is_empty() {
        let is_param_ptr = matches!(g.origin, GridOrigin::Parameter(_));
        if is_param_ptr {
            // Linearized row-major access over the known extents.
            let mut expr = String::new();
            for (k, ix) in indices.iter().enumerate() {
                if k > 0 {
                    expr.push_str(" + ");
                }
                let stride: usize = g.dims[k + 1..].iter().map(|d| d.extent()).product();
                let lo = g.dims[k].lo;
                if stride == 1 {
                    let _ = write!(expr, "(({}) - {lo})", cexpr(ctx, ix));
                } else {
                    let _ = write!(expr, "(({}) - {lo}) * {stride}", cexpr(ctx, ix));
                }
            }
            let _ = write!(s, "[{expr}]");
        } else {
            for (k, ix) in indices.iter().enumerate() {
                let lo = g.dims[k].lo;
                let _ = write!(s, "[({}) - {lo}]", cexpr(ctx, ix));
            }
        }
    }
    if let (ElemType::Struct(_), Some(f), Layout::AoS) = (&g.elem, field, g.layout) {
        let _ = write!(s, ".{f}");
    }
    s
}

fn cop(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Pow => unreachable!("pow lowered to a call"),
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn cprec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne => 3,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
        BinOp::Add | BinOp::Sub => 5,
        BinOp::Mul | BinOp::Div => 6,
        BinOp::Pow => 7,
    }
}

fn cexpr(ctx: &Ctx, e: &Expr) -> String {
    let mut s = String::new();
    wexpr(&mut s, ctx, e, 0);
    s
}

fn wexpr(out: &mut String, ctx: &Ctx, e: &Expr, parent: u8) {
    match e {
        Expr::IntLit(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::RealLit(v) => {
            let _ = write!(out, "{v:?}");
        }
        Expr::BoolLit(b) => out.push_str(if *b { "1" } else { "0" }),
        Expr::Index(v) => out.push_str(v),
        Expr::GridRef { grid, indices, field } => {
            out.push_str(&render_ref(ctx, grid, indices, field.as_deref()));
        }
        Expr::WholeGrid(g) => out.push_str(g),
        Expr::Unary { op, operand } => {
            match op {
                UnOp::Neg => out.push_str("(-"),
                UnOp::Not => out.push_str("(!"),
            }
            wexpr(out, ctx, operand, 8);
            out.push(')');
        }
        Expr::Binary { op: BinOp::Pow, lhs, rhs } => {
            out.push_str("pow(");
            wexpr(out, ctx, lhs, 0);
            out.push_str(", ");
            wexpr(out, ctx, rhs, 0);
            out.push(')');
        }
        Expr::Binary { op, lhs, rhs } => {
            let p = cprec(*op);
            let need = p < parent;
            if need {
                out.push('(');
            }
            wexpr(out, ctx, lhs, p);
            let _ = write!(out, " {} ", cop(*op));
            wexpr(out, ctx, rhs, p + 1);
            if need {
                out.push(')');
            }
        }
        Expr::Call { callee, args } => {
            match callee {
                Callee::Lib(f) => out.push_str(f.c_name()),
                Callee::User(n) => out.push_str(n),
            }
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                wexpr(out, ctx, a, 0);
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaf_autopar::analyze_program;
    use glaf_grid::DataType;
    use glaf_ir::ProgramBuilder;

    fn gen(p: &Program, opts: &CodegenOptions) -> String {
        let plan = analyze_program(p);
        generate_c(p, &plan, opts)
    }

    #[test]
    fn void_function_and_pragma() {
        let n = Grid::build("n").typed(DataType::Integer).finish().unwrap();
        let a = Grid::build("a").typed(DataType::Real8).dim1(100).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("zero_a")
            .param(n)
            .param(a)
            .loop_step("init")
            .foreach("i", Expr::int(1), Expr::scalar("n"))
            .formula(LValue::at("a", vec![Expr::idx("i")]), Expr::real(0.0))
            .done()
            .done()
            .done()
            .finish();
        let src = gen(&p, &CodegenOptions::parallel_version(0));
        assert!(src.contains("void zero_a(long n, double *a)"), "{src}");
        assert!(src.contains("#pragma omp parallel for"), "{src}");
        assert!(src.contains("a[((i) - 1)] = 0.0;"), "{src}");
    }

    #[test]
    fn common_block_interop_struct() {
        let cc = Grid::build("cc").typed(DataType::Real8).in_common_block("rad").finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("s")
            .local(cc)
            .straight_step("w", vec![Stmt::assign(LValue::scalar("cc"), Expr::real(2.0))])
            .done()
            .done()
            .finish();
        let src = gen(&p, &CodegenOptions::serial());
        assert!(src.contains("extern struct rad_common"), "{src}");
        assert!(src.contains("rad_.cc = 2.0;"), "{src}");
    }

    #[test]
    fn type_element_member_access() {
        let q = Grid::build("charge")
            .typed(DataType::Real8)
            .type_element("atoms_mod", "atom1")
            .finish()
            .unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("s")
            .local(q)
            .straight_step("w", vec![Stmt::assign(LValue::scalar("charge"), Expr::real(1.0))])
            .done()
            .done()
            .finish();
        let src = gen(&p, &CodegenOptions::serial());
        assert!(src.contains("#include \"atoms_mod.h\""), "{src}");
        assert!(src.contains("atom1.charge = 1.0;"), "{src}");
    }

    #[test]
    fn malloc_matches_figure1() {
        // Fig. 1 of the paper: a 4x4 int grid generates a malloc.
        let img = Grid::build("img_src")
            .typed(DataType::Integer)
            .dim(0, 3)
            .dim(0, 3)
            .comment("Image before filtering")
            .allocatable()
            .finish()
            .unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("s")
            .local(img)
            .straight_step(
                "w",
                vec![Stmt::assign(
                    LValue::at("img_src", vec![Expr::int(0), Expr::int(0)]),
                    Expr::int(1),
                )],
            )
            .done()
            .done()
            .finish();
        let src = gen(&p, &CodegenOptions::serial());
        assert!(src.contains("// Image before filtering"), "{src}");
        assert!(src.contains("malloc(16 * sizeof(long))"), "{src}");
        assert!(src.contains("free(img_src);"), "{src}");
    }

    #[test]
    fn pow_lowered_to_call() {
        let x = Grid::build("x").typed(DataType::Real8).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("s")
            .local(x)
            .straight_step(
                "w",
                vec![Stmt::assign(
                    LValue::scalar("x"),
                    Expr::scalar("x").pow(Expr::real(2.0)),
                )],
            )
            .done()
            .done()
            .finish();
        let src = gen(&p, &CodegenOptions::serial());
        assert!(src.contains("x = pow(x, 2.0);"), "{src}");
    }

    #[test]
    fn exit_cycle_map_to_break_continue() {
        let a = Grid::build("a").typed(DataType::Real8).dim1(10).finish().unwrap();
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("s")
            .param(a)
            .loop_step("l")
            .foreach("i", Expr::int(1), Expr::int(10))
            .stmt(Stmt::If {
                cond: Expr::idx("i").cmp(BinOp::Gt, Expr::int(5)),
                then_body: vec![Stmt::Exit],
                else_body: vec![Stmt::Cycle],
            })
            .done()
            .done()
            .done()
            .finish();
        let src = gen(&p, &CodegenOptions::serial());
        assert!(src.contains("break;"), "{src}");
        assert!(src.contains("continue;"), "{src}");
    }
}
