//! OpenMP directive policies: the paper's Table 2 ladder and the
//! cost-model policy.

use std::collections::BTreeSet;

use glaf_autopar::{CostAdvisor, CostParams, Decision, LoopClass, LoopPlan};
use glaf_ir::LoopNest;

/// Which parallelizable loops receive `!$OMP PARALLEL DO` directives.
///
/// Mirrors Table 2 of the paper:
///
/// | Variant | Policy |
/// |---|---|
/// | GLAF serial | [`DirectivePolicy::Serial`] |
/// | GLAF-parallel v0 | [`DirectivePolicy::AllParallel`] — "OMP directives in all applicable loops" |
/// | GLAF-parallel v1 | [`DirectivePolicy::NoInitLoops`] — v0 minus initializations to zero / single-value loads |
/// | GLAF-parallel v2 | [`DirectivePolicy::NoSimpleSingle`] — v1 minus simple single loops |
/// | GLAF-parallel v3 | [`DirectivePolicy::NoSimpleDouble`] — v2 minus simple double loops |
/// | (future work) | [`DirectivePolicy::CostModel`] — §4.1.2's performance-prediction back-end decides |
#[derive(Debug, Clone, PartialEq)]
pub enum DirectivePolicy {
    Serial,
    AllParallel,
    NoInitLoops,
    NoSimpleSingle,
    NoSimpleDouble,
    CostModel(CostParams),
}

impl DirectivePolicy {
    /// The paper's name for this variant, for reports.
    pub fn variant_name(&self) -> &'static str {
        match self {
            DirectivePolicy::Serial => "GLAF serial",
            DirectivePolicy::AllParallel => "GLAF-parallel v0",
            DirectivePolicy::NoInitLoops => "GLAF-parallel v1",
            DirectivePolicy::NoSimpleSingle => "GLAF-parallel v2",
            DirectivePolicy::NoSimpleDouble => "GLAF-parallel v3",
            DirectivePolicy::CostModel(_) => "GLAF-parallel cost-model",
        }
    }

    /// Decides whether a parallelizable loop keeps its directive.
    pub fn keep_directive(&self, nest: &LoopNest, plan: &LoopPlan) -> bool {
        if !plan.parallelizable {
            return false;
        }
        match self {
            DirectivePolicy::Serial => false,
            DirectivePolicy::AllParallel => true,
            DirectivePolicy::NoInitLoops => {
                !matches!(plan.class, LoopClass::ZeroInit | LoopClass::SingleValueInit)
            }
            DirectivePolicy::NoSimpleSingle => !matches!(
                plan.class,
                LoopClass::ZeroInit | LoopClass::SingleValueInit | LoopClass::SimpleSingle
            ),
            DirectivePolicy::NoSimpleDouble => matches!(plan.class, LoopClass::Complex),
            DirectivePolicy::CostModel(params) => {
                CostAdvisor::new(params.clone()).decide(nest, plan) == Decision::Threads
            }
        }
    }
}

/// Everything configurable about one code-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CodegenOptions {
    pub policy: DirectivePolicy,
    /// Functions whose loops must be generated *serial* regardless of the
    /// policy — the FUN3D experiment's per-level "off" switches.
    pub suppress_parallel: BTreeSet<String>,
    /// Functions whose outermost parallelizable loop keeps its directive
    /// regardless of the class-based policy — the per-level "on" switches.
    pub force_parallel: BTreeSet<String>,
    /// Steps (function name, step index) to wrap in `!$OMP CRITICAL` —
    /// the §4.2.1 manual tweak for `ioff_search`'s early-return section.
    pub critical_steps: BTreeSet<(String, usize)>,
    /// Module-scope grids declared `!$OMP THREADPRIVATE` (§4.2.1's
    /// "declared as private or thread-private as appropriate").
    pub threadprivate: BTreeSet<String>,
    /// Grids whose accumulations always get `!$OMP ATOMIC` protection,
    /// regardless of the plan (§4.2.1: "Atomic update clauses are added
    /// to parallel updates to module-scope arrays").
    pub force_atomic: BTreeSet<String>,
    /// Apply the FORTRAN `SAVE` attribute to every allocatable local —
    /// the automatic no-reallocation option the paper proposes as future
    /// work ("an option to GLAF could be added to limit such excessive
    /// reallocation automatically", §4.2.2).
    pub auto_save_arrays: bool,
    /// Emit `!$OMP ATOMIC` before accumulations into grids flagged by the
    /// parallel plan (on by default; the §4.2.1 adaptation).
    pub atomic_updates: bool,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            policy: DirectivePolicy::AllParallel,
            suppress_parallel: BTreeSet::new(),
            force_parallel: BTreeSet::new(),
            critical_steps: BTreeSet::new(),
            threadprivate: BTreeSet::new(),
            force_atomic: BTreeSet::new(),
            auto_save_arrays: false,
            atomic_updates: true,
        }
    }
}

impl CodegenOptions {
    /// A serial-code configuration.
    pub fn serial() -> Self {
        CodegenOptions { policy: DirectivePolicy::Serial, ..Default::default() }
    }

    /// The Table 2 variant ladder by version number (0..=3).
    pub fn parallel_version(v: u8) -> Self {
        let policy = match v {
            0 => DirectivePolicy::AllParallel,
            1 => DirectivePolicy::NoInitLoops,
            2 => DirectivePolicy::NoSimpleSingle,
            _ => DirectivePolicy::NoSimpleDouble,
        };
        CodegenOptions { policy, ..Default::default() }
    }

    /// Final verdict for one loop of one function.
    ///
    /// `force_parallel` overrides even a negative parallelizability
    /// verdict: this is how the FUN3D experiment generates "all possible
    /// levels of parallelization ... to ease the search of the
    /// optimization space" (§4.2.2) — correctness at forced levels is the
    /// job of the accompanying THREADPRIVATE / ATOMIC / CRITICAL
    /// adaptations, exactly as in the paper.
    pub fn directive_for(&self, function: &str, nest: &LoopNest, plan: &LoopPlan) -> bool {
        if self.suppress_parallel.contains(function) {
            return false;
        }
        if self.force_parallel.contains(function) {
            return true;
        }
        self.policy.keep_directive(nest, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaf_autopar::plan::LoopPlan;
    use glaf_ir::{Expr, IndexRange};

    fn plan(class: LoopClass) -> LoopPlan {
        LoopPlan {
            step_index: 0,
            class,
            vectorizable: true,
            parallelizable: true,
            collapse: 1,
            private: vec![],
            reductions: vec![],
            atomic: vec![],
            blockers: vec![],
            schedule: None,
        }
    }

    fn nest() -> LoopNest {
        LoopNest {
            ranges: vec![IndexRange::new("i", Expr::int(1), Expr::int(100))],
            condition: None,
            body: vec![],
        }
    }

    #[test]
    fn ladder_removes_classes_incrementally() {
        let n = nest();
        use LoopClass::*;
        let cases = [ZeroInit, SingleValueInit, SimpleSingle, SimpleDouble, Complex];
        let keep = |p: &DirectivePolicy| -> Vec<bool> {
            cases.iter().map(|c| p.keep_directive(&n, &plan(*c))).collect()
        };
        assert_eq!(keep(&DirectivePolicy::Serial), vec![false; 5]);
        assert_eq!(keep(&DirectivePolicy::AllParallel), vec![true; 5]);
        assert_eq!(
            keep(&DirectivePolicy::NoInitLoops),
            vec![false, false, true, true, true]
        );
        assert_eq!(
            keep(&DirectivePolicy::NoSimpleSingle),
            vec![false, false, false, true, true]
        );
        assert_eq!(
            keep(&DirectivePolicy::NoSimpleDouble),
            vec![false, false, false, false, true]
        );
    }

    #[test]
    fn non_parallelizable_never_kept() {
        let n = nest();
        let mut p = plan(LoopClass::Complex);
        p.parallelizable = false;
        assert!(!DirectivePolicy::AllParallel.keep_directive(&n, &p));
    }

    #[test]
    fn overrides_beat_policy() {
        let n = nest();
        let p = plan(LoopClass::ZeroInit);
        let mut opt = CodegenOptions::parallel_version(3);
        assert!(!opt.directive_for("f", &n, &p));
        opt.force_parallel.insert("f".into());
        assert!(opt.directive_for("f", &n, &p));
        opt.suppress_parallel.insert("f".into());
        assert!(!opt.directive_for("f", &n, &p), "suppress wins over force");
    }

    #[test]
    fn force_overrides_negative_verdict() {
        let n = nest();
        let mut p = plan(LoopClass::Complex);
        p.parallelizable = false;
        let mut opt = CodegenOptions::serial();
        assert!(!opt.directive_for("f", &n, &p));
        opt.force_parallel.insert("f".into());
        assert!(
            opt.directive_for("f", &n, &p),
            "§4.2.2: forced levels generate directives for investigation"
        );
    }

    #[test]
    fn version_ladder_constructor() {
        assert_eq!(
            CodegenOptions::parallel_version(0).policy,
            DirectivePolicy::AllParallel
        );
        assert_eq!(
            CodegenOptions::parallel_version(3).policy,
            DirectivePolicy::NoSimpleDouble
        );
        assert_eq!(CodegenOptions::serial().policy, DirectivePolicy::Serial);
    }
}
