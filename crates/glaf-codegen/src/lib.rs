//! # glaf-codegen — GLAF's automatic code generation back-end
//!
//! "Automatic code generation parses the internal representation, collects
//! the input from the auto-parallelization and code optimization back-ends,
//! and generates human-readable, compatible code for the selected language"
//! (paper §2.1). This crate emits:
//!
//! * **FORTRAN** ([`fortran`]) — free-form F90 modules with the full set of
//!   legacy-integration features from §3: `USE` of existing modules,
//!   `COMMON` block grouping, `SUBROUTINE` generation for `Void` functions,
//!   `type_var%element` accesses, module-scope declarations, `SAVE`
//!   attributes and the extended intrinsic library.
//! * **C** ([`c`]) — C11 with OpenMP pragmas, mallocs sized per grid, and
//!   struct definitions under the AoS/SoA layout choice.
//!
//! Directive placement is driven by a [`policy::DirectivePolicy`]
//! reproducing the paper's Table 2 ladder (v0 → v3) plus the cost-model
//! policy from §4.1.2's future work, and by per-function overrides used by
//! the FUN3D experiment to force/suppress parallelization at each nesting
//! level (§4.2.2's "all combinations of parallelization ... options").

pub mod c;
pub mod fortran;
pub mod policy;

pub use c::generate_c;
pub use fortran::{generate_fortran, generate_fortran_function};
pub use policy::{CodegenOptions, DirectivePolicy};

/// Counts source lines of code the way the paper's Table 1 does: non-blank
/// lines that are not pure comments.
pub fn sloc(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .filter(|l| {
            // FORTRAN comments are skipped, but `!$OMP` directives count.
            (!l.starts_with('!') || l.starts_with("!$"))
                && !l.starts_with("//")
                && !l.starts_with('*')
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sloc_ignores_blanks_and_comments() {
        let src = "\n! comment\nx = 1\n\n  ! another\ny = 2\n!$OMP PARALLEL DO\n";
        assert_eq!(sloc(src), 3, "two statements plus one directive");
    }

    #[test]
    fn sloc_counts_c_style() {
        let src = "// c comment\nint x;\n\n";
        assert_eq!(sloc(src), 1);
    }
}
