//! The Synoptic SARB kernels **as a GLAF program**: the same six
//! subroutines re-implemented through the GPI-equivalent builder, with the
//! structure GLAF enforces (paper §3.3: "GLAF requires that interior
//! nested loops be modeled as a separate function call") and the legacy
//! bindings of §3:
//!
//! * `fi%...` / `fo%...` grids are **elements of existing TYPE variables**
//!   (§3.5) from `fuliou_mod`;
//! * `u0`, `ee`, `tsfc` live in the **COMMON block** `/radparams/` (§3.2);
//! * the per-band scratch buffers `bf`, `trn`, `swdir` and the smoothing
//!   buffer `work` are **module-scope variables** of the generated module
//!   (§3.3) — interior-loop functions write them, the outer scope reads
//!   them;
//! * every subprogram is a **SUBROUTINE** (§3.4) except `g_ent_band`,
//!   which returns a value and exercises the FUNCTION path.
//!
//! The arithmetic matches `original.rs` operation-for-operation, so the
//! serial engine executions are bit-identical — the §4.1.1 verification
//! criterion.

use glaf_grid::{DataType, Grid};
use glaf_ir::{Expr, LValue, LibFunc, Program, ProgramBuilder, Stmt};

use crate::legacy::SIGMA;

const NV: i64 = 60;
const NVP: i64 = 61;
const NBLW: i64 = 12;
const NBSW: i64 = 6;

fn ix(v: &str) -> Expr {
    Expr::idx(v)
}

fn n(v: i64) -> Expr {
    Expr::int(v)
}

fn r(v: f64) -> Expr {
    Expr::real(v)
}

fn s(name: &str) -> Expr {
    Expr::scalar(name)
}

fn at1(g: &str, i: Expr) -> Expr {
    Expr::at(g, vec![i])
}

fn at2(g: &str, i: Expr, j: Expr) -> Expr {
    Expr::at(g, vec![i, j])
}

fn lmax(a: Expr, b: Expr) -> Expr {
    Expr::lib(LibFunc::Max, vec![a, b])
}

fn lmin(a: Expr, b: Expr) -> Expr {
    Expr::lib(LibFunc::Min, vec![a, b])
}

fn lexp(a: Expr) -> Expr {
    Expr::lib(LibFunc::Exp, vec![a])
}

fn lalog(a: Expr) -> Expr {
    Expr::lib(LibFunc::Alog, vec![a])
}

fn labs(a: Expr) -> Expr {
    Expr::lib(LibFunc::Abs, vec![a])
}

// --- grid constructors for the legacy bindings ---

fn fi(name: &str, dims: &[(i64, i64)]) -> Grid {
    let mut b = Grid::build(name).typed(DataType::Real8);
    for &(lo, hi) in dims {
        b = b.dim(lo, hi);
    }
    b.type_element("fuliou_mod", "fi").finish().unwrap()
}

fn fo(name: &str, dims: &[(i64, i64)]) -> Grid {
    let mut b = Grid::build(name).typed(DataType::Real8);
    for &(lo, hi) in dims {
        b = b.dim(lo, hi);
    }
    b.type_element("fuliou_mod", "fo").finish().unwrap()
}

fn common(name: &str) -> Grid {
    Grid::build(name)
        .typed(DataType::Real8)
        .in_common_block("radparams")
        .finish()
        .unwrap()
}

fn module_arr(name: &str, dims: &[(i64, i64)]) -> Grid {
    let mut b = Grid::build(name).typed(DataType::Real8);
    for &(lo, hi) in dims {
        b = b.dim(lo, hi);
    }
    b.module_scope().comment("GLAF module-scope work buffer (§3.3)").finish().unwrap()
}

fn local_f(name: &str) -> Grid {
    Grid::build(name).typed(DataType::Real8).finish().unwrap()
}

fn param_i(name: &str) -> Grid {
    Grid::build(name).typed(DataType::Integer).finish().unwrap()
}

fn param_f(name: &str) -> Grid {
    Grid::build(name).typed(DataType::Real8).finish().unwrap()
}

/// Builds the full GLAF program for the SARB kernels.
pub fn build_sarb_program() -> Program {
    let sigma = r(SIGMA);

    let b = ProgramBuilder::new().module("sarb_kernels");

    // Global Scope: legacy bindings + module-scope buffers.
    let b = b
        .global(fi("pt", &[(1, NV)]))
        .global(fi("ph", &[(1, NV)]))
        .global(fi("tau_lw", &[(1, NBLW), (1, NV)]))
        .global(fi("tau_sw", &[(1, NBSW), (1, NV)]))
        .global(fo("fdl", &[(1, NVP)]))
        .global(fo("ful", &[(1, NVP)]))
        .global(fo("fds", &[(1, NVP)]))
        .global(fo("fus", &[(1, NVP)]))
        .global(fo("entl", &[(1, 2), (1, NV)]))
        .global(fo("ents", &[(1, NV)]))
        .global(fo("sent", &[]))
        .global(fo("toa_net", &[]))
        .global(common("u0"))
        .global(common("ee"))
        .global(common("tsfc"))
        .global(module_arr("bf", &[(1, NV)]))
        .global(module_arr("trn", &[(1, NV)]))
        .global(module_arr("swdir", &[(1, NV)]))
        .global(module_arr("lwork", &[(1, 2), (1, NV)]));

    // ---- interior-loop functions of lw_spectral_integration (§3.3) ----

    // bf(i) = wgt(ib) * sigma * pt(i)^4 * exp(-1.4388*wn(ib)/pt(i))
    let b = b
        .subroutine("g_lw_emis")
        .param(param_i("ibnd"))
        .loop_step("band emission")
        .foreach("i", n(1), n(NV))
        .formula(
            LValue::at("bf", vec![ix("i")]),
            (r(1.0) / (r(1.0) + r(0.1) * s("ibnd")))
                * sigma.clone()
                * at1("pt", ix("i")).pow(n(4))
                * lexp(-(r(1.4388) * (r(100.0) + r(50.0) * s("ibnd"))) / at1("pt", ix("i"))),
        )
        .done()
        .done();

    let b = b
        .subroutine("g_lw_trn")
        .param(param_i("ibnd"))
        .loop_step("band transmittance")
        .foreach("i", n(1), n(NV))
        .formula(
            LValue::at("trn", vec![ix("i")]),
            lexp(-at2("tau_lw", s("ibnd"), ix("i"))),
        )
        .done()
        .done();

    let b = b
        .subroutine("g_lw_dn")
        .loop_step("downwelling accumulation")
        .foreach("i", n(1), n(NV))
        .formula(
            LValue::at("fdl", vec![ix("i") + n(1)]),
            at1("fdl", ix("i") + n(1)) + at1("bf", ix("i")) * (r(1.0) - at1("trn", ix("i"))),
        )
        .done()
        .done();

    let b = b
        .subroutine("g_lw_up")
        .loop_step("upwelling accumulation")
        .foreach("i", n(1), n(NV))
        .formula(
            LValue::at("ful", vec![ix("i")]),
            at1("ful", ix("i"))
                + s("ee") * at1("bf", ix("i")) * at1("trn", ix("i"))
                + (r(1.0) - s("ee")) * r(0.3) * at1("bf", ix("i")),
        )
        .done()
        .done();

    // ---- lw_spectral_integration ----
    let b = b
        .subroutine("lw_spectral_integration")
        .loop_step("zero downwelling flux")
        .foreach("i", n(1), n(NVP))
        .formula(LValue::at("fdl", vec![ix("i")]), r(0.0))
        .done()
        .loop_step("zero upwelling flux")
        .foreach("i", n(1), n(NVP))
        .formula(LValue::at("ful", vec![ix("i")]), r(0.0))
        .done()
        .loop_step("loop over longwave bands")
        .foreach("ib", n(1), n(NBLW))
        .stmt(Stmt::CallSub { name: "g_lw_emis".into(), args: vec![ix("ib")] })
        .stmt(Stmt::CallSub { name: "g_lw_trn".into(), args: vec![ix("ib")] })
        .stmt(Stmt::CallSub { name: "g_lw_dn".into(), args: vec![] })
        .stmt(Stmt::CallSub { name: "g_lw_up".into(), args: vec![] })
        .done()
        .straight_step(
            "surface emission",
            vec![Stmt::assign(
                LValue::at("ful", vec![n(NVP)]),
                at1("ful", n(NVP)) + s("ee") * sigma.clone() * s("tsfc").pow(n(4)),
            )],
        )
        .loop_step("normalize downwelling")
        .foreach("i", n(1), n(NVP))
        .formula(LValue::at("fdl", vec![ix("i")]), at1("fdl", ix("i")) / r(12.0))
        .done()
        .loop_step("normalize upwelling")
        .foreach("i", n(1), n(NVP))
        .formula(LValue::at("ful", vec![ix("i")]), at1("ful", ix("i")) / r(12.0))
        .done()
        .done();

    // ---- g_ent_band: the spectral entropy integrand (FUNCTION, §3.4) ----
    let b = b
        .function("g_ent_band", DataType::Real8)
        .param(param_f("fql"))
        .param(param_f("tl"))
        .local(local_f("accb"))
        .local(local_f("wb"))
        .local(local_f("ub"))
        .straight_step(
            "init accumulator",
            vec![Stmt::assign(LValue::scalar("accb"), r(0.0))],
        )
        .loop_step("integrate over bands")
        .foreach("ib", n(1), n(NBLW))
        .formula(LValue::scalar("wb"), r(100.0) + r(50.0) * ix("ib"))
        .formula(
            LValue::scalar("ub"),
            lmax(
                s("fql") * (r(1.0) / (r(1.0) + r(0.1) * ix("ib")))
                    / (sigma.clone() * s("tl").pow(n(4))),
                r(1.0e-12),
            ),
        )
        .formula(
            LValue::scalar("accb"),
            s("accb")
                + s("wb")
                    * ((r(1.0) + s("ub")) * lalog(r(1.0) + s("ub")) - s("ub") * lalog(s("ub"))),
        )
        .done()
        .straight_step("return", vec![Stmt::Return(Some(s("accb")))])
        .done();

    // ---- longwave_entropy_model ----
    let b = b
        .subroutine("longwave_entropy_model")
        .local(local_f("fql"))
        .local(local_f("tl"))
        .local(local_f("acc2"))
        .local(local_f("vsm"))
        .local(local_f("tot"))
        .loop_step("zero entropy profile")
        .foreach("is", n(1), n(2))
        .foreach("i", n(1), n(NV))
        .formula(LValue::at("entl", vec![ix("is"), ix("i")]), r(0.0))
        .done()
        // Big loop 1: the first directive-keeping COLLAPSE(2) loop.
        .loop_step("spectral entropy integration")
        .foreach("is", n(1), n(2))
        .foreach("i", n(1), n(NV))
        .formula(
            LValue::scalar("fql"),
            at1("fdl", ix("i") + n(1)) * (n(2) - ix("is")) + at1("ful", ix("i")) * (ix("is") - n(1)),
        )
        .formula(LValue::scalar("tl"), at1("pt", ix("i")))
        .formula(
            LValue::scalar("acc2"),
            Expr::call("g_ent_band", vec![s("fql"), s("tl")]),
        )
        .formula(
            LValue::at("entl", vec![ix("is"), ix("i")]),
            s("acc2") * (r(4.0) / r(3.0)) / s("tl"),
        )
        .done()
        .loop_step("copy to work buffer")
        .foreach("is", n(1), n(2))
        .foreach("i", n(1), n(NV))
        .formula(
            LValue::at("lwork", vec![ix("is"), ix("i")]),
            at2("entl", ix("is"), ix("i")),
        )
        .done()
        // Big loop 2: vertical smoothing with humidity correction.
        .loop_step("vertical smoothing")
        .foreach("is", n(1), n(2))
        .foreach("i", n(1), n(NV))
        .formula(
            LValue::scalar("vsm"),
            r(0.5) * at2("lwork", ix("is"), ix("i"))
                + r(0.25) * at2("lwork", ix("is"), lmax(ix("i") - n(1), n(1)))
                + r(0.25) * at2("lwork", ix("is"), lmin(ix("i") + n(1), n(NV))),
        )
        .stmt(Stmt::If {
            cond: at1("ph", ix("i")).cmp(glaf_ir::BinOp::Gt, r(0.55)),
            then_body: vec![Stmt::assign(
                LValue::scalar("vsm"),
                s("vsm") * (r(1.0) + r(0.05) * at1("ph", ix("i"))),
            )],
            else_body: vec![],
        })
        .formula(LValue::at("entl", vec![ix("is"), ix("i")]), s("vsm"))
        .done()
        .straight_step("reset total", vec![Stmt::assign(LValue::scalar("tot"), r(0.0))])
        .loop_step("column total")
        .foreach("i", n(1), n(NV))
        .formula(
            LValue::scalar("tot"),
            s("tot") + (at2("entl", n(1), ix("i")) + at2("entl", n(2), ix("i"))),
        )
        .done()
        .straight_step(
            "accumulate entropy",
            vec![Stmt::assign(
                LValue::scalar("sent"),
                s("sent") + s("tot") / r(120.0),
            )],
        )
        .done();

    // ---- shortwave band function ----
    let b = b
        .subroutine("g_sw_band")
        .param(param_i("kbnd"))
        .local(local_f("s0w"))
        .local(local_f("taucum"))
        .straight_step(
            "band constants",
            vec![
                Stmt::assign(
                    LValue::scalar("s0w"),
                    r(1360.0) / r(2.0).pow(s("kbnd")) * r(0.7),
                ),
                Stmt::assign(LValue::scalar("taucum"), r(0.0)),
            ],
        )
        .loop_step("direct beam attenuation")
        .foreach("i", n(1), n(NV))
        .formula(
            LValue::scalar("taucum"),
            s("taucum") + at2("tau_sw", s("kbnd"), ix("i")),
        )
        .formula(
            LValue::at("swdir", vec![ix("i")]),
            s("s0w") * s("u0") * lexp(-s("taucum") / lmax(s("u0"), r(0.01))),
        )
        .done()
        .loop_step("accumulate downward shortwave")
        .foreach("i", n(1), n(NV))
        .formula(
            LValue::at("fds", vec![ix("i") + n(1)]),
            at1("fds", ix("i") + n(1)) + at1("swdir", ix("i")),
        )
        .done()
        .done();

    // ---- sw_spectral_integration ----
    let b = b
        .subroutine("sw_spectral_integration")
        .loop_step("zero downward shortwave")
        .foreach("i", n(1), n(NVP))
        .formula(LValue::at("fds", vec![ix("i")]), r(0.0))
        .done()
        .loop_step("zero upward shortwave")
        .foreach("i", n(1), n(NVP))
        .formula(LValue::at("fus", vec![ix("i")]), r(0.0))
        .done()
        .loop_step("loop over shortwave bands")
        .foreach("k", n(1), n(NBSW))
        .stmt(Stmt::CallSub { name: "g_sw_band".into(), args: vec![ix("k")] })
        .done()
        .loop_step("surface reflection")
        .foreach("i", n(1), n(NVP))
        .formula(LValue::at("fus", vec![ix("i")]), r(0.15) * at1("fds", ix("i")))
        .done()
        .straight_step(
            "ground bounce",
            vec![Stmt::assign(
                LValue::at("fus", vec![n(NVP)]),
                at1("fus", n(NVP)) + r(0.05) * at1("fds", n(NVP)),
            )],
        )
        .done();

    // ---- shortwave_entropy_model ----
    let b = b
        .subroutine("shortwave_entropy_model")
        .loop_step("shortwave entropy")
        .foreach("i", n(1), n(NV))
        .formula(
            LValue::at("ents", vec![ix("i")]),
            (r(4.0) / r(3.0)) * (at1("fds", ix("i") + n(1)) - at1("fus", ix("i") + n(1)))
                / lmax(at1("pt", ix("i")), r(150.0)),
        )
        .done()
        .done();

    // ---- entropy_interface ----
    let b = b
        .subroutine("entropy_interface")
        .local(local_f("tot2"))
        .straight_step(
            "reset entropy",
            vec![Stmt::assign(LValue::scalar("sent"), r(0.0))],
        )
        .loop_step("zero shortwave entropy")
        .foreach("i", n(1), n(NV))
        .formula(LValue::at("ents", vec![ix("i")]), r(0.0))
        .done()
        .straight_step(
            "run entropy models",
            vec![
                Stmt::CallSub { name: "longwave_entropy_model".into(), args: vec![] },
                Stmt::CallSub { name: "shortwave_entropy_model".into(), args: vec![] },
            ],
        )
        .straight_step("reset sw total", vec![Stmt::assign(LValue::scalar("tot2"), r(0.0))])
        .loop_step("sum shortwave entropy")
        .foreach("i", n(1), n(NV))
        .formula(LValue::scalar("tot2"), s("tot2") + at1("ents", ix("i")))
        .done()
        .straight_step(
            "combine and scale",
            vec![
                Stmt::assign(LValue::scalar("sent"), s("sent") + s("tot2") / r(60.0)),
                Stmt::assign(LValue::scalar("sent"), s("sent") * r(1000.0)),
            ],
        )
        .done();

    // ---- adjust2 ----
    let b = b
        .subroutine("adjust2")
        .local(local_f("fac"))
        .straight_step(
            "net TOA flux and factor",
            vec![
                Stmt::assign(
                    LValue::scalar("toa_net"),
                    at1("fds", n(1)) - at1("fus", n(1)) + at1("fdl", n(1)) - at1("ful", n(1)),
                ),
                Stmt::assign(
                    LValue::scalar("fac"),
                    r(1.0) + r(0.05) * s("toa_net") / (labs(s("toa_net")) + r(100.0)),
                ),
            ],
        )
        .loop_step("adjust downwelling longwave")
        .foreach("i", n(1), n(NVP))
        .formula(
            LValue::at("fdl", vec![ix("i")]),
            lmax(at1("fdl", ix("i")) * s("fac"), r(0.0)),
        )
        .done()
        .loop_step("adjust upwelling longwave")
        .foreach("i", n(1), n(NVP))
        .formula(
            LValue::at("ful", vec![ix("i")]),
            lmax(at1("ful", ix("i")) * s("fac"), r(0.0)),
        )
        .done()
        .loop_step("adjust downward shortwave")
        .foreach("i", n(1), n(NVP))
        .formula(
            LValue::at("fds", vec![ix("i")]),
            lmax(at1("fds", ix("i")) * s("fac"), r(0.0)),
        )
        .done()
        .loop_step("adjust upward shortwave")
        .foreach("i", n(1), n(NVP))
        .formula(
            LValue::at("fus", vec![ix("i")]),
            lmax(at1("fus", ix("i")) * s("fac"), r(0.0)),
        )
        .done()
        .done();

    b.done().finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaf::{Glaf, Lang};
    use glaf_autopar::LoopClass;
    use glaf_codegen::CodegenOptions;

    #[test]
    fn program_validates() {
        let p = build_sarb_program();
        let errs = glaf_ir::validate_program(&p);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn plan_matches_paper_structure() {
        let g = Glaf::new(build_sarb_program()).unwrap();
        let plan = g.plan();

        // The two big longwave loops are Complex, parallelizable,
        // COLLAPSE(2) — the only directive survivors of v3.
        let lw = plan.for_function("longwave_entropy_model").unwrap();
        let big: Vec<_> = lw
            .loops
            .iter()
            .filter(|l| l.class == LoopClass::Complex && l.parallelizable)
            .collect();
        assert_eq!(big.len(), 2, "{:#?}", lw.loops);
        for l in &big {
            assert_eq!(l.collapse, 2);
        }

        // The lw band loop is blocked (callees overwrite shared bf/trn).
        let lwspec = plan.for_function("lw_spectral_integration").unwrap();
        let band = lwspec.loops.iter().find(|l| l.step_index == 2).unwrap();
        assert!(!band.parallelizable, "{band:?}");

        // The sw in-band attenuation loop is blocked (taucum recurrence).
        let swband = plan.for_function("g_sw_band").unwrap();
        assert!(!swband.loops[0].parallelizable);
        // ... but the accumulation loop is parallel.
        assert!(swband.loops[1].parallelizable);

        // Zero-init loops classified for the v1 policy.
        assert_eq!(lwspec.loops[0].class, LoopClass::ZeroInit);
        assert_eq!(lwspec.loops[1].class, LoopClass::ZeroInit);

        // g_ent_band's integration is a recognized scalar reduction.
        let ent = plan.for_function("g_ent_band").unwrap();
        assert_eq!(ent.loops[0].reductions.len(), 1);
        assert_eq!(ent.loops[0].reductions[0].grid, "accb");
    }

    #[test]
    fn v3_keeps_exactly_two_directives() {
        let g = Glaf::new(build_sarb_program()).unwrap();
        let code = g.generate(Lang::Fortran, &CodegenOptions::parallel_version(3));
        let count = code.source.matches("!$OMP PARALLEL DO").count();
        assert_eq!(count, 2, "v3 keeps the two longwave loops:\n{}", code.source);
        assert_eq!(code.source.matches("COLLAPSE(2)").count(), 2);
    }

    #[test]
    fn v0_has_many_directives() {
        let g = Glaf::new(build_sarb_program()).unwrap();
        let v0 = g.generate(Lang::Fortran, &CodegenOptions::parallel_version(0));
        let v1 = g.generate(Lang::Fortran, &CodegenOptions::parallel_version(1));
        let v2 = g.generate(Lang::Fortran, &CodegenOptions::parallel_version(2));
        let c0 = v0.source.matches("!$OMP PARALLEL DO").count();
        let c1 = v1.source.matches("!$OMP PARALLEL DO").count();
        let c2 = v2.source.matches("!$OMP PARALLEL DO").count();
        assert!(c0 > c1 && c1 > c2 && c2 > 2, "ladder: {c0} > {c1} > {c2} > 2");
    }

    #[test]
    fn integration_features_present_in_generated_code() {
        let g = Glaf::new(build_sarb_program()).unwrap();
        let src = g.generate(Lang::Fortran, &CodegenOptions::serial()).source;
        assert!(src.contains("USE fuliou_mod"), "§3.1/3.5 USE");
        assert!(src.contains("COMMON /radparams/ u0, ee, tsfc"), "§3.2 COMMON");
        assert!(src.contains("fi%pt"), "§3.5 TYPE element prefix");
        assert!(src.contains("fo%fdl"));
        assert!(src.contains("SUBROUTINE adjust2()"), "§3.4 subroutine");
        assert!(src.contains("REAL(8) FUNCTION g_ent_band"), "function path");
        assert!(src.contains("ALOG("), "§3.6 extended library");
        // Module-scope buffers declared in the generated module.
        let header = &src[..src.find("CONTAINS").unwrap()];
        assert!(header.contains("bf"), "module-scope bf:\n{header}");
    }
}
