//! A native Rust oracle for the SARB kernels: an implementation of the
//! same mathematics written directly against the spec in `original.rs`,
//! providing a trusted result *independent of the FORTRAN engine*. A
//! rayon-parallel column sweep demonstrates the honest-Rust way to
//! parallelize the workload (columns are independent given their index).

// The index-based loops below intentionally mirror the FORTRAN sources
// statement-for-statement so bit-level comparison stays reviewable.
#![allow(clippy::needless_range_loop)]

use crate::legacy::{NBLW, NBSW, NV, NVP, SIGMA};

/// Per-column inputs (mirrors `set_params` + `set_column`).
#[derive(Debug, Clone)]
pub struct ColumnInput {
    pub u0: f64,
    pub ee: f64,
    pub tsfc: f64,
    pub pt: [f64; NV],
    pub ph: [f64; NV],
    pub po: [f64; NV],
    pub pp: [f64; NVP],
    /// `tau_lw[ib][i]`.
    pub tau_lw: Vec<[f64; NV]>,
    pub tau_sw: Vec<[f64; NV]>,
}

impl ColumnInput {
    /// Mirrors the legacy generators for column `c` (1-based, as in the
    /// FORTRAN driver).
    pub fn column(c: i64) -> ColumnInput {
        let cf = c as f64;
        let mut pt = [0.0; NV];
        let mut ph = [0.0; NV];
        let mut po = [0.0; NV];
        for i in 1..=NV {
            let fi = i as f64;
            pt[i - 1] = 215.0 + 75.0 * fi / 60.0 + 4.0 * (0.61 * fi + 0.37 * cf).sin();
            ph[i - 1] = 0.30 + 0.25 * (0.23 * fi + 0.11 * cf).sin() + 0.25;
            po[i - 1] = 0.05 + 0.01 * (0.40 * fi + 0.20 * cf).cos();
        }
        let mut pp = [0.0; NVP];
        for i in 1..=NVP {
            pp[i - 1] = 1013.0 * (-(61.0 - i as f64) / 18.0).exp();
        }
        let mut tau_lw = vec![[0.0; NV]; NBLW];
        for (ib, row) in tau_lw.iter_mut().enumerate() {
            let b = (ib + 1) as f64;
            for i in 1..=NV {
                row[i - 1] =
                    (0.02 + 0.015 * b) * (1.0 + ph[i - 1]) * (pp[i] - pp[i - 1]) / 40.0;
            }
        }
        let mut tau_sw = vec![[0.0; NV]; NBSW];
        for (k, row) in tau_sw.iter_mut().enumerate() {
            let b = (k + 1) as f64;
            for i in 1..=NV {
                row[i - 1] =
                    (0.01 + 0.02 * b) * (1.0 + 0.5 * po[i - 1]) * (pp[i] - pp[i - 1]) / 50.0;
            }
        }
        ColumnInput {
            u0: 0.3 + 0.2 * (1.0 + (0.5 * cf).sin()),
            ee: 0.98,
            tsfc: 288.0 + 3.0 * (0.8 * cf).sin(),
            pt,
            ph,
            po,
            pp,
            tau_lw,
            tau_sw,
        }
    }
}

/// Per-column outputs (mirrors the `fuoutput_t` fields).
#[derive(Debug, Clone, Default)]
pub struct ColumnOutput {
    pub fdl: Vec<f64>,
    pub ful: Vec<f64>,
    pub fds: Vec<f64>,
    pub fus: Vec<f64>,
    /// Column-major `(is, i)` flattening, matching the engine snapshot.
    pub entl: Vec<f64>,
    pub ents: Vec<f64>,
    pub sent: f64,
    pub toa_net: f64,
}

/// Runs the full six-kernel pipeline on one column.
pub fn run_column(input: &ColumnInput) -> ColumnOutput {
    let mut o = ColumnOutput {
        fdl: vec![0.0; NVP],
        ful: vec![0.0; NVP],
        fds: vec![0.0; NVP],
        fus: vec![0.0; NVP],
        entl: vec![0.0; 2 * NV],
        ents: vec![0.0; NV],
        sent: 0.0,
        toa_net: 0.0,
    };
    lw_spectral_integration(input, &mut o);
    sw_spectral_integration(input, &mut o);
    entropy_interface(input, &mut o);
    adjust2(&mut o);
    o
}

fn lw_spectral_integration(inp: &ColumnInput, o: &mut ColumnOutput) {
    o.fdl.iter_mut().for_each(|v| *v = 0.0);
    o.ful.iter_mut().for_each(|v| *v = 0.0);
    let mut bf = [0.0f64; NV];
    let mut trn = [0.0f64; NV];
    for ib in 1..=NBLW {
        let b = ib as f64;
        for i in 0..NV {
            bf[i] = (1.0 / (1.0 + 0.1 * b))
                * SIGMA
                * inp.pt[i].powi(4)
                * (-1.4388 * (100.0 + 50.0 * b) / inp.pt[i]).exp();
        }
        for i in 0..NV {
            trn[i] = (-inp.tau_lw[ib - 1][i]).exp();
        }
        for i in 0..NV {
            o.fdl[i + 1] += bf[i] * (1.0 - trn[i]);
        }
        for i in 0..NV {
            // Left-associated like the FORTRAN `a + b + c` for bit parity.
            o.ful[i] = (o.ful[i] + inp.ee * bf[i] * trn[i]) + (1.0 - inp.ee) * 0.3 * bf[i];
        }
    }
    o.ful[NVP - 1] += inp.ee * SIGMA * inp.tsfc.powi(4);
    for v in o.fdl.iter_mut() {
        *v /= 12.0;
    }
    for v in o.ful.iter_mut() {
        *v /= 12.0;
    }
}

fn longwave_entropy_model(inp: &ColumnInput, o: &mut ColumnOutput) {
    // entl is flattened column-major over (is, i): index = (is-1) + 2*(i-1).
    let at = |is: usize, i: usize| (is - 1) + 2 * (i - 1);
    o.entl.iter_mut().for_each(|v| *v = 0.0);
    for is in 1..=2usize {
        for i in 1..=NV {
            let fql =
                o.fdl[i] * (2 - is as i64) as f64 + o.ful[i - 1] * (is as i64 - 1) as f64;
            let tl = inp.pt[i - 1];
            let mut accb = 0.0;
            for ib in 1..=NBLW {
                let b = ib as f64;
                let wb = 100.0 + 50.0 * b;
                let ub = (fql * (1.0 / (1.0 + 0.1 * b)) / (SIGMA * tl.powi(4))).max(1.0e-12);
                accb += wb * ((1.0 + ub) * (1.0 + ub).ln() - ub * ub.ln());
            }
            o.entl[at(is, i)] = accb * (4.0 / 3.0) / tl;
        }
    }
    let lwork = o.entl.clone();
    for is in 1..=2usize {
        for i in 1..=NV {
            let lo = i.saturating_sub(1).max(1);
            let hi = (i + 1).min(NV);
            let mut vsm = 0.5 * lwork[at(is, i)]
                + 0.25 * lwork[at(is, lo)]
                + 0.25 * lwork[at(is, hi)];
            if inp.ph[i - 1] > 0.55 {
                vsm *= 1.0 + 0.05 * inp.ph[i - 1];
            }
            o.entl[at(is, i)] = vsm;
        }
    }
    let mut tot = 0.0;
    for i in 1..=NV {
        tot += o.entl[at(1, i)] + o.entl[at(2, i)];
    }
    o.sent += tot / 120.0;
}

fn sw_spectral_integration(inp: &ColumnInput, o: &mut ColumnOutput) {
    o.fds.iter_mut().for_each(|v| *v = 0.0);
    o.fus.iter_mut().for_each(|v| *v = 0.0);
    for k in 1..=NBSW {
        let s0w = 1360.0 / 2.0f64.powi(k as i32) * 0.7;
        let mut taucum = 0.0;
        for i in 0..NV {
            taucum += inp.tau_sw[k - 1][i];
            o.fds[i + 1] += s0w * inp.u0 * (-taucum / inp.u0.max(0.01)).exp();
        }
    }
    for i in 0..NVP {
        o.fus[i] = 0.15 * o.fds[i];
    }
    o.fus[NVP - 1] += 0.05 * o.fds[NVP - 1];
}

fn shortwave_entropy_model(inp: &ColumnInput, o: &mut ColumnOutput) {
    for i in 0..NV {
        o.ents[i] = (4.0 / 3.0) * (o.fds[i + 1] - o.fus[i + 1]) / inp.pt[i].max(150.0);
    }
}

fn entropy_interface(inp: &ColumnInput, o: &mut ColumnOutput) {
    o.sent = 0.0;
    o.ents.iter_mut().for_each(|v| *v = 0.0);
    longwave_entropy_model(inp, o);
    shortwave_entropy_model(inp, o);
    let mut tot2 = 0.0;
    for i in 0..NV {
        tot2 += o.ents[i];
    }
    o.sent += tot2 / 60.0;
    o.sent *= 1000.0;
}

fn adjust2(o: &mut ColumnOutput) {
    o.toa_net = o.fds[0] - o.fus[0] + o.fdl[0] - o.ful[0];
    let fac = 1.0 + 0.05 * o.toa_net / (o.toa_net.abs() + 100.0);
    for v in o.fdl.iter_mut() {
        *v = (*v * fac).max(0.0);
    }
    for v in o.ful.iter_mut() {
        *v = (*v * fac).max(0.0);
    }
    for v in o.fds.iter_mut() {
        *v = (*v * fac).max(0.0);
    }
    for v in o.fus.iter_mut() {
        *v = (*v * fac).max(0.0);
    }
}

/// Serial driver: last column's outputs plus the accumulated entropy,
/// matching `run_columns`.
pub fn run_columns_native(ncol: i64) -> (ColumnOutput, f64) {
    let mut total = 0.0;
    let mut last = ColumnOutput::default();
    for c in 1..=ncol {
        let inp = ColumnInput::column(c);
        last = run_column(&inp);
        total += last.sent;
    }
    (last, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::{run_real, SarbVariant};

    #[test]
    fn oracle_matches_engine_original_bitwise() {
        let (native, total) = run_columns_native(3);
        let engine = run_real(SarbVariant::OriginalSerial, 3, 1);
        assert_eq!(native.fdl, engine.fdl, "fdl");
        assert_eq!(native.ful, engine.ful, "ful");
        assert_eq!(native.fds, engine.fds, "fds");
        assert_eq!(native.fus, engine.fus, "fus");
        assert_eq!(native.entl, engine.entl, "entl");
        assert_eq!(native.ents, engine.ents, "ents");
        assert_eq!(native.sent, engine.sent, "sent");
        assert_eq!(total, engine.total_sent, "total_sent");
    }

    #[test]
    fn rayon_column_sweep_matches_serial_totals() {
        use rayon::prelude::*;
        let ncol = 16i64;
        let (_, serial_total) = run_columns_native(ncol);
        let parallel_total: f64 = (1..=ncol)
            .into_par_iter()
            .map(|c| run_column(&ColumnInput::column(c)).sent)
            .sum();
        assert!(
            (serial_total - parallel_total).abs() < 1e-9,
            "{serial_total} vs {parallel_total}"
        );
    }

    #[test]
    fn physical_sanity() {
        let o = run_column(&ColumnInput::column(1));
        assert!(o.fdl.iter().all(|v| *v >= 0.0 && v.is_finite()));
        assert!(o.sent.is_finite());
        // Downwelling longwave accumulates toward the surface.
        assert!(o.fdl[NV] > o.fdl[5]);
    }
}
