//! # sarb — the Synoptic SARB case study (paper §2.2, §4.1)
//!
//! NASA's CERES Synoptic SARB computes vertical longwave/shortwave flux
//! profiles with the Fu-Liou radiative transfer model. The paper
//! implements six of its subroutines (Table 1) through GLAF and verifies
//! and times them against the original serial code. This crate provides:
//!
//! * [`legacy`] — the shared "existing module" (`fuliou_mod`: TYPEs,
//!   instances, synthetic profile generator) and the column driver, used
//!   *as is* by every implementation (§4.1.1);
//! * [`original`] — the monolithic original serial kernels;
//! * [`glaf_model`] — the same kernels as a GLAF program (builder API,
//!   §3 integration features, interior-loop functions);
//! * [`variants`] — the Table 2 ladder (original / GLAF serial / v0–v3 /
//!   cost-model), engine construction, simulated and real-thread runs;
//! * [`native`] — a Rust oracle (bit-identical to the engine) plus a
//!   rayon column sweep.
//!
//! The real CERES inputs and sources are restricted; the synthetic
//! substitution is documented in DESIGN.md §2.

pub mod glaf_model;
pub mod legacy;
pub mod native;
pub mod original;
pub mod variants;
