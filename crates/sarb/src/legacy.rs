//! The *legacy* FORTRAN that both the original and the GLAF-generated
//! kernels integrate with — used "as is", exactly as §4.1.1 prescribes:
//! "The imported FORTRAN modules, from which the auto-generated code uses
//! existing variables and custom data types, are used as is."
//!
//! `fuliou_mod` stands in for the restricted CERES fuliou library's module
//! layer: the Fu-Liou input/output derived TYPEs (`fuinput_t`,
//! `fuoutput_t`), their instances `fi` / `fo`, the model dimensions, and
//! the synthetic atmospheric-profile generator `set_column` (the real
//! inputs come from restricted MATCH/CERES data; see DESIGN.md §2).
//! The `radparams` COMMON block carries the solar geometry and surface
//! parameters, exercising the paper's §3.2 pathway.

/// Dimensions shared by every implementation.
pub const NV: usize = 60;
pub const NVP: usize = 61;
pub const NBLW: usize = 12;
pub const NBSW: usize = 6;
/// Stefan-Boltzmann (W m^-2 K^-4).
pub const SIGMA: f64 = 5.67e-8;

/// The shared legacy module source.
pub const FULIOU_MOD_SRC: &str = r#"
MODULE fuliou_mod
  IMPLICIT NONE
  INTEGER, PARAMETER :: nv = 60
  INTEGER, PARAMETER :: nvp = 61
  INTEGER, PARAMETER :: nblw = 12
  INTEGER, PARAMETER :: nbsw = 6
  REAL(8), PARAMETER :: sigma_sb = 5.67D-8

  TYPE fuinput_t
    REAL(8), DIMENSION(1:60) :: pt
    REAL(8), DIMENSION(1:60) :: ph
    REAL(8), DIMENSION(1:60) :: po
    REAL(8), DIMENSION(1:61) :: pp
    REAL(8), DIMENSION(1:12, 1:60) :: tau_lw
    REAL(8), DIMENSION(1:6, 1:60) :: tau_sw
  END TYPE fuinput_t

  TYPE fuoutput_t
    REAL(8), DIMENSION(1:61) :: fdl
    REAL(8), DIMENSION(1:61) :: ful
    REAL(8), DIMENSION(1:61) :: fds
    REAL(8), DIMENSION(1:61) :: fus
    REAL(8), DIMENSION(1:2, 1:60) :: entl
    REAL(8), DIMENSION(1:60) :: ents
    REAL(8) :: sent
    REAL(8) :: toa_net
  END TYPE fuoutput_t

  TYPE(fuinput_t) :: fi
  TYPE(fuoutput_t) :: fo
CONTAINS

  ! Surface / solar parameters for column c (COMMON block /radparams/).
  SUBROUTINE set_params(c)
    INTEGER :: c
    REAL(8) :: u0, ee, tsfc
    COMMON /radparams/ u0, ee, tsfc
    u0 = 0.3D0 + 0.2D0 * (1.0D0 + SIN(0.5D0 * c))
    ee = 0.98D0
    tsfc = 288.0D0 + 3.0D0 * SIN(0.8D0 * c)
  END SUBROUTINE set_params

  ! Synthetic atmospheric profile for column c (deterministic stand-in
  ! for the restricted CERES/MATCH inputs).
  SUBROUTINE set_column(c)
    INTEGER :: c
    INTEGER :: i, ib
    DO i = 1, nv
      fi%pt(i) = 215.0D0 + 75.0D0 * i / 60.0D0 + 4.0D0 * SIN(0.61D0 * i + 0.37D0 * c)
      fi%ph(i) = 0.30D0 + 0.25D0 * SIN(0.23D0 * i + 0.11D0 * c) + 0.25D0
      fi%po(i) = 0.05D0 + 0.01D0 * COS(0.40D0 * i + 0.20D0 * c)
    END DO
    DO i = 1, nvp
      fi%pp(i) = 1013.0D0 * EXP(-(61.0D0 - i) / 18.0D0)
    END DO
    DO ib = 1, nblw
      DO i = 1, nv
        fi%tau_lw(ib, i) = (0.02D0 + 0.015D0 * ib) * (1.0D0 + fi%ph(i)) * (fi%pp(i + 1) - fi%pp(i)) / 40.0D0
      END DO
    END DO
    DO ib = 1, nbsw
      DO i = 1, nv
        fi%tau_sw(ib, i) = (0.01D0 + 0.02D0 * ib) * (1.0D0 + 0.5D0 * fi%po(i)) * (fi%pp(i + 1) - fi%pp(i)) / 50.0D0
      END DO
    END DO
  END SUBROUTINE set_column
END MODULE fuliou_mod
"#;

/// The Synoptic SARB driver: iterates columns of a zone, invoking the six
/// kernels per column — the §4.1.1 "wrapper function that calls the GLAF
/// auto-generated subroutines and provides sample values for the required
/// inputs". The same text is compiled against either kernel module.
pub const DRIVER_SRC: &str = r#"
MODULE sarb_driver
  USE fuliou_mod
  IMPLICIT NONE
  REAL(8) :: total_sent
CONTAINS
  SUBROUTINE run_columns(ncol)
    INTEGER :: ncol
    INTEGER :: c
    total_sent = 0.0D0
    DO c = 1, ncol
      CALL set_params(c)
      CALL set_column(c)
      CALL lw_spectral_integration()
      CALL sw_spectral_integration()
      CALL entropy_interface()
      CALL adjust2()
      total_sent = total_sent + fo%sent
    END DO
  END SUBROUTINE run_columns
END MODULE sarb_driver
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use fortrans::{ArgVal, Engine, ExecMode};

    #[test]
    fn legacy_module_compiles_and_fills_profiles() {
        let probe = r#"
MODULE probe
  USE fuliou_mod
CONTAINS
  SUBROUTINE fill(c)
    INTEGER :: c
    CALL set_params(c)
    CALL set_column(c)
  END SUBROUTINE fill
END MODULE probe
"#;
        let e = Engine::compile(&[FULIOU_MOD_SRC, probe]).unwrap();
        e.run("fill", &[ArgVal::I(3)], ExecMode::Serial).unwrap();
        let pt = e.global_array("fuliou_mod::fi%pt").unwrap();
        // Temperature profile in a physical range.
        for i in 0..NV {
            let t = pt.get_f(i);
            assert!((180.0..320.0).contains(&t), "pt({i}) = {t}");
        }
        let pp = e.global_array("fuliou_mod::fi%pp").unwrap();
        // Pressure increases toward the surface (index 61).
        assert!(pp.get_f(60) > pp.get_f(0));
        let tau = e.global_array("fuliou_mod::fi%tau_lw").unwrap();
        assert!(tau.to_f64_vec().iter().all(|&t| t >= 0.0));
    }

    #[test]
    fn params_in_common_block() {
        let probe = r#"
MODULE probe
  USE fuliou_mod
CONTAINS
  REAL(8) FUNCTION read_u0(c)
    INTEGER :: c
    REAL(8) :: u0, ee, tsfc
    COMMON /radparams/ u0, ee, tsfc
    CALL set_params(c)
    read_u0 = u0
  END FUNCTION read_u0
END MODULE probe
"#;
        let e = Engine::compile(&[FULIOU_MOD_SRC, probe]).unwrap();
        let out = e.run("read_u0", &[ArgVal::I(1)], ExecMode::Serial).unwrap();
        let fortrans::Val::F(u0) = out.result.unwrap() else { panic!() };
        assert!((0.1..=0.8).contains(&u0), "u0 = {u0}");
    }
}
