//! The **original serial** Synoptic SARB kernels — the baseline every
//! implementation in Fig. 5/6 is measured against.
//!
//! Six subroutines (paper Table 1) in one monolithic module, written the
//! way legacy Fu-Liou code is written: nested loops inline, locals on the
//! stack, data reached through the `fuliou_mod` TYPE instances and the
//! `radparams` COMMON block. No OpenMP anywhere.
//!
//! The physics is a synthetic stand-in with the same computational
//! structure as the restricted CERES code (DESIGN.md §2): spectral band
//! loops over a 60-level column, Planck-style emission with
//! transcendentals, entropy integrands `(1+u)·ln(1+u) − u·ln(u)` over two
//! streams × 60 levels (the paper's `2 × 60 = 120`-iteration COLLAPSE(2)
//! loops), cumulative-optical-depth recurrences in the shortwave, and
//! flux adjustment passes.

/// The original kernels, exactly as a scientist would have written them.
pub const ORIGINAL_KERNELS_SRC: &str = r#"
MODULE sarb_kernels
  USE fuliou_mod
  IMPLICIT NONE
CONTAINS

  SUBROUTINE lw_spectral_integration()
    REAL(8) :: u0, ee, tsfc
    COMMON /radparams/ u0, ee, tsfc
    REAL(8), DIMENSION(1:60) :: bf
    REAL(8), DIMENSION(1:60) :: trn
    INTEGER :: i, ib
    DO i = 1, nvp
      fo%fdl(i) = 0.0D0
    END DO
    DO i = 1, nvp
      fo%ful(i) = 0.0D0
    END DO
    DO ib = 1, nblw
      DO i = 1, nv
        bf(i) = (1.0D0 / (1.0D0 + 0.1D0 * ib)) * sigma_sb * fi%pt(i)**4 * EXP(-1.4388D0 * (100.0D0 + 50.0D0 * ib) / fi%pt(i))
      END DO
      DO i = 1, nv
        trn(i) = EXP(-fi%tau_lw(ib, i))
      END DO
      DO i = 1, nv
        fo%fdl(i + 1) = fo%fdl(i + 1) + bf(i) * (1.0D0 - trn(i))
      END DO
      DO i = 1, nv
        fo%ful(i) = fo%ful(i) + ee * bf(i) * trn(i) + (1.0D0 - ee) * 0.3D0 * bf(i)
      END DO
    END DO
    fo%ful(nvp) = fo%ful(nvp) + ee * sigma_sb * tsfc**4
    DO i = 1, nvp
      fo%fdl(i) = fo%fdl(i) / 12.0D0
    END DO
    DO i = 1, nvp
      fo%ful(i) = fo%ful(i) / 12.0D0
    END DO
  END SUBROUTINE lw_spectral_integration

  SUBROUTINE longwave_entropy_model()
    REAL(8), DIMENSION(1:2, 1:60) :: lwork
    REAL(8) :: fql, tl, accb, wb, ub, vsm, tot
    INTEGER :: is, i, ib
    DO is = 1, 2
      DO i = 1, nv
        fo%entl(is, i) = 0.0D0
      END DO
    END DO
    ! Spectral entropy integration: two streams x 60 levels, 12 bands
    ! each, with the Planck entropy integrand. This is the first of the
    ! two loops whose OpenMP directives survive to GLAF-parallel v3.
    DO is = 1, 2
      DO i = 1, nv
        fql = fo%fdl(i + 1) * (2 - is) + fo%ful(i) * (is - 1)
        tl = fi%pt(i)
        accb = 0.0D0
        DO ib = 1, nblw
          wb = 100.0D0 + 50.0D0 * ib
          ub = MAX(fql * (1.0D0 / (1.0D0 + 0.1D0 * ib)) / (sigma_sb * tl**4), 1.0D-12)
          accb = accb + wb * ((1.0D0 + ub) * ALOG(1.0D0 + ub) - ub * ALOG(ub))
        END DO
        fo%entl(is, i) = accb * (4.0D0 / 3.0D0) / tl
      END DO
    END DO
    DO is = 1, 2
      DO i = 1, nv
        lwork(is, i) = fo%entl(is, i)
      END DO
    END DO
    ! Vertical smoothing with a humidity correction — the second
    ! directive-keeping loop.
    DO is = 1, 2
      DO i = 1, nv
        vsm = 0.5D0 * lwork(is, i) + 0.25D0 * lwork(is, MAX(i - 1, 1)) + 0.25D0 * lwork(is, MIN(i + 1, 60))
        IF (fi%ph(i) > 0.55D0) THEN
          vsm = vsm * (1.0D0 + 0.05D0 * fi%ph(i))
        END IF
        fo%entl(is, i) = vsm
      END DO
    END DO
    tot = 0.0D0
    DO i = 1, nv
      tot = tot + (fo%entl(1, i) + fo%entl(2, i))
    END DO
    fo%sent = fo%sent + tot / 120.0D0
  END SUBROUTINE longwave_entropy_model

  SUBROUTINE sw_spectral_integration()
    REAL(8) :: u0, ee, tsfc
    COMMON /radparams/ u0, ee, tsfc
    REAL(8) :: s0w, taucum
    INTEGER :: i, k
    DO i = 1, nvp
      fo%fds(i) = 0.0D0
    END DO
    DO i = 1, nvp
      fo%fus(i) = 0.0D0
    END DO
    DO k = 1, nbsw
      s0w = 1360.0D0 / (2.0D0**k) * 0.7D0
      taucum = 0.0D0
      DO i = 1, nv
        taucum = taucum + fi%tau_sw(k, i)
        fo%fds(i + 1) = fo%fds(i + 1) + s0w * u0 * EXP(-taucum / MAX(u0, 0.01D0))
      END DO
    END DO
    DO i = 1, nvp
      fo%fus(i) = 0.15D0 * fo%fds(i)
    END DO
    fo%fus(nvp) = fo%fus(nvp) + 0.05D0 * fo%fds(nvp)
  END SUBROUTINE sw_spectral_integration

  SUBROUTINE shortwave_entropy_model()
    INTEGER :: i
    DO i = 1, nv
      fo%ents(i) = (4.0D0 / 3.0D0) * (fo%fds(i + 1) - fo%fus(i + 1)) / MAX(fi%pt(i), 150.0D0)
    END DO
  END SUBROUTINE shortwave_entropy_model

  SUBROUTINE entropy_interface()
    REAL(8) :: tot2
    INTEGER :: i
    fo%sent = 0.0D0
    DO i = 1, nv
      fo%ents(i) = 0.0D0
    END DO
    CALL longwave_entropy_model()
    CALL shortwave_entropy_model()
    tot2 = 0.0D0
    DO i = 1, nv
      tot2 = tot2 + fo%ents(i)
    END DO
    fo%sent = fo%sent + tot2 / 60.0D0
    fo%sent = fo%sent * 1000.0D0
  END SUBROUTINE entropy_interface

  SUBROUTINE adjust2()
    REAL(8) :: fac
    INTEGER :: i
    fo%toa_net = fo%fds(1) - fo%fus(1) + fo%fdl(1) - fo%ful(1)
    fac = 1.0D0 + 0.05D0 * fo%toa_net / (ABS(fo%toa_net) + 100.0D0)
    DO i = 1, nvp
      fo%fdl(i) = MAX(fo%fdl(i) * fac, 0.0D0)
    END DO
    DO i = 1, nvp
      fo%ful(i) = MAX(fo%ful(i) * fac, 0.0D0)
    END DO
    DO i = 1, nvp
      fo%fds(i) = MAX(fo%fds(i) * fac, 0.0D0)
    END DO
    DO i = 1, nvp
      fo%fus(i) = MAX(fo%fus(i) * fac, 0.0D0)
    END DO
  END SUBROUTINE adjust2
END MODULE sarb_kernels
"#;

#[cfg(test)]
mod tests {
    use crate::legacy::{DRIVER_SRC, FULIOU_MOD_SRC};
    use fortrans::{ArgVal, Engine, ExecMode, Val};

    fn original_engine() -> Engine {
        Engine::compile(&[FULIOU_MOD_SRC, super::ORIGINAL_KERNELS_SRC, DRIVER_SRC])
            .unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn original_pipeline_runs_and_produces_physical_fluxes() {
        let e = original_engine();
        e.run("run_columns", &[ArgVal::I(2)], ExecMode::Serial).unwrap();
        let fdl = e.global_array("fuliou_mod::fo%fdl").unwrap().to_f64_vec();
        let ful = e.global_array("fuliou_mod::fo%ful").unwrap().to_f64_vec();
        // Downward LW flux grows toward the surface; all fluxes finite and
        // non-negative after adjust2.
        assert!(fdl.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!(ful.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!(fdl[60] > fdl[5], "downwelling accumulates: {} vs {}", fdl[60], fdl[5]);
        // Surface upward flux includes the emission term: significant.
        assert!(ful[60] > 10.0, "surface ful = {}", ful[60]);
    }

    #[test]
    fn entropy_outputs_populated() {
        let e = original_engine();
        e.run("run_columns", &[ArgVal::I(1)], ExecMode::Serial).unwrap();
        let entl = e.global_array("fuliou_mod::fo%entl").unwrap().to_f64_vec();
        assert_eq!(entl.len(), 120);
        assert!(entl.iter().any(|v| *v > 0.0));
        let Some(Val::F(sent)) = e.global_scalar("fuliou_mod::fo%sent") else { panic!() };
        assert!(sent.is_finite() && sent != 0.0);
        let Some(Val::F(total)) = e.global_scalar("sarb_driver::total_sent") else { panic!() };
        assert_eq!(total, sent, "one column: total equals last sent");
    }

    #[test]
    fn deterministic_across_runs() {
        let e1 = original_engine();
        e1.run("run_columns", &[ArgVal::I(3)], ExecMode::Serial).unwrap();
        let a = e1.global_array("fuliou_mod::fo%fdl").unwrap().to_f64_vec();
        let e2 = original_engine();
        e2.run("run_columns", &[ArgVal::I(3)], ExecMode::Serial).unwrap();
        let b = e2.global_array("fuliou_mod::fo%fdl").unwrap().to_f64_vec();
        assert_eq!(a, b);
    }

    #[test]
    fn per_column_variation() {
        let e = original_engine();
        e.run("run_columns", &[ArgVal::I(1)], ExecMode::Serial).unwrap();
        let s1 = e.global_scalar("fuliou_mod::fo%sent");
        let e2 = original_engine();
        e2.run("run_columns", &[ArgVal::I(2)], ExecMode::Serial).unwrap();
        let s2 = e2.global_scalar("fuliou_mod::fo%sent");
        assert_ne!(s1, s2, "columns differ, so final column state differs");
    }
}
