//! The native Rust oracle for the Jacobian reconstruction, plus a rayon
//! variant showing the idiomatic-Rust parallelization (per-cell map with
//! per-thread partial Jacobians folded at the end — no atomics needed).

// The index-based loops below intentionally mirror the FORTRAN sources
// statement-for-statement so bit-level comparison stays reviewable.
#![allow(clippy::needless_range_loop)]

use crate::mesh::{Mesh, EDGES, JROW, NST};

/// Per-cell contribution: the (slot, flux) pairs a cell adds to `jac`.
fn cell_contributions(m: &Mesh, c: usize) -> Vec<(usize, f64)> {
    let adot: f64 = (0..3).map(|d| m.fnorm[c][0][d] * m.fnorm[c][1][d]).sum();
    if adot < -0.2 {
        return Vec::new();
    }
    let mut qavg = [0.0f64; NST];
    for st in 0..NST {
        for k in 0..4 {
            qavg[st] += m.qn[m.c2n[c][k]][st];
        }
    }
    for q in qavg.iter_mut() {
        *q /= 4.0;
    }
    let mut grad = [[0.0f64; NST]; 3];
    for st in 0..NST {
        for d in 0..3 {
            for f in 0..4 {
                grad[d][st] += m.fnorm[c][f][d] * m.farea[c][f] * qavg[st];
            }
        }
    }
    let mut out = Vec::with_capacity(6 * NST);
    for &(ea, eb) in EDGES.iter() {
        let n1 = m.c2n[c][ea];
        let n2 = m.c2n[c][eb];
        let k = m.ioff(n1, n2);
        for st in 0..NST {
            let ta = m.qn[n1][st] - m.qn[n2][st];
            let tb = m.qn[n1][st] + m.qn[n2][st];
            let tc = grad[0][st] * 0.3 + grad[1][st] * 0.5 + grad[2][st] * 0.2;
            let td = ta * tb;
            let te = (-ta.abs()).exp();
            let tf = tc * te;
            let tg = td + tf;
            let th = tg * 0.25;
            let ti = th + qavg[st] * 0.1;
            let flux = ti / (1.0 + tb.abs());
            out.push((n1 * JROW + k * NST + st, flux));
        }
    }
    out
}

/// The serial oracle: mirrors `jacobian_recon` exactly (bitwise).
pub fn native_jacobian(m: &Mesh) -> Vec<f64> {
    let mut jac = vec![0.0f64; m.njac];
    for c in 0..m.ncell {
        for (slot, flux) in cell_contributions(m, c) {
            jac[slot] += flux;
        }
    }
    jac
}

/// Rayon version: per-thread partial Jacobians, reduced at the join —
/// deterministic up to floating-point summation order.
pub fn native_jacobian_rayon(m: &Mesh) -> Vec<f64> {
    use rayon::prelude::*;
    (0..m.ncell)
        .into_par_iter()
        .fold(
            || vec![0.0f64; m.njac],
            |mut jac, c| {
                for (slot, flux) in cell_contributions(m, c) {
                    jac[slot] += flux;
                }
                jac
            },
        )
        .reduce(
            || vec![0.0f64; m.njac],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b.iter()) {
                    *x += y;
                }
                a
            },
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::{run_real, Fun3dVariant};
    use glaf::{compare_slices, rms};

    #[test]
    fn oracle_matches_engine_bitwise() {
        let jac = run_real(Fun3dVariant::OriginalSerial, 250, 1);
        let native = native_jacobian(&Mesh::build(250));
        assert_eq!(jac, native);
    }

    #[test]
    fn rayon_matches_serial_at_rms_tolerance() {
        let m = Mesh::build(400);
        let a = native_jacobian(&m);
        let b = native_jacobian_rayon(&m);
        let r = compare_slices(&a, &b);
        assert!(r.passes_rms(1e-12), "{r:?}");
    }

    #[test]
    fn reference_rms_is_stable() {
        // The §4.2.1 "reference root mean square of the output arrays":
        // recomputing it must reproduce the same value exactly.
        let m = Mesh::build(300);
        let r1 = rms(&native_jacobian(&m));
        let r2 = rms(&native_jacobian(&m));
        assert_eq!(r1, r2);
        assert!(r1 > 0.0);
    }
}
