//! The synthetic unstructured mesh substrate.
//!
//! FUN3D itself is export-controlled; the paper's dataset ("approximately
//! one million cells and ten million edges ... provided by NASA") is not
//! available. Per the substitution rule (DESIGN.md §2) we generate a
//! synthetic unstructured tetrahedral mesh with the same *access
//! structure*: cells of 4 nodes / 4 faces / 6 edges, random (indirect!)
//! cell→node connectivity, per-node primitive states, per-face normals and
//! areas, and a bounded per-node neighbour table that gives `ioff_search`
//! something to search.
//!
//! The mesh is built *inside the engine* by `build_mesh` using a plain
//! LCG, so the original, the GLAF-generated, and the manual versions all
//! see bit-identical inputs, and the Rust oracle can mirror the generator
//! exactly.

// The index-based loops below intentionally mirror the FORTRAN sources
// statement-for-statement so bit-level comparison stays reviewable.
#![allow(clippy::needless_range_loop)]

/// States per node (density, 3 momenta, energy).
pub const NST: usize = 5;
/// Neighbour-table width (CSR row cap) — `ioff_search`'s search space.
pub const MAXNBR: usize = 8;
/// Jacobian row stride: MAXNBR * NST.
pub const JROW: usize = MAXNBR * NST;

/// The mesh module: dimensions, connectivity, fields, and the Jacobian
/// output array. Every kernel implementation reaches this data through
/// `USE mesh_mod` — the §3.1 "existing module" pathway.
pub const MESH_MOD_SRC: &str = r#"
MODULE mesh_mod
  IMPLICIT NONE
  INTEGER :: ncell
  INTEGER :: nnode
  INTEGER :: njac
  INTEGER :: lcg_state
  INTEGER, DIMENSION(1:6) :: ed1
  INTEGER, DIMENSION(1:6) :: ed2
  INTEGER, DIMENSION(:, :), ALLOCATABLE :: c2n
  REAL(8), DIMENSION(:, :), ALLOCATABLE :: qn
  REAL(8), DIMENSION(:, :, :), ALLOCATABLE :: fnorm
  REAL(8), DIMENSION(:, :), ALLOCATABLE :: farea
  INTEGER, DIMENSION(:, :), ALLOCATABLE :: nbr
  INTEGER, DIMENSION(:), ALLOCATABLE :: nnbr
  REAL(8), DIMENSION(:), ALLOCATABLE :: jac
CONTAINS

  REAL(8) FUNCTION lcg()
    lcg_state = MOD(lcg_state * 48271, 2147483647)
    lcg = lcg_state / 2147483647.0D0
  END FUNCTION lcg

  SUBROUTINE nbr_insert(na, nb)
    INTEGER :: na, nb
    INTEGER :: j
    DO j = 1, nnbr(na)
      IF (nbr(j, na) == nb) THEN
        RETURN
      END IF
    END DO
    IF (nnbr(na) < 8) THEN
      nnbr(na) = nnbr(na) + 1
      nbr(nnbr(na), na) = nb
    END IF
  END SUBROUTINE nbr_insert

  SUBROUTINE build_mesh(nc)
    INTEGER :: nc
    INTEGER :: c, n, m, f, d, e, n1, n2
    ncell = nc
    nnode = nc / 4 + 8
    njac = nnode * 40
    lcg_state = 20180813
    ed1(1) = 1
    ed2(1) = 2
    ed1(2) = 1
    ed2(2) = 3
    ed1(3) = 1
    ed2(3) = 4
    ed1(4) = 2
    ed2(4) = 3
    ed1(5) = 2
    ed2(5) = 4
    ed1(6) = 3
    ed2(6) = 4
    IF (.NOT. ALLOCATED(c2n)) ALLOCATE(c2n(1:4, 1:ncell))
    IF (.NOT. ALLOCATED(qn)) ALLOCATE(qn(1:5, 1:nnode))
    IF (.NOT. ALLOCATED(fnorm)) ALLOCATE(fnorm(1:3, 1:4, 1:ncell))
    IF (.NOT. ALLOCATED(farea)) ALLOCATE(farea(1:4, 1:ncell))
    IF (.NOT. ALLOCATED(nbr)) ALLOCATE(nbr(1:8, 1:nnode))
    IF (.NOT. ALLOCATED(nnbr)) ALLOCATE(nnbr(1:nnode))
    IF (.NOT. ALLOCATED(jac)) ALLOCATE(jac(1:njac))
    DO n = 1, nnode
      DO m = 1, 5
        qn(m, n) = 0.5D0 + lcg()
      END DO
    END DO
    DO c = 1, ncell
      DO n = 1, 4
        c2n(n, c) = INT(lcg() * nnode) + 1
      END DO
      DO f = 1, 4
        farea(f, c) = 0.5D0 + lcg()
        DO d = 1, 3
          fnorm(d, f, c) = lcg() - 0.5D0
        END DO
      END DO
    END DO
    DO n = 1, nnode
      nnbr(n) = 1
      nbr(1, n) = n
    END DO
    DO c = 1, ncell
      DO e = 1, 6
        n1 = c2n(ed1(e), c)
        n2 = c2n(ed2(e), c)
        CALL nbr_insert(n1, n2)
        CALL nbr_insert(n2, n1)
      END DO
    END DO
    DO n = 1, njac
      jac(n) = 0.0D0
    END DO
  END SUBROUTINE build_mesh

  SUBROUTINE zero_jac()
    INTEGER :: n
    DO n = 1, njac
      jac(n) = 0.0D0
    END DO
  END SUBROUTINE zero_jac
END MODULE mesh_mod
"#;

/// A Rust-side mirror of `build_mesh` for the native oracle and tests.
#[derive(Debug, Clone)]
pub struct Mesh {
    pub ncell: usize,
    pub nnode: usize,
    pub njac: usize,
    /// `c2n[c][k]`, 0-based node ids.
    pub c2n: Vec<[usize; 4]>,
    /// `qn[n][m]`.
    pub qn: Vec<[f64; NST]>,
    /// `fnorm[c][f][d]`.
    pub fnorm: Vec<[[f64; 3]; 4]>,
    /// `farea[c][f]`.
    pub farea: Vec<[f64; 4]>,
    /// `nbr[n]` (0-based ids), first entry is `n` itself.
    pub nbr: Vec<Vec<usize>>,
}

/// Local edge endpoints (0-based, matching `ed1`/`ed2`).
pub const EDGES: [(usize, usize); 6] = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];

struct Lcg(i64);

impl Lcg {
    fn next(&mut self) -> f64 {
        self.0 = (self.0 * 48271) % 2147483647;
        self.0 as f64 / 2147483647.0
    }
}

impl Mesh {
    /// Mirrors `build_mesh(nc)` exactly.
    pub fn build(nc: usize) -> Mesh {
        let ncell = nc;
        let nnode = nc / 4 + 8;
        let njac = nnode * JROW;
        let mut rng = Lcg(20180813);
        let mut qn = vec![[0.0; NST]; nnode];
        for q in qn.iter_mut() {
            for v in q.iter_mut() {
                *v = 0.5 + rng.next();
            }
        }
        let mut c2n = vec![[0usize; 4]; ncell];
        let mut fnorm = vec![[[0.0; 3]; 4]; ncell];
        let mut farea = vec![[0.0; 4]; ncell];
        for c in 0..ncell {
            for k in 0..4 {
                c2n[c][k] = (rng.next() * nnode as f64) as usize; // 0-based
            }
            for f in 0..4 {
                farea[c][f] = 0.5 + rng.next();
                for d in 0..3 {
                    fnorm[c][f][d] = rng.next() - 0.5;
                }
            }
        }
        let mut nbr: Vec<Vec<usize>> = (0..nnode).map(|n| vec![n]).collect();
        let insert = |nbr: &mut Vec<Vec<usize>>, a: usize, b: usize| {
            if nbr[a].contains(&b) {
                return;
            }
            if nbr[a].len() < MAXNBR {
                nbr[a].push(b);
            }
        };
        for c in 0..ncell {
            for &(ea, eb) in EDGES.iter() {
                let n1 = c2n[c][ea];
                let n2 = c2n[c][eb];
                insert(&mut nbr, n1, n2);
                insert(&mut nbr, n2, n1);
            }
        }
        Mesh { ncell, nnode, njac, c2n, qn, fnorm, farea, nbr }
    }

    /// `ioff_search` mirror: index (0-based) of `target` in `nbr[n]`, or 0.
    pub fn ioff(&self, n: usize, target: usize) -> usize {
        self.nbr[n].iter().position(|&x| x == target).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fortrans::{ArgVal, Engine, ExecMode, Val};

    #[test]
    fn engine_and_rust_generators_agree() {
        let e = Engine::compile(&[MESH_MOD_SRC]).unwrap();
        e.run("build_mesh", &[ArgVal::I(200)], ExecMode::Serial).unwrap();
        let m = Mesh::build(200);

        assert_eq!(e.global_scalar("mesh_mod::ncell"), Some(Val::I(200)));
        assert_eq!(e.global_scalar("mesh_mod::nnode"), Some(Val::I(m.nnode as i64)));
        assert_eq!(e.global_scalar("mesh_mod::njac"), Some(Val::I(m.njac as i64)));

        // qn matches elementwise (column-major: qn(m, n)).
        let qn = e.global_array("mesh_mod::qn").unwrap();
        for n in 0..m.nnode {
            for st in 0..NST {
                let got = qn.get_f(n * NST + st);
                assert_eq!(got, m.qn[n][st], "qn({},{})", st + 1, n + 1);
            }
        }

        // Connectivity matches (Fortran 1-based).
        let c2n = e.global_array("mesh_mod::c2n").unwrap();
        for c in 0..m.ncell {
            for k in 0..4 {
                assert_eq!(c2n.get_i(c * 4 + k), m.c2n[c][k] as i64 + 1);
            }
        }

        // Neighbour tables match.
        let nbr = e.global_array("mesh_mod::nbr").unwrap();
        let nnbr = e.global_array("mesh_mod::nnbr").unwrap();
        for n in 0..m.nnode {
            assert_eq!(nnbr.get_i(n) as usize, m.nbr[n].len(), "node {n}");
            for (j, &b) in m.nbr[n].iter().enumerate() {
                assert_eq!(nbr.get_i(n * MAXNBR + j), b as i64 + 1);
            }
        }
    }

    #[test]
    fn mesh_invariants() {
        let m = Mesh::build(500);
        assert_eq!(m.nnode, 500 / 4 + 8);
        for c in 0..m.ncell {
            for k in 0..4 {
                assert!(m.c2n[c][k] < m.nnode);
            }
            for f in 0..4 {
                assert!(m.farea[c][f] >= 0.5 && m.farea[c][f] < 1.5);
            }
        }
        for (n, list) in m.nbr.iter().enumerate() {
            assert!(!list.is_empty() && list.len() <= MAXNBR);
            assert_eq!(list[0], n, "own id first");
            let mut sorted = list.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), list.len(), "no duplicates in nbr[{n}]");
        }
    }

    #[test]
    fn rebuild_is_idempotent_on_shapes() {
        let e = Engine::compile(&[MESH_MOD_SRC]).unwrap();
        e.run("build_mesh", &[ArgVal::I(100)], ExecMode::Serial).unwrap();
        // Second build with the same size reuses the allocation guards.
        e.run("build_mesh", &[ArgVal::I(100)], ExecMode::Serial).unwrap();
        assert_eq!(e.global_scalar("mesh_mod::ncell"), Some(Val::I(100)));
    }
}
