//! The FUN3D Jacobian reconstruction **as a GLAF program** — §4.2: "The
//! GLAF implementation ... decomposes the original function into five
//! sub-functions":
//!
//! * **`edgejp`** — "the outermost scope, which initializes critical
//!   module-wide constants and loops over cells of the simulation";
//! * **`cell_loop`** — "the computation required within a cell and
//!   includes interior loops over nodes, faces, and edges within the
//!   cell";
//! * **`edge_loop`** — the per-edge computation, with its chain of
//!   **allocatable temporaries** (the §4.2.2 reallocation storm: GLAF
//!   "malloc"s every grid, cf. Fig. 1);
//! * **`angle_check`** — "a check for a cell-face angle in excess of some
//!   threshold (which results in skipping the rest of the cell's
//!   contribution)";
//! * **`ioff_search`** — "a search for the offset at which a node's
//!   contribution should be recorded in the final output data structure".
//!   The paper protected its early return with `!$OMP CRITICAL`; our
//!   engine-native equivalent is a `MAX` reduction over the (unique)
//!   match index, which is correct at every parallelization level
//!   (documented substitution, DESIGN.md §2).
//!
//! All mesh data arrives through `USE mesh_mod` — plain existing-module
//! variables, the §3.1 pathway (SARB exercised §3.5's TYPE elements).
//! `qavg`/`grad` are module-scope buffers (§3.3) connecting `cell_loop`
//! to `edge_loop`.

use glaf_grid::{DataType, Grid};
use glaf_ir::{BinOp, Expr, LValue, LibFunc, Program, ProgramBuilder, Stmt};

fn ix(v: &str) -> Expr {
    Expr::idx(v)
}

fn n(v: i64) -> Expr {
    Expr::int(v)
}

fn r(v: f64) -> Expr {
    Expr::real(v)
}

fn s(name: &str) -> Expr {
    Expr::scalar(name)
}

fn at1(g: &str, i: Expr) -> Expr {
    Expr::at(g, vec![i])
}

fn at2(g: &str, i: Expr, j: Expr) -> Expr {
    Expr::at(g, vec![i, j])
}

fn at3(g: &str, i: Expr, j: Expr, k: Expr) -> Expr {
    Expr::at(g, vec![i, j, k])
}

fn mesh_arr(name: &str, ty: DataType, dims: &[(i64, i64)]) -> Grid {
    let mut b = Grid::build(name).typed(ty);
    for &(lo, hi) in dims {
        b = b.dim(lo, hi);
    }
    b.in_existing_module("mesh_mod").finish().unwrap()
}

/// Shape placeholder for allocatable existing-module arrays: the engine
/// uses the runtime allocation; the IR dims only document rank.
const BIG: i64 = 1_048_576;

/// Builds the GLAF FUN3D program.
pub fn build_fun3d_program() -> Program {
    let b = ProgramBuilder::new().module("jac_kernels");

    // Existing mesh data (§3.1).
    let b = b
        .global(mesh_arr("ncell", DataType::Integer, &[]))
        .global(mesh_arr("ed1", DataType::Integer, &[(1, 6)]))
        .global(mesh_arr("ed2", DataType::Integer, &[(1, 6)]))
        .global(mesh_arr("c2n", DataType::Integer, &[(1, 4), (1, BIG)]))
        .global(mesh_arr("qn", DataType::Real8, &[(1, 5), (1, BIG)]))
        .global(mesh_arr("fnorm", DataType::Real8, &[(1, 3), (1, 4), (1, BIG)]))
        .global(mesh_arr("farea", DataType::Real8, &[(1, 4), (1, BIG)]))
        .global(mesh_arr("nbr", DataType::Integer, &[(1, 8), (1, BIG)]))
        .global(mesh_arr("nnbr", DataType::Integer, &[(1, BIG)]))
        .global(mesh_arr("jac", DataType::Real8, &[(1, BIG)]))
        // Module-scope buffers of the generated module (§3.3).
        .global(
            Grid::build("qavg")
                .typed(DataType::Real8)
                .dim1(5)
                .module_scope()
                .comment("cell-average primitives, shared cell_loop -> edge_loop")
                .finish()
                .unwrap(),
        )
        .global(
            Grid::build("grad")
                .typed(DataType::Real8)
                .dim1(3)
                .dim1(5)
                .module_scope()
                .comment("Green-Gauss gradient, shared cell_loop -> edge_loop")
                .finish()
                .unwrap(),
        );

    // ---- angle_check ----
    let b = b
        .function("angle_check", DataType::Real8)
        .param(Grid::build("cidx").typed(DataType::Integer).finish().unwrap())
        .straight_step(
            "face-angle dot product",
            vec![Stmt::Return(Some(
                at3("fnorm", n(1), n(1), s("cidx")) * at3("fnorm", n(1), n(2), s("cidx"))
                    + at3("fnorm", n(2), n(1), s("cidx")) * at3("fnorm", n(2), n(2), s("cidx"))
                    + at3("fnorm", n(3), n(1), s("cidx")) * at3("fnorm", n(3), n(2), s("cidx")),
            ))],
        )
        .done();

    // ---- ioff_search ----
    let b = b
        .function("ioff_search", DataType::Integer)
        .param(Grid::build("n1v").typed(DataType::Integer).finish().unwrap())
        .param(Grid::build("n2v").typed(DataType::Integer).finish().unwrap())
        .local(Grid::build("kfound").typed(DataType::Integer).finish().unwrap())
        .straight_step("default slot", vec![Stmt::assign(LValue::scalar("kfound"), n(1))])
        .loop_step("search neighbour row")
        .foreach("j", n(1), n(8))
        .stmt(Stmt::If {
            cond: ix("j")
                .cmp(BinOp::Le, at1("nnbr", s("n1v")))
                .and(at2("nbr", ix("j"), s("n1v")).cmp(BinOp::Eq, s("n2v"))),
            then_body: vec![Stmt::assign(
                LValue::scalar("kfound"),
                Expr::lib(LibFunc::Max, vec![s("kfound"), ix("j")]),
            )],
            else_body: vec![],
        })
        .done()
        .straight_step("return slot", vec![Stmt::Return(Some(s("kfound")))])
        .done();

    // ---- edge_loop ----
    let temp = |name: &str| {
        Grid::build(name)
            .typed(DataType::Real8)
            .dim1(5)
            .allocatable()
            .comment("GLAF grid: dynamically allocated temporary")
            .finish()
            .unwrap()
    };
    let mut fb = b
        .subroutine("edge_loop")
        .param(Grid::build("cidx").typed(DataType::Integer).finish().unwrap())
        .param(Grid::build("eidx").typed(DataType::Integer).finish().unwrap())
        .local(Grid::build("n1").typed(DataType::Integer).finish().unwrap())
        .local(Grid::build("n2").typed(DataType::Integer).finish().unwrap())
        .local(Grid::build("kslot").typed(DataType::Integer).finish().unwrap());
    for t in ["ta", "tb", "tc", "td", "te", "tf", "tg", "th", "ti", "flux"] {
        fb = fb.local(temp(t));
    }
    let fb = fb
        .straight_step(
            "edge endpoints",
            vec![
                Stmt::assign(
                    LValue::scalar("n1"),
                    at2("c2n", at1("ed1", s("eidx")), s("cidx")),
                ),
                Stmt::assign(
                    LValue::scalar("n2"),
                    at2("c2n", at1("ed2", s("eidx")), s("cidx")),
                ),
            ],
        )
        .loop_step("state difference")
        .foreach("m", n(1), n(5))
        .formula(
            LValue::at("ta", vec![ix("m")]),
            at2("qn", ix("m"), s("n1")) - at2("qn", ix("m"), s("n2")),
        )
        .done()
        .loop_step("state sum")
        .foreach("m", n(1), n(5))
        .formula(
            LValue::at("tb", vec![ix("m")]),
            at2("qn", ix("m"), s("n1")) + at2("qn", ix("m"), s("n2")),
        )
        .done()
        .loop_step("gradient projection")
        .foreach("m", n(1), n(5))
        .formula(
            LValue::at("tc", vec![ix("m")]),
            at2("grad", n(1), ix("m")) * r(0.3)
                + at2("grad", n(2), ix("m")) * r(0.5)
                + at2("grad", n(3), ix("m")) * r(0.2),
        )
        .done()
        .loop_step("product term")
        .foreach("m", n(1), n(5))
        .formula(
            LValue::at("td", vec![ix("m")]),
            at1("ta", ix("m")) * at1("tb", ix("m")),
        )
        .done()
        .loop_step("damping weight")
        .foreach("m", n(1), n(5))
        .formula(
            LValue::at("te", vec![ix("m")]),
            Expr::lib(
                LibFunc::Exp,
                vec![-Expr::lib(LibFunc::Abs, vec![at1("ta", ix("m"))])],
            ),
        )
        .done()
        .loop_step("weighted gradient")
        .foreach("m", n(1), n(5))
        .formula(
            LValue::at("tf", vec![ix("m")]),
            at1("tc", ix("m")) * at1("te", ix("m")),
        )
        .done()
        .loop_step("combine")
        .foreach("m", n(1), n(5))
        .formula(
            LValue::at("tg", vec![ix("m")]),
            at1("td", ix("m")) + at1("tf", ix("m")),
        )
        .done()
        .loop_step("quarter")
        .foreach("m", n(1), n(5))
        .formula(LValue::at("th", vec![ix("m")]), at1("tg", ix("m")) * r(0.25))
        .done()
        .loop_step("bias with cell average")
        .foreach("m", n(1), n(5))
        .formula(
            LValue::at("ti", vec![ix("m")]),
            at1("th", ix("m")) + at1("qavg", ix("m")) * r(0.1),
        )
        .done()
        .loop_step("flux")
        .foreach("m", n(1), n(5))
        .formula(
            LValue::at("flux", vec![ix("m")]),
            at1("ti", ix("m"))
                / (r(1.0) + Expr::lib(LibFunc::Abs, vec![at1("tb", ix("m"))])),
        )
        .done()
        .straight_step(
            "find output offset",
            vec![Stmt::assign(
                LValue::scalar("kslot"),
                Expr::call("ioff_search", vec![s("n1"), s("n2")]),
            )],
        )
        .loop_step("accumulate into Jacobian")
        .foreach("m", n(1), n(5))
        .formula(
            LValue::at(
                "jac",
                vec![(s("n1") - n(1)) * n(40) + (s("kslot") - n(1)) * n(5) + ix("m")],
            ),
            at1(
                "jac",
                (s("n1") - n(1)) * n(40) + (s("kslot") - n(1)) * n(5) + ix("m"),
            ) + at1("flux", ix("m")),
        )
        .done();
    let b = fb.done();

    // ---- cell_loop ----
    let b = b
        .subroutine("cell_loop")
        .param(Grid::build("cidx").typed(DataType::Integer).finish().unwrap())
        .local(Grid::build("ang").typed(DataType::Real8).finish().unwrap())
        .straight_step(
            "cell-face angle check",
            vec![
                Stmt::assign(
                    LValue::scalar("ang"),
                    Expr::call("angle_check", vec![s("cidx")]),
                ),
                Stmt::If {
                    cond: s("ang").cmp(BinOp::Lt, r(-0.2)),
                    then_body: vec![Stmt::Return(None)],
                    else_body: vec![],
                },
            ],
        )
        .loop_step("zero cell averages")
        .foreach("m", n(1), n(5))
        .formula(LValue::at("qavg", vec![ix("m")]), r(0.0))
        .done()
        .loop_step("loop over nodes: gather primitives")
        .foreach("m", n(1), n(5))
        .foreach("k", n(1), n(4))
        .formula(
            LValue::at("qavg", vec![ix("m")]),
            at1("qavg", ix("m")) + at2("qn", ix("m"), at2("c2n", ix("k"), s("cidx"))),
        )
        .done()
        .loop_step("average")
        .foreach("m", n(1), n(5))
        .formula(LValue::at("qavg", vec![ix("m")]), at1("qavg", ix("m")) / r(4.0))
        .done()
        .loop_step("zero gradient")
        .foreach("m", n(1), n(5))
        .foreach("d", n(1), n(3))
        .formula(LValue::at("grad", vec![ix("d"), ix("m")]), r(0.0))
        .done()
        .loop_step("loop over faces: Green-Gauss gradient")
        .foreach("m", n(1), n(5))
        .foreach("d", n(1), n(3))
        .foreach("f", n(1), n(4))
        .formula(
            LValue::at("grad", vec![ix("d"), ix("m")]),
            at2("grad", ix("d"), ix("m"))
                + at3("fnorm", ix("d"), ix("f"), s("cidx"))
                    * at2("farea", ix("f"), s("cidx"))
                    * at1("qavg", ix("m")),
        )
        .done()
        .loop_step("loop over edges")
        .foreach("e", n(1), n(6))
        .stmt(Stmt::CallSub { name: "edge_loop".into(), args: vec![s("cidx"), ix("e")] })
        .done()
        .done();

    // ---- edgejp: the outermost scope ----
    let b = b
        .subroutine("edgejp")
        .loop_step("loop over cells of the simulation")
        .foreach("c", n(1), s("ncell"))
        .stmt(Stmt::CallSub { name: "cell_loop".into(), args: vec![ix("c")] })
        .done()
        .done();

    b.done().finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaf::{Glaf, Lang};
    use glaf_codegen::CodegenOptions;

    #[test]
    fn program_validates() {
        let p = build_fun3d_program();
        let errs = glaf_ir::validate_program(&p);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn plan_structure() {
        let g = Glaf::new(build_fun3d_program()).unwrap();
        let plan = g.plan();

        // The outer cell loop is blocked: cell_loop overwrites the shared
        // qavg/grad buffers (needs THREADPRIVATE to parallelize — §4.2.1).
        let ej = plan.for_function("edgejp").unwrap();
        assert!(!ej.loops[0].parallelizable, "{:?}", ej.loops[0]);
        assert!(ej.loops[0]
            .blockers
            .iter()
            .any(|b| b.contains("qavg") || b.contains("grad")));

        // ioff_search's search loop is a MAX reduction — parallelizable.
        let io = plan.for_function("ioff_search").unwrap();
        assert!(io.loops[0].parallelizable, "{:?}", io.loops[0]);
        assert_eq!(io.loops[0].reductions.len(), 1);

        // cell_loop steps: 0 angle check (straight), 1 zero qavg,
        // 2 node gather, 3 average, 4 zero grad, 5 face loop, 6 edges.
        // The node-gather loop parallelizes on m only (k is carried).
        let cl = plan.for_function("cell_loop").unwrap();
        let gather = cl.for_step(2).unwrap();
        assert!(gather.parallelizable, "{gather:?}");
        assert_eq!(gather.collapse, 1);

        // The face loop collapses over (m, d) but not f.
        let face = cl.for_step(5).unwrap();
        assert!(face.parallelizable, "{face:?}");
        assert_eq!(face.collapse, 2);

        // The edge loop: edge_loop only reads qavg/grad and *accumulates*
        // jac — atomic-eligible, so parallelizable (§4.2.1).
        let edges = cl.for_step(6).unwrap();
        assert!(edges.parallelizable, "{edges:?}");
        assert!(edges.atomic.contains(&"jac".to_string()), "{edges:?}");
    }

    #[test]
    fn generated_code_has_integration_features() {
        let g = Glaf::new(build_fun3d_program()).unwrap();
        let src = g.generate(Lang::Fortran, &CodegenOptions::serial()).source;
        assert!(src.contains("USE mesh_mod"), "§3.1");
        assert!(src.contains("SUBROUTINE edgejp()"));
        assert!(src.contains("INTEGER FUNCTION ioff_search(n1v, n2v)"));
        assert!(src.contains("ALLOCATE(ta(1:5))"), "GLAF temporaries:\n{src}");
        assert!(src.contains("DEALLOCATE(ta)"));
        // No-reallocation option: SAVE + guarded allocation.
        let mut opts = CodegenOptions::serial();
        opts.auto_save_arrays = true;
        let saved = g.generate(Lang::Fortran, &opts).source;
        assert!(saved.contains("IF (.NOT. ALLOCATED(ta)) ALLOCATE(ta(1:5))"));
        assert!(!saved.contains("DEALLOCATE"));
    }
}
