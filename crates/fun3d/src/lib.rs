//! # fun3d — the FUN3D Jacobian-reconstruction case study (§2.3, §4.2)
//!
//! FUN3D's Jacobian matrix reconstruction "consists of about 10
//! subroutines that build pieces of the matrix for linear solving" over
//! all cells of the local MPI domain, with interior loops over nodes,
//! faces and edges. The paper decomposes it into five GLAF functions and
//! sweeps "all combinations of parallelization and no-reallocation
//! options" at 16 threads (Fig. 7). This crate provides:
//!
//! * [`mesh`] — the synthetic unstructured-mesh substrate (the NASA
//!   dataset is unavailable; generator mirrored bit-for-bit in Rust);
//! * [`original`] — the monolithic serial kernel and the hand-parallelized
//!   comparison version;
//! * [`glaf_model`] — the five-function GLAF decomposition
//!   (EdgeJP / cell_loop / edge_loop / angle_check / ioff_search);
//! * [`variants`] — the Fig. 7 option matrix and run harness;
//! * [`native`] — Rust oracles (serial bit-identical; rayon fold/reduce).

pub mod glaf_model;
pub mod mesh;
pub mod native;
pub mod original;
pub mod variants;
