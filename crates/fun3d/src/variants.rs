//! Figure 7's configuration space: "all combinations of parallelization
//! and no-reallocation options" plus the manually parallelized comparison
//! version (§4.2.2).

use std::collections::BTreeSet;
use std::sync::Arc;

use fortrans::{ArgVal, CompiledProgram, Engine, ExecMode, Session};
use glaf::Glaf;
use glaf_codegen::{CodegenOptions, DirectivePolicy};
use simcpu::{time_trace, MachineModel, SimReport};

use crate::glaf_model::build_fun3d_program;
use crate::mesh::MESH_MOD_SRC;
use crate::original::{MANUAL_JACOBIAN_SRC, ORIGINAL_JACOBIAN_SRC};

/// One GLAF configuration: which of the four nesting levels carry
/// directives, and whether the reallocation of edge_loop's temporaries is
/// eliminated (FORTRAN SAVE — the §4.2.1 adaptation, automated per the
/// §4.2.2 future-work suggestion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fun3dConfig {
    pub par_edgejp: bool,
    pub par_cell_loop: bool,
    pub par_edge_loop: bool,
    pub par_ioff_search: bool,
    pub no_realloc: bool,
    /// Apply the optimization back-end's cost-driven loop fusion before
    /// code generation (merges edge_loop's run of conformable 1..5
    /// temporaries loops). Not part of Fig. 7's option matrix.
    pub fuse: bool,
}

impl Fun3dConfig {
    pub fn any_parallel(self) -> bool {
        self.par_edgejp || self.par_cell_loop || self.par_edge_loop || self.par_ioff_search
    }

    /// Short tag like "EJP+CELL/noRA" for tables.
    pub fn tag(self) -> String {
        let mut parts = Vec::new();
        if self.par_edgejp {
            parts.push("EdgeJP");
        }
        if self.par_cell_loop {
            parts.push("Cell");
        }
        if self.par_edge_loop {
            parts.push("Edge");
        }
        if self.par_ioff_search {
            parts.push("IOff");
        }
        let levels = if parts.is_empty() { "serial".to_string() } else { parts.join("+") };
        format!(
            "{levels}{}{}",
            if self.no_realloc { " noRealloc" } else { "" },
            if self.fuse { " fused" } else { "" }
        )
    }

    /// The 32 combinations of Fig. 7's option matrix.
    pub fn all() -> Vec<Fun3dConfig> {
        let mut out = Vec::new();
        for bits in 0u8..32 {
            out.push(Fun3dConfig {
                par_edgejp: bits & 1 != 0,
                par_cell_loop: bits & 2 != 0,
                par_edge_loop: bits & 4 != 0,
                par_ioff_search: bits & 8 != 0,
                no_realloc: bits & 16 != 0,
                fuse: false,
            });
        }
        out
    }

    /// The best-performing GLAF configuration per the paper: coarsest
    /// granularity + no reallocation.
    pub fn best() -> Fun3dConfig {
        Fun3dConfig { par_edgejp: true, no_realloc: true, ..Default::default() }
    }

    /// Maps the options onto codegen: forced directives per function name
    /// plus the §4.2.1 adaptations (THREADPRIVATE on the shared cell
    /// buffers when cells run concurrently; ATOMIC on the Jacobian).
    pub fn codegen_options(self) -> CodegenOptions {
        let mut force_parallel = BTreeSet::new();
        if self.par_edgejp {
            force_parallel.insert("edgejp".to_string());
        }
        if self.par_cell_loop {
            force_parallel.insert("cell_loop".to_string());
        }
        if self.par_edge_loop {
            force_parallel.insert("edge_loop".to_string());
        }
        if self.par_ioff_search {
            force_parallel.insert("ioff_search".to_string());
        }
        let mut threadprivate = BTreeSet::new();
        if self.par_edgejp {
            threadprivate.insert("qavg".to_string());
            threadprivate.insert("grad".to_string());
        }
        let mut force_atomic = BTreeSet::new();
        if self.any_parallel() {
            force_atomic.insert("jac".to_string());
        }
        CodegenOptions {
            policy: DirectivePolicy::Serial,
            force_parallel,
            threadprivate,
            force_atomic,
            auto_save_arrays: self.no_realloc,
            atomic_updates: self.any_parallel(),
            ..CodegenOptions::serial()
        }
    }
}

/// A Figure 7 implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fun3dVariant {
    OriginalSerial,
    /// The paper's hand-parallelized comparison version.
    ManualParallel,
    Glaf(Fun3dConfig),
}

impl Fun3dVariant {
    pub fn name(self) -> String {
        match self {
            Fun3dVariant::OriginalSerial => "original serial".into(),
            Fun3dVariant::ManualParallel => "manual parallel".into(),
            Fun3dVariant::Glaf(c) => format!("GLAF {}", c.tag()),
        }
    }
}

/// The source set for a variant — the mesh partition drivers an
/// [`fortrans::ArtifactCache`] keys on.
pub fn variant_sources(variant: Fun3dVariant) -> Vec<String> {
    match variant {
        Fun3dVariant::OriginalSerial => {
            vec![MESH_MOD_SRC.to_string(), ORIGINAL_JACOBIAN_SRC.to_string()]
        }
        Fun3dVariant::ManualParallel => {
            vec![MESH_MOD_SRC.to_string(), MANUAL_JACOBIAN_SRC.to_string()]
        }
        Fun3dVariant::Glaf(cfg) => {
            let mut g = Glaf::new(build_fun3d_program()).expect("GLAF FUN3D program is valid");
            if cfg.fuse {
                let fused = g.fuse();
                assert!(!fused.is_empty(), "edge_loop's temporaries loops fuse");
            }
            let generated = g.generate(glaf::Lang::Fortran, &cfg.codegen_options());
            vec![MESH_MOD_SRC.to_string(), generated.source]
        }
    }
}

/// Compiles a variant into a shareable artifact.
pub fn build_artifact(variant: Fun3dVariant) -> Arc<CompiledProgram> {
    let sources = variant_sources(variant);
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    CompiledProgram::compile(&refs)
        .unwrap_or_else(|e| panic!("{} sources compile: {e}", variant.name()))
}

/// Builds a one-shot engine for a variant (a private session over
/// [`build_artifact`]'s output).
pub fn build_engine(variant: Fun3dVariant) -> Engine {
    Engine::from_artifact(build_artifact(variant))
}

/// The entry subprogram a variant's run calls after `build_mesh`.
pub fn entry_point(variant: Fun3dVariant) -> &'static str {
    entry(variant)
}

fn entry(variant: Fun3dVariant) -> &'static str {
    match variant {
        Fun3dVariant::Glaf(_) => "edgejp",
        _ => "jacobian_recon",
    }
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct Fun3dRun {
    pub variant_name: String,
    pub jac: Vec<f64>,
    pub report: SimReport,
}

/// Simulated run on `machine` with `threads`, over a fresh `ncell` mesh.
pub fn run_simulated(
    variant: Fun3dVariant,
    ncell: i64,
    threads: usize,
    machine: &MachineModel,
) -> Fun3dRun {
    let session = Session::solo(build_artifact(variant));
    session
        .run("build_mesh", &[ArgVal::I(ncell)], ExecMode::Serial)
        .expect("mesh builds");
    let out = session
        .run(entry(variant), &[], ExecMode::Simulated { threads })
        .expect("variant runs");
    Fun3dRun {
        variant_name: variant.name(),
        jac: session.global_array("mesh_mod::jac").unwrap().to_f64_vec(),
        report: time_trace(&out.trace, machine),
    }
}

/// Real-thread run (correctness validation).
pub fn run_real(variant: Fun3dVariant, ncell: i64, threads: usize) -> Vec<f64> {
    let session = Session::solo(build_artifact(variant));
    session
        .run("build_mesh", &[ArgVal::I(ncell)], ExecMode::Serial)
        .expect("mesh builds");
    let mode = if threads <= 1 { ExecMode::Serial } else { ExecMode::Parallel { threads } };
    session.run(entry(variant), &[], mode).expect("variant runs");
    session.global_array("mesh_mod::jac").unwrap().to_f64_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaf::compare_slices;

    const NC: i64 = 200;

    #[test]
    fn glaf_serial_matches_original_bitwise() {
        let base = run_real(Fun3dVariant::OriginalSerial, NC, 1);
        let glaf = run_real(Fun3dVariant::Glaf(Fun3dConfig::default()), NC, 1);
        let r = compare_slices(&base, &glaf);
        assert_eq!(r.max_abs_diff, 0.0, "{r:?}");
    }

    /// Fusion must not change a single bit of the serial answer: the
    /// fused edge_loop interleaves only same-iteration chains.
    #[test]
    fn fused_serial_matches_original_bitwise() {
        let base = run_real(Fun3dVariant::OriginalSerial, NC, 1);
        let cfg = Fun3dConfig { fuse: true, ..Default::default() };
        let fused = run_real(Fun3dVariant::Glaf(cfg), NC, 1);
        let r = compare_slices(&base, &fused);
        assert_eq!(r.max_abs_diff, 0.0, "{r:?}");
    }

    #[test]
    fn fused_parallel_passes_rms() {
        let base = run_real(Fun3dVariant::OriginalSerial, NC, 1);
        let cfg = Fun3dConfig { fuse: true, ..Fun3dConfig::best() };
        let jac = run_real(Fun3dVariant::Glaf(cfg), NC, 4);
        assert!(compare_slices(&base, &jac).passes_rms(1e-7));
    }

    #[test]
    fn fusion_merges_the_edge_loop_temporaries_run() {
        let mut g = Glaf::new(build_fun3d_program()).expect("valid");
        let reports = g.fuse();
        let edge = reports
            .iter()
            .find(|r| r.function == "edge_loop")
            .expect("edge_loop has a fusable run");
        assert!(edge.fused >= 10, "ten adjacent m=1..5 loops fuse: {edge:?}");
        assert!(edge.gain_cycles > 0.0);
        let log = g.decision_log();
        let d = log
            .for_function("edge_loop")
            .into_iter()
            .find(|d| d.step_index == edge.step_index)
            .expect("fused loop has a decision record");
        let f = d.fusion.as_ref().expect("fusion rationale recorded");
        assert!(f.contains("state difference"), "{f}");
        assert!(log.render().contains("fusion: fused"), "{}", log.render());
    }

    #[test]
    fn no_realloc_does_not_change_results() {
        let base = run_real(Fun3dVariant::OriginalSerial, NC, 1);
        let cfg = Fun3dConfig { no_realloc: true, ..Default::default() };
        let glaf = run_real(Fun3dVariant::Glaf(cfg), NC, 1);
        assert_eq!(compare_slices(&base, &glaf).max_abs_diff, 0.0);
    }

    /// The §4.2.1 acceptance test across every parallelization combo: "a
    /// reference root mean square of the output arrays that is
    /// automatically checked at a 1e-7 (absolute) tolerance ... critical
    /// when performing parallel summation".
    #[test]
    fn all_combos_pass_rms_check_with_threads() {
        let base = run_real(Fun3dVariant::OriginalSerial, NC, 1);
        for cfg in Fun3dConfig::all() {
            let jac = run_real(Fun3dVariant::Glaf(cfg), NC, 4);
            let r = compare_slices(&base, &jac);
            assert!(r.passes_rms(1e-7), "{}: {r:?}", cfg.tag());
        }
    }

    #[test]
    fn manual_parallel_passes_rms() {
        let base = run_real(Fun3dVariant::OriginalSerial, NC, 1);
        let jac = run_real(Fun3dVariant::ManualParallel, NC, 4);
        assert!(compare_slices(&base, &jac).passes_rms(1e-7));
    }

    #[test]
    fn simulated_combos_bit_identical_to_serial() {
        let base = run_real(Fun3dVariant::OriginalSerial, NC, 1);
        for cfg in [Fun3dConfig::default(), Fun3dConfig::best()] {
            let m = simcpu::MachineModel::xeon_e5_2637v4_dual_like();
            let run = run_simulated(Fun3dVariant::Glaf(cfg), NC, 16, &m);
            assert_eq!(compare_slices(&base, &run.jac).max_abs_diff, 0.0, "{}", cfg.tag());
        }
    }

    #[test]
    fn config_enumeration_and_tags() {
        let all = Fun3dConfig::all();
        assert_eq!(all.len(), 32);
        assert_eq!(Fun3dConfig::default().tag(), "serial");
        assert_eq!(Fun3dConfig::best().tag(), "EdgeJP noRealloc");
        let full = Fun3dConfig {
            par_edgejp: true,
            par_cell_loop: true,
            par_edge_loop: true,
            par_ioff_search: true,
            no_realloc: false,
            fuse: false,
        };
        assert_eq!(full.tag(), "EdgeJP+Cell+Edge+IOff");
        let fused = Fun3dConfig { fuse: true, ..Fun3dConfig::best() };
        assert_eq!(fused.tag(), "EdgeJP noRealloc fused");
    }

    #[test]
    fn realloc_costs_show_up_in_simulation() {
        let m = simcpu::MachineModel::xeon_e5_2637v4_dual_like();
        let with = run_simulated(Fun3dVariant::Glaf(Fun3dConfig::default()), NC, 16, &m);
        let cfg = Fun3dConfig { no_realloc: true, ..Default::default() };
        let without = run_simulated(Fun3dVariant::Glaf(cfg), NC, 16, &m);
        assert!(
            with.report.alloc_cycles > 10.0 * without.report.alloc_cycles.max(1.0),
            "realloc {} vs no-realloc {}",
            with.report.alloc_cycles,
            without.report.alloc_cycles
        );
    }
}
