//! The **original serial** Jacobian matrix reconstruction — "currently,
//! the original matrix reconstruction is implemented as a single function
//! with several levels of loop nesting" (§2.3) — plus the paper's
//! **manually parallelized** version: "the original serial version was
//! manually parallelized at the same level as the best-performing GLAF
//! implementation" (§4.2.2), i.e. OpenMP on the outermost cell loop with
//! the full private-variable list and atomic protection of the shared
//! Jacobian rows.

// The index-based loops below intentionally mirror the FORTRAN sources
// statement-for-statement so bit-level comparison stays reviewable.
#![allow(clippy::needless_range_loop)]

/// The monolithic original. Loop levels: cells → {nodes, faces, edges};
/// within each edge a chain of temporaries feeds a flux that accumulates
/// into the global Jacobian at the offset the neighbour search finds.
pub const ORIGINAL_JACOBIAN_SRC: &str = r#"
MODULE jac_kernels
  USE mesh_mod
  IMPLICIT NONE
CONTAINS

  SUBROUTINE jacobian_recon()
    REAL(8), DIMENSION(1:5) :: qavg
    REAL(8), DIMENSION(1:3, 1:5) :: grad
    REAL(8), DIMENSION(1:5) :: ta, tb, tc, td, te, tf, tg, th, ti, flux
    REAL(8) :: adot
    INTEGER :: c, k, m, f, d, e, n1, n2, j, kslot
    DO c = 1, ncell
      ! cell-face angle check: skip badly-shaped cells
      adot = fnorm(1, 1, c) * fnorm(1, 2, c) + fnorm(2, 1, c) * fnorm(2, 2, c) + fnorm(3, 1, c) * fnorm(3, 2, c)
      IF (adot < -0.2D0) CYCLE
      ! loop over nodes: average primitives
      DO m = 1, 5
        qavg(m) = 0.0D0
      END DO
      DO m = 1, 5
        DO k = 1, 4
          qavg(m) = qavg(m) + qn(m, c2n(k, c))
        END DO
      END DO
      DO m = 1, 5
        qavg(m) = qavg(m) / 4.0D0
      END DO
      ! loop over faces: Green-Gauss gradient
      DO m = 1, 5
        DO d = 1, 3
          grad(d, m) = 0.0D0
        END DO
      END DO
      DO m = 1, 5
        DO d = 1, 3
          DO f = 1, 4
            grad(d, m) = grad(d, m) + fnorm(d, f, c) * farea(f, c) * qavg(m)
          END DO
        END DO
      END DO
      ! loop over edges: flux Jacobian contributions
      DO e = 1, 6
        n1 = c2n(ed1(e), c)
        n2 = c2n(ed2(e), c)
        DO m = 1, 5
          ta(m) = qn(m, n1) - qn(m, n2)
        END DO
        DO m = 1, 5
          tb(m) = qn(m, n1) + qn(m, n2)
        END DO
        DO m = 1, 5
          tc(m) = grad(1, m) * 0.3D0 + grad(2, m) * 0.5D0 + grad(3, m) * 0.2D0
        END DO
        DO m = 1, 5
          td(m) = ta(m) * tb(m)
        END DO
        DO m = 1, 5
          te(m) = EXP(-ABS(ta(m)))
        END DO
        DO m = 1, 5
          tf(m) = tc(m) * te(m)
        END DO
        DO m = 1, 5
          tg(m) = td(m) + tf(m)
        END DO
        DO m = 1, 5
          th(m) = tg(m) * 0.25D0
        END DO
        DO m = 1, 5
          ti(m) = th(m) + qavg(m) * 0.1D0
        END DO
        DO m = 1, 5
          flux(m) = ti(m) / (1.0D0 + ABS(tb(m)))
        END DO
        ! offset search in the node's neighbour row
        kslot = 1
        DO j = 1, nnbr(n1)
          IF (nbr(j, n1) == n2) THEN
            kslot = j
            EXIT
          END IF
        END DO
        DO m = 1, 5
          jac((n1 - 1) * 40 + (kslot - 1) * 5 + m) = jac((n1 - 1) * 40 + (kslot - 1) * 5 + m) + flux(m)
        END DO
      END DO
    END DO
  END SUBROUTINE jacobian_recon
END MODULE jac_kernels
"#;

/// The manual parallelization of §4.2.2: the outermost cell loop carries
/// the directive with every cell-local variable private and atomic
/// protection on the shared Jacobian updates (no function-call overhead,
/// no heap temporaries, no critical section — the 2.3x edge over the
/// best GLAF configuration).
pub const MANUAL_JACOBIAN_SRC: &str = r#"
MODULE jac_kernels
  USE mesh_mod
  IMPLICIT NONE
CONTAINS

  SUBROUTINE jacobian_recon()
    REAL(8), DIMENSION(1:5) :: qavg
    REAL(8), DIMENSION(1:3, 1:5) :: grad
    REAL(8), DIMENSION(1:5) :: ta, tb, tc, td, te, tf, tg, th, ti, flux
    REAL(8) :: adot
    INTEGER :: c, k, m, f, d, e, n1, n2, j, kslot
    !$OMP PARALLEL DO DEFAULT(SHARED) PRIVATE(qavg, grad, ta, tb, tc, td, te, tf, tg, th, ti, flux, adot, k, m, f, d, e, n1, n2, j, kslot)
    DO c = 1, ncell
      adot = fnorm(1, 1, c) * fnorm(1, 2, c) + fnorm(2, 1, c) * fnorm(2, 2, c) + fnorm(3, 1, c) * fnorm(3, 2, c)
      IF (adot >= -0.2D0) THEN
        DO m = 1, 5
          qavg(m) = 0.0D0
        END DO
        DO m = 1, 5
          DO k = 1, 4
            qavg(m) = qavg(m) + qn(m, c2n(k, c))
          END DO
        END DO
        DO m = 1, 5
          qavg(m) = qavg(m) / 4.0D0
        END DO
        DO m = 1, 5
          DO d = 1, 3
            grad(d, m) = 0.0D0
          END DO
        END DO
        DO m = 1, 5
          DO d = 1, 3
            DO f = 1, 4
              grad(d, m) = grad(d, m) + fnorm(d, f, c) * farea(f, c) * qavg(m)
            END DO
          END DO
        END DO
        DO e = 1, 6
          n1 = c2n(ed1(e), c)
          n2 = c2n(ed2(e), c)
          DO m = 1, 5
            ta(m) = qn(m, n1) - qn(m, n2)
          END DO
          DO m = 1, 5
            tb(m) = qn(m, n1) + qn(m, n2)
          END DO
          DO m = 1, 5
            tc(m) = grad(1, m) * 0.3D0 + grad(2, m) * 0.5D0 + grad(3, m) * 0.2D0
          END DO
          DO m = 1, 5
            td(m) = ta(m) * tb(m)
          END DO
          DO m = 1, 5
            te(m) = EXP(-ABS(ta(m)))
          END DO
          DO m = 1, 5
            tf(m) = tc(m) * te(m)
          END DO
          DO m = 1, 5
            tg(m) = td(m) + tf(m)
          END DO
          DO m = 1, 5
            th(m) = tg(m) * 0.25D0
          END DO
          DO m = 1, 5
            ti(m) = th(m) + qavg(m) * 0.1D0
          END DO
          DO m = 1, 5
            flux(m) = ti(m) / (1.0D0 + ABS(tb(m)))
          END DO
          kslot = 1
          DO j = 1, nnbr(n1)
            IF (nbr(j, n1) == n2) THEN
              kslot = j
              EXIT
            END IF
          END DO
          DO m = 1, 5
            !$OMP ATOMIC
            jac((n1 - 1) * 40 + (kslot - 1) * 5 + m) = jac((n1 - 1) * 40 + (kslot - 1) * 5 + m) + flux(m)
          END DO
        END DO
      END IF
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE jacobian_recon
END MODULE jac_kernels
"#;

#[cfg(test)]
mod tests {
    use crate::mesh::{Mesh, EDGES, JROW, MESH_MOD_SRC, NST};
    use fortrans::{ArgVal, Engine, ExecMode};

    /// (Superseded by `crate::native::native_jacobian`; kept here as an
    /// independently-written second oracle — two implementations agreeing
    /// bitwise is stronger evidence than one.)
    pub fn native_jacobian(m: &Mesh) -> Vec<f64> {
        let mut jac = vec![0.0f64; m.njac];
        for c in 0..m.ncell {
            let adot: f64 = (0..3).map(|d| m.fnorm[c][0][d] * m.fnorm[c][1][d]).sum();
            if adot < -0.2 {
                continue;
            }
            let mut qavg = [0.0f64; NST];
            for st in 0..NST {
                for k in 0..4 {
                    qavg[st] += m.qn[m.c2n[c][k]][st];
                }
            }
            for q in qavg.iter_mut() {
                *q /= 4.0;
            }
            let mut grad = [[0.0f64; NST]; 3];
            for st in 0..NST {
                for d in 0..3 {
                    for f in 0..4 {
                        grad[d][st] += m.fnorm[c][f][d] * m.farea[c][f] * qavg[st];
                    }
                }
            }
            for &(ea, eb) in EDGES.iter() {
                let n1 = m.c2n[c][ea];
                let n2 = m.c2n[c][eb];
                let mut flux = [0.0f64; NST];
                for st in 0..NST {
                    let ta = m.qn[n1][st] - m.qn[n2][st];
                    let tb = m.qn[n1][st] + m.qn[n2][st];
                    let tc = grad[0][st] * 0.3 + grad[1][st] * 0.5 + grad[2][st] * 0.2;
                    let td = ta * tb;
                    let te = (-ta.abs()).exp();
                    let tf = tc * te;
                    let tg = td + tf;
                    let th = tg * 0.25;
                    let ti = th + qavg[st] * 0.1;
                    flux[st] = ti / (1.0 + tb.abs());
                }
                let k = m.ioff(n1, n2);
                for st in 0..NST {
                    jac[n1 * JROW + k * NST + st] += flux[st];
                }
            }
        }
        jac
    }

    fn run(src: &str, ncell: i64, mode: ExecMode) -> Vec<f64> {
        let e = Engine::compile(&[MESH_MOD_SRC, src]).unwrap();
        e.run("build_mesh", &[ArgVal::I(ncell)], ExecMode::Serial).unwrap();
        e.run("jacobian_recon", &[], mode).unwrap();
        e.global_array("mesh_mod::jac").unwrap().to_f64_vec()
    }

    #[test]
    fn original_matches_native_oracle_bitwise() {
        let jac = run(super::ORIGINAL_JACOBIAN_SRC, 300, ExecMode::Serial);
        let oracle = native_jacobian(&Mesh::build(300));
        assert_eq!(jac.len(), oracle.len());
        for (i, (a, b)) in jac.iter().zip(oracle.iter()).enumerate() {
            assert_eq!(a, b, "jac[{i}]");
        }
        assert!(jac.iter().any(|&v| v != 0.0), "nonzero contributions exist");
    }

    #[test]
    fn manual_serial_matches_original() {
        let a = run(super::ORIGINAL_JACOBIAN_SRC, 200, ExecMode::Serial);
        let b = run(super::MANUAL_JACOBIAN_SRC, 200, ExecMode::Serial);
        assert_eq!(a, b);
    }

    #[test]
    fn manual_parallel_matches_at_rms_tolerance() {
        // The §4.2.1 acceptance test: RMS of output arrays at 1e-7.
        let a = run(super::ORIGINAL_JACOBIAN_SRC, 200, ExecMode::Serial);
        let b = run(super::MANUAL_JACOBIAN_SRC, 200, ExecMode::Parallel { threads: 4 });
        let r = glaf::compare_slices(&a, &b);
        assert!(r.passes_rms(1e-7), "{r:?}");
    }

    #[test]
    fn angle_check_actually_skips_cells() {
        // With the synthetic normals, some cells must fail the angle test;
        // otherwise the early-exit path is dead code.
        let m = Mesh::build(500);
        let skipped = (0..m.ncell)
            .filter(|&c| (0..3).map(|d| m.fnorm[c][0][d] * m.fnorm[c][1][d]).sum::<f64>() < -0.2)
            .count();
        assert!(skipped > 0, "no cells skipped");
        assert!(skipped < m.ncell, "all cells skipped");
    }
}
