//! Program validation: the checks the GPI performs incrementally while the
//! user clicks, performed in one pass over a finished program.

use std::collections::HashSet;

use glaf_grid::{DataType, GridOrigin};

use crate::expr::{Callee, Expr};
use crate::program::{Function, GlafModule, Program};
use crate::stmt::{LValue, StepBody, Stmt};

/// A validation diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    UnknownGrid { module: String, function: String, grid: String },
    UnknownIndex { module: String, function: String, index: String },
    UnknownFunction { module: String, function: String, callee: String },
    /// A SUBROUTINE (`Void` return) returned a value, or a FUNCTION
    /// returned none.
    ReturnMismatch { module: String, function: String },
    /// Parameter list names a grid that is not declared, or the grid's
    /// origin disagrees with its position.
    ParamMismatch { module: String, function: String, param: String },
    /// Arity mismatch between an indexed reference and the grid's rank.
    RankMismatch { module: String, function: String, grid: String, expected: usize, got: usize },
    /// A call passes the wrong number of arguments.
    ArgCountMismatch { module: String, function: String, callee: String, expected: usize, got: usize },
    /// Writing to a grid imported from an existing module is allowed;
    /// writing to a *parameter of intent-in semantics* is not modeled, but
    /// writing to an undeclared name is caught here.
    WriteToUnknown { module: String, function: String, grid: String },
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::UnknownGrid { module, function, grid } => {
                write!(f, "{module}::{function}: unknown grid `{grid}`")
            }
            ValidateError::UnknownIndex { module, function, index } => {
                write!(f, "{module}::{function}: index `{index}` used outside its loop")
            }
            ValidateError::UnknownFunction { module, function, callee } => {
                write!(f, "{module}::{function}: call to unknown function `{callee}`")
            }
            ValidateError::ReturnMismatch { module, function } => {
                write!(f, "{module}::{function}: return value inconsistent with header type")
            }
            ValidateError::ParamMismatch { module, function, param } => {
                write!(f, "{module}::{function}: parameter `{param}` not declared correctly")
            }
            ValidateError::RankMismatch { module, function, grid, expected, got } => write!(
                f,
                "{module}::{function}: grid `{grid}` has rank {expected}, referenced with {got} indices"
            ),
            ValidateError::ArgCountMismatch { module, function, callee, expected, got } => write!(
                f,
                "{module}::{function}: call to `{callee}` passes {got} args, expected {expected}"
            ),
            ValidateError::WriteToUnknown { module, function, grid } => {
                write!(f, "{module}::{function}: assignment to unknown grid `{grid}`")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validates the whole program, returning every diagnostic found.
pub fn validate_program(program: &Program) -> Vec<ValidateError> {
    let mut errs = Vec::new();
    for module in &program.modules {
        for func in &module.functions {
            validate_function(program, module, func, &mut errs);
        }
    }
    errs
}

fn validate_function(
    program: &Program,
    module: &GlafModule,
    func: &Function,
    errs: &mut Vec<ValidateError>,
) {
    let ctx = |_: ()| (module.name.clone(), func.name.clone());

    // Parameters must exist with matching origins.
    for (k, p) in func.params.iter().enumerate() {
        match func.grid(p) {
            Some(g) if g.origin == GridOrigin::Parameter(k) => {}
            _ => {
                let (module, function) = ctx(());
                errs.push(ValidateError::ParamMismatch { module, function, param: p.clone() });
            }
        }
    }

    for step in &func.steps {
        match &step.body {
            StepBody::Straight(stmts) => {
                let indices = HashSet::new();
                for s in stmts {
                    validate_stmt(program, module, func, s, &indices, errs);
                }
            }
            StepBody::Loop(nest) => {
                let mut indices: HashSet<String> = HashSet::new();
                for r in &nest.ranges {
                    // Range bounds are evaluated with outer indices visible.
                    validate_expr(program, module, func, &r.start, &indices, errs);
                    validate_expr(program, module, func, &r.end, &indices, errs);
                    validate_expr(program, module, func, &r.step, &indices, errs);
                    indices.insert(r.var.clone());
                }
                if let Some(c) = &nest.condition {
                    validate_expr(program, module, func, c, &indices, errs);
                }
                for s in &nest.body {
                    validate_stmt(program, module, func, s, &indices, errs);
                }
            }
        }
    }
}

fn validate_stmt(
    program: &Program,
    module: &GlafModule,
    func: &Function,
    stmt: &Stmt,
    indices: &HashSet<String>,
    errs: &mut Vec<ValidateError>,
) {
    match stmt {
        Stmt::Assign { target, value } => {
            validate_lvalue(program, module, func, target, indices, errs);
            validate_expr(program, module, func, value, indices, errs);
        }
        Stmt::If { cond, then_body, else_body } => {
            validate_expr(program, module, func, cond, indices, errs);
            for s in then_body.iter().chain(else_body.iter()) {
                validate_stmt(program, module, func, s, indices, errs);
            }
        }
        Stmt::CallSub { name, args } => {
            check_call(program, module, func, name, args.len(), errs);
            for a in args {
                validate_expr(program, module, func, a, indices, errs);
            }
        }
        Stmt::Return(v) => {
            let returns_value = v.is_some();
            let is_sub = func.return_type == DataType::Void;
            if returns_value == is_sub {
                errs.push(ValidateError::ReturnMismatch {
                    module: module.name.clone(),
                    function: func.name.clone(),
                });
            }
            if let Some(e) = v {
                validate_expr(program, module, func, e, indices, errs);
            }
        }
        Stmt::Exit | Stmt::Cycle => {}
    }
}

fn validate_lvalue(
    program: &Program,
    module: &GlafModule,
    func: &Function,
    lv: &LValue,
    indices: &HashSet<String>,
    errs: &mut Vec<ValidateError>,
) {
    match program.resolve_grid(module, func, &lv.grid) {
        Some(g) => {
            if !lv.indices.is_empty() && lv.indices.len() != g.rank() {
                errs.push(ValidateError::RankMismatch {
                    module: module.name.clone(),
                    function: func.name.clone(),
                    grid: lv.grid.clone(),
                    expected: g.rank(),
                    got: lv.indices.len(),
                });
            }
        }
        None => errs.push(ValidateError::WriteToUnknown {
            module: module.name.clone(),
            function: func.name.clone(),
            grid: lv.grid.clone(),
        }),
    }
    for i in &lv.indices {
        validate_expr(program, module, func, i, indices, errs);
    }
}

fn validate_expr(
    program: &Program,
    module: &GlafModule,
    func: &Function,
    expr: &Expr,
    indices: &HashSet<String>,
    errs: &mut Vec<ValidateError>,
) {
    match expr {
        Expr::Index(v)
            if !indices.contains(v) => {
                errs.push(ValidateError::UnknownIndex {
                    module: module.name.clone(),
                    function: func.name.clone(),
                    index: v.clone(),
                });
            }
        Expr::GridRef { grid, indices: ix, .. } => {
            match program.resolve_grid(module, func, grid) {
                Some(g) => {
                    if !ix.is_empty() && ix.len() != g.rank() {
                        errs.push(ValidateError::RankMismatch {
                            module: module.name.clone(),
                            function: func.name.clone(),
                            grid: grid.clone(),
                            expected: g.rank(),
                            got: ix.len(),
                        });
                    }
                }
                None => errs.push(ValidateError::UnknownGrid {
                    module: module.name.clone(),
                    function: func.name.clone(),
                    grid: grid.clone(),
                }),
            }
            for i in ix {
                validate_expr(program, module, func, i, indices, errs);
            }
        }
        Expr::WholeGrid(g)
            if program.resolve_grid(module, func, g).is_none() => {
                errs.push(ValidateError::UnknownGrid {
                    module: module.name.clone(),
                    function: func.name.clone(),
                    grid: g.clone(),
                });
            }
        Expr::Unary { operand, .. } => validate_expr(program, module, func, operand, indices, errs),
        Expr::Binary { lhs, rhs, .. } => {
            validate_expr(program, module, func, lhs, indices, errs);
            validate_expr(program, module, func, rhs, indices, errs);
        }
        Expr::Call { callee, args } => {
            if let Callee::User(name) = callee {
                check_call(program, module, func, name, args.len(), errs);
            }
            for a in args {
                validate_expr(program, module, func, a, indices, errs);
            }
        }
        _ => {}
    }
}

fn check_call(
    program: &Program,
    module: &GlafModule,
    func: &Function,
    callee: &str,
    n_args: usize,
    errs: &mut Vec<ValidateError>,
) {
    match program.find_function(callee) {
        Some((_, target)) => {
            if target.params.len() != n_args {
                errs.push(ValidateError::ArgCountMismatch {
                    module: module.name.clone(),
                    function: func.name.clone(),
                    callee: callee.to_string(),
                    expected: target.params.len(),
                    got: n_args,
                });
            }
        }
        None => errs.push(ValidateError::UnknownFunction {
            module: module.name.clone(),
            function: func.name.clone(),
            callee: callee.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::stmt::LValue;
    use glaf_grid::Grid;

    fn valid_program() -> Program {
        let n = Grid::build("n").typed(DataType::Integer).finish().unwrap();
        let a = Grid::build("a").typed(DataType::Real8).dim1(10).finish().unwrap();
        ProgramBuilder::new()
            .module("m")
            .subroutine("init")
            .param(n)
            .local(a)
            .loop_step("zero")
            .foreach("i", Expr::int(1), Expr::scalar("n"))
            .formula(LValue::at("a", vec![Expr::idx("i")]), Expr::real(0.0))
            .done()
            .done()
            .done()
            .finish()
    }

    #[test]
    fn clean_program_validates() {
        assert!(validate_program(&valid_program()).is_empty());
    }

    #[test]
    fn unknown_grid_caught() {
        let mut p = valid_program();
        if let StepBody::Loop(nest) = &mut p.modules[0].functions[0].steps[0].body {
            nest.body.push(Stmt::assign(LValue::scalar("ghost"), Expr::int(1)));
        }
        let errs = validate_program(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::WriteToUnknown { grid, .. } if grid == "ghost")));
    }

    #[test]
    fn index_out_of_scope_caught() {
        let mut p = valid_program();
        p.modules[0].functions[0].steps.push(crate::stmt::Step {
            label: None,
            body: StepBody::Straight(vec![Stmt::assign(
                LValue::at("a", vec![Expr::idx("i")]),
                Expr::real(1.0),
            )]),
        });
        let errs = validate_program(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::UnknownIndex { index, .. } if index == "i")));
    }

    #[test]
    fn rank_mismatch_caught() {
        let mut p = valid_program();
        if let StepBody::Loop(nest) = &mut p.modules[0].functions[0].steps[0].body {
            nest.body.push(Stmt::assign(
                LValue::at("a", vec![Expr::idx("i"), Expr::idx("i")]),
                Expr::real(1.0),
            ));
        }
        let errs = validate_program(&p);
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidateError::RankMismatch { expected: 1, got: 2, .. }
        )));
    }

    #[test]
    fn subroutine_cannot_return_value() {
        let mut p = valid_program();
        p.modules[0].functions[0].steps.push(crate::stmt::Step {
            label: None,
            body: StepBody::Straight(vec![Stmt::Return(Some(Expr::int(1)))]),
        });
        let errs = validate_program(&p);
        assert!(errs.iter().any(|e| matches!(e, ValidateError::ReturnMismatch { .. })));
    }

    #[test]
    fn call_arity_checked() {
        let mut p = valid_program();
        if let StepBody::Loop(nest) = &mut p.modules[0].functions[0].steps[0].body {
            nest.body.push(Stmt::CallSub { name: "init".into(), args: vec![] });
        }
        let errs = validate_program(&p);
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidateError::ArgCountMismatch { expected: 1, got: 0, .. }
        )));
    }

    #[test]
    fn unknown_callee_caught() {
        let mut p = valid_program();
        if let StepBody::Loop(nest) = &mut p.modules[0].functions[0].steps[0].body {
            nest.body.push(Stmt::CallSub { name: "edge_loop".into(), args: vec![] });
        }
        let errs = validate_program(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::UnknownFunction { callee, .. } if callee == "edge_loop")));
    }
}
