//! The programmatic GPI: fluent builders for programs, modules, functions
//! and steps.
//!
//! Each method corresponds to a user action in the paper's screenshots:
//! creating a grid in the Global Scope (Fig. 3), choosing a return type in
//! the header step (Fig. 4), setting "Index Range", "Condition" and
//! "Formula" boxes (Fig. 2).

use glaf_grid::{DataType, Grid};

use crate::expr::Expr;
use crate::program::{Function, GlafModule, Program};
use crate::stmt::{IndexRange, LValue, LoopNest, Step, StepBody, Stmt};

/// Builds a [`Program`] out of modules.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    modules: Vec<GlafModule>,
}

impl ProgramBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a module builder; call [`ModuleBuilder::done`] to return here.
    pub fn module(self, name: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder {
            parent: self,
            module: GlafModule { name: name.into(), globals: Vec::new(), functions: Vec::new() },
        }
    }

    /// Finishes the program.
    pub fn finish(self) -> Program {
        Program { modules: self.modules }
    }
}

/// Builds one [`GlafModule`].
#[derive(Debug)]
pub struct ModuleBuilder {
    parent: ProgramBuilder,
    module: GlafModule,
}

impl ModuleBuilder {
    /// Adds a grid to the Global Scope of this module.
    pub fn global(mut self, grid: Grid) -> Self {
        self.module.globals.push(grid);
        self
    }

    /// Opens a function builder.
    pub fn function(self, name: impl Into<String>, return_type: DataType) -> FunctionBuilder {
        FunctionBuilder {
            parent: self,
            func: Function {
                name: name.into(),
                return_type,
                params: Vec::new(),
                grids: Vec::new(),
                steps: Vec::new(),
            },
        }
    }

    /// Shorthand for a `Void`-returning function — generated as a
    /// SUBROUTINE (§3.4).
    pub fn subroutine(self, name: impl Into<String>) -> FunctionBuilder {
        self.function(name, DataType::Void)
    }

    /// Closes the module.
    pub fn done(mut self) -> ProgramBuilder {
        self.parent.modules.push(self.module);
        self.parent
    }
}

/// Builds one [`Function`].
#[derive(Debug)]
pub struct FunctionBuilder {
    parent: ModuleBuilder,
    func: Function,
}

impl FunctionBuilder {
    /// Declares a parameter grid; parameter order follows call order. The
    /// grid's origin is overwritten with `Parameter(k)`.
    pub fn param(mut self, grid: Grid) -> Self {
        let k = self.func.params.len();
        let mut grid = grid;
        grid.origin = glaf_grid::GridOrigin::Parameter(k);
        self.func.params.push(grid.name.clone());
        self.func.grids.push(grid);
        self
    }

    /// Declares a local grid.
    pub fn local(mut self, grid: Grid) -> Self {
        self.func.grids.push(grid);
        self
    }

    /// Adds a straight-line step.
    pub fn straight_step(mut self, label: impl Into<String>, stmts: Vec<Stmt>) -> Self {
        self.func
            .steps
            .push(Step { label: Some(label.into()), body: StepBody::Straight(stmts) });
        self
    }

    /// Opens a loop-step builder.
    pub fn loop_step(self, label: impl Into<String>) -> StepBuilder {
        StepBuilder {
            parent: self,
            label: Some(label.into()),
            nest: LoopNest { ranges: Vec::new(), condition: None, body: Vec::new() },
        }
    }

    /// Closes the function.
    pub fn done(mut self) -> ModuleBuilder {
        self.parent.module.functions.push(self.func);
        self.parent
    }
}

/// Builds one loop step — the Fig. 2 boxes.
#[derive(Debug)]
pub struct StepBuilder {
    parent: FunctionBuilder,
    label: Option<String>,
    nest: LoopNest,
}

impl StepBuilder {
    /// "Index Range: foreach `var`" over `start..=end`.
    pub fn foreach(mut self, var: impl Into<String>, start: Expr, end: Expr) -> Self {
        self.nest.ranges.push(IndexRange::new(var, start, end));
        self
    }

    /// Same, with an explicit step expression.
    pub fn foreach_step(
        mut self,
        var: impl Into<String>,
        start: Expr,
        end: Expr,
        step: Expr,
    ) -> Self {
        self.nest.ranges.push(IndexRange { var: var.into(), start, end, step });
        self
    }

    /// "Condition" box: guards the whole body.
    pub fn condition(mut self, cond: Expr) -> Self {
        self.nest.condition = Some(cond);
        self
    }

    /// "Formula" box: adds `target = value`.
    pub fn formula(mut self, target: LValue, value: Expr) -> Self {
        self.nest.body.push(Stmt::Assign { target, value });
        self
    }

    /// Adds an arbitrary statement (if, call, ...) to the body.
    pub fn stmt(mut self, stmt: Stmt) -> Self {
        self.nest.body.push(stmt);
        self
    }

    /// Closes the step.
    pub fn done(mut self) -> FunctionBuilder {
        self.parent
            .func
            .steps
            .push(Step { label: self.label.take(), body: StepBody::Loop(self.nest) });
        self.parent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, LibFunc};
    use glaf_grid::GridOrigin;

    /// Builds the paper's Fig. 2 example: calcPointCharge loops over
    /// surface points and atoms accumulating Coulomb contributions.
    fn calc_point_charge() -> Program {
        let n_atoms = Grid::build("n_atoms").typed(DataType::Integer).finish().unwrap();
        let atoms = Grid::build("atoms").typed(DataType::Real8).dim1(64).dim1(4).finish().unwrap();
        let pts = Grid::build("surface_pts").typed(DataType::Real8).dim1(16).finish().unwrap();
        let sum_fs = Grid::build("sum_fs").typed(DataType::Real8).finish().unwrap();

        ProgramBuilder::new()
            .module("module1")
            .function("calcPointCharge", DataType::Real8)
            .param(n_atoms)
            .param(atoms)
            .param(pts)
            .local(sum_fs)
            .loop_step("Loop through all atoms vs single point")
            .foreach("row", Expr::int(1), Expr::scalar("n_atoms"))
            .formula(
                LValue::scalar("sum_fs"),
                Expr::scalar("sum_fs")
                    + Expr::lib(
                        LibFunc::Abs,
                        vec![Expr::at("atoms", vec![Expr::idx("row"), Expr::int(1)])],
                    ),
            )
            .done()
            .straight_step("return", vec![Stmt::Return(Some(Expr::scalar("sum_fs")))])
            .done()
            .done()
            .finish()
    }

    #[test]
    fn builder_produces_expected_structure() {
        let p = calc_point_charge();
        assert_eq!(p.function_count(), 1);
        let (m, f) = p.find_function("calcPointCharge").unwrap();
        assert_eq!(m.name, "module1");
        assert_eq!(f.params, vec!["n_atoms", "atoms", "surface_pts"]);
        assert!(!f.is_subroutine());
        assert_eq!(f.steps.len(), 2);
        let nest = f.steps[0].as_loop().unwrap();
        assert_eq!(nest.depth(), 1);
        assert_eq!(nest.ranges[0].var, "row");
    }

    #[test]
    fn param_origins_assigned_in_order() {
        let p = calc_point_charge();
        let (_, f) = p.find_function("calcPointCharge").unwrap();
        assert_eq!(f.grid("n_atoms").unwrap().origin, GridOrigin::Parameter(0));
        assert_eq!(f.grid("atoms").unwrap().origin, GridOrigin::Parameter(1));
        assert_eq!(f.grid("surface_pts").unwrap().origin, GridOrigin::Parameter(2));
        assert_eq!(f.grid("sum_fs").unwrap().origin, GridOrigin::Local);
    }

    #[test]
    fn subroutine_shorthand() {
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("s")
            .done()
            .done()
            .finish();
        assert!(p.find_function("s").unwrap().1.is_subroutine());
    }

    #[test]
    fn condition_box() {
        let p = ProgramBuilder::new()
            .module("m")
            .subroutine("s")
            .loop_step("guarded")
            .foreach("i", Expr::int(1), Expr::int(10))
            .condition(Expr::idx("i").cmp(crate::BinOp::Gt, Expr::int(5)))
            .formula(LValue::scalar("x"), Expr::int(1))
            .done()
            .done()
            .done()
            .finish();
        let (_, f) = p.find_function("s").unwrap();
        assert!(f.steps[0].as_loop().unwrap().condition.is_some());
    }
}
