//! Steps, loop nests and statements.
//!
//! A GLAF **step** (the unit of the GPI's step selector) is either a block
//! of straight-line statements or a *perfect* loop nest described by its
//! index ranges, an optional guard condition, and a body of formulas and
//! calls. Interior (non-perfectly-nested) loops are separate functions
//! invoked through [`Stmt::CallSub`] / [`crate::Expr::Call`], per §3.3 of
//! the paper.


use crate::expr::Expr;

/// The target of an assignment formula.
#[derive(Debug, Clone, PartialEq)]
pub struct LValue {
    pub grid: String,
    /// Empty for scalar grids.
    pub indices: Vec<Expr>,
    /// Struct field selection.
    pub field: Option<String>,
}

impl LValue {
    /// Scalar target.
    pub fn scalar(grid: impl Into<String>) -> LValue {
        LValue { grid: grid.into(), indices: Vec::new(), field: None }
    }

    /// Indexed target.
    pub fn at(grid: impl Into<String>, indices: Vec<Expr>) -> LValue {
        LValue { grid: grid.into(), indices, field: None }
    }

    /// Indexed struct-field target.
    pub fn at_field(
        grid: impl Into<String>,
        indices: Vec<Expr>,
        field: impl Into<String>,
    ) -> LValue {
        LValue { grid: grid.into(), indices, field: Some(field.into()) }
    }
}

/// One index range of a loop nest: `foreach var in start..=end step step`.
/// The GPI's "Index Range: foreach row" boxes.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexRange {
    pub var: String,
    pub start: Expr,
    pub end: Expr,
    /// Loop increment; `IntLit(1)` in the overwhelming majority of GPI
    /// programs.
    pub step: Expr,
}

impl IndexRange {
    /// `foreach var in start..=end` with unit step.
    pub fn new(var: impl Into<String>, start: Expr, end: Expr) -> Self {
        IndexRange { var: var.into(), start, end, step: Expr::IntLit(1) }
    }
}

/// Executable statements inside a loop body or straight-line step.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A formula: `target = value`.
    Assign { target: LValue, value: Expr },
    /// Guarded statements ("Condition" box when attached to single
    /// formulas, or explicit if steps).
    If { cond: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt> },
    /// Invocation of a user function generated as a SUBROUTINE (§3.4);
    /// results flow back through module-scope grids or `INTENT(OUT)`
    /// arguments.
    CallSub { name: String, args: Vec<Expr> },
    /// Sets the function's return value (assigns the `ReturnValue` grid of
    /// the GPI header step, Fig. 4) and leaves the function.
    Return(Option<Expr>),
    /// Leave the innermost loop.
    Exit,
    /// Next iteration of the innermost loop.
    Cycle,
}

impl Stmt {
    /// Convenience constructor for an assignment.
    pub fn assign(target: LValue, value: Expr) -> Stmt {
        Stmt::Assign { target, value }
    }

    /// Walks all statements in this subtree (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        if let Stmt::If { then_body, else_body, .. } = self {
            for s in then_body.iter().chain(else_body.iter()) {
                s.walk(f);
            }
        }
    }

    /// True when the statement subtree contains any control structure —
    /// the paper's v3 policy keeps directives only on "double-nested loops
    /// that contain one or a few statements **without including any control
    /// structure**".
    pub fn has_control(&self) -> bool {
        let mut found = false;
        self.walk(&mut |s| {
            if matches!(s, Stmt::If { .. } | Stmt::Exit | Stmt::Cycle | Stmt::Return(_)) {
                found = true;
            }
        });
        found
    }

    /// True when the statement subtree contains a user call.
    pub fn has_call(&self) -> bool {
        let mut found = false;
        self.walk(&mut |s| {
            if matches!(s, Stmt::CallSub { .. }) {
                found = true;
            }
        });
        if !found {
            self.walk_exprs(&mut |e| {
                if matches!(e, Expr::Call { callee: crate::Callee::User(_), .. }) {
                    found = true;
                }
            });
        }
        found
    }

    /// Calls `f` on every expression in the subtree.
    pub fn walk_exprs(&self, f: &mut impl FnMut(&Expr)) {
        self.walk(&mut |s| match s {
            Stmt::Assign { target, value } => {
                for i in &target.indices {
                    i.walk(f);
                }
                value.walk(f);
            }
            Stmt::If { cond, .. } => cond.walk(f),
            Stmt::CallSub { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Stmt::Return(Some(e)) => e.walk(f),
            _ => {}
        });
    }
}

/// A perfect loop nest: the ordered index ranges (outermost first), an
/// optional guard applied inside the innermost loop, and the body.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopNest {
    pub ranges: Vec<IndexRange>,
    pub condition: Option<Expr>,
    pub body: Vec<Stmt>,
}

impl LoopNest {
    /// Depth of the nest.
    pub fn depth(&self) -> usize {
        self.ranges.len()
    }

    /// Statement count of the body (flattened).
    pub fn body_stmt_count(&self) -> usize {
        let mut n = 0;
        for s in &self.body {
            s.walk(&mut |_| n += 1);
        }
        n
    }
}

/// The body of a step.
#[derive(Debug, Clone, PartialEq)]
pub enum StepBody {
    /// Straight-line statements (header step, scalar setup, calls).
    Straight(Vec<Stmt>),
    /// A loop nest.
    Loop(LoopNest),
}

/// A step: the GPI's unit of program structure within a function.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// GPI step caption, e.g. "Loop through all atoms".
    pub label: Option<String>,
    pub body: StepBody,
}

impl Step {
    /// Returns the loop nest if this is a loop step.
    pub fn as_loop(&self) -> Option<&LoopNest> {
        match &self.body {
            StepBody::Loop(l) => Some(l),
            StepBody::Straight(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn body_with_if() -> Stmt {
        Stmt::If {
            cond: Expr::idx("i").cmp(crate::BinOp::Lt, Expr::int(3)),
            then_body: vec![Stmt::assign(LValue::scalar("x"), Expr::int(1))],
            else_body: vec![],
        }
    }

    #[test]
    fn control_detection() {
        assert!(body_with_if().has_control());
        let plain = Stmt::assign(LValue::scalar("x"), Expr::int(1));
        assert!(!plain.has_control());
    }

    #[test]
    fn call_detection() {
        let s = Stmt::CallSub { name: "edge_loop".into(), args: vec![] };
        assert!(s.has_call());
        let e = Stmt::assign(LValue::scalar("x"), Expr::call("f", vec![Expr::int(1)]));
        assert!(e.has_call());
        let lib = Stmt::assign(
            LValue::scalar("x"),
            Expr::lib(crate::LibFunc::Abs, vec![Expr::scalar("y")]),
        );
        assert!(!lib.has_call());
    }

    #[test]
    fn nest_accounting() {
        let nest = LoopNest {
            ranges: vec![
                IndexRange::new("i", Expr::int(1), Expr::int(2)),
                IndexRange::new("j", Expr::int(1), Expr::int(60)),
            ],
            condition: None,
            body: vec![body_with_if()],
        };
        assert_eq!(nest.depth(), 2);
        assert_eq!(nest.body_stmt_count(), 2); // If + inner Assign
    }

    #[test]
    fn walk_exprs_sees_indices_and_values() {
        let s = Stmt::assign(
            LValue::at("a", vec![Expr::idx("i")]),
            Expr::at("b", vec![Expr::idx("i")]) * Expr::real(2.0),
        );
        let mut idx_refs = 0;
        s.walk_exprs(&mut |e| {
            if matches!(e, Expr::Index(_)) {
                idx_refs += 1;
            }
        });
        assert_eq!(idx_refs, 2);
    }
}
