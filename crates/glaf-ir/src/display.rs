//! Human-readable pretty-printing of the IR — the textual equivalent of
//! what the GPI renders graphically. Used in diagnostics, docs and tests.

use std::fmt::Write;

use crate::expr::{BinOp, Callee, Expr, UnOp};
use crate::program::{Function, GlafModule, Program};
use crate::stmt::{LValue, Step, StepBody, Stmt};

/// Renders an expression in conventional infix syntax.
pub fn expr_to_string(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e, 0);
    s
}

fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div => 5,
        BinOp::Pow => 6,
    }
}

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Pow => "**",
        BinOp::Eq => "==",
        BinOp::Ne => "/=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => ".and.",
        BinOp::Or => ".or.",
    }
}

fn write_expr(out: &mut String, e: &Expr, parent_prec: u8) {
    match e {
        Expr::IntLit(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::RealLit(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Expr::BoolLit(b) => {
            let _ = write!(out, "{}", if *b { ".true." } else { ".false." });
        }
        Expr::Index(v) => out.push_str(v),
        Expr::GridRef { grid, indices, field } => {
            out.push_str(grid);
            if let Some(f) = field {
                let _ = write!(out, ".{f}");
            }
            if !indices.is_empty() {
                out.push('(');
                for (i, ix) in indices.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(out, ix, 0);
                }
                out.push(')');
            }
        }
        Expr::WholeGrid(g) => {
            let _ = write!(out, "{g}(:)");
        }
        Expr::Unary { op, operand } => {
            out.push_str(match op {
                UnOp::Neg => "-",
                UnOp::Not => ".not. ",
            });
            write_expr(out, operand, 7);
        }
        Expr::Binary { op, lhs, rhs } => {
            let p = prec(*op);
            let need = p < parent_prec;
            if need {
                out.push('(');
            }
            write_expr(out, lhs, p);
            let _ = write!(out, " {} ", op_str(*op));
            write_expr(out, rhs, p + 1);
            if need {
                out.push(')');
            }
        }
        Expr::Call { callee, args } => {
            match callee {
                Callee::Lib(f) => out.push_str(f.fortran_name()),
                Callee::User(n) => out.push_str(n),
            }
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, 0);
            }
            out.push(')');
        }
    }
}

fn write_lvalue(out: &mut String, lv: &LValue) {
    out.push_str(&lv.grid);
    if let Some(f) = &lv.field {
        let _ = write!(out, ".{f}");
    }
    if !lv.indices.is_empty() {
        out.push('(');
        for (i, ix) in lv.indices.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, ix, 0);
        }
        out.push(')');
    }
}

fn write_stmt(out: &mut String, s: &Stmt, indent: usize) {
    let pad = "  ".repeat(indent);
    match s {
        Stmt::Assign { target, value } => {
            out.push_str(&pad);
            write_lvalue(out, target);
            out.push_str(" = ");
            write_expr(out, value, 0);
            out.push('\n');
        }
        Stmt::If { cond, then_body, else_body } => {
            out.push_str(&pad);
            out.push_str("if ");
            write_expr(out, cond, 0);
            out.push_str(" then\n");
            for s in then_body {
                write_stmt(out, s, indent + 1);
            }
            if !else_body.is_empty() {
                let _ = writeln!(out, "{pad}else");
                for s in else_body {
                    write_stmt(out, s, indent + 1);
                }
            }
            let _ = writeln!(out, "{pad}end if");
        }
        Stmt::CallSub { name, args } => {
            out.push_str(&pad);
            let _ = write!(out, "call {name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, 0);
            }
            out.push_str(")\n");
        }
        Stmt::Return(v) => {
            out.push_str(&pad);
            out.push_str("return");
            if let Some(e) = v {
                out.push(' ');
                write_expr(out, e, 0);
            }
            out.push('\n');
        }
        Stmt::Exit => {
            let _ = writeln!(out, "{pad}exit");
        }
        Stmt::Cycle => {
            let _ = writeln!(out, "{pad}cycle");
        }
    }
}

/// Renders a step.
pub fn step_to_string(step: &Step) -> String {
    let mut out = String::new();
    if let Some(l) = &step.label {
        let _ = writeln!(out, "step \"{l}\":");
    } else {
        out.push_str("step:\n");
    }
    match &step.body {
        StepBody::Straight(stmts) => {
            for s in stmts {
                write_stmt(&mut out, s, 1);
            }
        }
        StepBody::Loop(nest) => {
            let mut indent = 1;
            for r in &nest.ranges {
                let pad = "  ".repeat(indent);
                let _ = write!(out, "{pad}foreach {} in ", r.var);
                write_expr(&mut out, &r.start, 0);
                out.push_str("..");
                write_expr(&mut out, &r.end, 0);
                out.push('\n');
                indent += 1;
            }
            if let Some(c) = &nest.condition {
                let pad = "  ".repeat(indent);
                let _ = write!(out, "{pad}where ");
                write_expr(&mut out, c, 0);
                out.push('\n');
                indent += 1;
            }
            for s in &nest.body {
                write_stmt(&mut out, s, indent);
            }
        }
    }
    out
}

/// Renders a function.
pub fn function_to_string(f: &Function) -> String {
    let mut out = String::new();
    let kind = if f.is_subroutine() { "subroutine" } else { "function" };
    let _ = writeln!(out, "{kind} {}({})", f.name, f.params.join(", "));
    for s in &f.steps {
        out.push_str(&step_to_string(s));
    }
    out
}

/// Renders a module.
pub fn module_to_string(m: &GlafModule) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module {}", m.name);
    for g in &m.globals {
        let _ = writeln!(out, "  global {} [{:?}]", g.name, g.origin);
    }
    for f in &m.functions {
        for line in function_to_string(f).lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    out
}

/// Renders a whole program.
pub fn program_to_string(p: &Program) -> String {
    p.modules.iter().map(module_to_string).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LibFunc;

    #[test]
    fn precedence_parenthesization() {
        let e = (Expr::idx("a") + Expr::idx("b")) * Expr::idx("c");
        assert_eq!(expr_to_string(&e), "(a + b) * c");
        let e2 = Expr::idx("a") + Expr::idx("b") * Expr::idx("c");
        assert_eq!(expr_to_string(&e2), "a + b * c");
    }

    #[test]
    fn subtraction_right_operand_parenthesized() {
        // a - (b - c) must keep its parens.
        let e = Expr::Binary {
            op: BinOp::Sub,
            lhs: Box::new(Expr::idx("a")),
            rhs: Box::new(Expr::Binary {
                op: BinOp::Sub,
                lhs: Box::new(Expr::idx("b")),
                rhs: Box::new(Expr::idx("c")),
            }),
        };
        assert_eq!(expr_to_string(&e), "a - (b - c)");
    }

    #[test]
    fn calls_and_refs() {
        let e = Expr::lib(LibFunc::Abs, vec![Expr::at("a", vec![Expr::idx("i")])]);
        assert_eq!(expr_to_string(&e), "ABS(a(i))");
        let w = Expr::lib(LibFunc::Sum, vec![Expr::WholeGrid("v".into())]);
        assert_eq!(expr_to_string(&w), "SUM(v(:))");
    }

    #[test]
    fn field_access_renders() {
        let e = Expr::at_field("atoms", vec![Expr::idx("i")], "charge");
        assert_eq!(expr_to_string(&e), "atoms.charge(i)");
    }

    #[test]
    fn stmt_rendering() {
        let s = Stmt::If {
            cond: Expr::idx("i").cmp(BinOp::Gt, Expr::int(0)),
            then_body: vec![Stmt::assign(LValue::scalar("x"), Expr::real(1.0))],
            else_body: vec![Stmt::Exit],
        };
        let mut out = String::new();
        write_stmt(&mut out, &s, 0);
        assert!(out.contains("if i > 0 then"));
        assert!(out.contains("x = 1.0"));
        assert!(out.contains("else"));
        assert!(out.contains("exit"));
    }
}
