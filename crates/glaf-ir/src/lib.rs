//! # glaf-ir — GLAF program internal representation
//!
//! GLAF programs are structured exactly the way the graphical programming
//! interface enforces (paper §2.1): a program is a set of **modules**; a
//! module contains **functions**; a function is a sequence of **steps**.
//! A step is either straight-line code or a (possibly multi-index) loop
//! nest with an optional condition and a list of formulas — the "Index
//! Range / Condition / Formula" boxes of Fig. 2.
//!
//! Two structural rules from the paper are encoded in the types:
//!
//! * **Interior nested loops are separate functions** (§3.3): a loop body
//!   contains statements and *calls*, never another loop nest. Complex data
//!   flowing out of an interior loop therefore travels through module-scope
//!   grids, which is precisely why §3.3 exists.
//! * **A `Void` return type makes a SUBROUTINE** (§3.4): the function header
//!   carries a [`glaf_grid::DataType`]; code generation emits
//!   `SUBROUTINE`/`CALL` when it is `Void` and `FUNCTION` otherwise.
//!
//! The [`builder`] module is the programmatic stand-in for the GPI: every
//! method corresponds to a point-and-click action in the paper's Figs. 2-4.

pub mod builder;
pub mod display;
pub mod expr;
pub mod program;
pub mod stmt;
pub mod typecheck;
pub mod validate;

pub use builder::{FunctionBuilder, ModuleBuilder, ProgramBuilder, StepBuilder};
pub use expr::{BinOp, Callee, Expr, LibFunc, UnOp};
pub use program::{Function, GlafModule, Program};
pub use stmt::{IndexRange, LValue, LoopNest, Step, StepBody, Stmt};
pub use typecheck::{expr_type, TypeEnv};
pub use validate::{validate_program, ValidateError};

/// Re-export the grid layer: IR users always need it.
pub use glaf_grid as grid;
