//! Program structure: modules containing functions containing steps.


use glaf_grid::{DataType, Grid};

use crate::stmt::Step;

/// A GLAF function (or subroutine, when `return_type == Void`).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub name: String,
    /// Selecting `Void` in the header step (Fig. 4) generates a SUBROUTINE
    /// with `CALL` sites; anything else generates a FUNCTION (§3.4).
    pub return_type: DataType,
    /// Names of parameter grids, in parameter order. Each must exist in
    /// `grids` with `GridOrigin::Parameter(k)`.
    pub params: Vec<String>,
    /// All grids visible in the function body: parameters and locals.
    /// Global-scope grids live on the module.
    pub grids: Vec<Grid>,
    pub steps: Vec<Step>,
}

impl Function {
    /// True when this function generates as a SUBROUTINE.
    pub fn is_subroutine(&self) -> bool {
        self.return_type == DataType::Void
    }

    /// Looks up a grid declared in this function.
    pub fn grid(&self, name: &str) -> Option<&Grid> {
        self.grids.iter().find(|g| g.name == name)
    }

    /// All loop steps in declaration order.
    pub fn loop_steps(&self) -> impl Iterator<Item = (usize, &crate::stmt::LoopNest)> {
        self.steps
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_loop().map(|l| (i, l)))
    }
}

/// A GLAF module: a named group of functions plus the grids created in the
/// special Global Scope module (§2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct GlafModule {
    pub name: String,
    /// Global Scope grids: `ModuleScope` ones are declared/initialized in
    /// the generated module (§3.3); `Existing(..)` ones map onto legacy data
    /// (§3.1/3.2/3.5).
    pub globals: Vec<Grid>,
    pub functions: Vec<Function>,
}

impl GlafModule {
    /// Looks up a global grid.
    pub fn global(&self, name: &str) -> Option<&Grid> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Looks up a function.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// A whole GLAF program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub modules: Vec<GlafModule>,
}

impl Program {
    /// Finds a function anywhere in the program, with its module.
    pub fn find_function(&self, name: &str) -> Option<(&GlafModule, &Function)> {
        self.modules
            .iter()
            .find_map(|m| m.function(name).map(|f| (m, f)))
    }

    /// Resolves a grid name visible from `func` in `module`: function-local
    /// first, then module globals.
    pub fn resolve_grid<'a>(
        &'a self,
        module: &'a GlafModule,
        func: &'a Function,
        name: &str,
    ) -> Option<&'a Grid> {
        func.grid(name).or_else(|| module.global(name))
    }

    /// Total number of functions.
    pub fn function_count(&self) -> usize {
        self.modules.iter().map(|m| m.functions.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaf_grid::DataType;

    fn sample() -> Program {
        let f = Function {
            name: "adjust2".into(),
            return_type: DataType::Void,
            params: vec![],
            grids: vec![Grid::build("t").typed(DataType::Real8).finish().unwrap()],
            steps: vec![],
        };
        Program {
            modules: vec![GlafModule {
                name: "sarb_kernels".into(),
                globals: vec![Grid::build("gshared")
                    .typed(DataType::Real8)
                    .module_scope()
                    .finish()
                    .unwrap()],
                functions: vec![f],
            }],
        }
    }

    #[test]
    fn subroutine_detection() {
        let p = sample();
        let (_, f) = p.find_function("adjust2").unwrap();
        assert!(f.is_subroutine());
    }

    #[test]
    fn grid_resolution_prefers_locals() {
        let mut p = sample();
        // Shadow the global with a local of the same name.
        let (m, f) = (&mut p.modules[0], 0usize);
        m.functions[f]
            .grids
            .push(Grid::build("gshared").typed(DataType::Integer).finish().unwrap());
        let m = &p.modules[0];
        let f = &m.functions[0];
        let g = p.resolve_grid(m, f, "gshared").unwrap();
        assert_eq!(g.scalar_type(), Some(DataType::Integer));
        // Unshadowed lookups hit the module global.
        let g2 = p.resolve_grid(m, f, "t").unwrap();
        assert_eq!(g2.scalar_type(), Some(DataType::Real8));
    }

    #[test]
    fn find_function_misses() {
        assert!(sample().find_function("nope").is_none());
    }
}
