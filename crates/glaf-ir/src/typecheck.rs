//! Expression typing against a grid environment.
//!
//! Code generation needs to know expression result types (FORTRAN literal
//! suffixes, C casts), and the auto-parallelizer needs to know whether a
//! reduction accumulator is integer or floating point.

use glaf_grid::DataType;

use crate::expr::{BinOp, Callee, Expr, LibFunc};
use crate::program::{Function, GlafModule, Program};

/// A type-lookup environment: resolves a grid name (and optional struct
/// field) to its scalar type, and a user function name to its return type.
pub trait TypeEnv {
    fn grid_type(&self, grid: &str, field: Option<&str>) -> Option<DataType>;
    fn func_return(&self, name: &str) -> Option<DataType>;
}

/// The obvious environment: a function inside a module inside a program.
pub struct ProgramEnv<'a> {
    pub program: &'a Program,
    pub module: &'a GlafModule,
    pub function: &'a Function,
}

impl TypeEnv for ProgramEnv<'_> {
    fn grid_type(&self, grid: &str, field: Option<&str>) -> Option<DataType> {
        let g = self.program.resolve_grid(self.module, self.function, grid)?;
        match field {
            Some(f) => g.field(f).ok().map(|f| f.ty),
            None => g.scalar_type(),
        }
    }

    fn func_return(&self, name: &str) -> Option<DataType> {
        self.program.find_function(name).map(|(_, f)| f.return_type)
    }
}

/// Infers the result type of `expr`. Unresolvable names default to `Real8`
/// (validation reports them separately; typing stays total so codegen can
/// emit best-effort output for diagnostics).
pub fn expr_type(expr: &Expr, env: &dyn TypeEnv) -> DataType {
    match expr {
        Expr::IntLit(_) => DataType::Integer,
        Expr::RealLit(_) => DataType::Real8,
        Expr::BoolLit(_) => DataType::Logical,
        Expr::Index(_) => DataType::Integer,
        Expr::GridRef { grid, field, .. } => env
            .grid_type(grid, field.as_deref())
            .unwrap_or(DataType::Real8),
        Expr::WholeGrid(g) => env.grid_type(g, None).unwrap_or(DataType::Real8),
        Expr::Unary { op, operand } => match op {
            crate::UnOp::Neg => expr_type(operand, env),
            crate::UnOp::Not => DataType::Logical,
        },
        Expr::Binary { op, lhs, rhs } => {
            if op.is_comparison() || op.is_logical() {
                DataType::Logical
            } else if *op == BinOp::Pow {
                // FORTRAN: real ** integer stays real; anything real-ish is
                // real8 under our evaluation model.
                DataType::promote(expr_type(lhs, env), expr_type(rhs, env))
            } else {
                DataType::promote(expr_type(lhs, env), expr_type(rhs, env))
            }
        }
        Expr::Call { callee, args } => match callee {
            Callee::Lib(f) => lib_return_type(*f, args, env),
            Callee::User(name) => env.func_return(name).unwrap_or(DataType::Real8),
        },
    }
}

fn lib_return_type(f: LibFunc, args: &[Expr], env: &dyn TypeEnv) -> DataType {
    use LibFunc::*;
    match f {
        Int => DataType::Integer,
        Real => DataType::Real,
        Dble => DataType::Real8,
        Alog | Log | Log10 | Exp | Sqrt | Sin | Cos | Tan => DataType::Real8,
        Abs | Max | Min | Mod | Sign | Sum | Maxval | Minval => args
            .first()
            .map(|a| expr_type(a, env))
            .unwrap_or(DataType::Real8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct MapEnv(HashMap<String, DataType>);

    impl TypeEnv for MapEnv {
        fn grid_type(&self, grid: &str, _field: Option<&str>) -> Option<DataType> {
            self.0.get(grid).copied()
        }
        fn func_return(&self, _name: &str) -> Option<DataType> {
            Some(DataType::Real8)
        }
    }

    fn env() -> MapEnv {
        let mut m = HashMap::new();
        m.insert("n".to_string(), DataType::Integer);
        m.insert("x".to_string(), DataType::Real8);
        m.insert("ivec".to_string(), DataType::Integer);
        MapEnv(m)
    }

    #[test]
    fn literals_and_indices() {
        let e = env();
        assert_eq!(expr_type(&Expr::int(3), &e), DataType::Integer);
        assert_eq!(expr_type(&Expr::real(3.0), &e), DataType::Real8);
        assert_eq!(expr_type(&Expr::idx("i"), &e), DataType::Integer);
        assert_eq!(expr_type(&Expr::BoolLit(true), &e), DataType::Logical);
    }

    #[test]
    fn promotion_through_binops() {
        let e = env();
        let mixed = Expr::scalar("n") + Expr::scalar("x");
        assert_eq!(expr_type(&mixed, &e), DataType::Real8);
        let ints = Expr::scalar("n") * Expr::int(2);
        assert_eq!(expr_type(&ints, &e), DataType::Integer);
    }

    #[test]
    fn comparisons_are_logical() {
        let e = env();
        let c = Expr::scalar("x").cmp(BinOp::Lt, Expr::real(1.0));
        assert_eq!(expr_type(&c, &e), DataType::Logical);
    }

    #[test]
    fn lib_types() {
        let e = env();
        assert_eq!(
            expr_type(&Expr::lib(LibFunc::Int, vec![Expr::scalar("x")]), &e),
            DataType::Integer
        );
        assert_eq!(
            expr_type(&Expr::lib(LibFunc::Abs, vec![Expr::scalar("n")]), &e),
            DataType::Integer
        );
        assert_eq!(
            expr_type(&Expr::lib(LibFunc::Sum, vec![Expr::WholeGrid("ivec".into())]), &e),
            DataType::Integer
        );
        assert_eq!(
            expr_type(&Expr::lib(LibFunc::Alog, vec![Expr::scalar("n")]), &e),
            DataType::Real8
        );
    }

    #[test]
    fn unknown_names_default_to_real8() {
        let e = env();
        assert_eq!(expr_type(&Expr::scalar("ghost"), &e), DataType::Real8);
    }
}
