//! Expressions: the right-hand sides of GPI formulas.
//!
//! The GPI builds expressions by clicking grids and operators; here the same
//! trees are built programmatically. `Expr` implements the arithmetic
//! operator traits so kernel models read close to the mathematics.


/// Binary operators available in GPI formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    /// Exponentiation (`**` in FORTRAN, `pow` in C).
    Pow,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// True for comparison operators (result is logical).
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// True for logical connectives.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// True for arithmetic operators.
    pub fn is_arithmetic(self) -> bool {
        !self.is_comparison() && !self.is_logical()
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
}

/// Library functions supported by GLAF's extensible library back-end
/// (§3.6). The ICPP'18 work extended the set with `ABS()`, `ALOG()`,
/// `SUM()` "and other functions used in FORTRAN that were missing in the
/// previous versions of GLAF".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LibFunc {
    /// Absolute value.
    Abs,
    /// Natural logarithm under its FORTRAN 77 name (generates `ALOG`/`log`).
    Alog,
    /// Natural logarithm (F90 generic `LOG`).
    Log,
    /// Base-10 logarithm.
    Log10,
    Exp,
    Sqrt,
    Sin,
    Cos,
    Tan,
    /// Two-argument max / min (the emitters chain for >2 args).
    Max,
    Min,
    /// FORTRAN `MOD(a, p)`.
    Mod,
    /// Truncation to integer (`INT`).
    Int,
    /// Conversion to default real (`REAL`).
    Real,
    /// Conversion to double (`DBLE`).
    Dble,
    /// `SIGN(a, b)` — |a| with the sign of b.
    Sign,
    /// Whole-array sum (`SUM(a)`); takes a [`Expr::WholeGrid`] argument.
    Sum,
    /// Whole-array max (`MAXVAL`).
    Maxval,
    /// Whole-array min (`MINVAL`).
    Minval,
}

impl LibFunc {
    /// Number of scalar arguments (None = whole-array reduction over one
    /// grid argument).
    pub fn arity(self) -> Option<usize> {
        use LibFunc::*;
        match self {
            Abs | Alog | Log | Log10 | Exp | Sqrt | Sin | Cos | Tan | Int | Real | Dble => Some(1),
            Max | Min | Mod | Sign => Some(2),
            Sum | Maxval | Minval => None,
        }
    }

    /// FORTRAN spelling.
    pub fn fortran_name(self) -> &'static str {
        use LibFunc::*;
        match self {
            Abs => "ABS",
            Alog => "ALOG",
            Log => "LOG",
            Log10 => "LOG10",
            Exp => "EXP",
            Sqrt => "SQRT",
            Sin => "SIN",
            Cos => "COS",
            Tan => "TAN",
            Max => "MAX",
            Min => "MIN",
            Mod => "MOD",
            Int => "INT",
            Real => "REAL",
            Dble => "DBLE",
            Sign => "SIGN",
            Sum => "SUM",
            Maxval => "MAXVAL",
            Minval => "MINVAL",
        }
    }

    /// C spelling (math.h / helper macros emitted by the C back-end).
    pub fn c_name(self) -> &'static str {
        use LibFunc::*;
        match self {
            Abs => "fabs",
            Alog | Log => "log",
            Log10 => "log10",
            Exp => "exp",
            Sqrt => "sqrt",
            Sin => "sin",
            Cos => "cos",
            Tan => "tan",
            Max => "GLAF_MAX",
            Min => "GLAF_MIN",
            Mod => "GLAF_MOD",
            Int => "(long)",
            Real => "(float)",
            Dble => "(double)",
            Sign => "GLAF_SIGN",
            Sum => "glaf_sum",
            Maxval => "glaf_maxval",
            Minval => "glaf_minval",
        }
    }
}

/// What a call site targets: a library function or a user-defined GLAF
/// function of the same program.
#[derive(Debug, Clone, PartialEq)]
pub enum Callee {
    Lib(LibFunc),
    User(String),
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    IntLit(i64),
    RealLit(f64),
    BoolLit(bool),
    /// A loop index variable currently in scope ("row", "col", ...).
    Index(String),
    /// Element (or scalar) read of a grid. `indices` is empty for scalar
    /// grids; `field` selects a struct field.
    GridRef { grid: String, indices: Vec<Expr>, field: Option<String> },
    /// A whole grid passed to an array intrinsic such as `SUM`.
    WholeGrid(String),
    Unary { op: UnOp, operand: Box<Expr> },
    Binary { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    Call { callee: Callee, args: Vec<Expr> },
}

impl Expr {
    /// Scalar read of grid `name`.
    pub fn scalar(name: impl Into<String>) -> Expr {
        Expr::GridRef { grid: name.into(), indices: Vec::new(), field: None }
    }

    /// Indexed read of grid `name`.
    pub fn at(name: impl Into<String>, indices: Vec<Expr>) -> Expr {
        Expr::GridRef { grid: name.into(), indices, field: None }
    }

    /// Indexed read of struct field `field` of grid `name`.
    pub fn at_field(name: impl Into<String>, indices: Vec<Expr>, field: impl Into<String>) -> Expr {
        Expr::GridRef { grid: name.into(), indices, field: Some(field.into()) }
    }

    /// Loop-index reference.
    pub fn idx(name: impl Into<String>) -> Expr {
        Expr::Index(name.into())
    }

    /// Library call.
    pub fn lib(f: LibFunc, args: Vec<Expr>) -> Expr {
        Expr::Call { callee: Callee::Lib(f), args }
    }

    /// User-function call expression.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call { callee: Callee::User(name.into()), args }
    }

    /// Integer literal helper.
    pub fn int(v: i64) -> Expr {
        Expr::IntLit(v)
    }

    /// Real literal helper.
    pub fn real(v: f64) -> Expr {
        Expr::RealLit(v)
    }

    /// Builds `self <op> rhs` for comparisons (operator overloading only
    /// covers arithmetic).
    pub fn cmp(self, op: BinOp, rhs: Expr) -> Expr {
        debug_assert!(op.is_comparison() || op.is_logical());
        Expr::Binary { op, lhs: Box::new(self), rhs: Box::new(rhs) }
    }

    /// Logical and.
    pub fn and(self, rhs: Expr) -> Expr {
        self.cmp(BinOp::And, rhs)
    }

    /// Logical or.
    pub fn or(self, rhs: Expr) -> Expr {
        self.cmp(BinOp::Or, rhs)
    }

    /// `self ** rhs`.
    pub fn pow(self, rhs: Expr) -> Expr {
        Expr::Binary { op: BinOp::Pow, lhs: Box::new(self), rhs: Box::new(rhs) }
    }

    /// Walks the tree, calling `f` on every node (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Unary { operand, .. } => operand.walk(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::GridRef { indices, .. } => {
                for i in indices {
                    i.walk(f);
                }
            }
            _ => {}
        }
    }

    /// Collects the names of all grids read by this expression (including
    /// whole-grid intrinsic arguments).
    pub fn grids_read(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| match e {
            Expr::GridRef { grid, .. } => out.push(grid.clone()),
            Expr::WholeGrid(g) => out.push(g.clone()),
            _ => {}
        });
        out
    }

    /// True when the expression mentions loop index `var`.
    pub fn uses_index(&self, var: &str) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let Expr::Index(v) = e {
                if v == var {
                    found = true;
                }
            }
        });
        found
    }

    /// Number of nodes in the tree (used by the cost model and for test
    /// assertions about generated code size).
    pub fn node_count(&self) -> usize {
        let mut n = 0usize;
        self.walk(&mut |_| n += 1);
        n
    }
}

macro_rules! impl_arith {
    ($trait:ident, $method:ident, $op:expr) => {
        impl std::ops::$trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::Binary { op: $op, lhs: Box::new(self), rhs: Box::new(rhs) }
            }
        }
    };
}

impl_arith!(Add, add, BinOp::Add);
impl_arith!(Sub, sub, BinOp::Sub);
impl_arith!(Mul, mul, BinOp::Mul);
impl_arith!(Div, div, BinOp::Div);

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Unary { op: UnOp::Neg, operand: Box::new(self) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_overloading_builds_trees() {
        let e = Expr::idx("row") * Expr::real(2.0) + Expr::scalar("ke");
        match &e {
            Expr::Binary { op: BinOp::Add, lhs, .. } => match lhs.as_ref() {
                Expr::Binary { op: BinOp::Mul, .. } => {}
                other => panic!("expected Mul, got {other:?}"),
            },
            other => panic!("expected Add, got {other:?}"),
        }
        assert_eq!(e.node_count(), 5);
    }

    #[test]
    fn grids_read_collects_nested() {
        let e = Expr::at("a", vec![Expr::at("idx", vec![Expr::idx("i")])])
            + Expr::lib(LibFunc::Sum, vec![Expr::WholeGrid("b".into())]);
        let mut g = e.grids_read();
        g.sort();
        assert_eq!(g, vec!["a", "b", "idx"]);
    }

    #[test]
    fn uses_index() {
        let e = Expr::at("a", vec![Expr::idx("i") + Expr::int(1)]);
        assert!(e.uses_index("i"));
        assert!(!e.uses_index("j"));
    }

    #[test]
    fn libfunc_spellings() {
        assert_eq!(LibFunc::Alog.fortran_name(), "ALOG");
        assert_eq!(LibFunc::Alog.c_name(), "log");
        assert_eq!(LibFunc::Sum.arity(), None);
        assert_eq!(LibFunc::Sign.arity(), Some(2));
    }

    #[test]
    fn binop_classes() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(BinOp::Pow.is_arithmetic());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn neg_builds_unary() {
        let e = -Expr::scalar("x");
        assert!(matches!(e, Expr::Unary { op: UnOp::Neg, .. }));
    }
}
