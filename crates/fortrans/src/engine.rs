//! The public engine facade: compile sources, run subprograms, inspect
//! globals.
//!
//! Since the service split, [`Engine`] is a thin shell over the
//! artifact/session architecture in [`crate::service`]: `compile`
//! produces a [`crate::service::CompiledProgram`] and wraps it in a
//! solo [`crate::service::Session`], to which the engine derefs. The
//! one-shot API every existing caller uses is unchanged; multi-tenant
//! callers reach the same machinery through
//! [`crate::service::EngineService`].
//!
//! This file is part of the user-reachable API surface, so internal
//! panics are a bug here: keep it free of `unwrap`/`expect` (checked by
//! the scoped lints below).
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use crate::error::{CompileError, RunError};
use crate::rir::ScalarTy;
use crate::service::{CompiledProgram, Session};
use crate::storage::ArrayObj;

/// An argument for [`Engine::run`].
#[derive(Debug, Clone)]
pub enum ArgVal {
    I(i64),
    F(f64),
    B(bool),
    /// Shared array handle: the callee sees and mutates the same cells, so
    /// results can be read back from the handle after the run.
    Arr(Arc<ArrayObj>),
}

impl ArgVal {
    /// Builds a 1-D f64 array argument from a slice.
    pub fn array_f(data: &[f64], lo: i64) -> ArgVal {
        let obj = ArrayObj::new(ScalarTy::F, vec![(lo, lo + data.len() as i64 - 1)]);
        for (i, v) in data.iter().enumerate() {
            obj.set_f(i, *v);
        }
        ArgVal::Arr(Arc::new(obj))
    }

    /// Builds an n-D f64 array argument. Fails (instead of panicking) if
    /// the dims are malformed or their extent does not match `data`.
    pub fn array_f_dims(data: &[f64], dims: Vec<(i64, i64)>) -> Result<ArgVal, RunError> {
        let obj = ArrayObj::try_new(ScalarTy::F, dims)?;
        if obj.len() != data.len() {
            return Err(RunError::BadCall {
                name: "array_f_dims".into(),
                msg: format!("dims hold {} elements, data has {}", obj.len(), data.len()),
            });
        }
        for (i, v) in data.iter().enumerate() {
            obj.set_f(i, *v);
        }
        Ok(ArgVal::Arr(Arc::new(obj)))
    }

    /// Builds a 1-D i64 array argument.
    pub fn array_i(data: &[i64], lo: i64) -> ArgVal {
        let obj = ArrayObj::new(ScalarTy::I, vec![(lo, lo + data.len() as i64 - 1)]);
        for (i, v) in data.iter().enumerate() {
            obj.set_i(i, *v);
        }
        ArgVal::Arr(Arc::new(obj))
    }

    /// The underlying handle, if this is an array argument.
    pub fn handle(&self) -> Option<&Arc<ArrayObj>> {
        match self {
            ArgVal::Arr(h) => Some(h),
            _ => None,
        }
    }
}

/// Diagnostic recorded when the VM tier trapped and the call was
/// transparently re-executed on the tree-walk oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierFallback {
    /// Entry unit of the trapped call.
    pub unit: String,
    /// The trap's panic payload (internal fault description).
    pub what: String,
}

/// Outcome of a run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Function result (None for subroutines).
    pub result: Option<crate::interp::Val>,
    /// Cost trace (Simulated mode only; empty otherwise).
    pub trace: crate::cost::CostTrace,
    /// Everything PRINTed.
    pub printed: String,
    /// Set when the VM tier trapped and the result came from the
    /// tree-walk oracle instead (see [`Session::run_tiered`]).
    pub fallback: Option<TierFallback>,
}

/// One statically vectorized loop, as reported by
/// [`Session::vector_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorLoopInfo {
    /// Unit (subroutine/function) containing the loop.
    pub unit: String,
    /// Source line of the DO statement.
    pub line: u32,
    /// Vectorized statements in the loop body.
    pub stmts: usize,
    /// True when the loop is a scalar reduction.
    pub reduction: bool,
}

/// Which execution tier [`Session::run_tiered`] uses.
///
/// [`ExecTier::Vm`] (the default for [`Session::run`]) compiles units to
/// flat bytecode and executes them on the register/stack VM in
/// [`crate::vm`]; hot `VecLoop` regions are promoted to native code by
/// [`crate::jit`] when the session's native tier is enabled.
/// [`ExecTier::Native`] is the VM tier with native promotion forced on
/// and eager for that run (regardless of the session toggles) — on
/// targets without a JIT it is identical to `Vm`. [`ExecTier::TreeWalk`]
/// runs the original tree-walking interpreter; it is kept as the
/// reference oracle for differential testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecTier {
    Vm,
    Native,
    TreeWalk,
}

/// A compiled FORTRAN program with live global storage: one
/// [`CompiledProgram`] artifact plus one private [`Session`] over it.
///
/// Global state (module variables, COMMON blocks, SAVE arrays) persists
/// across `run` calls, exactly like a linked FORTRAN process image; use
/// [`Session::reset_globals`] to reinitialize. All session methods are
/// available directly on the engine through deref.
pub struct Engine {
    session: Session,
}

impl Engine {
    /// Parses and resolves one or more source files (order-independent for
    /// modules; later sources may USE earlier ones and vice versa), then
    /// opens a private session over the compiled artifact.
    pub fn compile(sources: &[&str]) -> Result<Engine, CompileError> {
        Ok(Engine { session: Session::solo(CompiledProgram::compile(sources)?) })
    }

    /// An engine over an existing artifact (private pools, fresh globals).
    pub fn from_artifact(artifact: Arc<CompiledProgram>) -> Engine {
        Engine { session: Session::solo(artifact) }
    }

    /// Surrenders the underlying session (e.g. to hand it to service
    /// plumbing that wants `Session` by value).
    pub fn into_session(self) -> Session {
        self.session
    }
}

impl std::ops::Deref for Engine {
    type Target = Session;
    fn deref(&self) -> &Session {
        &self.session
    }
}

impl std::ops::DerefMut for Engine {
    fn deref_mut(&mut self) -> &mut Session {
        &mut self.session
    }
}
