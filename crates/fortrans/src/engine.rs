//! The public engine facade: compile sources, run subprograms, inspect
//! globals.
//!
//! This file is part of the user-reachable API surface, so internal
//! panics are a bug here: keep it free of `unwrap`/`expect` (checked by
//! the scoped lints below).
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use omprt::{CriticalRegistry, ThreadPool};
use parking_lot::Mutex;

use crate::bytecode::{compile_program, BUnit};
use crate::cost::CostTrace;
use crate::error::{CompileError, RunError};
use crate::interp::{EffLimits, Exec, ExecMode, RunLimits, ScheduleOverrides, Task, Val};
use crate::parse::parse;
use crate::rir::{RProgram, ScalarTy};
use crate::sema::resolve;
use crate::storage::{ArrayObj, GlobalCell, Globals};

/// An argument for [`Engine::run`].
#[derive(Debug, Clone)]
pub enum ArgVal {
    I(i64),
    F(f64),
    B(bool),
    /// Shared array handle: the callee sees and mutates the same cells, so
    /// results can be read back from the handle after the run.
    Arr(Arc<ArrayObj>),
}

impl ArgVal {
    /// Builds a 1-D f64 array argument from a slice.
    pub fn array_f(data: &[f64], lo: i64) -> ArgVal {
        let obj = ArrayObj::new(ScalarTy::F, vec![(lo, lo + data.len() as i64 - 1)]);
        for (i, v) in data.iter().enumerate() {
            obj.set_f(i, *v);
        }
        ArgVal::Arr(Arc::new(obj))
    }

    /// Builds an n-D f64 array argument. Fails (instead of panicking) if
    /// the dims are malformed or their extent does not match `data`.
    pub fn array_f_dims(data: &[f64], dims: Vec<(i64, i64)>) -> Result<ArgVal, RunError> {
        let obj = ArrayObj::try_new(ScalarTy::F, dims)?;
        if obj.len() != data.len() {
            return Err(RunError::BadCall {
                name: "array_f_dims".into(),
                msg: format!("dims hold {} elements, data has {}", obj.len(), data.len()),
            });
        }
        for (i, v) in data.iter().enumerate() {
            obj.set_f(i, *v);
        }
        Ok(ArgVal::Arr(Arc::new(obj)))
    }

    /// Builds a 1-D i64 array argument.
    pub fn array_i(data: &[i64], lo: i64) -> ArgVal {
        let obj = ArrayObj::new(ScalarTy::I, vec![(lo, lo + data.len() as i64 - 1)]);
        for (i, v) in data.iter().enumerate() {
            obj.set_i(i, *v);
        }
        ArgVal::Arr(Arc::new(obj))
    }

    /// The underlying handle, if this is an array argument.
    pub fn handle(&self) -> Option<&Arc<ArrayObj>> {
        match self {
            ArgVal::Arr(h) => Some(h),
            _ => None,
        }
    }
}

/// Diagnostic recorded when the VM tier trapped and the call was
/// transparently re-executed on the tree-walk oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierFallback {
    /// Entry unit of the trapped call.
    pub unit: String,
    /// The trap's panic payload (internal fault description).
    pub what: String,
}

/// Outcome of a run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Function result (None for subroutines).
    pub result: Option<Val>,
    /// Cost trace (Simulated mode only; empty otherwise).
    pub trace: CostTrace,
    /// Everything PRINTed.
    pub printed: String,
    /// Set when the VM tier trapped and the result came from the
    /// tree-walk oracle instead (see [`Engine::run_tiered`]).
    pub fallback: Option<TierFallback>,
}

/// One statically vectorized loop, as reported by
/// [`Engine::vector_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorLoopInfo {
    /// Unit (subroutine/function) containing the loop.
    pub unit: String,
    /// Source line of the DO statement.
    pub line: u32,
    /// Vectorized statements in the loop body.
    pub stmts: usize,
    /// True when the loop is a scalar reduction.
    pub reduction: bool,
}

/// A compiled FORTRAN program with live global storage.
///
/// Global state (module variables, COMMON blocks, SAVE arrays) persists
/// across `run` calls, exactly like a linked FORTRAN process image; use
/// [`Engine::reset_globals`] to reinitialize.
pub struct Engine {
    prog: Arc<RProgram>,
    globals: Arc<Globals>,
    pools: Mutex<Vec<(usize, Arc<ThreadPool>)>>,
    critical: Arc<CriticalRegistry>,
    /// Compiled bytecode: `[optimized, traced]`. The optimized build
    /// (constant folding, dead-store elimination, fused loops) serves
    /// Serial/Parallel; the traced build preserves every cost-bearing
    /// operation for Simulated mode. Both variants are compiled and
    /// statically verified by [`Engine::compile`].
    bytecode: Mutex<[Option<Arc<Vec<BUnit>>>; 2]>,
    /// Execution limits applied to every run (both tiers).
    limits: RunLimits,
    /// Number of VM traps that fell back to the oracle tier.
    fallback_count: AtomicU64,
    /// Test hook: force the next VM-tier run to trap (exercises the
    /// fallback path without needing a real VM bug).
    force_vm_trap: AtomicBool,
    /// Loop-schedule overrides snapshotted into every run's `Exec`
    /// (feedback-directed rescheduling; see
    /// [`Engine::set_schedule_overrides`]).
    sched_overrides: Mutex<Arc<ScheduleOverrides>>,
    /// Gate for the VM's vector superinstruction path; on by default.
    vector_enabled: AtomicBool,
    /// Loop entries that actually ran vectorized, across all runs.
    vector_entries: Arc<AtomicU64>,
}

/// Which execution tier [`Engine::run_tiered`] uses.
///
/// [`ExecTier::Vm`] (the default for [`Engine::run`]) compiles units to
/// flat bytecode and executes them on the register/stack VM in
/// [`crate::vm`]. [`ExecTier::TreeWalk`] runs the original tree-walking
/// interpreter; it is kept as the reference oracle for differential
/// testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecTier {
    Vm,
    TreeWalk,
}

impl Engine {
    /// Parses and resolves one or more source files (order-independent for
    /// modules; later sources may USE earlier ones and vice versa).
    pub fn compile(sources: &[&str]) -> Result<Engine, CompileError> {
        let mut ast = crate::ast::Ast::default();
        for s in sources {
            let mut part = parse(s)?;
            ast.modules.append(&mut part.modules);
        }
        let prog = resolve(&ast)?;
        let globals = Arc::new(build_globals(&prog));
        // Compile both bytecode variants eagerly and run the static
        // verifier over them, so a compiler bug surfaces here as
        // `CompileError::Verify` instead of undefined VM behavior later.
        let optimized = compile_program(&prog, false);
        crate::verify::verify_program(&prog, &optimized)?;
        let traced = compile_program(&prog, true);
        crate::verify::verify_program(&prog, &traced)?;
        Ok(Engine {
            prog: Arc::new(prog),
            globals,
            pools: Mutex::new(Vec::new()),
            critical: Arc::new(CriticalRegistry::new()),
            bytecode: Mutex::new([Some(Arc::new(optimized)), Some(Arc::new(traced))]),
            limits: RunLimits::default(),
            fallback_count: AtomicU64::new(0),
            force_vm_trap: AtomicBool::new(false),
            sched_overrides: Mutex::new(Arc::new(ScheduleOverrides::default())),
            vector_enabled: AtomicBool::new(true),
            vector_entries: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Sets execution limits applied to every subsequent run.
    pub fn set_limits(&mut self, limits: RunLimits) {
        self.limits = limits;
    }

    /// The currently configured execution limits.
    pub fn limits(&self) -> RunLimits {
        self.limits
    }

    /// How many VM traps have fallen back to the oracle tier so far.
    pub fn fallback_count(&self) -> u64 {
        self.fallback_count.load(Ordering::Relaxed)
    }

    /// Test hook: forces the next VM-tier run to trap, exercising the
    /// trap-and-fallback path deterministically.
    #[doc(hidden)]
    pub fn debug_force_vm_trap(&self) {
        self.force_vm_trap.store(true, Ordering::Relaxed);
    }

    /// Test hook: replaces the compiled bytecode of one variant
    /// (`traced` selects the Simulated build). Used by the
    /// fault-injection harness to execute corrupted streams.
    #[doc(hidden)]
    pub fn debug_inject_bytecode(&self, traced: bool, bunits: Vec<BUnit>) {
        self.bytecode.lock()[usize::from(traced)] = Some(Arc::new(bunits));
    }

    /// The resolved program (introspection for tests and tooling).
    pub fn program(&self) -> &RProgram {
        &self.prog
    }

    /// Installs per-line loop-schedule overrides, replacing any previous
    /// per-line set. Each `(line, schedule)` pair reschedules the
    /// parallel DO at that source line on every subsequent run, in both
    /// execution tiers — this is the apply side of the feedback loop: a
    /// measured [`crate::trace::Profile`]'s per-region imbalance (keyed
    /// by `omp@line`) decides the overrides for the next run.
    pub fn set_schedule_overrides<I>(&self, overrides: I)
    where
        I: IntoIterator<Item = (u32, omprt::Schedule)>,
    {
        let mut cur = (**self.sched_overrides.lock()).clone();
        cur.by_line = overrides.into_iter().collect();
        *self.sched_overrides.lock() = Arc::new(cur);
    }

    /// Installs (or with `None` clears) a blanket schedule override
    /// applied to every parallel DO without a per-line override. Used by
    /// the schedule-matrix benchmarks and the differential suite to run
    /// one program under each schedule kind.
    pub fn set_schedule_override_all(&self, sched: Option<omprt::Schedule>) {
        let mut cur = (**self.sched_overrides.lock()).clone();
        cur.all = sched;
        *self.sched_overrides.lock() = Arc::new(cur);
    }

    /// The currently installed schedule overrides.
    pub fn schedule_overrides(&self) -> ScheduleOverrides {
        (**self.sched_overrides.lock()).clone()
    }

    /// Enables or disables the VM's vector superinstruction path (on by
    /// default). Disabling forces every vectorized loop back to its
    /// scalar head — used for A/B benchmarking and differential tests;
    /// results are bit-identical either way.
    pub fn set_vector_enabled(&self, on: bool) {
        self.vector_enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the vector superinstruction path is enabled.
    pub fn vector_enabled(&self) -> bool {
        self.vector_enabled.load(Ordering::Relaxed)
    }

    /// How many loop entries actually executed on the vector path so
    /// far (all runs, all threads). Zero after runs with the path
    /// enabled means every candidate fell back at a runtime guard.
    pub fn vector_entry_count(&self) -> u64 {
        self.vector_entries.load(Ordering::Relaxed)
    }

    /// Static vectorization report: one line per loop the bytecode
    /// compiler proved legal to vectorize, with unit name, source line,
    /// statement count and reduction flag. Reflects the optimized
    /// (Serial/Parallel) build; the traced build never vectorizes.
    pub fn vector_report(&self) -> Vec<VectorLoopInfo> {
        let bunits = self.bytecode_for(false);
        let mut out = Vec::new();
        for bu in bunits.iter() {
            for d in &bu.vecs {
                out.push(VectorLoopInfo {
                    unit: self.prog.units[bu.unit as usize].name.clone(),
                    line: d.line,
                    stmts: d.stmts.len(),
                    reduction: d.red.is_some(),
                });
            }
        }
        out
    }

    /// Reinitializes all global storage.
    pub fn reset_globals(&mut self) {
        self.globals = Arc::new(build_globals(&self.prog));
    }

    fn pool_for(&self, threads: usize) -> Arc<ThreadPool> {
        let mut pools = self.pools.lock();
        if let Some((_, p)) = pools.iter().find(|(t, _)| *t == threads) {
            return Arc::clone(p);
        }
        let p = Arc::new(ThreadPool::new(threads));
        pools.push((threads, Arc::clone(&p)));
        p
    }

    /// Bytecode for the whole program; `traced` selects the Simulated
    /// build. Compiled once per variant, then shared.
    fn bytecode_for(&self, traced: bool) -> Arc<Vec<BUnit>> {
        let mut cache = self.bytecode.lock();
        let slot = &mut cache[usize::from(traced)];
        match slot {
            Some(b) => Arc::clone(b),
            None => {
                let b = Arc::new(compile_program(&self.prog, traced));
                *slot = Some(Arc::clone(&b));
                b
            }
        }
    }

    /// Runs subprogram `name` with `args` under `mode` on the default
    /// tier (the bytecode VM).
    pub fn run(&self, name: &str, args: &[ArgVal], mode: ExecMode) -> Result<RunOutcome, RunError> {
        self.run_tiered(name, args, mode, ExecTier::Vm)
    }

    /// Runs subprogram `name` on an explicit execution tier.
    ///
    /// Internal panics never cross this boundary. A panic in the VM tier
    /// (an engine bug, not a program-level [`RunError`]) is trapped, a
    /// [`TierFallback`] diagnostic is recorded, and the call is
    /// transparently re-executed on the tree-walk oracle so the caller
    /// still gets an answer. A panic in the oracle itself surfaces as
    /// [`RunError::Trap`].
    pub fn run_tiered(
        &self,
        name: &str,
        args: &[ArgVal],
        mode: ExecMode,
        tier: ExecTier,
    ) -> Result<RunOutcome, RunError> {
        let unit_id = self
            .prog
            .unit_id(name)
            .ok_or_else(|| RunError::BadCall { name: name.into(), msg: "unknown unit".into() })?;
        match tier {
            ExecTier::Vm => {
                let forced = self.force_vm_trap.swap(false, Ordering::Relaxed);
                let vm_run = catch_unwind(AssertUnwindSafe(|| {
                    if forced {
                        panic!("forced VM trap (test hook)");
                    }
                    self.run_on_vm(unit_id, args, mode, None)
                }));
                let trap = match vm_run {
                    Err(payload) => payload_str(&*payload),
                    // A contained worker panic surfaces as `Trap`: an
                    // internal fault, so it also falls back.
                    Ok(Err(ref e)) if matches!(e.root(), RunError::Trap { .. }) => e.to_string(),
                    Ok(run) => return run,
                };
                // The VM trapped: record the diagnostic and give the
                // caller the oracle's answer instead.
                self.fallback_count.fetch_add(1, Ordering::Relaxed);
                let fb = TierFallback { unit: name.into(), what: trap };
                let mut out = self.run_on_oracle(unit_id, args, mode, None)?;
                out.fallback = Some(fb);
                Ok(out)
            }
            ExecTier::TreeWalk => self.run_on_oracle(unit_id, args, mode, None),
        }
    }

    /// Runs subprogram `name` with a profiling collector attached,
    /// returning the outcome together with the rendered
    /// [`crate::trace::Profile`]: per-unit and per-DO-loop wall time and
    /// entry counts, executed VM instructions (or interpreter steps)
    /// against the configured [`RunLimits`] budget, parallel-region
    /// worker utilization, and any tier-fallback diagnostics.
    ///
    /// Profiling follows the same trap-and-fallback contract as
    /// [`Engine::run_tiered`]: if the VM tier traps, a *fresh* collector
    /// is attached to the oracle re-run, so the returned profile always
    /// describes the execution that produced the result. The fallback
    /// diagnostic and the engine-lifetime fallback total are surfaced on
    /// the profile itself.
    pub fn run_profiled(
        &self,
        name: &str,
        args: &[ArgVal],
        mode: ExecMode,
        tier: ExecTier,
    ) -> Result<(RunOutcome, crate::trace::Profile), RunError> {
        let unit_id = self
            .prog
            .unit_id(name)
            .ok_or_else(|| RunError::BadCall { name: name.into(), msg: "unknown unit".into() })?;
        let mode_str = match mode {
            ExecMode::Serial => "serial".to_string(),
            ExecMode::Parallel { threads } => format!("parallel({threads})"),
            ExecMode::Simulated { threads } => format!("simulated({threads})"),
        };
        // Worker busy-time accounting is cheap but not free: the pool
        // collects it only while a profiled Parallel run is in flight.
        let pool = match mode {
            ExecMode::Parallel { threads } => Some(self.pool_for(threads)),
            _ => None,
        };
        if let Some(p) = &pool {
            p.set_metrics(true);
            p.take_metrics(); // discard leftovers from earlier runs
        }
        let finish = |prof: crate::trace::Collector, tier_str: &str, wall_ns: u64| {
            let (spans, steps) = prof.finish();
            let regions = pool
                .as_ref()
                .map(|p| {
                    p.take_metrics()
                        .into_iter()
                        .map(|m| crate::trace::RegionReport {
                            threads: m.threads as u64,
                            wall_ns: m.wall_ns,
                            busy_ns: m.busy_ns,
                            line: m.line as u64,
                            sched: m.sched.render(),
                        })
                        .collect()
                })
                .unwrap_or_default();
            crate::trace::Profile {
                entry: name.to_string(),
                tier: tier_str.to_string(),
                mode: mode_str.clone(),
                wall_ns,
                steps,
                max_steps: self.limits.max_steps,
                spans,
                regions,
                fallback: None,
                fallback_count: self.fallback_count(),
            }
        };
        match tier {
            ExecTier::Vm => {
                let forced = self.force_vm_trap.swap(false, Ordering::Relaxed);
                let prof = crate::trace::Collector::new();
                let t0 = std::time::Instant::now();
                let vm_run = catch_unwind(AssertUnwindSafe(|| {
                    if forced {
                        panic!("forced VM trap (test hook)");
                    }
                    self.run_on_vm(unit_id, args, mode, Some(&prof))
                }));
                let trap = match vm_run {
                    Err(payload) => payload_str(&*payload),
                    Ok(Err(ref e)) if matches!(e.root(), RunError::Trap { .. }) => e.to_string(),
                    Ok(run) => {
                        let wall_ns = t0.elapsed().as_nanos() as u64;
                        if let Some(p) = &pool {
                            p.set_metrics(false);
                        }
                        let out = run?;
                        return Ok((out, finish(prof, "vm", wall_ns)));
                    }
                };
                // The VM trapped: re-profile on the oracle with a fresh
                // collector, so the profile matches the answer's tier.
                self.fallback_count.fetch_add(1, Ordering::Relaxed);
                if let Some(p) = &pool {
                    p.take_metrics(); // drop partials from the trapped attempt
                }
                let fb = TierFallback { unit: name.into(), what: trap };
                let prof = crate::trace::Collector::new();
                let t0 = std::time::Instant::now();
                let run = self.run_on_oracle(unit_id, args, mode, Some(&prof));
                let wall_ns = t0.elapsed().as_nanos() as u64;
                if let Some(p) = &pool {
                    p.set_metrics(false);
                }
                let mut out = run?;
                out.fallback = Some(fb.clone());
                let mut profile = finish(prof, "tree-walk", wall_ns);
                profile.fallback =
                    Some(crate::trace::FallbackInfo { unit: fb.unit, what: fb.what });
                Ok((out, profile))
            }
            ExecTier::TreeWalk => {
                let prof = crate::trace::Collector::new();
                let t0 = std::time::Instant::now();
                let run = self.run_on_oracle(unit_id, args, mode, Some(&prof));
                let wall_ns = t0.elapsed().as_nanos() as u64;
                if let Some(p) = &pool {
                    p.set_metrics(false);
                }
                let out = run?;
                Ok((out, finish(prof, "tree-walk", wall_ns)))
            }
        }
    }

    fn make_exec(&self, mode: ExecMode) -> Exec {
        let pool = match mode {
            ExecMode::Parallel { threads } => Some(self.pool_for(threads)),
            _ => None,
        };
        Exec {
            prog: Arc::clone(&self.prog),
            globals: Arc::clone(&self.globals),
            mode,
            pool,
            critical: Arc::clone(&self.critical),
            printed: Mutex::new(String::new()),
            sched_overrides: Arc::clone(&self.sched_overrides.lock()),
            limits: EffLimits::start(&self.limits),
            vector_enabled: self.vector_enabled.load(Ordering::Relaxed),
            vector_entries: Arc::clone(&self.vector_entries),
        }
    }

    fn run_on_vm(
        &self,
        unit_id: usize,
        args: &[ArgVal],
        mode: ExecMode,
        prof: Option<&crate::trace::Collector>,
    ) -> Result<RunOutcome, RunError> {
        let exec = self.make_exec(mode);
        let traced = matches!(mode, ExecMode::Simulated { .. });
        let bunits = self.bytecode_for(traced);
        let (result, trace, printed) = crate::vm::run_vm(&exec, &bunits, unit_id, args, prof)?;
        Ok(RunOutcome { result, trace, printed, fallback: None })
    }

    /// Runs on the tree-walk oracle, containing any internal panic as
    /// [`RunError::Trap`] (the oracle is the last tier — there is nothing
    /// left to fall back to).
    fn run_on_oracle(
        &self,
        unit_id: usize,
        args: &[ArgVal],
        mode: ExecMode,
        prof: Option<&crate::trace::Collector>,
    ) -> Result<RunOutcome, RunError> {
        let traced = matches!(mode, ExecMode::Simulated { .. });
        catch_unwind(AssertUnwindSafe(|| {
            let exec = self.make_exec(mode);
            let mut task = Task::new(&exec, 0, traced);
            task.prof = prof;
            let frame = task.entry_frame(unit_id, args)?;
            let (result, trace, printed) = task.run_entry(unit_id, frame)?;
            Ok(RunOutcome { result, trace, printed, fallback: None })
        }))
        .unwrap_or_else(|payload| Err(RunError::Trap { what: payload_str(&*payload) }))
    }

    /// Reads a global scalar by diagnostic name (`module::var`,
    /// `module::var%field`, `common block::var`, `unit::savevar`).
    pub fn global_scalar(&self, name: &str) -> Option<Val> {
        let id = self.prog.global_id(name)?;
        let decl = &self.prog.globals[id];
        if decl.rank != 0 {
            return None;
        }
        let bits = self.globals.cells[id].load_bits(0);
        Some(match decl.ty {
            ScalarTy::I => Val::I(bits as i64),
            ScalarTy::F => Val::F(f64::from_bits(bits)),
            ScalarTy::B => Val::B(bits != 0),
        })
    }

    /// Writes a global scalar.
    pub fn set_global_scalar(&self, name: &str, v: Val) -> bool {
        let Some(id) = self.prog.global_id(name) else { return false };
        let decl = &self.prog.globals[id];
        if decl.rank != 0 {
            return false;
        }
        let bits = match decl.ty {
            ScalarTy::I => v.as_i() as u64,
            ScalarTy::F => v.as_f().to_bits(),
            ScalarTy::B => u64::from(v.as_b()),
        };
        self.globals.cells[id].store_bits(0, bits);
        true
    }

    /// Array handle of a global (thread 0 instance for per-thread cells).
    pub fn global_array(&self, name: &str) -> Option<Arc<ArrayObj>> {
        let id = self.prog.global_id(name)?;
        self.globals.cells[id].array_handle(0)
    }

    /// Lists global diagnostic names (tooling).
    pub fn global_names(&self) -> Vec<String> {
        self.prog.globals.iter().map(|g| g.name.clone()).collect()
    }
}

/// Renders a `catch_unwind` payload for diagnostics.
fn payload_str(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn build_globals(prog: &RProgram) -> Globals {
    let cells = prog
        .globals
        .iter()
        .map(|decl| {
            if decl.rank == 0 && !decl.allocatable && decl.dims.is_empty() {
                let cell = if decl.per_thread {
                    GlobalCell::new_per_thread_scalar()
                } else {
                    GlobalCell::new_scalar()
                };
                if let Some(bits) = decl.init_bits {
                    match &cell {
                        GlobalCell::Scalar(c) => {
                            c.store(bits, std::sync::atomic::Ordering::Relaxed)
                        }
                        GlobalCell::PerThreadScalar(v) => {
                            for c in v.iter() {
                                c.store(bits, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                        _ => {}
                    }
                }
                cell
            } else if decl.per_thread {
                let cell = GlobalCell::new_per_thread_array();
                if !decl.allocatable && !decl.dims.is_empty() {
                    for t in 0..crate::storage::MAX_THREADS {
                        cell.set_array(t, Some(Arc::new(ArrayObj::new(decl.ty, decl.dims.clone()))));
                    }
                }
                cell
            } else {
                let cell = GlobalCell::new_array();
                if !decl.allocatable && !decl.dims.is_empty() {
                    cell.set_array(0, Some(Arc::new(ArrayObj::new(decl.ty, decl.dims.clone()))));
                }
                cell
            }
        })
        .collect();
    Globals { cells }
}
