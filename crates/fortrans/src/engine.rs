//! The public engine facade: compile sources, run subprograms, inspect
//! globals.

use std::sync::Arc;

use omprt::{CriticalRegistry, ThreadPool};
use parking_lot::Mutex;

use crate::bytecode::{compile_program, BUnit};
use crate::cost::CostTrace;
use crate::error::{CompileError, RunError};
use crate::interp::{Exec, ExecMode, Task, Val};
use crate::parse::parse;
use crate::rir::{RProgram, ScalarTy};
use crate::sema::resolve;
use crate::storage::{ArrayObj, GlobalCell, Globals};

/// An argument for [`Engine::run`].
#[derive(Debug, Clone)]
pub enum ArgVal {
    I(i64),
    F(f64),
    B(bool),
    /// Shared array handle: the callee sees and mutates the same cells, so
    /// results can be read back from the handle after the run.
    Arr(Arc<ArrayObj>),
}

impl ArgVal {
    /// Builds a 1-D f64 array argument from a slice.
    pub fn array_f(data: &[f64], lo: i64) -> ArgVal {
        let obj = ArrayObj::new(ScalarTy::F, vec![(lo, lo + data.len() as i64 - 1)]);
        for (i, v) in data.iter().enumerate() {
            obj.set_f(i, *v);
        }
        ArgVal::Arr(Arc::new(obj))
    }

    /// Builds an n-D f64 array argument.
    pub fn array_f_dims(data: &[f64], dims: Vec<(i64, i64)>) -> ArgVal {
        let obj = ArrayObj::new(ScalarTy::F, dims);
        assert_eq!(obj.len(), data.len(), "data length must match dims");
        for (i, v) in data.iter().enumerate() {
            obj.set_f(i, *v);
        }
        ArgVal::Arr(Arc::new(obj))
    }

    /// Builds a 1-D i64 array argument.
    pub fn array_i(data: &[i64], lo: i64) -> ArgVal {
        let obj = ArrayObj::new(ScalarTy::I, vec![(lo, lo + data.len() as i64 - 1)]);
        for (i, v) in data.iter().enumerate() {
            obj.set_i(i, *v);
        }
        ArgVal::Arr(Arc::new(obj))
    }

    /// The underlying handle, if this is an array argument.
    pub fn handle(&self) -> Option<&Arc<ArrayObj>> {
        match self {
            ArgVal::Arr(h) => Some(h),
            _ => None,
        }
    }
}

/// Outcome of a run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Function result (None for subroutines).
    pub result: Option<Val>,
    /// Cost trace (Simulated mode only; empty otherwise).
    pub trace: CostTrace,
    /// Everything PRINTed.
    pub printed: String,
}

/// A compiled FORTRAN program with live global storage.
///
/// Global state (module variables, COMMON blocks, SAVE arrays) persists
/// across `run` calls, exactly like a linked FORTRAN process image; use
/// [`Engine::reset_globals`] to reinitialize.
pub struct Engine {
    prog: Arc<RProgram>,
    globals: Arc<Globals>,
    pools: Mutex<Vec<(usize, Arc<ThreadPool>)>>,
    critical: Arc<CriticalRegistry>,
    /// Lazily compiled bytecode: `[optimized, traced]`. The optimized
    /// build (constant folding, dead-store elimination, fused loops)
    /// serves Serial/Parallel; the traced build preserves every
    /// cost-bearing operation for Simulated mode.
    bytecode: Mutex<[Option<Arc<Vec<BUnit>>>; 2]>,
}

/// Which execution tier [`Engine::run_tiered`] uses.
///
/// [`ExecTier::Vm`] (the default for [`Engine::run`]) compiles units to
/// flat bytecode and executes them on the register/stack VM in
/// [`crate::vm`]. [`ExecTier::TreeWalk`] runs the original tree-walking
/// interpreter; it is kept as the reference oracle for differential
/// testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecTier {
    Vm,
    TreeWalk,
}

impl Engine {
    /// Parses and resolves one or more source files (order-independent for
    /// modules; later sources may USE earlier ones and vice versa).
    pub fn compile(sources: &[&str]) -> Result<Engine, CompileError> {
        let mut ast = crate::ast::Ast::default();
        for s in sources {
            let mut part = parse(s)?;
            ast.modules.append(&mut part.modules);
        }
        let prog = resolve(&ast)?;
        let globals = Arc::new(build_globals(&prog));
        Ok(Engine {
            prog: Arc::new(prog),
            globals,
            pools: Mutex::new(Vec::new()),
            critical: Arc::new(CriticalRegistry::new()),
            bytecode: Mutex::new([None, None]),
        })
    }

    /// The resolved program (introspection for tests and tooling).
    pub fn program(&self) -> &RProgram {
        &self.prog
    }

    /// Reinitializes all global storage.
    pub fn reset_globals(&mut self) {
        self.globals = Arc::new(build_globals(&self.prog));
    }

    fn pool_for(&self, threads: usize) -> Arc<ThreadPool> {
        let mut pools = self.pools.lock();
        if let Some((_, p)) = pools.iter().find(|(t, _)| *t == threads) {
            return Arc::clone(p);
        }
        let p = Arc::new(ThreadPool::new(threads));
        pools.push((threads, Arc::clone(&p)));
        p
    }

    /// Bytecode for the whole program; `traced` selects the Simulated
    /// build. Compiled once per variant, then shared.
    fn bytecode_for(&self, traced: bool) -> Arc<Vec<BUnit>> {
        let mut cache = self.bytecode.lock();
        let slot = &mut cache[usize::from(traced)];
        match slot {
            Some(b) => Arc::clone(b),
            None => {
                let b = Arc::new(compile_program(&self.prog, traced));
                *slot = Some(Arc::clone(&b));
                b
            }
        }
    }

    /// Runs subprogram `name` with `args` under `mode` on the default
    /// tier (the bytecode VM).
    pub fn run(&self, name: &str, args: &[ArgVal], mode: ExecMode) -> Result<RunOutcome, RunError> {
        self.run_tiered(name, args, mode, ExecTier::Vm)
    }

    /// Runs subprogram `name` on an explicit execution tier.
    pub fn run_tiered(
        &self,
        name: &str,
        args: &[ArgVal],
        mode: ExecMode,
        tier: ExecTier,
    ) -> Result<RunOutcome, RunError> {
        let unit_id = self
            .prog
            .unit_id(name)
            .ok_or_else(|| RunError::BadCall { name: name.into(), msg: "unknown unit".into() })?;
        let pool = match mode {
            ExecMode::Parallel { threads } => Some(self.pool_for(threads)),
            _ => None,
        };
        let exec = Exec {
            prog: Arc::clone(&self.prog),
            globals: Arc::clone(&self.globals),
            mode,
            pool,
            critical: Arc::clone(&self.critical),
            printed: Mutex::new(String::new()),
        };
        let traced = matches!(mode, ExecMode::Simulated { .. });
        let (result, trace, printed) = match tier {
            ExecTier::Vm => {
                let bunits = self.bytecode_for(traced);
                crate::vm::run_vm(&exec, &bunits, unit_id, args)?
            }
            ExecTier::TreeWalk => {
                let mut task = Task::new(&exec, 0, traced);
                let frame = task.entry_frame(unit_id, args)?;
                task.run_entry(unit_id, frame)?
            }
        };
        Ok(RunOutcome { result, trace, printed })
    }

    /// Reads a global scalar by diagnostic name (`module::var`,
    /// `module::var%field`, `common block::var`, `unit::savevar`).
    pub fn global_scalar(&self, name: &str) -> Option<Val> {
        let id = self.prog.global_id(name)?;
        let decl = &self.prog.globals[id];
        if decl.rank != 0 {
            return None;
        }
        let bits = self.globals.cells[id].load_bits(0);
        Some(match decl.ty {
            ScalarTy::I => Val::I(bits as i64),
            ScalarTy::F => Val::F(f64::from_bits(bits)),
            ScalarTy::B => Val::B(bits != 0),
        })
    }

    /// Writes a global scalar.
    pub fn set_global_scalar(&self, name: &str, v: Val) -> bool {
        let Some(id) = self.prog.global_id(name) else { return false };
        let decl = &self.prog.globals[id];
        if decl.rank != 0 {
            return false;
        }
        let bits = match decl.ty {
            ScalarTy::I => v.as_i() as u64,
            ScalarTy::F => v.as_f().to_bits(),
            ScalarTy::B => u64::from(v.as_b()),
        };
        self.globals.cells[id].store_bits(0, bits);
        true
    }

    /// Array handle of a global (thread 0 instance for per-thread cells).
    pub fn global_array(&self, name: &str) -> Option<Arc<ArrayObj>> {
        let id = self.prog.global_id(name)?;
        self.globals.cells[id].array_handle(0)
    }

    /// Lists global diagnostic names (tooling).
    pub fn global_names(&self) -> Vec<String> {
        self.prog.globals.iter().map(|g| g.name.clone()).collect()
    }
}

fn build_globals(prog: &RProgram) -> Globals {
    let cells = prog
        .globals
        .iter()
        .map(|decl| {
            if decl.rank == 0 && !decl.allocatable && decl.dims.is_empty() {
                let cell = if decl.per_thread {
                    GlobalCell::new_per_thread_scalar()
                } else {
                    GlobalCell::new_scalar()
                };
                if let Some(bits) = decl.init_bits {
                    match &cell {
                        GlobalCell::Scalar(c) => {
                            c.store(bits, std::sync::atomic::Ordering::Relaxed)
                        }
                        GlobalCell::PerThreadScalar(v) => {
                            for c in v.iter() {
                                c.store(bits, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                        _ => {}
                    }
                }
                cell
            } else if decl.per_thread {
                let cell = GlobalCell::new_per_thread_array();
                if !decl.allocatable && !decl.dims.is_empty() {
                    for t in 0..crate::storage::MAX_THREADS {
                        cell.set_array(t, Some(Arc::new(ArrayObj::new(decl.ty, decl.dims.clone()))));
                    }
                }
                cell
            } else {
                let cell = GlobalCell::new_array();
                if !decl.allocatable && !decl.dims.is_empty() {
                    cell.set_array(0, Some(Arc::new(ArrayObj::new(decl.ty, decl.dims.clone()))));
                }
                cell
            }
        })
        .collect();
    Globals { cells }
}
