//! The parsed (name-based) AST. Resolution to slot-based form happens in
//! [`crate::sema`].

use crate::error::Span;

/// Scalar types the engine evaluates. `Real` and `Real8` both evaluate in
//  f64; the distinction is kept for declarations and byte accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeSpec {
    Integer,
    Real,
    Real8,
    Logical,
    Character,
    Derived(String),
}

/// One dimension declarator: `lo:hi`, `n` (meaning `1:n`), or `:`
/// (deferred — allocatable).
#[derive(Debug, Clone, PartialEq)]
pub struct DimDecl {
    pub lo: Option<Expr>,
    pub hi: Option<Expr>,
    pub deferred: bool,
}

/// Attributes on a declaration line.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Attrs {
    pub dims: Option<Vec<DimDecl>>,
    pub allocatable: bool,
    pub save: bool,
    pub parameter: bool,
}

/// One declared entity: `name(dims) = init`.
#[derive(Debug, Clone, PartialEq)]
pub struct Entity {
    pub name: String,
    pub dims: Option<Vec<DimDecl>>,
    pub init: Option<Expr>,
    /// Per-element initializers for a whole array (fixed-form `DATA`).
    /// Length always equals the element count; unspecified elements are
    /// filled with a zero literal by the front end.
    pub init_list: Option<Vec<Expr>>,
}

/// A declaration line.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    pub spec: TypeSpec,
    pub attrs: Attrs,
    pub entities: Vec<Entity>,
    pub span: Span,
}

/// A derived-TYPE definition.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDef {
    pub name: String,
    pub fields: Vec<Decl>,
    pub span: Span,
}

/// One `part` of a designator path: `name` or `name(subscripts)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Part {
    pub name: String,
    pub subs: Vec<Expr>,
}

/// A designator: `a`, `a(i,j)`, `fi%vd(i)`, `atoms(i)%x`.
#[derive(Debug, Clone, PartialEq)]
pub struct Desig {
    pub parts: Vec<Part>,
    pub span: Span,
}

impl Desig {
    /// The base variable name.
    pub fn base(&self) -> &str {
        &self.parts[0].name
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bin {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Expressions. `Name(Desig)` covers variable reads, array elements,
/// function calls and intrinsic calls — disambiguated during resolution,
/// exactly as a Fortran compiler must.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Int(i64),
    Real(f64),
    Logical(bool),
    Str(String),
    Name(Desig),
    Bin(Bin, Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
    Not(Box<Expr>),
}

/// Reduction operators accepted in `REDUCTION(op: list)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedOp {
    Add,
    Mul,
    Max,
    Min,
}

/// Schedule kinds accepted in `SCHEDULE(kind[, chunk])`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    Static,
    Dynamic,
    Guided,
}

/// Clauses of `!$OMP PARALLEL DO`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OmpDo {
    pub private: Vec<String>,
    pub firstprivate: Vec<String>,
    pub reductions: Vec<(RedOp, Vec<String>)>,
    pub collapse: usize,
    pub num_threads: Option<Expr>,
    /// `SCHEDULE(kind[, chunk])`; `None` means the clause was absent
    /// (runtime default: static block partitioning).
    pub schedule: Option<(SchedKind, Option<usize>)>,
}

/// Statements. (The `Do` variant is bigger than the rest; this is a
/// parse-time structure that is immediately lowered, so clarity beats
/// boxing.)
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum Stmt {
    Assign { target: Desig, value: Expr, atomic: bool, span: Span },
    If { arms: Vec<(Expr, Vec<Stmt>)>, else_body: Vec<Stmt>, span: Span },
    Do {
        var: String,
        start: Expr,
        end: Expr,
        step: Option<Expr>,
        body: Vec<Stmt>,
        omp: Option<OmpDo>,
        span: Span,
    },
    DoWhile { cond: Expr, body: Vec<Stmt>, span: Span },
    Call { name: String, args: Vec<Expr>, span: Span },
    Allocate { items: Vec<(Desig, Vec<DimDecl>)>, span: Span },
    Deallocate { names: Vec<Desig>, span: Span },
    Critical { name: Option<String>, body: Vec<Stmt>, span: Span },
    Return(Span),
    Exit(Span),
    Cycle(Span),
    Continue(Span),
    Stop { message: Option<String>, span: Span },
    Print { args: Vec<Expr>, span: Span },
}

impl Stmt {
    /// The source position of the statement keyword line.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Do { span, .. }
            | Stmt::DoWhile { span, .. }
            | Stmt::Call { span, .. }
            | Stmt::Allocate { span, .. }
            | Stmt::Deallocate { span, .. }
            | Stmt::Critical { span, .. }
            | Stmt::Stop { span, .. }
            | Stmt::Print { span, .. } => *span,
            Stmt::Return(span) | Stmt::Exit(span) | Stmt::Cycle(span) | Stmt::Continue(span) => {
                *span
            }
        }
    }
}

/// Subprogram kind.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitKind {
    Subroutine,
    Function(TypeSpec),
}

/// A SUBROUTINE or FUNCTION.
#[derive(Debug, Clone, PartialEq)]
pub struct Unit {
    pub kind: UnitKind,
    pub name: String,
    pub params: Vec<String>,
    pub uses: Vec<String>,
    pub decls: Vec<Decl>,
    /// `COMMON /block/ v1, v2` lines.
    pub commons: Vec<(String, Vec<String>)>,
    pub body: Vec<Stmt>,
    pub span: Span,
}

/// A MODULE.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    pub name: String,
    pub uses: Vec<String>,
    pub typedefs: Vec<TypeDef>,
    pub decls: Vec<Decl>,
    pub threadprivate: Vec<String>,
    pub units: Vec<Unit>,
    pub span: Span,
}

/// A parsed compilation: one or more modules.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Ast {
    pub modules: Vec<Module>,
}
