//! Runtime storage: arrays of atomic cells, global cells, frames.
//!
//! Every array element and every shared scalar lives in an `AtomicU64`
//! holding either IEEE-754 bits (reals), two's-complement (integers) or
//! 0/1 (logicals). Relaxed atomic loads/stores cost the same as plain
//! ones on x86 and make the parallel execution mode data-race-free at the
//! language level: a FORTRAN program with genuinely conflicting
//! unsynchronized writes gets *unspecified values* (as real OpenMP would)
//! instead of undefined behaviour.

// Storage is on the user-reachable fault path (allocation sizes come
// from program input): failures must surface as `RunError`, not panics.
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::RunError;
use crate::rir::ScalarTy;

/// `(lo:hi,lo:hi,...)` shape description for diagnostics.
fn dims_desc(dims: &[(i64, i64)]) -> String {
    let parts: Vec<String> = dims.iter().map(|(lo, hi)| format!("{lo}:{hi}")).collect();
    format!("({})", parts.join(","))
}

/// Maximum logical threads the engine supports (sizing for per-thread
/// storage — SAVE/THREADPRIVATE cells).
pub const MAX_THREADS: usize = 64;

/// Allocation safety valve: the largest element count a single runtime
/// array may hold (2^32 elements = 32 GiB of cells). Corrupt or hostile
/// ALLOCATE bounds surface as [`RunError::Limit`] instead of aborting
/// the process inside the allocator.
pub const MAX_ARRAY_ELEMS: usize = 1 << 32;

/// A runtime array: dims + typed atomic cells, column-major.
#[derive(Debug)]
pub struct ArrayObj {
    pub ty: ScalarTy,
    /// `(lo, hi)` inclusive per dimension.
    pub dims: Vec<(i64, i64)>,
    pub cells: Box<[AtomicU64]>,
}

impl ArrayObj {
    /// Creates a zero-initialized array (FORTRAN setups in the workloads
    /// initialize explicitly; zero matches `-finit-local-zero`-style
    /// deterministic behaviour).
    pub fn new(ty: ScalarTy, dims: Vec<(i64, i64)>) -> Self {
        let n: usize = dims
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1).max(0) as usize)
            .product();
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(0));
        ArrayObj { ty, dims, cells: v.into_boxed_slice() }
    }

    /// Checked variant of [`ArrayObj::new`]: rejects element counts that
    /// overflow or exceed [`MAX_ARRAY_ELEMS`] instead of aborting inside
    /// the allocator. Runtime ALLOCATE goes through here.
    pub fn try_new(ty: ScalarTy, dims: Vec<(i64, i64)>) -> Result<Self, RunError> {
        let mut n: usize = 1;
        for &(lo, hi) in &dims {
            let extent = if hi >= lo {
                usize::try_from(hi - lo).ok().and_then(|e| e.checked_add(1))
            } else {
                Some(0)
            };
            n = extent.and_then(|e| n.checked_mul(e)).ok_or(()).and_then(|n| {
                if n > MAX_ARRAY_ELEMS { Err(()) } else { Ok(n) }
            }).map_err(|()| RunError::Limit {
                msg: format!("array allocation of {} exceeds the element cap", dims_desc(&dims)),
            })?;
        }
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(0));
        Ok(ArrayObj { ty, dims, cells: v.into_boxed_slice() })
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether static dims fit the allocation cap (compile-time check).
    pub fn dims_fit(dims: &[(i64, i64)]) -> bool {
        let mut n: usize = 1;
        for &(lo, hi) in dims {
            let extent = if hi >= lo {
                usize::try_from(hi - lo).ok().and_then(|e| e.checked_add(1))
            } else {
                Some(0)
            };
            match extent.and_then(|e| n.checked_mul(e)) {
                Some(m) if m <= MAX_ARRAY_ELEMS => n = m,
                _ => return false,
            }
        }
        true
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Linear, bounds-checked offset of `subs` (column-major).
    pub fn offset(&self, name: &str, subs: &[i64]) -> Result<usize, RunError> {
        if subs.len() != self.dims.len() {
            return Err(RunError::Type {
                msg: format!(
                    "`{name}`: rank {} referenced with {} subscripts",
                    self.dims.len(),
                    subs.len()
                ),
            });
        }
        let mut off = 0usize;
        let mut stride = 1usize;
        for (d, (&ix, &(lo, hi))) in subs.iter().zip(self.dims.iter()).enumerate() {
            if ix < lo || ix > hi {
                return Err(RunError::OutOfBounds { var: name.to_string(), dim: d, index: ix, lo, hi });
            }
            off += (ix - lo) as usize * stride;
            stride *= (hi - lo + 1) as usize;
        }
        Ok(off)
    }

    #[inline]
    pub fn get_f(&self, off: usize) -> f64 {
        f64::from_bits(self.cells[off].load(Ordering::Relaxed))
    }

    #[inline]
    pub fn set_f(&self, off: usize, v: f64) {
        self.cells[off].store(v.to_bits(), Ordering::Relaxed)
    }

    #[inline]
    pub fn get_i(&self, off: usize) -> i64 {
        self.cells[off].load(Ordering::Relaxed) as i64
    }

    #[inline]
    pub fn set_i(&self, off: usize, v: i64) {
        self.cells[off].store(v as u64, Ordering::Relaxed)
    }

    #[inline]
    pub fn get_b(&self, off: usize) -> bool {
        self.cells[off].load(Ordering::Relaxed) != 0
    }

    #[inline]
    pub fn set_b(&self, off: usize, v: bool) {
        self.cells[off].store(u64::from(v), Ordering::Relaxed)
    }

    /// Raw bits accessors for generic copies.
    #[inline]
    pub fn get_bits(&self, off: usize) -> u64 {
        self.cells[off].load(Ordering::Relaxed)
    }

    #[inline]
    pub fn set_bits(&self, off: usize, v: u64) {
        self.cells[off].store(v, Ordering::Relaxed)
    }

    /// CAS update for `!$OMP ATOMIC` on a float cell.
    pub fn atomic_update_f(&self, off: usize, f: impl Fn(f64) -> f64) {
        let cell = &self.cells[off];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = f(f64::from_bits(cur)).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// CAS update for `!$OMP ATOMIC` on an integer cell.
    pub fn atomic_update_i(&self, off: usize, f: impl Fn(i64) -> i64) {
        let cell = &self.cells[off];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = f(cur as i64) as u64;
            match cell.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Deep copy (used for PRIVATE arrays in parallel regions).
    pub fn deep_clone(&self) -> ArrayObj {
        let mut v = Vec::with_capacity(self.cells.len());
        for c in self.cells.iter() {
            v.push(AtomicU64::new(c.load(Ordering::Relaxed)));
        }
        ArrayObj { ty: self.ty, dims: self.dims.clone(), cells: v.into_boxed_slice() }
    }

    /// Snapshot as f64s (test/bench convenience; integers are converted).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        (0..self.len())
            .map(|i| match self.ty {
                ScalarTy::F => self.get_f(i),
                ScalarTy::I => self.get_i(i) as f64,
                ScalarTy::B => f64::from(u8::from(self.get_b(i))),
            })
            .collect()
    }
}

/// One global storage cell.
#[derive(Debug)]
pub enum GlobalCell {
    Scalar(AtomicU64),
    Array(RwLock<Option<Arc<ArrayObj>>>),
    /// SAVE / THREADPRIVATE array: one instance per logical thread.
    PerThreadArray(Box<[RwLock<Option<Arc<ArrayObj>>>]>),
    /// THREADPRIVATE scalar.
    PerThreadScalar(Box<[AtomicU64]>),
}

impl GlobalCell {
    pub fn new_scalar() -> Self {
        GlobalCell::Scalar(AtomicU64::new(0))
    }

    pub fn new_array() -> Self {
        GlobalCell::Array(RwLock::new(None))
    }

    pub fn new_per_thread_array() -> Self {
        let mut v = Vec::with_capacity(MAX_THREADS);
        v.resize_with(MAX_THREADS, || RwLock::new(None));
        GlobalCell::PerThreadArray(v.into_boxed_slice())
    }

    pub fn new_per_thread_scalar() -> Self {
        let mut v = Vec::with_capacity(MAX_THREADS);
        v.resize_with(MAX_THREADS, || AtomicU64::new(0));
        GlobalCell::PerThreadScalar(v.into_boxed_slice())
    }

    /// Scalar bits access (thread-aware).
    pub fn load_bits(&self, tid: usize) -> u64 {
        match self {
            GlobalCell::Scalar(c) => c.load(Ordering::Relaxed),
            GlobalCell::PerThreadScalar(v) => v[tid].load(Ordering::Relaxed),
            _ => panic!("scalar access to array cell"),
        }
    }

    pub fn store_bits(&self, tid: usize, bits: u64) {
        match self {
            GlobalCell::Scalar(c) => c.store(bits, Ordering::Relaxed),
            GlobalCell::PerThreadScalar(v) => v[tid].store(bits, Ordering::Relaxed),
            _ => panic!("scalar access to array cell"),
        }
    }

    /// The scalar atomic itself (for ATOMIC updates).
    pub fn scalar_atomic(&self, tid: usize) -> &AtomicU64 {
        match self {
            GlobalCell::Scalar(c) => c,
            GlobalCell::PerThreadScalar(v) => &v[tid],
            _ => panic!("scalar access to array cell"),
        }
    }

    /// Current array handle (thread-aware).
    pub fn array_handle(&self, tid: usize) -> Option<Arc<ArrayObj>> {
        match self {
            GlobalCell::Array(l) => l.read().clone(),
            GlobalCell::PerThreadArray(v) => v[tid].read().clone(),
            _ => panic!("array access to scalar cell"),
        }
    }

    /// Replaces the array handle; returns the previous one.
    pub fn set_array(&self, tid: usize, a: Option<Arc<ArrayObj>>) -> Option<Arc<ArrayObj>> {
        match self {
            GlobalCell::Array(l) => std::mem::replace(&mut *l.write(), a),
            GlobalCell::PerThreadArray(v) => std::mem::replace(&mut *v[tid].write(), a),
            _ => panic!("array access to scalar cell"),
        }
    }

    /// True for SAVE/THREADPRIVATE per-thread cells.
    pub fn is_per_thread(&self) -> bool {
        matches!(self, GlobalCell::PerThreadArray(_) | GlobalCell::PerThreadScalar(_))
    }

    /// ALLOCATE semantics for per-thread arrays: provision *every*
    /// thread's instance (each a fresh zeroed array), so inner parallel
    /// regions forked by any thread find their instance allocated —
    /// FORTRAN SAVE-allocate-once semantics lifted to the per-thread
    /// model. Returns the previous handle of `tid` (for the
    /// already-allocated check).
    pub fn set_array_all_threads(
        &self,
        tid: usize,
        mk: impl Fn() -> Arc<ArrayObj>,
    ) -> Option<Arc<ArrayObj>> {
        match self {
            GlobalCell::PerThreadArray(v) => {
                let prev = v[tid].read().clone();
                for slot in v.iter() {
                    let mut w = slot.write();
                    if w.is_none() {
                        *w = Some(mk());
                    }
                }
                prev
            }
            _ => self.set_array(tid, Some(mk())),
        }
    }

    /// DEALLOCATE counterpart: clears every thread's instance.
    pub fn clear_array_all_threads(&self, tid: usize) -> Option<Arc<ArrayObj>> {
        match self {
            GlobalCell::PerThreadArray(v) => {
                let prev = v[tid].read().clone();
                for slot in v.iter() {
                    *slot.write() = None;
                }
                prev
            }
            _ => self.set_array(tid, None),
        }
    }
}

/// All global storage of a compiled program (module variables, COMMON
/// members, SAVE/THREADPRIVATE cells).
#[derive(Debug)]
pub struct Globals {
    pub cells: Vec<GlobalCell>,
}

/// A frame slot value.
#[derive(Debug, Clone)]
pub enum FrameVal {
    I(i64),
    F(f64),
    B(bool),
    Arr(Option<Arc<ArrayObj>>),
    Uninit,
}

/// A call frame.
#[derive(Debug, Clone)]
pub struct Frame {
    pub slots: Vec<FrameVal>,
}

impl Frame {
    pub fn new(size: usize) -> Self {
        Frame { slots: vec![FrameVal::Uninit; size] }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn column_major_offsets() {
        let a = ArrayObj::new(ScalarTy::F, vec![(1, 4), (1, 3)]);
        assert_eq!(a.len(), 12);
        assert_eq!(a.offset("a", &[1, 1]).unwrap(), 0);
        assert_eq!(a.offset("a", &[2, 1]).unwrap(), 1);
        assert_eq!(a.offset("a", &[1, 2]).unwrap(), 4);
        assert_eq!(a.offset("a", &[4, 3]).unwrap(), 11);
    }

    #[test]
    fn custom_lower_bounds() {
        let a = ArrayObj::new(ScalarTy::I, vec![(0, 3)]);
        assert_eq!(a.offset("a", &[0]).unwrap(), 0);
        assert!(matches!(
            a.offset("a", &[4]),
            Err(RunError::OutOfBounds { index: 4, lo: 0, hi: 3, .. })
        ));
        assert!(a.offset("a", &[-1]).is_err());
    }

    #[test]
    fn rank_mismatch_is_type_error() {
        let a = ArrayObj::new(ScalarTy::F, vec![(1, 4)]);
        assert!(matches!(a.offset("a", &[1, 2]), Err(RunError::Type { .. })));
    }

    #[test]
    fn typed_accessors_roundtrip() {
        let a = ArrayObj::new(ScalarTy::F, vec![(1, 2)]);
        a.set_f(0, -3.25);
        assert_eq!(a.get_f(0), -3.25);
        let b = ArrayObj::new(ScalarTy::I, vec![(1, 2)]);
        b.set_i(1, -77);
        assert_eq!(b.get_i(1), -77);
        let c = ArrayObj::new(ScalarTy::B, vec![(1, 2)]);
        c.set_b(0, true);
        assert!(c.get_b(0));
        assert!(!c.get_b(1));
    }

    #[test]
    fn atomic_updates() {
        let a = ArrayObj::new(ScalarTy::F, vec![(1, 1)]);
        a.set_f(0, 10.0);
        a.atomic_update_f(0, |x| x + 2.5);
        assert_eq!(a.get_f(0), 12.5);
        let b = ArrayObj::new(ScalarTy::I, vec![(1, 1)]);
        b.atomic_update_i(0, |x| x + 7);
        assert_eq!(b.get_i(0), 7);
    }

    #[test]
    fn deep_clone_detaches() {
        let a = ArrayObj::new(ScalarTy::F, vec![(1, 2)]);
        a.set_f(0, 1.0);
        let b = a.deep_clone();
        a.set_f(0, 2.0);
        assert_eq!(b.get_f(0), 1.0);
    }

    #[test]
    fn per_thread_cells_isolated() {
        let c = GlobalCell::new_per_thread_scalar();
        c.store_bits(0, 42);
        c.store_bits(1, 99);
        assert_eq!(c.load_bits(0), 42);
        assert_eq!(c.load_bits(1), 99);

        let arr = GlobalCell::new_per_thread_array();
        arr.set_array(2, Some(Arc::new(ArrayObj::new(ScalarTy::F, vec![(1, 4)]))));
        assert!(arr.array_handle(2).is_some());
        assert!(arr.array_handle(3).is_none());
    }

    #[test]
    fn global_array_replace() {
        let c = GlobalCell::new_array();
        assert!(c.array_handle(0).is_none());
        let prev = c.set_array(0, Some(Arc::new(ArrayObj::new(ScalarTy::F, vec![(1, 2)]))));
        assert!(prev.is_none());
        let prev = c.set_array(0, None);
        assert!(prev.is_some());
    }
}
