//! The service layer: immutable compiled artifacts, per-run sessions,
//! an LRU artifact cache, and batched job execution.
//!
//! The paper's pipeline is one-shot — compile one kernel, run it once.
//! A service compiling and running many kernels for many users
//! concurrently needs a different shape:
//!
//! * [`CompiledProgram`] — everything `compile` produces and nothing a
//!   run mutates: the resolved program, both statically verified
//!   bytecode variants (optimized and traced), and the source-content
//!   hash that keys it. `Arc`-shared across any number of sessions.
//! * [`Session`] — everything a run mutates: global storage, schedule
//!   overrides, [`RunLimits`], the vector-path gate, fallback and
//!   vector-entry counters. Cheap to create; one per tenant/run-stream.
//! * [`ArtifactCache`] — LRU map from source hash to artifact, so
//!   repeated compiles of identical sources return the same `Arc`.
//! * [`JobQueue`] — batches many parameter sets across one shared
//!   [`omprt::PoolSet`] without oversubscription, with per-job limits
//!   and trap isolation.
//!
//! Like `engine.rs` this is user-reachable API surface: internal panics
//! are a bug here (scoped lints below). The one `catch_unwind` is the
//! deliberate trap boundary of the tiered-execution contract.
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use omprt::{CriticalRegistry, PoolSet, ThreadPool};
use parking_lot::Mutex;

use crate::bytecode::{compile_program, BInstr, BUnit, VSlot};
use crate::engine::{ArgVal, ExecTier, RunOutcome, TierFallback, VectorLoopInfo};
use crate::error::{CompileError, RunError};
use crate::interp::{
    CancelToken, EffLimits, Exec, ExecMode, RunLimits, ScheduleOverrides, Task, Val,
};
use crate::parse::parse;
use crate::rir::{RProgram, ScalarTy};
use crate::sema::resolve;
use crate::storage::{ArrayObj, GlobalCell, Globals};

/// FNV-1a over every source with a separator byte between files, so the
/// key is a pure function of source *content*: any byte difference —
/// including whitespace — yields a distinct artifact, and reordering
/// files does too (storage layout follows file order).
pub fn source_hash(sources: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for s in sources {
        for b in s.bytes() {
            eat(b);
        }
        eat(0x1f); // unit separator: "ab"+"c" hashes apart from "a"+"bc"
    }
    h
}

/// The immutable product of compilation, shared by reference across
/// sessions. Nothing in here changes after [`CompiledProgram::compile`]
/// returns: the resolved program (with its pc→line tables and OMP
/// descriptors), both bytecode variants — already statically verified —
/// and the content hash that keys the artifact in an [`ArtifactCache`].
pub struct CompiledProgram {
    prog: Arc<RProgram>,
    /// `[optimized, traced]`: the optimized build (constant folding,
    /// dead-store elimination, fused/vectorized loops) serves
    /// Serial/Parallel; the traced build preserves every cost-bearing
    /// operation for Simulated mode.
    bytecode: [Arc<Vec<BUnit>>; 2],
    source_hash: u64,
    /// Rough retained-size estimate (both bytecode builds + RIR), fixed
    /// at compile time; feeds the cache's optional byte budget.
    est_bytes: usize,
    /// Native-tier promotion cache (hotness counters + compiled
    /// regions), shared by every session over this artifact: a loop
    /// JIT'd once is native for all sessions, like the bytecode itself.
    native_cache: Arc<crate::jit::NativeCache>,
}

impl CompiledProgram {
    /// Parses, resolves, compiles and statically verifies one or more
    /// source files into a shareable artifact. Both bytecode variants
    /// are built eagerly so a compiler bug surfaces here as
    /// [`CompileError::Verify`] instead of undefined VM behavior later.
    pub fn compile(sources: &[&str]) -> Result<Arc<CompiledProgram>, CompileError> {
        let hash = source_hash(sources);
        // Fixed-form F77 sources (auto-detected per file) route through the
        // legacy ingestion front end; a pure free-form batch keeps the
        // original single-parser path and its error variants.
        let ast = if sources.iter().any(|s| crate::fixedform::is_fixed_form(s)) {
            crate::fixedform::ProgramSet::from_sources(sources)?.ast
        } else {
            let mut ast = crate::ast::Ast::default();
            for s in sources {
                let mut part = parse(s)?;
                ast.modules.append(&mut part.modules);
            }
            ast
        };
        let prog = resolve(&ast)?;
        let optimized = compile_program(&prog, false);
        crate::verify::verify_program(&prog, &optimized)?;
        let traced = compile_program(&prog, true);
        crate::verify::verify_program(&prog, &traced)?;
        let est_bytes = estimate_bytes(&prog, &[&optimized, &traced]);
        Ok(Arc::new(CompiledProgram {
            prog: Arc::new(prog),
            bytecode: [Arc::new(optimized), Arc::new(traced)],
            source_hash: hash,
            est_bytes,
            native_cache: Arc::new(crate::jit::NativeCache::new()),
        }))
    }

    /// Estimated retained size in bytes (bytecode builds + resolved
    /// program). An estimate — container headers and small side tables
    /// are priced with flat constants — but monotone in program size,
    /// which is all the cache's byte budget needs.
    pub fn estimated_bytes(&self) -> usize {
        self.est_bytes
    }

    /// The resolved program (introspection for tests and tooling).
    pub fn program(&self) -> &RProgram {
        &self.prog
    }

    /// Content hash of the sources this artifact was compiled from.
    pub fn source_hash(&self) -> u64 {
        self.source_hash
    }

    /// Bytecode for the whole program; `traced` selects the Simulated
    /// build.
    pub fn bytecode(&self, traced: bool) -> Arc<Vec<BUnit>> {
        Arc::clone(&self.bytecode[usize::from(traced)])
    }

    /// The shared native-tier promotion cache (hotness + compiled
    /// regions) for this artifact. Number of compiled regions is
    /// visible via [`crate::jit::NativeCache::compiled_count`].
    pub fn native_cache(&self) -> &Arc<crate::jit::NativeCache> {
        &self.native_cache
    }

    /// Static vectorization report: one line per loop the bytecode
    /// compiler proved legal to vectorize, with unit name, source line,
    /// statement count and reduction flag. Reflects the optimized
    /// (Serial/Parallel) build; the traced build never vectorizes.
    pub fn vector_report(&self) -> Vec<VectorLoopInfo> {
        let mut out = Vec::new();
        for bu in self.bytecode[0].iter() {
            for d in &bu.vecs {
                out.push(VectorLoopInfo {
                    unit: self.prog.units[bu.unit as usize].name.clone(),
                    line: d.line,
                    stmts: d.stmts.len(),
                    reduction: d.red.is_some(),
                });
            }
        }
        out
    }
}

/// Rough retained-size model for one artifact: exact element sizes for
/// the big flat vectors (instruction streams, slot tables, debug
/// tables), flat constants for the small heterogeneous side tables
/// (OMP/call/vec descriptors own nested vectors we don't walk).
fn estimate_bytes(prog: &RProgram, builds: &[&Vec<BUnit>]) -> usize {
    let mut total = 0usize;
    for build in builds {
        for bu in build.iter() {
            total += bu.code.len() * std::mem::size_of::<BInstr>();
            total += bu.vslots.len() * std::mem::size_of::<VSlot>();
            total += bu.lines.len() * std::mem::size_of::<(u32, u32)>();
            total += bu.msgs.iter().map(String::len).sum::<usize>();
            total += (bu.fixed_arrays.len()
                + bu.calls.len()
                + bu.prints.len()
                + bu.sdims.len()
                + bu.loops.len())
                * 64;
            total += (bu.omps.len() + bu.vecs.len()) * 256;
        }
    }
    for unit in &prog.units {
        total += unit.name.len() + unit.vars.len() * 96 + unit.body.len() * 96 + 128;
    }
    total += prog.globals.len() * 96;
    total
}

/// Per-run mutable state over a shared [`CompiledProgram`]: live global
/// storage (module variables, COMMON blocks, SAVE arrays — persisting
/// across `run` calls exactly like a linked FORTRAN process image),
/// schedule overrides, [`RunLimits`], the vector-path gate, and the
/// fallback/vector counters. Every mutation stays inside the session:
/// two sessions over the same artifact cannot observe each other.
pub struct Session {
    artifact: Arc<CompiledProgram>,
    globals: Arc<Globals>,
    pools: Arc<PoolSet>,
    critical: Arc<CriticalRegistry>,
    /// Execution limits applied to every run (both tiers).
    limits: RunLimits,
    /// Number of VM traps that fell back to the oracle tier.
    fallback_count: AtomicU64,
    /// Test hook: force the next VM-tier run to trap.
    force_vm_trap: AtomicBool,
    /// Loop-schedule overrides snapshotted into every run's `Exec`.
    sched_overrides: Mutex<Arc<ScheduleOverrides>>,
    /// Gate for the VM's vector superinstruction path; on by default.
    vector_enabled: AtomicBool,
    /// Loop entries that actually ran vectorized, across all runs.
    vector_entries: Arc<AtomicU64>,
    /// Session-local bytecode replacement (`[optimized, traced]`),
    /// normally empty. `debug_inject_bytecode` writes here so the
    /// fault-injection harness corrupts *this session's* view only —
    /// the shared artifact stays pristine for every other session.
    bytecode_override: Mutex<[Option<Arc<Vec<BUnit>>>; 2]>,
    /// Cooperative cancellation token snapshotted into every run's
    /// safepoint checks; a watchdog (or any holder of the `Arc`) firing
    /// it makes in-flight and future runs return [`RunError::Cancelled`].
    cancel: Mutex<Option<Arc<CancelToken>>>,
    /// Chaos hook: the next N oracle-tier runs panic inside the trap
    /// boundary (so retry policies see a fully failed attempt).
    force_oracle_traps: AtomicU32,
    /// Chaos hook: logical worker tid to panic on the next run's OMP
    /// region entry; -1 = off. One-shot.
    panic_worker: AtomicI64,
    /// Native-tier (tier 3) state: enable/eager/threshold toggles, the
    /// entry/deopt counters, and the promotion cache (the artifact's
    /// shared one, unless bytecode injection swapped in a private one).
    native: crate::jit::NativeState,
}

impl Session {
    /// Opens a session over `artifact`, forking parallel regions on the
    /// shared `pools` (sessions handed the same [`PoolSet`] share OS
    /// threads instead of oversubscribing the host).
    pub fn new(artifact: Arc<CompiledProgram>, pools: Arc<PoolSet>) -> Session {
        let globals = Arc::new(build_globals(&artifact.prog));
        let native = crate::jit::NativeState::new(Arc::clone(&artifact.native_cache));
        Session {
            artifact,
            globals,
            pools,
            critical: Arc::new(CriticalRegistry::new()),
            limits: RunLimits::default(),
            fallback_count: AtomicU64::new(0),
            force_vm_trap: AtomicBool::new(false),
            sched_overrides: Mutex::new(Arc::new(ScheduleOverrides::default())),
            vector_enabled: AtomicBool::new(true),
            vector_entries: Arc::new(AtomicU64::new(0)),
            bytecode_override: Mutex::new([None, None]),
            cancel: Mutex::new(None),
            force_oracle_traps: AtomicU32::new(0),
            panic_worker: AtomicI64::new(-1),
            native,
        }
    }

    /// Opens a session with a private pool set — the one-shot shape the
    /// standalone [`crate::Engine`] presents.
    pub fn solo(artifact: Arc<CompiledProgram>) -> Session {
        Session::new(artifact, Arc::new(PoolSet::new()))
    }

    /// The shared artifact this session executes.
    pub fn artifact(&self) -> &Arc<CompiledProgram> {
        &self.artifact
    }

    /// Sets execution limits applied to every subsequent run.
    pub fn set_limits(&mut self, limits: RunLimits) {
        self.limits = limits;
    }

    /// The currently configured execution limits.
    pub fn limits(&self) -> RunLimits {
        self.limits
    }

    /// How many VM traps have fallen back to the oracle tier so far
    /// (this session only).
    pub fn fallback_count(&self) -> u64 {
        self.fallback_count.load(Ordering::Relaxed)
    }

    /// Installs (or with `None` clears) the cancellation token polled by
    /// every subsequent run at its safepoints. Fire the token from any
    /// thread via [`CancelToken::cancel`]; affected runs return
    /// [`RunError::Cancelled`]. [`JobQueue`] installs one per job so its
    /// deadline watchdog can stop exactly that job.
    pub fn set_cancel_token(&self, token: Option<Arc<CancelToken>>) {
        *self.cancel.lock() = token;
    }

    /// The currently installed cancellation token.
    pub fn cancel_token(&self) -> Option<Arc<CancelToken>> {
        self.cancel.lock().clone()
    }

    /// Test hook: forces the next VM-tier run to trap, exercising the
    /// trap-and-fallback path deterministically.
    #[doc(hidden)]
    pub fn debug_force_vm_trap(&self) {
        self.force_vm_trap.store(true, Ordering::Relaxed);
    }

    /// Test hook: the next `n` oracle-tier runs panic inside the trap
    /// boundary, surfacing as [`RunError::Trap`]. Combined with
    /// [`Session::debug_force_vm_trap`] this makes a *whole attempt*
    /// (VM + fallback) fail, deterministically exercising retry
    /// policies. Decrements per oracle run; clears itself at zero.
    #[doc(hidden)]
    pub fn debug_force_oracle_traps(&self, n: u32) {
        self.force_oracle_traps.store(n, Ordering::Relaxed);
    }

    /// Test hook: worker `tid` panics on the next run's OMP region
    /// entry (one-shot), exercising `RegionPanic` containment and the
    /// pool's self-healing under batch traffic.
    #[doc(hidden)]
    pub fn debug_force_worker_panic(&self, tid: usize) {
        self.panic_worker.store(tid as i64, Ordering::Relaxed);
    }

    /// Test hook: replaces this session's view of one bytecode variant
    /// (`traced` selects the Simulated build). Used by the
    /// fault-injection harness to execute corrupted streams; the shared
    /// [`CompiledProgram`] is not touched.
    #[doc(hidden)]
    pub fn debug_inject_bytecode(&self, traced: bool, bunits: Vec<BUnit>) {
        self.bytecode_override.lock()[usize::from(traced)] = Some(Arc::new(bunits));
        // Detach from the artifact's shared promotion cache: its
        // compiled regions were emitted from the *pristine* bytecode,
        // whose descriptor indices no longer describe this session's
        // view. A fresh private cache re-verifies (and usually refuses)
        // the injected descriptors at promotion time.
        *self.native.cache.lock() = Arc::new(crate::jit::NativeCache::new());
    }

    /// The resolved program (introspection for tests and tooling).
    pub fn program(&self) -> &RProgram {
        &self.artifact.prog
    }

    /// Installs per-line loop-schedule overrides, replacing any previous
    /// per-line set. Each `(line, schedule)` pair reschedules the
    /// parallel DO at that source line on every subsequent run, in both
    /// execution tiers — this is the apply side of the feedback loop: a
    /// measured [`crate::trace::Profile`]'s per-region imbalance (keyed
    /// by `omp@line`) decides the overrides for the next run.
    pub fn set_schedule_overrides<I>(&self, overrides: I)
    where
        I: IntoIterator<Item = (u32, omprt::Schedule)>,
    {
        let mut cur = (**self.sched_overrides.lock()).clone();
        cur.by_line = overrides.into_iter().collect();
        *self.sched_overrides.lock() = Arc::new(cur);
    }

    /// Installs (or with `None` clears) a blanket schedule override
    /// applied to every parallel DO without a per-line override. Used by
    /// the schedule-matrix benchmarks and the differential suite to run
    /// one program under each schedule kind.
    pub fn set_schedule_override_all(&self, sched: Option<omprt::Schedule>) {
        let mut cur = (**self.sched_overrides.lock()).clone();
        cur.all = sched;
        *self.sched_overrides.lock() = Arc::new(cur);
    }

    /// The currently installed schedule overrides.
    pub fn schedule_overrides(&self) -> ScheduleOverrides {
        (**self.sched_overrides.lock()).clone()
    }

    /// Enables or disables the VM's vector superinstruction path (on by
    /// default). Disabling forces every vectorized loop back to its
    /// scalar head — used for A/B benchmarking and differential tests;
    /// results are bit-identical either way.
    pub fn set_vector_enabled(&self, on: bool) {
        self.vector_enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the vector superinstruction path is enabled.
    pub fn vector_enabled(&self) -> bool {
        self.vector_enabled.load(Ordering::Relaxed)
    }

    /// How many loop entries actually executed on the vector path so
    /// far (this session's runs, all threads). Zero after runs with the
    /// path enabled means every candidate fell back at a runtime guard.
    pub fn vector_entry_count(&self) -> u64 {
        self.vector_entries.load(Ordering::Relaxed)
    }

    /// Enables or disables the native (tier 3) execution path — hot
    /// `VecLoop` regions promoted to in-process machine code (on by
    /// default where the target supports it; a no-op elsewhere).
    /// Disabling forces every loop back to the vector/scalar tiers;
    /// results are bit-identical either way.
    pub fn set_native_enabled(&self, on: bool) {
        self.native.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the native tier is enabled *and* available on this
    /// target (`false` on non-x86-64 builds regardless of the toggle).
    pub fn native_enabled(&self) -> bool {
        crate::jit::available() && self.native.enabled.load(Ordering::Relaxed)
    }

    /// Compile loop regions to native code on first entry instead of
    /// waiting for the hotness threshold. Benchmarks and differential
    /// sweeps use this to guarantee the native path is exercised.
    pub fn set_native_eager(&self, eager: bool) {
        self.native.eager.store(eager, Ordering::Relaxed);
    }

    /// Sets how many entries a loop region needs before it is promoted
    /// to native code (default [`crate::jit::DEFAULT_HOT_THRESHOLD`]);
    /// clamped to at least 1.
    pub fn set_native_hot_threshold(&self, entries: u32) {
        self.native.threshold.store(entries.max(1), Ordering::Relaxed);
    }

    /// Loop entries that executed natively so far (this session's runs,
    /// all threads).
    pub fn native_entry_count(&self) -> u64 {
        self.native.entries.load(Ordering::Relaxed)
    }

    /// Entry-guard failures on promoted regions that deopted back to
    /// the vector/scalar tiers (this session's runs, all threads).
    pub fn native_deopt_count(&self) -> u64 {
        self.native.deopts.load(Ordering::Relaxed)
    }

    /// Static vectorization report for this session's optimized
    /// bytecode (the artifact's, unless a test injected a replacement).
    pub fn vector_report(&self) -> Vec<VectorLoopInfo> {
        let bunits = self.bytecode_for(false);
        let mut out = Vec::new();
        for bu in bunits.iter() {
            for d in &bu.vecs {
                out.push(VectorLoopInfo {
                    unit: self.artifact.prog.units[bu.unit as usize].name.clone(),
                    line: d.line,
                    stmts: d.stmts.len(),
                    reduction: d.red.is_some(),
                });
            }
        }
        out
    }

    /// Reinitializes all global storage.
    pub fn reset_globals(&mut self) {
        self.globals = Arc::new(build_globals(&self.artifact.prog));
    }

    fn pool_for(&self, threads: usize) -> Arc<ThreadPool> {
        self.pools.pool_for(threads)
    }

    /// Bytecode for the whole program; `traced` selects the Simulated
    /// build. The session-local injection slot wins over the artifact.
    fn bytecode_for(&self, traced: bool) -> Arc<Vec<BUnit>> {
        if let Some(b) = &self.bytecode_override.lock()[usize::from(traced)] {
            return Arc::clone(b);
        }
        self.artifact.bytecode(traced)
    }

    /// Runs subprogram `name` with `args` under `mode` on the default
    /// tier (the bytecode VM).
    pub fn run(&self, name: &str, args: &[ArgVal], mode: ExecMode) -> Result<RunOutcome, RunError> {
        self.run_tiered(name, args, mode, ExecTier::Vm)
    }

    /// Runs subprogram `name` on an explicit execution tier.
    ///
    /// Internal panics never cross this boundary. A panic in the VM tier
    /// (an engine bug, not a program-level [`RunError`]) is trapped, a
    /// [`TierFallback`] diagnostic is recorded, and the call is
    /// transparently re-executed on the tree-walk oracle so the caller
    /// still gets an answer. A panic in the oracle itself surfaces as
    /// [`RunError::Trap`].
    pub fn run_tiered(
        &self,
        name: &str,
        args: &[ArgVal],
        mode: ExecMode,
        tier: ExecTier,
    ) -> Result<RunOutcome, RunError> {
        let unit_id = self
            .artifact
            .prog
            .unit_id(name)
            .ok_or_else(|| RunError::BadCall { name: name.into(), msg: "unknown unit".into() })?;
        match tier {
            ExecTier::Vm | ExecTier::Native => {
                let force_native = matches!(tier, ExecTier::Native);
                let forced = self.force_vm_trap.swap(false, Ordering::Relaxed);
                let vm_run = catch_unwind(AssertUnwindSafe(|| {
                    if forced {
                        panic!("forced VM trap (test hook)");
                    }
                    self.run_on_vm_native(unit_id, args, mode, None, force_native)
                }));
                let trap = match vm_run {
                    Err(payload) => payload_str(&*payload),
                    // A contained worker panic surfaces as `Trap`: an
                    // internal fault, so it also falls back.
                    Ok(Err(ref e)) if matches!(e.root(), RunError::Trap { .. }) => e.to_string(),
                    Ok(run) => return run,
                };
                // The VM trapped: record the diagnostic and give the
                // caller the oracle's answer instead.
                self.fallback_count.fetch_add(1, Ordering::Relaxed);
                let fb = TierFallback { unit: name.into(), what: trap };
                let mut out = self.run_on_oracle(unit_id, args, mode, None)?;
                out.fallback = Some(fb);
                Ok(out)
            }
            ExecTier::TreeWalk => self.run_on_oracle(unit_id, args, mode, None),
        }
    }

    /// Runs subprogram `name` with a profiling collector attached,
    /// returning the outcome together with the rendered
    /// [`crate::trace::Profile`]: per-unit and per-DO-loop wall time and
    /// entry counts, executed VM instructions (or interpreter steps)
    /// against the configured [`RunLimits`] budget, parallel-region
    /// worker utilization, and any tier-fallback diagnostics.
    ///
    /// Profiling follows the same trap-and-fallback contract as
    /// [`Session::run_tiered`]: if the VM tier traps, a *fresh* collector
    /// is attached to the oracle re-run, so the returned profile always
    /// describes the execution that produced the result. The fallback
    /// diagnostic and the session-lifetime fallback total are surfaced on
    /// the profile itself.
    pub fn run_profiled(
        &self,
        name: &str,
        args: &[ArgVal],
        mode: ExecMode,
        tier: ExecTier,
    ) -> Result<(RunOutcome, crate::trace::Profile), RunError> {
        let unit_id = self
            .artifact
            .prog
            .unit_id(name)
            .ok_or_else(|| RunError::BadCall { name: name.into(), msg: "unknown unit".into() })?;
        let mode_str = match mode {
            ExecMode::Serial => "serial".to_string(),
            ExecMode::Parallel { threads } => format!("parallel({threads})"),
            ExecMode::Simulated { threads } => format!("simulated({threads})"),
        };
        // Worker busy-time accounting is cheap but not free: the pool
        // collects it only while a profiled Parallel run is in flight.
        let pool = match mode {
            ExecMode::Parallel { threads } => Some(self.pool_for(threads)),
            _ => None,
        };
        if let Some(p) = &pool {
            p.set_metrics(true);
            p.take_metrics(); // discard leftovers from earlier runs
        }
        let finish = |prof: crate::trace::Collector, tier_str: &str, wall_ns: u64| {
            let (spans, steps) = prof.finish();
            let regions = pool
                .as_ref()
                .map(|p| {
                    p.take_metrics()
                        .into_iter()
                        .map(|m| crate::trace::RegionReport {
                            threads: m.threads as u64,
                            wall_ns: m.wall_ns,
                            busy_ns: m.busy_ns,
                            line: m.line as u64,
                            sched: m.sched.render(),
                        })
                        .collect()
                })
                .unwrap_or_default();
            crate::trace::Profile {
                entry: name.to_string(),
                tier: tier_str.to_string(),
                mode: mode_str.clone(),
                wall_ns,
                steps,
                max_steps: self.limits.max_steps,
                spans,
                regions,
                fallback: None,
                fallback_count: self.fallback_count(),
                native_entries: self.native_entry_count(),
                native_deopts: self.native_deopt_count(),
            }
        };
        match tier {
            ExecTier::Vm | ExecTier::Native => {
                // Profiled runs want per-iteration loop spans, so the
                // VM takes the scalar path even under `Native` — the
                // profile still surfaces the session-lifetime native
                // entry/deopt counters alongside `fallback_count`.
                let force_native = matches!(tier, ExecTier::Native);
                let forced = self.force_vm_trap.swap(false, Ordering::Relaxed);
                let prof = crate::trace::Collector::new();
                let t0 = std::time::Instant::now();
                let vm_run = catch_unwind(AssertUnwindSafe(|| {
                    if forced {
                        panic!("forced VM trap (test hook)");
                    }
                    self.run_on_vm_native(unit_id, args, mode, Some(&prof), force_native)
                }));
                let trap = match vm_run {
                    Err(payload) => payload_str(&*payload),
                    Ok(Err(ref e)) if matches!(e.root(), RunError::Trap { .. }) => e.to_string(),
                    Ok(run) => {
                        let wall_ns = t0.elapsed().as_nanos() as u64;
                        if let Some(p) = &pool {
                            p.set_metrics(false);
                        }
                        let out = run?;
                        return Ok((out, finish(prof, "vm", wall_ns)));
                    }
                };
                // The VM trapped: re-profile on the oracle with a fresh
                // collector, so the profile matches the answer's tier.
                self.fallback_count.fetch_add(1, Ordering::Relaxed);
                if let Some(p) = &pool {
                    p.take_metrics(); // drop partials from the trapped attempt
                }
                let fb = TierFallback { unit: name.into(), what: trap };
                let prof = crate::trace::Collector::new();
                let t0 = std::time::Instant::now();
                let run = self.run_on_oracle(unit_id, args, mode, Some(&prof));
                let wall_ns = t0.elapsed().as_nanos() as u64;
                if let Some(p) = &pool {
                    p.set_metrics(false);
                }
                let mut out = run?;
                out.fallback = Some(fb.clone());
                let mut profile = finish(prof, "tree-walk", wall_ns);
                profile.fallback =
                    Some(crate::trace::FallbackInfo { unit: fb.unit, what: fb.what });
                Ok((out, profile))
            }
            ExecTier::TreeWalk => {
                let prof = crate::trace::Collector::new();
                let t0 = std::time::Instant::now();
                let run = self.run_on_oracle(unit_id, args, mode, Some(&prof));
                let wall_ns = t0.elapsed().as_nanos() as u64;
                if let Some(p) = &pool {
                    p.set_metrics(false);
                }
                let out = run?;
                Ok((out, finish(prof, "tree-walk", wall_ns)))
            }
        }
    }

    fn make_exec(&self, mode: ExecMode) -> Exec {
        self.make_exec_native(mode, false)
    }

    /// Builds a run's `Exec` snapshot. `force_native` is the
    /// [`ExecTier::Native`] override: native promotion on and eager for
    /// this run regardless of the session toggles (still `None` on
    /// targets without a JIT).
    fn make_exec_native(&self, mode: ExecMode, force_native: bool) -> Exec {
        let pool = match mode {
            ExecMode::Parallel { threads } => Some(self.pool_for(threads)),
            _ => None,
        };
        let panic_worker = self.panic_worker.swap(-1, Ordering::Relaxed);
        Exec {
            prog: Arc::clone(&self.artifact.prog),
            globals: Arc::clone(&self.globals),
            mode,
            pool,
            critical: Arc::clone(&self.critical),
            printed: Mutex::new(String::new()),
            sched_overrides: Arc::clone(&self.sched_overrides.lock()),
            limits: EffLimits::start(&self.limits, self.cancel.lock().clone()),
            vector_enabled: self.vector_enabled.load(Ordering::Relaxed),
            vector_entries: Arc::clone(&self.vector_entries),
            debug_panic_worker: usize::try_from(panic_worker).ok(),
            native: self.native.hooks(force_native),
        }
    }

    fn run_on_vm_native(
        &self,
        unit_id: usize,
        args: &[ArgVal],
        mode: ExecMode,
        prof: Option<&crate::trace::Collector>,
        force_native: bool,
    ) -> Result<RunOutcome, RunError> {
        let exec = self.make_exec_native(mode, force_native);
        let traced = matches!(mode, ExecMode::Simulated { .. });
        let bunits = self.bytecode_for(traced);
        let (result, trace, printed) = crate::vm::run_vm(&exec, &bunits, unit_id, args, prof)?;
        Ok(RunOutcome { result, trace, printed, fallback: None })
    }

    /// Runs on the tree-walk oracle, containing any internal panic as
    /// [`RunError::Trap`] (the oracle is the last tier — there is nothing
    /// left to fall back to).
    fn run_on_oracle(
        &self,
        unit_id: usize,
        args: &[ArgVal],
        mode: ExecMode,
        prof: Option<&crate::trace::Collector>,
    ) -> Result<RunOutcome, RunError> {
        let traced = matches!(mode, ExecMode::Simulated { .. });
        catch_unwind(AssertUnwindSafe(|| {
            if self
                .force_oracle_traps
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
            {
                panic!("forced oracle trap (test hook)");
            }
            let exec = self.make_exec(mode);
            let mut task = Task::new(&exec, 0, traced);
            task.prof = prof;
            let frame = task.entry_frame(unit_id, args)?;
            let (result, trace, printed) = task.run_entry(unit_id, frame)?;
            Ok(RunOutcome { result, trace, printed, fallback: None })
        }))
        .unwrap_or_else(|payload| Err(RunError::Trap { what: payload_str(&*payload) }))
    }

    /// Reads a global scalar by diagnostic name (`module::var`,
    /// `module::var%field`, `common block::var`, `unit::savevar`).
    pub fn global_scalar(&self, name: &str) -> Option<Val> {
        let prog = &self.artifact.prog;
        let id = prog.global_id(name)?;
        let decl = &prog.globals[id];
        if decl.rank != 0 {
            return None;
        }
        let bits = self.globals.cells[id].load_bits(0);
        Some(match decl.ty {
            ScalarTy::I => Val::I(bits as i64),
            ScalarTy::F => Val::F(f64::from_bits(bits)),
            ScalarTy::B => Val::B(bits != 0),
        })
    }

    /// Writes a global scalar.
    pub fn set_global_scalar(&self, name: &str, v: Val) -> bool {
        let prog = &self.artifact.prog;
        let Some(id) = prog.global_id(name) else { return false };
        let decl = &prog.globals[id];
        if decl.rank != 0 {
            return false;
        }
        let bits = match decl.ty {
            ScalarTy::I => v.as_i() as u64,
            ScalarTy::F => v.as_f().to_bits(),
            ScalarTy::B => u64::from(v.as_b()),
        };
        self.globals.cells[id].store_bits(0, bits);
        true
    }

    /// Array handle of a global (thread 0 instance for per-thread cells).
    pub fn global_array(&self, name: &str) -> Option<Arc<ArrayObj>> {
        let id = self.artifact.prog.global_id(name)?;
        self.globals.cells[id].array_handle(0)
    }

    /// Lists global diagnostic names (tooling).
    pub fn global_names(&self) -> Vec<String> {
        self.artifact.prog.globals.iter().map(|g| g.name.clone()).collect()
    }
}

/// The quarantine circuit breaker's response once an artifact's fault
/// count crosses the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineMode {
    /// Refuse new jobs on the artifact with
    /// [`RunError::Quarantined`] until explicitly cleared.
    Refuse,
    /// Keep serving the artifact, but pinned to the oracle tree-walk
    /// tier (no VM, no fallback churn) until explicitly cleared.
    PinOracle,
}

/// Circuit-breaker policy: after `threshold` recorded faults (traps +
/// cancellations, summed per artifact) the artifact is quarantined and
/// handled per `mode`. Off by default — see
/// [`ArtifactCache::set_quarantine_policy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinePolicy {
    /// Faults (traps + cancels) at which the breaker opens; clamped to
    /// a minimum of 1.
    pub threshold: u64,
    pub mode: QuarantineMode,
}

/// Per-artifact fault ledger entry (keyed by source hash, independent of
/// LRU residency so eviction cannot launder a bad artifact's history).
#[derive(Debug, Clone, Copy, Default)]
struct FaultStats {
    traps: u64,
    cancels: u64,
    quarantined: bool,
}

/// An LRU cache of [`CompiledProgram`]s keyed by [`source_hash`], with
/// monotone hit/miss/eviction counters. Repeated compiles of identical
/// sources return the *same* `Arc`; compilation runs outside the lock so
/// a slow compile never blocks concurrent lookups of other entries.
///
/// Two optional hardening features ride on top:
/// * a **byte budget** ([`ArtifactCache::with_byte_budget`]) evicting by
///   estimated retained size as well as entry count, and
/// * a **quarantine circuit breaker**
///   ([`ArtifactCache::set_quarantine_policy`]): [`JobQueue`] records
///   each trap/cancellation against the artifact that caused it, and
///   once an artifact crosses the threshold its jobs are refused or
///   pinned to the oracle tier until [`ArtifactCache::clear_quarantine`].
pub struct ArtifactCache {
    cap: usize,
    /// Optional budget over the entries' `estimated_bytes` sum; the most
    /// recently inserted entry is always retained even if it alone
    /// exceeds the budget.
    byte_budget: Option<usize>,
    /// Recency-ordered: front is least recently used, back is most.
    inner: Mutex<Vec<(u64, Arc<CompiledProgram>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    quarantine: Mutex<QuarantineTable>,
}

#[derive(Default)]
struct QuarantineTable {
    policy: Option<QuarantinePolicy>,
    stats: BTreeMap<u64, FaultStats>,
}

impl ArtifactCache {
    /// Creates a cache holding at most `capacity` artifacts
    /// (`capacity == 0` is clamped to 1), with no byte budget.
    pub fn new(capacity: usize) -> ArtifactCache {
        ArtifactCache {
            cap: capacity.max(1),
            byte_budget: None,
            inner: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            quarantine: Mutex::new(QuarantineTable::default()),
        }
    }

    /// Creates a cache bounded by entry count *and* an estimated-size
    /// budget in bytes: after each insert, least-recently-used entries
    /// are evicted until the [`CompiledProgram::estimated_bytes`] sum
    /// fits (the newest entry is always kept, so an oversized artifact
    /// still caches — it just evicts everything else).
    pub fn with_byte_budget(capacity: usize, byte_budget: usize) -> ArtifactCache {
        ArtifactCache { byte_budget: Some(byte_budget), ..ArtifactCache::new(capacity) }
    }

    /// Maximum number of artifacts retained.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The configured byte budget, if any.
    pub fn byte_budget(&self) -> Option<usize> {
        self.byte_budget
    }

    /// Estimated retained bytes of the currently cached artifacts.
    pub fn bytes(&self) -> usize {
        self.inner.lock().iter().map(|(_, a)| a.estimated_bytes()).sum()
    }

    /// Returns the cached artifact for `sources`, compiling (outside the
    /// cache lock) on first sight. Exactly one of the hit/miss counters
    /// advances per call. If two threads race to compile the same new
    /// sources, both compile but all callers get one winning `Arc`, so
    /// "same source ⇒ same artifact" holds even under the race.
    pub fn get_or_compile(&self, sources: &[&str]) -> Result<Arc<CompiledProgram>, CompileError> {
        let hash = source_hash(sources);
        if let Some(found) = self.touch(hash) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(found);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = CompiledProgram::compile(sources)?;
        let mut inner = self.inner.lock();
        // Re-check: a racer may have inserted while we compiled. Keeping
        // the incumbent preserves the same-Arc guarantee.
        if let Some(pos) = inner.iter().position(|(h, _)| *h == hash) {
            let entry = inner.remove(pos);
            let found = Arc::clone(&entry.1);
            inner.push(entry);
            return Ok(found);
        }
        inner.push((hash, Arc::clone(&fresh)));
        let over_budget = |entries: &Vec<(u64, Arc<CompiledProgram>)>| match self.byte_budget {
            Some(b) => entries.iter().map(|(_, a)| a.estimated_bytes()).sum::<usize>() > b,
            None => false,
        };
        while inner.len() > self.cap || (inner.len() > 1 && over_budget(&inner)) {
            inner.remove(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(fresh)
    }

    /// Looks up `hash` and, on a hit, marks it most recently used.
    fn touch(&self, hash: u64) -> Option<Arc<CompiledProgram>> {
        let mut inner = self.inner.lock();
        let pos = inner.iter().position(|(h, _)| *h == hash)?;
        let entry = inner.remove(pos);
        let found = Arc::clone(&entry.1);
        inner.push(entry);
        Some(found)
    }

    /// Number of artifacts currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Cache hits so far (monotone).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far (monotone).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evictions so far (monotone).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Hits over lookups, 0.0 before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Source hashes in recency order, least recently used first
    /// (test/tooling introspection of the eviction order).
    pub fn lru_hashes(&self) -> Vec<u64> {
        self.inner.lock().iter().map(|(h, _)| *h).collect()
    }

    /// Installs (or with `None` disables) the quarantine circuit
    /// breaker. Disabling stops *new* quarantines; already-open breakers
    /// stay open until [`ArtifactCache::clear_quarantine`]. Off by
    /// default: fault counting is free, but nothing trips.
    pub fn set_quarantine_policy(&self, policy: Option<QuarantinePolicy>) {
        self.quarantine.lock().policy = policy;
    }

    /// The installed quarantine policy, if any.
    pub fn quarantine_policy(&self) -> Option<QuarantinePolicy> {
        self.quarantine.lock().policy
    }

    /// Records one fault against the artifact with source hash `hash`
    /// (`cancel` distinguishes a cancellation from a trap). Trips the
    /// breaker when a policy is installed and the combined count
    /// reaches its threshold. The ledger is keyed by hash, not by cache
    /// residency: eviction does not forget faults.
    pub fn record_fault(&self, hash: u64, cancel: bool) {
        let mut q = self.quarantine.lock();
        let stats = q.stats.entry(hash).or_default();
        if cancel {
            stats.cancels += 1;
        } else {
            stats.traps += 1;
        }
        let total = stats.traps + stats.cancels;
        if let Some(p) = q.policy {
            if total >= p.threshold.max(1) {
                q.stats.entry(hash).or_default().quarantined = true;
            }
        }
    }

    /// `(traps, cancels)` recorded against `hash`.
    pub fn fault_counts(&self, hash: u64) -> (u64, u64) {
        let q = self.quarantine.lock();
        q.stats.get(&hash).map_or((0, 0), |s| (s.traps, s.cancels))
    }

    /// Whether `hash`'s circuit breaker is open.
    pub fn is_quarantined(&self, hash: u64) -> bool {
        self.quarantine.lock().stats.get(&hash).is_some_and(|s| s.quarantined)
    }

    /// Source hashes with an open breaker.
    pub fn quarantined_hashes(&self) -> Vec<u64> {
        let q = self.quarantine.lock();
        q.stats.iter().filter(|(_, s)| s.quarantined).map(|(h, _)| *h).collect()
    }

    /// Closes `hash`'s breaker and zeroes its fault counters. Returns
    /// whether the breaker had been open. This is the only way a
    /// quarantined artifact resumes normal service — the operator (or a
    /// recompile under different sources) must act explicitly.
    pub fn clear_quarantine(&self, hash: u64) -> bool {
        let mut q = self.quarantine.lock();
        match q.stats.remove(&hash) {
            Some(s) => s.quarantined,
            None => false,
        }
    }
}

/// Per-job failure policy. The default is a no-op (no deadline, no
/// retries, no degradation) — exactly the pre-policy behavior — so
/// existing callers see nothing new until they opt in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobPolicy {
    /// Wall-clock budget enforced by the batch watchdog: past it the
    /// job's [`CancelToken`] fires and the job returns
    /// [`RunError::Cancelled`] at its next safepoint. Unlike
    /// [`RunLimits::deadline`] (which each attempt restarts), this
    /// covers the job end to end — retries and backoff included.
    pub deadline: Option<Duration>,
    /// How many times a transiently-failed attempt (trap or exhausted
    /// step budget) is re-run. Cancellation never retries.
    pub retries: u32,
    /// Base wait before the first retry; doubles each further retry
    /// (deterministic exponential backoff).
    pub backoff: Duration,
    /// Degrade the execution tier across retries instead of repeating
    /// the same configuration: `Parallel → Serial → oracle tree-walk`
    /// (`Serial`/`Simulated` skip straight to the oracle rung).
    pub degrade: bool,
}

impl Default for JobPolicy {
    fn default() -> Self {
        JobPolicy { deadline: None, retries: 0, backoff: Duration::ZERO, degrade: false }
    }
}

/// The resilience-policy verdict a [`JobResult`] reports: which action
/// the policy machinery ended up taking for the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PolicyAction {
    /// First attempt succeeded; no policy machinery engaged.
    Completed,
    /// Succeeded after at least one retry on the same rung.
    Retried,
    /// Succeeded after degrading mode/tier.
    Degraded,
    /// The job's cancel token fired (watchdog deadline or external).
    Cancelled,
    /// The artifact's circuit breaker was open: refused or pinned to the
    /// oracle tier per [`QuarantineMode`].
    Quarantined,
    /// Every allowed attempt failed (or the fault was not transient).
    Failed,
}

impl std::fmt::Display for PolicyAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PolicyAction::Completed => "completed",
            PolicyAction::Retried => "retried",
            PolicyAction::Degraded => "degraded",
            PolicyAction::Cancelled => "cancelled",
            PolicyAction::Quarantined => "quarantined",
            PolicyAction::Failed => "failed",
        })
    }
}

/// One logged execution attempt of a job (every attempt is recorded,
/// including the successful one).
#[derive(Debug, Clone)]
pub struct Attempt {
    /// Mode actually used (may differ from the job's under degradation).
    pub mode: ExecMode,
    /// Tier actually used.
    pub tier: ExecTier,
    /// Rendered error if the attempt failed; `None` on success.
    pub error: Option<String>,
    /// Backoff slept *before* this attempt (zero for the first).
    pub backoff: Duration,
}

/// One batched invocation: entry point, arguments, execution mode,
/// optional per-job [`RunLimits`], and optional [`JobPolicy`] (falling
/// back to the queue's default). Defaults to Serial with the session's
/// default limits.
pub struct Job {
    entry: String,
    args: Vec<ArgVal>,
    mode: ExecMode,
    limits: Option<RunLimits>,
    policy: Option<JobPolicy>,
    force_trap: bool,
    oracle_traps: u32,
    panic_worker: Option<usize>,
    inject_bytecode: Option<(bool, Vec<BUnit>)>,
}

impl Job {
    /// A Serial-mode job with default limits.
    pub fn new(entry: impl Into<String>, args: Vec<ArgVal>) -> Job {
        Job {
            entry: entry.into(),
            args,
            mode: ExecMode::Serial,
            limits: None,
            policy: None,
            force_trap: false,
            oracle_traps: 0,
            panic_worker: None,
            inject_bytecode: None,
        }
    }

    /// Sets the execution mode. `Serial` and `Simulated` jobs run
    /// concurrently across the batch pool; `Parallel` jobs fork the
    /// shared pool themselves, so the queue runs them one at a time on
    /// the submitting thread (never oversubscribing).
    pub fn mode(mut self, mode: ExecMode) -> Job {
        self.mode = mode;
        self
    }

    /// Attaches per-job execution limits (step budget, deadline, call
    /// depth); a tripped limit fails *this* job only.
    pub fn limits(mut self, limits: RunLimits) -> Job {
        self.limits = Some(limits);
        self
    }

    /// Attaches a per-job failure policy, overriding the queue default.
    pub fn policy(mut self, policy: JobPolicy) -> Job {
        self.policy = Some(policy);
        self
    }

    /// Test hook: the job's first VM run traps, exercising mid-batch
    /// fallback isolation.
    #[doc(hidden)]
    pub fn debug_force_trap(mut self) -> Job {
        self.force_trap = true;
        self
    }

    /// Test hook: the job's first `n` oracle runs panic too, so whole
    /// attempts fail (see [`Session::debug_force_oracle_traps`]).
    #[doc(hidden)]
    pub fn debug_force_oracle_traps(mut self, n: u32) -> Job {
        self.oracle_traps = n;
        self
    }

    /// Test hook: worker `tid` panics on the job's first OMP region
    /// entry (see [`Session::debug_force_worker_panic`]).
    #[doc(hidden)]
    pub fn debug_panic_worker(mut self, tid: usize) -> Job {
        self.panic_worker = Some(tid);
        self
    }

    /// Test hook: replaces the job session's view of one bytecode
    /// variant before it runs (the chaos harness corrupts streams this
    /// way; the shared artifact stays pristine).
    #[doc(hidden)]
    pub fn debug_inject_bytecode(mut self, traced: bool, bunits: Vec<BUnit>) -> Job {
        self.inject_bytecode = Some((traced, bunits));
        self
    }
}

/// What a [`Job`] produced: the outcome (or per-job error), the policy
/// verdict, the logged attempts, and the private [`Session`] it ran in,
/// for reading back globals.
pub struct JobResult {
    /// The session the job ran in (its globals hold the outputs).
    /// `None` only when the job was rejected before a session existed
    /// (deferred compile failed, or session setup panicked) — `result`
    /// then holds [`RunError::Rejected`].
    pub session: Option<Session>,
    /// The job's outcome or its own failure; sibling jobs are unaffected.
    pub result: Result<RunOutcome, RunError>,
    /// Every execution attempt, in order (empty for refused jobs).
    pub attempts: Vec<Attempt>,
    /// The policy verdict for this job.
    pub action: PolicyAction,
    /// Wall time from job start to final verdict (backoffs included);
    /// zero for jobs refused before running.
    pub wall: Duration,
}

/// What a whole batch did: per-job results in submission order plus
/// batch-level timings and watchdog accounting.
pub struct BatchReport {
    pub results: Vec<JobResult>,
    /// Wall time of the whole `run_batch_report` call.
    pub wall: Duration,
    /// Deadlines the watchdog actually fired (jobs that finished before
    /// their deadline disarm without firing).
    pub watchdog_fired: u64,
}

impl BatchReport {
    /// Number of jobs whose verdict was `action`.
    pub fn action_count(&self, action: PolicyAction) -> usize {
        self.results.iter().filter(|r| r.action == action).count()
    }
}

type BatchSlot = Mutex<Option<(Result<RunOutcome, RunError>, Vec<Attempt>, PolicyAction, Duration)>>;

/// Where a pending job's artifact comes from: already compiled, or
/// sources compiled at batch time (through the queue's cache when one
/// is attached) so one job's compile failure is *its* structured
/// failure, not the batch's.
enum JobSource {
    Artifact(Arc<CompiledProgram>),
    Sources(Vec<String>),
}

/// A job that made it through setup: its private session, the cancel
/// token the watchdog fires, and the artifact hash for the fault ledger.
struct ReadyJob {
    session: Session,
    token: Arc<CancelToken>,
    hash: u64,
}

/// Setup outcome per job — refusal is a per-job result, never a batch
/// abort.
enum Prep {
    Ready(Box<ReadyJob>),
    Refused(RunError),
}

/// Classifies a fault for the retry policy. Traps (VM panics, contained
/// worker panics, oracle panics) and exhausted step budgets are
/// transient — a retry, possibly on a degraded rung, can legitimately
/// succeed (the oracle counts statements, not instructions, so the same
/// budget goes further there). Cancellations, wall-clock deadline trips
/// and program-level faults (bounds, arithmetic, STOP, bad calls) are
/// final: re-running cannot change them.
fn transient(root: &RunError) -> bool {
    match root {
        RunError::Trap { .. } => true,
        RunError::Limit { msg } => msg.starts_with("step budget"),
        _ => false,
    }
}

/// The per-job policy loop: run on the current ladder rung, retry with
/// deterministic exponential backoff on transient faults, degrade
/// `Parallel → Serial → oracle` when asked, stop immediately on
/// cancellation. Returns the final outcome, the full attempt log, and
/// the policy verdict.
fn run_with_policy(
    session: &Session,
    job: &Job,
    policy: &JobPolicy,
    token: &Arc<CancelToken>,
    pin_oracle: bool,
) -> (Result<RunOutcome, RunError>, Vec<Attempt>, PolicyAction) {
    // Rung 0 is the requested configuration; further rungs exist only
    // under `degrade`. A quarantine-pinned job has exactly one rung:
    // the oracle tier at the requested mode.
    let mut rungs: Vec<(ExecMode, ExecTier)> = vec![(job.mode, ExecTier::Vm)];
    if policy.degrade {
        if matches!(job.mode, ExecMode::Parallel { .. }) {
            rungs.push((ExecMode::Serial, ExecTier::Vm));
            rungs.push((ExecMode::Serial, ExecTier::TreeWalk));
        } else {
            rungs.push((job.mode, ExecTier::TreeWalk));
        }
    }
    if pin_oracle {
        rungs = vec![(job.mode, ExecTier::TreeWalk)];
    }
    let allowed = 1 + policy.retries as usize;
    let mut attempts: Vec<Attempt> = Vec::new();
    let mut rung = 0usize;
    let mut degraded = false;
    let mut last: Option<RunError> = None;
    for attempt in 0..allowed {
        let wait = if attempt == 0 {
            Duration::ZERO
        } else {
            // backoff, 2·backoff, 4·backoff, … (shift capped well past
            // any plausible retry count).
            policy.backoff.saturating_mul(1u32 << (attempt - 1).min(16))
        };
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        let (mode, tier) = rungs[rung];
        if token.is_cancelled() {
            // Fired between attempts (e.g. during backoff): don't burn
            // another attempt on a job whose caller already gave up.
            let err = RunError::Cancelled { at_line: None, reason: token.reason() };
            attempts.push(Attempt { mode, tier, error: Some(err.to_string()), backoff: wait });
            return (Err(err), attempts, PolicyAction::Cancelled);
        }
        if rung > 0 {
            degraded = true;
        }
        match session.run_tiered(&job.entry, &job.args, mode, tier) {
            Ok(out) => {
                attempts.push(Attempt { mode, tier, error: None, backoff: wait });
                let action = if pin_oracle {
                    PolicyAction::Quarantined
                } else if degraded {
                    PolicyAction::Degraded
                } else if attempt > 0 {
                    PolicyAction::Retried
                } else {
                    PolicyAction::Completed
                };
                return (Ok(out), attempts, action);
            }
            Err(e) => {
                attempts.push(Attempt { mode, tier, error: Some(e.to_string()), backoff: wait });
                if matches!(e.root(), RunError::Cancelled { .. }) {
                    return (Err(e), attempts, PolicyAction::Cancelled);
                }
                if !transient(e.root()) {
                    let action =
                        if pin_oracle { PolicyAction::Quarantined } else { PolicyAction::Failed };
                    return (Err(e), attempts, action);
                }
                if rung + 1 < rungs.len() {
                    rung += 1;
                }
                last = Some(e);
            }
        }
    }
    let err = last.unwrap_or(RunError::Rejected { msg: "no attempt was made".into() });
    let action = if pin_oracle { PolicyAction::Quarantined } else { PolicyAction::Failed };
    (Err(err), attempts, action)
}

/// Batches many jobs — possibly over different artifacts — across one
/// shared [`PoolSet`]. Each job gets a private [`Session`], so a job
/// that traps, trips its limits, or corrupts its own globals cannot
/// touch a sibling; the pool contains any panic and self-heals. A
/// [`JobPolicy`] (per job or queue default) bounds each job's failure
/// mode: a watchdog thread fires over-deadline jobs' cancel tokens,
/// transient faults retry with backoff and optional tier degradation,
/// and — when the queue is minted by an [`EngineService`] — the
/// artifact quarantine breaker refuses or pins repeat offenders.
pub struct JobQueue {
    pools: Arc<PoolSet>,
    threads: usize,
    pending: Vec<(JobSource, Job)>,
    /// Attached by [`EngineService::queue`]: serves deferred compiles
    /// and carries the quarantine ledger. `None` for bare queues.
    cache: Option<Arc<ArtifactCache>>,
    default_policy: JobPolicy,
}

impl JobQueue {
    /// A queue dispatching over `pools` with `threads`-wide batch
    /// concurrency (`0` is clamped to 1).
    pub fn new(pools: Arc<PoolSet>, threads: usize) -> JobQueue {
        JobQueue {
            pools,
            threads: threads.max(1),
            pending: Vec::new(),
            cache: None,
            default_policy: JobPolicy::default(),
        }
    }

    /// Attaches an artifact cache: deferred-compile submissions go
    /// through it, and trap/cancel faults are recorded against its
    /// quarantine ledger. [`EngineService::queue`] does this for you.
    pub fn attach_cache(&mut self, cache: Arc<ArtifactCache>) {
        self.cache = Some(cache);
    }

    /// Sets the policy applied to jobs without their own
    /// [`Job::policy`]. Defaults to the no-op [`JobPolicy::default`].
    pub fn set_default_policy(&mut self, policy: JobPolicy) {
        self.default_policy = policy;
    }

    /// The queue's default policy.
    pub fn default_policy(&self) -> JobPolicy {
        self.default_policy
    }

    /// Enqueues `job` against `artifact`. Nothing runs until
    /// [`JobQueue::run_batch`].
    pub fn submit(&mut self, artifact: &Arc<CompiledProgram>, job: Job) {
        self.pending.push((JobSource::Artifact(Arc::clone(artifact)), job));
    }

    /// Enqueues `job` against sources compiled at batch time (through
    /// the attached cache when there is one). A compile failure becomes
    /// *this job's* [`RunError::Rejected`] result; the batch drains on.
    pub fn submit_sources(&mut self, sources: &[&str], job: Job) {
        let owned = sources.iter().map(|s| (*s).to_string()).collect();
        self.pending.push((JobSource::Sources(owned), job));
    }

    /// Number of jobs waiting.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Runs every pending job and returns results in submission order.
    /// Convenience wrapper over [`JobQueue::run_batch_report`].
    pub fn run_batch(&mut self) -> Vec<JobResult> {
        self.run_batch_report().results
    }

    /// Runs every pending job and returns per-job results (submission
    /// order) plus batch-level timing and watchdog accounting.
    ///
    /// Serial/Simulated jobs are dispatched across the batch pool via a
    /// dynamic dispenser (a stalled job does not idle the other
    /// workers); Parallel jobs run afterwards on the calling thread,
    /// forking the same shared pool set one at a time. Either way the
    /// host never runs more than the pool-set threads at once.
    ///
    /// Drain guarantee: a compile failure or setup panic for one job
    /// yields a structured [`RunError::Rejected`] entry for that job and
    /// the rest of the batch runs normally.
    pub fn run_batch_report(&mut self) -> BatchReport {
        let t_batch = Instant::now();
        let jobs = std::mem::take(&mut self.pending);
        let cache = self.cache.clone();
        let default_policy = self.default_policy;
        let watchdog = omprt::Watchdog::new();

        // Setup phase, drain-safe: resolve each job's artifact and build
        // its private session; any failure is that job's refusal.
        let preps: Vec<Prep> = jobs
            .iter()
            .map(|(src, job)| {
                let artifact = match src {
                    JobSource::Artifact(a) => Arc::clone(a),
                    JobSource::Sources(v) => {
                        let refs: Vec<&str> = v.iter().map(String::as_str).collect();
                        let compiled = match &cache {
                            Some(c) => c.get_or_compile(&refs),
                            None => CompiledProgram::compile(&refs),
                        };
                        match compiled {
                            Ok(a) => a,
                            Err(e) => {
                                return Prep::Refused(RunError::Rejected {
                                    msg: format!("compile failed: {e}"),
                                })
                            }
                        }
                    }
                };
                let setup = catch_unwind(AssertUnwindSafe(|| {
                    let mut s = Session::new(Arc::clone(&artifact), Arc::clone(&self.pools));
                    if let Some(l) = job.limits {
                        s.set_limits(l);
                    }
                    if job.force_trap {
                        s.debug_force_vm_trap();
                    }
                    if job.oracle_traps > 0 {
                        s.debug_force_oracle_traps(job.oracle_traps);
                    }
                    if let Some(tid) = job.panic_worker {
                        s.debug_force_worker_panic(tid);
                    }
                    if let Some((traced, b)) = &job.inject_bytecode {
                        s.debug_inject_bytecode(*traced, b.clone());
                    }
                    let token = CancelToken::new();
                    s.set_cancel_token(Some(Arc::clone(&token)));
                    Box::new(ReadyJob { session: s, token, hash: artifact.source_hash() })
                }));
                match setup {
                    Ok(r) => Prep::Ready(r),
                    Err(p) => Prep::Refused(RunError::Rejected {
                        msg: format!("session setup panicked: {}", payload_str(&*p)),
                    }),
                }
            })
            .collect();

        let slots: Vec<BatchSlot> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let watchdog_ref = &watchdog;
        let cache_ref = &cache;
        let run_one = |i: usize| {
            let (_, job) = &jobs[i];
            let Prep::Ready(ready) = &preps[i] else { return };
            let t0 = Instant::now();
            let policy = job.policy.unwrap_or(default_policy);
            // Quarantine gate, checked at job start so a breaker opened
            // earlier in this very batch already protects later jobs.
            let mut pin_oracle = false;
            if let Some(c) = cache_ref {
                if c.is_quarantined(ready.hash) {
                    match c.quarantine_policy().map(|p| p.mode) {
                        Some(QuarantineMode::PinOracle) => pin_oracle = true,
                        // Refuse — also the conservative answer if the
                        // policy was dropped after the breaker opened.
                        _ => {
                            let (t, cx) = c.fault_counts(ready.hash);
                            *slots[i].lock() = Some((
                                Err(RunError::Quarantined {
                                    source_hash: ready.hash,
                                    faults: t + cx,
                                }),
                                Vec::new(),
                                PolicyAction::Quarantined,
                                t0.elapsed(),
                            ));
                            return;
                        }
                    }
                }
            }
            let wd_id = policy.deadline.map(|d| {
                let tok = Arc::clone(&ready.token);
                watchdog_ref
                    .arm(t0 + d, move || tok.cancel(&format!("job deadline of {d:?} exceeded")))
            });
            let run = catch_unwind(AssertUnwindSafe(|| {
                run_with_policy(&ready.session, job, &policy, &ready.token, pin_oracle)
            }));
            if let Some(id) = wd_id {
                watchdog_ref.disarm(id);
            }
            let (result, attempts, action) = match run {
                Ok(r) => r,
                Err(p) => (
                    Err(RunError::Trap { what: payload_str(&*p) }),
                    Vec::new(),
                    PolicyAction::Failed,
                ),
            };
            // Fault ledger: a fallback or trap-rooted failure counts as
            // a trap, a cancellation as a cancel.
            if let Some(c) = cache_ref {
                let trapped = match &result {
                    Ok(out) => out.fallback.is_some(),
                    Err(e) => matches!(e.root(), RunError::Trap { .. }),
                };
                if trapped {
                    c.record_fault(ready.hash, false);
                }
                if matches!(&result, Err(e) if matches!(e.root(), RunError::Cancelled { .. })) {
                    c.record_fault(ready.hash, true);
                }
            }
            *slots[i].lock() = Some((result, attempts, action, t0.elapsed()));
        };

        // Pool-dispatched fraction: everything that does not fork a team
        // of its own.
        let pooled: Vec<usize> = jobs
            .iter()
            .enumerate()
            .filter(|(_, (_, job))| !matches!(job.mode, ExecMode::Parallel { .. }))
            .map(|(i, _)| i)
            .collect();
        if !pooled.is_empty() {
            let pool = self.pools.pool_for(self.threads);
            let disp =
                omprt::Dispenser::new(omprt::Schedule::Dynamic(1), pooled.len(), pool.threads());
            let region = pool.run(|_tid| {
                while let Some((lo, hi)) = disp.claim() {
                    for &i in &pooled[lo..hi] {
                        run_one(i);
                    }
                }
            });
            if let Err(p) = region {
                // Should be unreachable — `run_one` already contains
                // panics — but if one does escape, pin it on the jobs
                // that never produced a result rather than losing it.
                for &i in &pooled {
                    let mut slot = slots[i].lock();
                    if slot.is_none() {
                        *slot = Some((
                            Err(RunError::Trap { what: p.what.clone() }),
                            Vec::new(),
                            PolicyAction::Failed,
                            Duration::ZERO,
                        ));
                    }
                }
            }
        }
        // Team-forking jobs: one at a time, on the caller, over the same
        // shared pools.
        for (i, (_, job)) in jobs.iter().enumerate() {
            if matches!(job.mode, ExecMode::Parallel { .. }) {
                run_one(i);
            }
        }

        let results = preps
            .into_iter()
            .zip(slots)
            .map(|(prep, slot)| match prep {
                Prep::Refused(err) => JobResult {
                    session: None,
                    result: Err(err),
                    attempts: Vec::new(),
                    action: PolicyAction::Failed,
                    wall: Duration::ZERO,
                },
                Prep::Ready(ready) => {
                    let (result, attempts, action, wall) =
                        slot.into_inner().unwrap_or_else(|| {
                            (
                                Err(RunError::Trap { what: "job produced no result".into() }),
                                Vec::new(),
                                PolicyAction::Failed,
                                Duration::ZERO,
                            )
                        });
                    // Detach the batch token so callers reusing the
                    // session don't inherit a fired one.
                    ready.session.set_cancel_token(None);
                    JobResult { session: Some(ready.session), result, attempts, action, wall }
                }
            })
            .collect();
        BatchReport { results, wall: t_batch.elapsed(), watchdog_fired: watchdog.fired() }
    }
}

/// The top of the service layer: an [`ArtifactCache`] plus a shared
/// [`PoolSet`], from which sessions and job queues are minted. Also the
/// home of the service-wide defaults: a [`JobPolicy`] stamped onto every
/// minted queue and the quarantine policy living on the cache.
pub struct EngineService {
    cache: Arc<ArtifactCache>,
    pools: Arc<PoolSet>,
    default_policy: Mutex<JobPolicy>,
}

impl EngineService {
    /// A service caching up to `cache_capacity` compiled artifacts.
    pub fn new(cache_capacity: usize) -> EngineService {
        EngineService::with_cache(ArtifactCache::new(cache_capacity))
    }

    /// A service whose cache is bounded by entry count *and* estimated
    /// bytes (see [`ArtifactCache::with_byte_budget`]).
    pub fn with_byte_budget(cache_capacity: usize, byte_budget: usize) -> EngineService {
        EngineService::with_cache(ArtifactCache::with_byte_budget(cache_capacity, byte_budget))
    }

    /// A service over a pre-configured cache.
    pub fn with_cache(cache: ArtifactCache) -> EngineService {
        EngineService {
            cache: Arc::new(cache),
            pools: Arc::new(PoolSet::new()),
            default_policy: Mutex::new(JobPolicy::default()),
        }
    }

    /// Sets the [`JobPolicy`] stamped onto queues minted *after* this
    /// call (jobs can still override per [`Job::policy`]).
    pub fn set_default_policy(&self, policy: JobPolicy) {
        *self.default_policy.lock() = policy;
    }

    /// The service-wide default job policy.
    pub fn default_policy(&self) -> JobPolicy {
        *self.default_policy.lock()
    }

    /// Installs (or clears) the artifact quarantine circuit breaker —
    /// convenience for [`ArtifactCache::set_quarantine_policy`].
    pub fn set_quarantine_policy(&self, policy: Option<QuarantinePolicy>) {
        self.cache.set_quarantine_policy(policy);
    }

    /// Compiles `sources` through the cache: identical sources return
    /// the same shared artifact.
    pub fn compile(&self, sources: &[&str]) -> Result<Arc<CompiledProgram>, CompileError> {
        self.cache.get_or_compile(sources)
    }

    /// Compiles (through the cache) and opens a session on the shared
    /// pool set.
    pub fn session(&self, sources: &[&str]) -> Result<Session, CompileError> {
        Ok(Session::new(self.compile(sources)?, Arc::clone(&self.pools)))
    }

    /// Opens a session over an already-compiled artifact.
    pub fn session_for(&self, artifact: &Arc<CompiledProgram>) -> Session {
        Session::new(Arc::clone(artifact), Arc::clone(&self.pools))
    }

    /// A job queue with `threads`-wide batch concurrency over the shared
    /// pool set, wired to the service's cache (deferred compiles +
    /// quarantine ledger) and stamped with the current default policy.
    pub fn queue(&self, threads: usize) -> JobQueue {
        let mut q = JobQueue::new(Arc::clone(&self.pools), threads);
        q.attach_cache(Arc::clone(&self.cache));
        q.set_default_policy(self.default_policy());
        q
    }

    /// The artifact cache (hit/miss/eviction/quarantine introspection).
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// A clonable handle to the artifact cache (for wiring bare
    /// [`JobQueue`]s or sharing the quarantine ledger across drivers).
    pub fn cache_handle(&self) -> Arc<ArtifactCache> {
        Arc::clone(&self.cache)
    }

    /// The shared pool set.
    pub fn pools(&self) -> &Arc<PoolSet> {
        &self.pools
    }
}

/// Renders a `catch_unwind` payload for diagnostics.
pub(crate) fn payload_str(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Stores fixed-form `DATA` element initializers into a freshly-built
/// global array (resolution guarantees the lengths match).
fn apply_init_elems(arr: &ArrayObj, elems: Option<&[u64]>) {
    if let Some(elems) = elems {
        for (off, &bits) in elems.iter().enumerate().take(arr.len()) {
            arr.set_bits(off, bits);
        }
    }
}

pub(crate) fn build_globals(prog: &RProgram) -> Globals {
    let cells = prog
        .globals
        .iter()
        .map(|decl| {
            if decl.rank == 0 && !decl.allocatable && decl.dims.is_empty() {
                let cell = if decl.per_thread {
                    GlobalCell::new_per_thread_scalar()
                } else {
                    GlobalCell::new_scalar()
                };
                if let Some(bits) = decl.init_bits {
                    match &cell {
                        GlobalCell::Scalar(c) => {
                            c.store(bits, std::sync::atomic::Ordering::Relaxed)
                        }
                        GlobalCell::PerThreadScalar(v) => {
                            for c in v.iter() {
                                c.store(bits, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                        _ => {}
                    }
                }
                cell
            } else if decl.per_thread {
                let cell = GlobalCell::new_per_thread_array();
                if !decl.allocatable && !decl.dims.is_empty() {
                    for t in 0..crate::storage::MAX_THREADS {
                        let arr = Arc::new(ArrayObj::new(decl.ty, decl.dims.clone()));
                        apply_init_elems(&arr, decl.init_elems.as_deref());
                        cell.set_array(t, Some(arr));
                    }
                }
                cell
            } else {
                let cell = GlobalCell::new_array();
                if !decl.allocatable && !decl.dims.is_empty() {
                    let arr = Arc::new(ArrayObj::new(decl.ty, decl.dims.clone()));
                    apply_init_elems(&arr, decl.init_elems.as_deref());
                    cell.set_array(0, Some(arr));
                }
                cell
            }
        })
        .collect();
    Globals { cells }
}
