//! The service layer: immutable compiled artifacts, per-run sessions,
//! an LRU artifact cache, and batched job execution.
//!
//! The paper's pipeline is one-shot — compile one kernel, run it once.
//! A service compiling and running many kernels for many users
//! concurrently needs a different shape:
//!
//! * [`CompiledProgram`] — everything `compile` produces and nothing a
//!   run mutates: the resolved program, both statically verified
//!   bytecode variants (optimized and traced), and the source-content
//!   hash that keys it. `Arc`-shared across any number of sessions.
//! * [`Session`] — everything a run mutates: global storage, schedule
//!   overrides, [`RunLimits`], the vector-path gate, fallback and
//!   vector-entry counters. Cheap to create; one per tenant/run-stream.
//! * [`ArtifactCache`] — LRU map from source hash to artifact, so
//!   repeated compiles of identical sources return the same `Arc`.
//! * [`JobQueue`] — batches many parameter sets across one shared
//!   [`omprt::PoolSet`] without oversubscription, with per-job limits
//!   and trap isolation.
//!
//! Like `engine.rs` this is user-reachable API surface: internal panics
//! are a bug here (scoped lints below). The one `catch_unwind` is the
//! deliberate trap boundary of the tiered-execution contract.
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use omprt::{CriticalRegistry, PoolSet, ThreadPool};
use parking_lot::Mutex;

use crate::bytecode::{compile_program, BUnit};
use crate::engine::{ArgVal, ExecTier, RunOutcome, TierFallback, VectorLoopInfo};
use crate::error::{CompileError, RunError};
use crate::interp::{EffLimits, Exec, ExecMode, RunLimits, ScheduleOverrides, Task, Val};
use crate::parse::parse;
use crate::rir::{RProgram, ScalarTy};
use crate::sema::resolve;
use crate::storage::{ArrayObj, GlobalCell, Globals};

/// FNV-1a over every source with a separator byte between files, so the
/// key is a pure function of source *content*: any byte difference —
/// including whitespace — yields a distinct artifact, and reordering
/// files does too (storage layout follows file order).
pub fn source_hash(sources: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for s in sources {
        for b in s.bytes() {
            eat(b);
        }
        eat(0x1f); // unit separator: "ab"+"c" hashes apart from "a"+"bc"
    }
    h
}

/// The immutable product of compilation, shared by reference across
/// sessions. Nothing in here changes after [`CompiledProgram::compile`]
/// returns: the resolved program (with its pc→line tables and OMP
/// descriptors), both bytecode variants — already statically verified —
/// and the content hash that keys the artifact in an [`ArtifactCache`].
pub struct CompiledProgram {
    prog: Arc<RProgram>,
    /// `[optimized, traced]`: the optimized build (constant folding,
    /// dead-store elimination, fused/vectorized loops) serves
    /// Serial/Parallel; the traced build preserves every cost-bearing
    /// operation for Simulated mode.
    bytecode: [Arc<Vec<BUnit>>; 2],
    source_hash: u64,
}

impl CompiledProgram {
    /// Parses, resolves, compiles and statically verifies one or more
    /// source files into a shareable artifact. Both bytecode variants
    /// are built eagerly so a compiler bug surfaces here as
    /// [`CompileError::Verify`] instead of undefined VM behavior later.
    pub fn compile(sources: &[&str]) -> Result<Arc<CompiledProgram>, CompileError> {
        let hash = source_hash(sources);
        let mut ast = crate::ast::Ast::default();
        for s in sources {
            let mut part = parse(s)?;
            ast.modules.append(&mut part.modules);
        }
        let prog = resolve(&ast)?;
        let optimized = compile_program(&prog, false);
        crate::verify::verify_program(&prog, &optimized)?;
        let traced = compile_program(&prog, true);
        crate::verify::verify_program(&prog, &traced)?;
        Ok(Arc::new(CompiledProgram {
            prog: Arc::new(prog),
            bytecode: [Arc::new(optimized), Arc::new(traced)],
            source_hash: hash,
        }))
    }

    /// The resolved program (introspection for tests and tooling).
    pub fn program(&self) -> &RProgram {
        &self.prog
    }

    /// Content hash of the sources this artifact was compiled from.
    pub fn source_hash(&self) -> u64 {
        self.source_hash
    }

    /// Bytecode for the whole program; `traced` selects the Simulated
    /// build.
    pub fn bytecode(&self, traced: bool) -> Arc<Vec<BUnit>> {
        Arc::clone(&self.bytecode[usize::from(traced)])
    }

    /// Static vectorization report: one line per loop the bytecode
    /// compiler proved legal to vectorize, with unit name, source line,
    /// statement count and reduction flag. Reflects the optimized
    /// (Serial/Parallel) build; the traced build never vectorizes.
    pub fn vector_report(&self) -> Vec<VectorLoopInfo> {
        let mut out = Vec::new();
        for bu in self.bytecode[0].iter() {
            for d in &bu.vecs {
                out.push(VectorLoopInfo {
                    unit: self.prog.units[bu.unit as usize].name.clone(),
                    line: d.line,
                    stmts: d.stmts.len(),
                    reduction: d.red.is_some(),
                });
            }
        }
        out
    }
}

/// Per-run mutable state over a shared [`CompiledProgram`]: live global
/// storage (module variables, COMMON blocks, SAVE arrays — persisting
/// across `run` calls exactly like a linked FORTRAN process image),
/// schedule overrides, [`RunLimits`], the vector-path gate, and the
/// fallback/vector counters. Every mutation stays inside the session:
/// two sessions over the same artifact cannot observe each other.
pub struct Session {
    artifact: Arc<CompiledProgram>,
    globals: Arc<Globals>,
    pools: Arc<PoolSet>,
    critical: Arc<CriticalRegistry>,
    /// Execution limits applied to every run (both tiers).
    limits: RunLimits,
    /// Number of VM traps that fell back to the oracle tier.
    fallback_count: AtomicU64,
    /// Test hook: force the next VM-tier run to trap.
    force_vm_trap: AtomicBool,
    /// Loop-schedule overrides snapshotted into every run's `Exec`.
    sched_overrides: Mutex<Arc<ScheduleOverrides>>,
    /// Gate for the VM's vector superinstruction path; on by default.
    vector_enabled: AtomicBool,
    /// Loop entries that actually ran vectorized, across all runs.
    vector_entries: Arc<AtomicU64>,
    /// Session-local bytecode replacement (`[optimized, traced]`),
    /// normally empty. `debug_inject_bytecode` writes here so the
    /// fault-injection harness corrupts *this session's* view only —
    /// the shared artifact stays pristine for every other session.
    bytecode_override: Mutex<[Option<Arc<Vec<BUnit>>>; 2]>,
}

impl Session {
    /// Opens a session over `artifact`, forking parallel regions on the
    /// shared `pools` (sessions handed the same [`PoolSet`] share OS
    /// threads instead of oversubscribing the host).
    pub fn new(artifact: Arc<CompiledProgram>, pools: Arc<PoolSet>) -> Session {
        let globals = Arc::new(build_globals(&artifact.prog));
        Session {
            artifact,
            globals,
            pools,
            critical: Arc::new(CriticalRegistry::new()),
            limits: RunLimits::default(),
            fallback_count: AtomicU64::new(0),
            force_vm_trap: AtomicBool::new(false),
            sched_overrides: Mutex::new(Arc::new(ScheduleOverrides::default())),
            vector_enabled: AtomicBool::new(true),
            vector_entries: Arc::new(AtomicU64::new(0)),
            bytecode_override: Mutex::new([None, None]),
        }
    }

    /// Opens a session with a private pool set — the one-shot shape the
    /// standalone [`crate::Engine`] presents.
    pub fn solo(artifact: Arc<CompiledProgram>) -> Session {
        Session::new(artifact, Arc::new(PoolSet::new()))
    }

    /// The shared artifact this session executes.
    pub fn artifact(&self) -> &Arc<CompiledProgram> {
        &self.artifact
    }

    /// Sets execution limits applied to every subsequent run.
    pub fn set_limits(&mut self, limits: RunLimits) {
        self.limits = limits;
    }

    /// The currently configured execution limits.
    pub fn limits(&self) -> RunLimits {
        self.limits
    }

    /// How many VM traps have fallen back to the oracle tier so far
    /// (this session only).
    pub fn fallback_count(&self) -> u64 {
        self.fallback_count.load(Ordering::Relaxed)
    }

    /// Test hook: forces the next VM-tier run to trap, exercising the
    /// trap-and-fallback path deterministically.
    #[doc(hidden)]
    pub fn debug_force_vm_trap(&self) {
        self.force_vm_trap.store(true, Ordering::Relaxed);
    }

    /// Test hook: replaces this session's view of one bytecode variant
    /// (`traced` selects the Simulated build). Used by the
    /// fault-injection harness to execute corrupted streams; the shared
    /// [`CompiledProgram`] is not touched.
    #[doc(hidden)]
    pub fn debug_inject_bytecode(&self, traced: bool, bunits: Vec<BUnit>) {
        self.bytecode_override.lock()[usize::from(traced)] = Some(Arc::new(bunits));
    }

    /// The resolved program (introspection for tests and tooling).
    pub fn program(&self) -> &RProgram {
        &self.artifact.prog
    }

    /// Installs per-line loop-schedule overrides, replacing any previous
    /// per-line set. Each `(line, schedule)` pair reschedules the
    /// parallel DO at that source line on every subsequent run, in both
    /// execution tiers — this is the apply side of the feedback loop: a
    /// measured [`crate::trace::Profile`]'s per-region imbalance (keyed
    /// by `omp@line`) decides the overrides for the next run.
    pub fn set_schedule_overrides<I>(&self, overrides: I)
    where
        I: IntoIterator<Item = (u32, omprt::Schedule)>,
    {
        let mut cur = (**self.sched_overrides.lock()).clone();
        cur.by_line = overrides.into_iter().collect();
        *self.sched_overrides.lock() = Arc::new(cur);
    }

    /// Installs (or with `None` clears) a blanket schedule override
    /// applied to every parallel DO without a per-line override. Used by
    /// the schedule-matrix benchmarks and the differential suite to run
    /// one program under each schedule kind.
    pub fn set_schedule_override_all(&self, sched: Option<omprt::Schedule>) {
        let mut cur = (**self.sched_overrides.lock()).clone();
        cur.all = sched;
        *self.sched_overrides.lock() = Arc::new(cur);
    }

    /// The currently installed schedule overrides.
    pub fn schedule_overrides(&self) -> ScheduleOverrides {
        (**self.sched_overrides.lock()).clone()
    }

    /// Enables or disables the VM's vector superinstruction path (on by
    /// default). Disabling forces every vectorized loop back to its
    /// scalar head — used for A/B benchmarking and differential tests;
    /// results are bit-identical either way.
    pub fn set_vector_enabled(&self, on: bool) {
        self.vector_enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the vector superinstruction path is enabled.
    pub fn vector_enabled(&self) -> bool {
        self.vector_enabled.load(Ordering::Relaxed)
    }

    /// How many loop entries actually executed on the vector path so
    /// far (this session's runs, all threads). Zero after runs with the
    /// path enabled means every candidate fell back at a runtime guard.
    pub fn vector_entry_count(&self) -> u64 {
        self.vector_entries.load(Ordering::Relaxed)
    }

    /// Static vectorization report for this session's optimized
    /// bytecode (the artifact's, unless a test injected a replacement).
    pub fn vector_report(&self) -> Vec<VectorLoopInfo> {
        let bunits = self.bytecode_for(false);
        let mut out = Vec::new();
        for bu in bunits.iter() {
            for d in &bu.vecs {
                out.push(VectorLoopInfo {
                    unit: self.artifact.prog.units[bu.unit as usize].name.clone(),
                    line: d.line,
                    stmts: d.stmts.len(),
                    reduction: d.red.is_some(),
                });
            }
        }
        out
    }

    /// Reinitializes all global storage.
    pub fn reset_globals(&mut self) {
        self.globals = Arc::new(build_globals(&self.artifact.prog));
    }

    fn pool_for(&self, threads: usize) -> Arc<ThreadPool> {
        self.pools.pool_for(threads)
    }

    /// Bytecode for the whole program; `traced` selects the Simulated
    /// build. The session-local injection slot wins over the artifact.
    fn bytecode_for(&self, traced: bool) -> Arc<Vec<BUnit>> {
        if let Some(b) = &self.bytecode_override.lock()[usize::from(traced)] {
            return Arc::clone(b);
        }
        self.artifact.bytecode(traced)
    }

    /// Runs subprogram `name` with `args` under `mode` on the default
    /// tier (the bytecode VM).
    pub fn run(&self, name: &str, args: &[ArgVal], mode: ExecMode) -> Result<RunOutcome, RunError> {
        self.run_tiered(name, args, mode, ExecTier::Vm)
    }

    /// Runs subprogram `name` on an explicit execution tier.
    ///
    /// Internal panics never cross this boundary. A panic in the VM tier
    /// (an engine bug, not a program-level [`RunError`]) is trapped, a
    /// [`TierFallback`] diagnostic is recorded, and the call is
    /// transparently re-executed on the tree-walk oracle so the caller
    /// still gets an answer. A panic in the oracle itself surfaces as
    /// [`RunError::Trap`].
    pub fn run_tiered(
        &self,
        name: &str,
        args: &[ArgVal],
        mode: ExecMode,
        tier: ExecTier,
    ) -> Result<RunOutcome, RunError> {
        let unit_id = self
            .artifact
            .prog
            .unit_id(name)
            .ok_or_else(|| RunError::BadCall { name: name.into(), msg: "unknown unit".into() })?;
        match tier {
            ExecTier::Vm => {
                let forced = self.force_vm_trap.swap(false, Ordering::Relaxed);
                let vm_run = catch_unwind(AssertUnwindSafe(|| {
                    if forced {
                        panic!("forced VM trap (test hook)");
                    }
                    self.run_on_vm(unit_id, args, mode, None)
                }));
                let trap = match vm_run {
                    Err(payload) => payload_str(&*payload),
                    // A contained worker panic surfaces as `Trap`: an
                    // internal fault, so it also falls back.
                    Ok(Err(ref e)) if matches!(e.root(), RunError::Trap { .. }) => e.to_string(),
                    Ok(run) => return run,
                };
                // The VM trapped: record the diagnostic and give the
                // caller the oracle's answer instead.
                self.fallback_count.fetch_add(1, Ordering::Relaxed);
                let fb = TierFallback { unit: name.into(), what: trap };
                let mut out = self.run_on_oracle(unit_id, args, mode, None)?;
                out.fallback = Some(fb);
                Ok(out)
            }
            ExecTier::TreeWalk => self.run_on_oracle(unit_id, args, mode, None),
        }
    }

    /// Runs subprogram `name` with a profiling collector attached,
    /// returning the outcome together with the rendered
    /// [`crate::trace::Profile`]: per-unit and per-DO-loop wall time and
    /// entry counts, executed VM instructions (or interpreter steps)
    /// against the configured [`RunLimits`] budget, parallel-region
    /// worker utilization, and any tier-fallback diagnostics.
    ///
    /// Profiling follows the same trap-and-fallback contract as
    /// [`Session::run_tiered`]: if the VM tier traps, a *fresh* collector
    /// is attached to the oracle re-run, so the returned profile always
    /// describes the execution that produced the result. The fallback
    /// diagnostic and the session-lifetime fallback total are surfaced on
    /// the profile itself.
    pub fn run_profiled(
        &self,
        name: &str,
        args: &[ArgVal],
        mode: ExecMode,
        tier: ExecTier,
    ) -> Result<(RunOutcome, crate::trace::Profile), RunError> {
        let unit_id = self
            .artifact
            .prog
            .unit_id(name)
            .ok_or_else(|| RunError::BadCall { name: name.into(), msg: "unknown unit".into() })?;
        let mode_str = match mode {
            ExecMode::Serial => "serial".to_string(),
            ExecMode::Parallel { threads } => format!("parallel({threads})"),
            ExecMode::Simulated { threads } => format!("simulated({threads})"),
        };
        // Worker busy-time accounting is cheap but not free: the pool
        // collects it only while a profiled Parallel run is in flight.
        let pool = match mode {
            ExecMode::Parallel { threads } => Some(self.pool_for(threads)),
            _ => None,
        };
        if let Some(p) = &pool {
            p.set_metrics(true);
            p.take_metrics(); // discard leftovers from earlier runs
        }
        let finish = |prof: crate::trace::Collector, tier_str: &str, wall_ns: u64| {
            let (spans, steps) = prof.finish();
            let regions = pool
                .as_ref()
                .map(|p| {
                    p.take_metrics()
                        .into_iter()
                        .map(|m| crate::trace::RegionReport {
                            threads: m.threads as u64,
                            wall_ns: m.wall_ns,
                            busy_ns: m.busy_ns,
                            line: m.line as u64,
                            sched: m.sched.render(),
                        })
                        .collect()
                })
                .unwrap_or_default();
            crate::trace::Profile {
                entry: name.to_string(),
                tier: tier_str.to_string(),
                mode: mode_str.clone(),
                wall_ns,
                steps,
                max_steps: self.limits.max_steps,
                spans,
                regions,
                fallback: None,
                fallback_count: self.fallback_count(),
            }
        };
        match tier {
            ExecTier::Vm => {
                let forced = self.force_vm_trap.swap(false, Ordering::Relaxed);
                let prof = crate::trace::Collector::new();
                let t0 = std::time::Instant::now();
                let vm_run = catch_unwind(AssertUnwindSafe(|| {
                    if forced {
                        panic!("forced VM trap (test hook)");
                    }
                    self.run_on_vm(unit_id, args, mode, Some(&prof))
                }));
                let trap = match vm_run {
                    Err(payload) => payload_str(&*payload),
                    Ok(Err(ref e)) if matches!(e.root(), RunError::Trap { .. }) => e.to_string(),
                    Ok(run) => {
                        let wall_ns = t0.elapsed().as_nanos() as u64;
                        if let Some(p) = &pool {
                            p.set_metrics(false);
                        }
                        let out = run?;
                        return Ok((out, finish(prof, "vm", wall_ns)));
                    }
                };
                // The VM trapped: re-profile on the oracle with a fresh
                // collector, so the profile matches the answer's tier.
                self.fallback_count.fetch_add(1, Ordering::Relaxed);
                if let Some(p) = &pool {
                    p.take_metrics(); // drop partials from the trapped attempt
                }
                let fb = TierFallback { unit: name.into(), what: trap };
                let prof = crate::trace::Collector::new();
                let t0 = std::time::Instant::now();
                let run = self.run_on_oracle(unit_id, args, mode, Some(&prof));
                let wall_ns = t0.elapsed().as_nanos() as u64;
                if let Some(p) = &pool {
                    p.set_metrics(false);
                }
                let mut out = run?;
                out.fallback = Some(fb.clone());
                let mut profile = finish(prof, "tree-walk", wall_ns);
                profile.fallback =
                    Some(crate::trace::FallbackInfo { unit: fb.unit, what: fb.what });
                Ok((out, profile))
            }
            ExecTier::TreeWalk => {
                let prof = crate::trace::Collector::new();
                let t0 = std::time::Instant::now();
                let run = self.run_on_oracle(unit_id, args, mode, Some(&prof));
                let wall_ns = t0.elapsed().as_nanos() as u64;
                if let Some(p) = &pool {
                    p.set_metrics(false);
                }
                let out = run?;
                Ok((out, finish(prof, "tree-walk", wall_ns)))
            }
        }
    }

    fn make_exec(&self, mode: ExecMode) -> Exec {
        let pool = match mode {
            ExecMode::Parallel { threads } => Some(self.pool_for(threads)),
            _ => None,
        };
        Exec {
            prog: Arc::clone(&self.artifact.prog),
            globals: Arc::clone(&self.globals),
            mode,
            pool,
            critical: Arc::clone(&self.critical),
            printed: Mutex::new(String::new()),
            sched_overrides: Arc::clone(&self.sched_overrides.lock()),
            limits: EffLimits::start(&self.limits),
            vector_enabled: self.vector_enabled.load(Ordering::Relaxed),
            vector_entries: Arc::clone(&self.vector_entries),
        }
    }

    fn run_on_vm(
        &self,
        unit_id: usize,
        args: &[ArgVal],
        mode: ExecMode,
        prof: Option<&crate::trace::Collector>,
    ) -> Result<RunOutcome, RunError> {
        let exec = self.make_exec(mode);
        let traced = matches!(mode, ExecMode::Simulated { .. });
        let bunits = self.bytecode_for(traced);
        let (result, trace, printed) = crate::vm::run_vm(&exec, &bunits, unit_id, args, prof)?;
        Ok(RunOutcome { result, trace, printed, fallback: None })
    }

    /// Runs on the tree-walk oracle, containing any internal panic as
    /// [`RunError::Trap`] (the oracle is the last tier — there is nothing
    /// left to fall back to).
    fn run_on_oracle(
        &self,
        unit_id: usize,
        args: &[ArgVal],
        mode: ExecMode,
        prof: Option<&crate::trace::Collector>,
    ) -> Result<RunOutcome, RunError> {
        let traced = matches!(mode, ExecMode::Simulated { .. });
        catch_unwind(AssertUnwindSafe(|| {
            let exec = self.make_exec(mode);
            let mut task = Task::new(&exec, 0, traced);
            task.prof = prof;
            let frame = task.entry_frame(unit_id, args)?;
            let (result, trace, printed) = task.run_entry(unit_id, frame)?;
            Ok(RunOutcome { result, trace, printed, fallback: None })
        }))
        .unwrap_or_else(|payload| Err(RunError::Trap { what: payload_str(&*payload) }))
    }

    /// Reads a global scalar by diagnostic name (`module::var`,
    /// `module::var%field`, `common block::var`, `unit::savevar`).
    pub fn global_scalar(&self, name: &str) -> Option<Val> {
        let prog = &self.artifact.prog;
        let id = prog.global_id(name)?;
        let decl = &prog.globals[id];
        if decl.rank != 0 {
            return None;
        }
        let bits = self.globals.cells[id].load_bits(0);
        Some(match decl.ty {
            ScalarTy::I => Val::I(bits as i64),
            ScalarTy::F => Val::F(f64::from_bits(bits)),
            ScalarTy::B => Val::B(bits != 0),
        })
    }

    /// Writes a global scalar.
    pub fn set_global_scalar(&self, name: &str, v: Val) -> bool {
        let prog = &self.artifact.prog;
        let Some(id) = prog.global_id(name) else { return false };
        let decl = &prog.globals[id];
        if decl.rank != 0 {
            return false;
        }
        let bits = match decl.ty {
            ScalarTy::I => v.as_i() as u64,
            ScalarTy::F => v.as_f().to_bits(),
            ScalarTy::B => u64::from(v.as_b()),
        };
        self.globals.cells[id].store_bits(0, bits);
        true
    }

    /// Array handle of a global (thread 0 instance for per-thread cells).
    pub fn global_array(&self, name: &str) -> Option<Arc<ArrayObj>> {
        let id = self.artifact.prog.global_id(name)?;
        self.globals.cells[id].array_handle(0)
    }

    /// Lists global diagnostic names (tooling).
    pub fn global_names(&self) -> Vec<String> {
        self.artifact.prog.globals.iter().map(|g| g.name.clone()).collect()
    }
}

/// An LRU cache of [`CompiledProgram`]s keyed by [`source_hash`], with
/// monotone hit/miss/eviction counters. Repeated compiles of identical
/// sources return the *same* `Arc`; compilation runs outside the lock so
/// a slow compile never blocks concurrent lookups of other entries.
pub struct ArtifactCache {
    cap: usize,
    /// Recency-ordered: front is least recently used, back is most.
    inner: Mutex<Vec<(u64, Arc<CompiledProgram>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ArtifactCache {
    /// Creates a cache holding at most `capacity` artifacts
    /// (`capacity == 0` is clamped to 1).
    pub fn new(capacity: usize) -> ArtifactCache {
        ArtifactCache {
            cap: capacity.max(1),
            inner: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum number of artifacts retained.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Returns the cached artifact for `sources`, compiling (outside the
    /// cache lock) on first sight. Exactly one of the hit/miss counters
    /// advances per call. If two threads race to compile the same new
    /// sources, both compile but all callers get one winning `Arc`, so
    /// "same source ⇒ same artifact" holds even under the race.
    pub fn get_or_compile(&self, sources: &[&str]) -> Result<Arc<CompiledProgram>, CompileError> {
        let hash = source_hash(sources);
        if let Some(found) = self.touch(hash) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(found);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = CompiledProgram::compile(sources)?;
        let mut inner = self.inner.lock();
        // Re-check: a racer may have inserted while we compiled. Keeping
        // the incumbent preserves the same-Arc guarantee.
        if let Some(pos) = inner.iter().position(|(h, _)| *h == hash) {
            let entry = inner.remove(pos);
            let found = Arc::clone(&entry.1);
            inner.push(entry);
            return Ok(found);
        }
        inner.push((hash, Arc::clone(&fresh)));
        while inner.len() > self.cap {
            inner.remove(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(fresh)
    }

    /// Looks up `hash` and, on a hit, marks it most recently used.
    fn touch(&self, hash: u64) -> Option<Arc<CompiledProgram>> {
        let mut inner = self.inner.lock();
        let pos = inner.iter().position(|(h, _)| *h == hash)?;
        let entry = inner.remove(pos);
        let found = Arc::clone(&entry.1);
        inner.push(entry);
        Some(found)
    }

    /// Number of artifacts currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Cache hits so far (monotone).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far (monotone).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evictions so far (monotone).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Hits over lookups, 0.0 before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Source hashes in recency order, least recently used first
    /// (test/tooling introspection of the eviction order).
    pub fn lru_hashes(&self) -> Vec<u64> {
        self.inner.lock().iter().map(|(h, _)| *h).collect()
    }
}

/// One batched invocation: entry point, arguments, execution mode, and
/// optional per-job [`RunLimits`]. Defaults to Serial with the session's
/// default limits.
pub struct Job {
    entry: String,
    args: Vec<ArgVal>,
    mode: ExecMode,
    limits: Option<RunLimits>,
    force_trap: bool,
}

impl Job {
    /// A Serial-mode job with default limits.
    pub fn new(entry: impl Into<String>, args: Vec<ArgVal>) -> Job {
        Job { entry: entry.into(), args, mode: ExecMode::Serial, limits: None, force_trap: false }
    }

    /// Sets the execution mode. `Serial` and `Simulated` jobs run
    /// concurrently across the batch pool; `Parallel` jobs fork the
    /// shared pool themselves, so the queue runs them one at a time on
    /// the submitting thread (never oversubscribing).
    pub fn mode(mut self, mode: ExecMode) -> Job {
        self.mode = mode;
        self
    }

    /// Attaches per-job execution limits (step budget, deadline, call
    /// depth); a tripped limit fails *this* job only.
    pub fn limits(mut self, limits: RunLimits) -> Job {
        self.limits = Some(limits);
        self
    }

    /// Test hook: the job's first VM run traps, exercising mid-batch
    /// fallback isolation.
    #[doc(hidden)]
    pub fn debug_force_trap(mut self) -> Job {
        self.force_trap = true;
        self
    }
}

/// What a [`Job`] produced: the outcome (or per-job error) plus the
/// private [`Session`] it ran in, for reading back globals.
pub struct JobResult {
    /// The session the job ran in (its globals hold the outputs).
    pub session: Session,
    /// The job's outcome or its own failure; sibling jobs are unaffected.
    pub result: Result<RunOutcome, RunError>,
}

type BatchSlot = Mutex<Option<Result<RunOutcome, RunError>>>;

/// Batches many jobs — possibly over different artifacts — across one
/// shared [`PoolSet`]. Each job gets a private [`Session`], so a job
/// that traps, trips its limits, or corrupts its own globals cannot
/// touch a sibling; the pool contains any panic and self-heals.
pub struct JobQueue {
    pools: Arc<PoolSet>,
    threads: usize,
    pending: Vec<(Arc<CompiledProgram>, Job)>,
}

impl JobQueue {
    /// A queue dispatching over `pools` with `threads`-wide batch
    /// concurrency (`0` is clamped to 1).
    pub fn new(pools: Arc<PoolSet>, threads: usize) -> JobQueue {
        JobQueue { pools, threads: threads.max(1), pending: Vec::new() }
    }

    /// Enqueues `job` against `artifact`. Nothing runs until
    /// [`JobQueue::run_batch`].
    pub fn submit(&mut self, artifact: &Arc<CompiledProgram>, job: Job) {
        self.pending.push((Arc::clone(artifact), job));
    }

    /// Number of jobs waiting.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Runs every pending job and returns results in submission order.
    ///
    /// Serial/Simulated jobs are dispatched across the batch pool via a
    /// dynamic dispenser (a stalled job does not idle the other
    /// workers); Parallel jobs run afterwards on the calling thread,
    /// forking the same shared pool set one at a time. Either way the
    /// host never runs more than the pool-set threads at once.
    pub fn run_batch(&mut self) -> Vec<JobResult> {
        let jobs = std::mem::take(&mut self.pending);
        let sessions: Vec<Session> = jobs
            .iter()
            .map(|(artifact, job)| {
                let mut s = Session::new(Arc::clone(artifact), Arc::clone(&self.pools));
                if let Some(l) = job.limits {
                    s.set_limits(l);
                }
                if job.force_trap {
                    s.debug_force_vm_trap();
                }
                s
            })
            .collect();
        let slots: Vec<BatchSlot> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let run_one = |i: usize| {
            let (_, job) = &jobs[i];
            let out = sessions[i].run(&job.entry, &job.args, job.mode);
            *slots[i].lock() = Some(out);
        };
        // Pool-dispatched fraction: everything that does not fork a team
        // of its own.
        let pooled: Vec<usize> = jobs
            .iter()
            .enumerate()
            .filter(|(_, (_, job))| !matches!(job.mode, ExecMode::Parallel { .. }))
            .map(|(i, _)| i)
            .collect();
        if !pooled.is_empty() {
            let pool = self.pools.pool_for(self.threads);
            let disp =
                omprt::Dispenser::new(omprt::Schedule::Dynamic(1), pooled.len(), pool.threads());
            let region = pool.run(|_tid| {
                while let Some((lo, hi)) = disp.claim() {
                    for &i in &pooled[lo..hi] {
                        run_one(i);
                    }
                }
            });
            if let Err(p) = region {
                // Should be unreachable — `Session::run` already contains
                // traps — but if a panic does escape, pin it on the jobs
                // that never produced a result rather than losing it.
                for &i in &pooled {
                    let mut slot = slots[i].lock();
                    if slot.is_none() {
                        *slot = Some(Err(RunError::Trap { what: p.what.clone() }));
                    }
                }
            }
        }
        // Team-forking jobs: one at a time, on the caller, over the same
        // shared pools.
        for (i, (_, job)) in jobs.iter().enumerate() {
            if matches!(job.mode, ExecMode::Parallel { .. }) {
                run_one(i);
            }
        }
        sessions
            .into_iter()
            .zip(slots)
            .map(|(session, slot)| JobResult {
                result: slot.into_inner().unwrap_or_else(|| {
                    Err(RunError::Trap { what: "job produced no result".into() })
                }),
                session,
            })
            .collect()
    }
}

/// The top of the service layer: an [`ArtifactCache`] plus a shared
/// [`PoolSet`], from which sessions and job queues are minted.
pub struct EngineService {
    cache: ArtifactCache,
    pools: Arc<PoolSet>,
}

impl EngineService {
    /// A service caching up to `cache_capacity` compiled artifacts.
    pub fn new(cache_capacity: usize) -> EngineService {
        EngineService { cache: ArtifactCache::new(cache_capacity), pools: Arc::new(PoolSet::new()) }
    }

    /// Compiles `sources` through the cache: identical sources return
    /// the same shared artifact.
    pub fn compile(&self, sources: &[&str]) -> Result<Arc<CompiledProgram>, CompileError> {
        self.cache.get_or_compile(sources)
    }

    /// Compiles (through the cache) and opens a session on the shared
    /// pool set.
    pub fn session(&self, sources: &[&str]) -> Result<Session, CompileError> {
        Ok(Session::new(self.compile(sources)?, Arc::clone(&self.pools)))
    }

    /// Opens a session over an already-compiled artifact.
    pub fn session_for(&self, artifact: &Arc<CompiledProgram>) -> Session {
        Session::new(Arc::clone(artifact), Arc::clone(&self.pools))
    }

    /// A job queue with `threads`-wide batch concurrency over the shared
    /// pool set.
    pub fn queue(&self, threads: usize) -> JobQueue {
        JobQueue::new(Arc::clone(&self.pools), threads)
    }

    /// The artifact cache (hit/miss/eviction introspection).
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// The shared pool set.
    pub fn pools(&self) -> &Arc<PoolSet> {
        &self.pools
    }
}

/// Renders a `catch_unwind` payload for diagnostics.
pub(crate) fn payload_str(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

pub(crate) fn build_globals(prog: &RProgram) -> Globals {
    let cells = prog
        .globals
        .iter()
        .map(|decl| {
            if decl.rank == 0 && !decl.allocatable && decl.dims.is_empty() {
                let cell = if decl.per_thread {
                    GlobalCell::new_per_thread_scalar()
                } else {
                    GlobalCell::new_scalar()
                };
                if let Some(bits) = decl.init_bits {
                    match &cell {
                        GlobalCell::Scalar(c) => {
                            c.store(bits, std::sync::atomic::Ordering::Relaxed)
                        }
                        GlobalCell::PerThreadScalar(v) => {
                            for c in v.iter() {
                                c.store(bits, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                        _ => {}
                    }
                }
                cell
            } else if decl.per_thread {
                let cell = GlobalCell::new_per_thread_array();
                if !decl.allocatable && !decl.dims.is_empty() {
                    for t in 0..crate::storage::MAX_THREADS {
                        cell.set_array(t, Some(Arc::new(ArrayObj::new(decl.ty, decl.dims.clone()))));
                    }
                }
                cell
            } else {
                let cell = GlobalCell::new_array();
                if !decl.allocatable && !decl.dims.is_empty() {
                    cell.set_array(0, Some(Arc::new(ArrayObj::new(decl.ty, decl.dims.clone()))));
                }
                cell
            }
        })
        .collect();
    Globals { cells }
}
