//! The resolved IR: names replaced by slots, types settled, intrinsics
//! identified. Produced by [`crate::sema`], consumed by [`crate::interp`].

use crate::ast::{Bin, RedOp};
use crate::intrinsics::Intr;

/// Scalar evaluation types. `REAL` and `REAL(8)` both evaluate as `F`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarTy {
    I,
    F,
    B,
}

/// Where a variable lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Place {
    /// Slot in the current call frame.
    Frame(usize),
    /// Index into [`crate::storage::Globals`].
    Global(usize),
}

/// Resolved variable metadata (one table per unit; index = `VarIdx`).
#[derive(Debug, Clone)]
pub struct VarInfo {
    pub name: String,
    pub ty: ScalarTy,
    pub place: Place,
    /// Rank 0 = scalar.
    pub rank: usize,
    /// Static dims for non-allocatable arrays (lo, hi).
    pub dims: Vec<(i64, i64)>,
    pub allocatable: bool,
    /// True for parameters (scalars use value-result; arrays share cells).
    pub is_param: bool,
}

pub type VarIdx = usize;
pub type UnitId = usize;

/// Resolved expressions.
#[derive(Debug, Clone)]
pub enum RExpr {
    ConstI(i64),
    ConstF(f64),
    ConstB(bool),
    LoadScalar(VarIdx),
    LoadElem { v: VarIdx, subs: Vec<RExpr> },
    Bin { op: Bin, ty: ScalarTy, l: Box<RExpr>, r: Box<RExpr> },
    Neg(Box<RExpr>),
    Not(Box<RExpr>),
    /// Numeric conversion inserted by sema.
    ToF(Box<RExpr>),
    ToI(Box<RExpr>),
    Intrinsic { f: Intr, args: Vec<RExpr> },
    /// Whole-array reduction intrinsics.
    ArrReduce { f: ArrRed, v: VarIdx },
    /// `ALLOCATED(x)`.
    AllocatedQ(VarIdx),
    /// User function call.
    CallFn { unit: UnitId, args: Vec<RArg>, ret: ScalarTy },
}

/// Whole-array reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrRed {
    Sum,
    Maxval,
    Minval,
    Size,
}

/// A resolved call argument.
#[derive(Debug, Clone)]
pub enum RArg {
    /// Scalar variable: copy-in / copy-out (value-result).
    ByRefScalar(VarIdx),
    /// Array element: copy-in / copy-out.
    ByRefElem { v: VarIdx, subs: Vec<RExpr> },
    /// Whole array: handle shared with the callee.
    Array(VarIdx),
    /// Arbitrary expression: by value.
    Value(RExpr),
}

/// Resolved OMP PARALLEL DO clauses.
#[derive(Debug, Clone)]
pub struct ROmp {
    /// PRIVATE + FIRSTPRIVATE variables (per-thread copies; firstprivate
    /// initialization is what frame cloning gives us anyway).
    pub private: Vec<VarIdx>,
    /// `(op, var)` reductions; scalars only.
    pub reductions: Vec<(RedOp, VarIdx)>,
    pub collapse: usize,
    pub num_threads: Option<Box<RExpr>>,
    pub chunk: Option<usize>,
}

/// Compiler-model classification of a serial DO loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VecClass {
    /// Not vectorizable (calls, control flow, inner loops).
    #[default]
    None,
    /// Straight-line elementwise body: SIMD bucket.
    Simd,
    /// Single zero-store body: memset bucket.
    Memset,
}

/// A resolved statement tagged with its source line, so both execution
/// tiers can report *where* a runtime fault happened (and the bytecode
/// compiler can emit a PC→line debug table).
#[derive(Debug, Clone)]
pub struct SpStmt {
    pub line: u32,
    pub s: RStmt,
}

/// Resolved statements.
#[derive(Debug, Clone)]
pub enum RStmt {
    AssignScalar { v: VarIdx, e: RExpr },
    AssignElem { v: VarIdx, subs: Vec<RExpr>, e: RExpr },
    /// Whole-array assignment from a scalar (broadcast).
    Broadcast { v: VarIdx, e: RExpr },
    /// Whole-array copy `dst = src` (shapes checked at runtime).
    CopyArray { dst: VarIdx, src: VarIdx },
    /// `!$OMP ATOMIC`-protected update `v[subs] = v[subs] op e`.
    AtomicUpdate { v: VarIdx, subs: Vec<RExpr>, op: RedOp, e: RExpr },
    If { arms: Vec<(RExpr, Vec<SpStmt>)>, else_body: Vec<SpStmt> },
    Do {
        var: VarIdx,
        start: RExpr,
        end: RExpr,
        step: Option<RExpr>,
        body: Vec<SpStmt>,
        omp: Option<ROmp>,
        vec: VecClass,
        /// For COLLAPSE(n): the next n-1 perfectly-nested inner loops.
        /// (Filled by sema when the loop carries an OMP collapse clause.)
        collapse_with: Vec<CollapseDim>,
    },
    DoWhile { cond: RExpr, body: Vec<SpStmt> },
    CallSub { unit: UnitId, args: Vec<RArg> },
    Allocate { v: VarIdx, dims: Vec<(RExpr, RExpr)> },
    Deallocate { v: VarIdx },
    Critical { name: String, body: Vec<SpStmt> },
    Return,
    Exit,
    Cycle,
    Print(Vec<PrintItem>),
    Stop(Option<String>),
    Nop,
}

/// One item of a PRINT list.
#[derive(Debug, Clone)]
pub enum PrintItem {
    Str(String),
    Val(RExpr),
}

/// One collapsed inner dimension: its loop variable and bounds.
#[derive(Debug, Clone)]
pub struct CollapseDim {
    pub var: VarIdx,
    pub start: RExpr,
    pub end: RExpr,
}

/// A resolved subprogram.
#[derive(Debug, Clone)]
pub struct RUnit {
    pub name: String,
    /// Parameter var indices, in order.
    pub params: Vec<VarIdx>,
    /// All variables of the unit.
    pub vars: Vec<VarInfo>,
    /// Frame size (slots).
    pub frame_size: usize,
    /// Result slot for functions.
    pub result: Option<(VarIdx, ScalarTy)>,
    pub body: Vec<SpStmt>,
}

/// Metadata for one global cell (allocation + reset + introspection).
#[derive(Debug, Clone)]
pub struct GlobalDecl {
    /// Diagnostic name, e.g. `fuliou_mod::fi%vd` or `common rad::cc`.
    pub name: String,
    pub ty: ScalarTy,
    pub rank: usize,
    /// Static dims; empty for scalars and allocatables.
    pub dims: Vec<(i64, i64)>,
    pub allocatable: bool,
    /// Per-thread storage (THREADPRIVATE, or SAVE used in parallel).
    pub per_thread: bool,
    /// Scalar initializer bits.
    pub init_bits: Option<u64>,
}

/// The resolved program.
#[derive(Debug, Clone, Default)]
pub struct RProgram {
    pub units: Vec<RUnit>,
    pub globals: Vec<GlobalDecl>,
}

impl RProgram {
    pub fn unit_id(&self, name: &str) -> Option<UnitId> {
        let lower = name.to_ascii_lowercase();
        self.units.iter().position(|u| u.name == lower)
    }

    /// Finds a global cell index by its diagnostic name.
    pub fn global_id(&self, name: &str) -> Option<usize> {
        self.globals.iter().position(|g| g.name == name)
    }
}
