//! The resolved IR: names replaced by slots, types settled, intrinsics
//! identified. Produced by [`crate::sema`], consumed by [`crate::interp`].

use crate::ast::{Bin, RedOp};
use crate::intrinsics::Intr;

/// Scalar evaluation types. `REAL` and `REAL(8)` both evaluate as `F`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarTy {
    I,
    F,
    B,
}

/// Where a variable lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Place {
    /// Slot in the current call frame.
    Frame(usize),
    /// Index into [`crate::storage::Globals`].
    Global(usize),
}

/// Resolved variable metadata (one table per unit; index = `VarIdx`).
#[derive(Debug, Clone)]
pub struct VarInfo {
    pub name: String,
    pub ty: ScalarTy,
    pub place: Place,
    /// Rank 0 = scalar.
    pub rank: usize,
    /// Static dims for non-allocatable arrays (lo, hi).
    pub dims: Vec<(i64, i64)>,
    pub allocatable: bool,
    /// True for parameters (scalars use value-result; arrays share cells).
    pub is_param: bool,
}

pub type VarIdx = usize;
pub type UnitId = usize;

/// Resolved expressions.
#[derive(Debug, Clone)]
pub enum RExpr {
    ConstI(i64),
    ConstF(f64),
    ConstB(bool),
    LoadScalar(VarIdx),
    LoadElem { v: VarIdx, subs: Vec<RExpr> },
    Bin { op: Bin, ty: ScalarTy, l: Box<RExpr>, r: Box<RExpr> },
    Neg(Box<RExpr>),
    Not(Box<RExpr>),
    /// Numeric conversion inserted by sema.
    ToF(Box<RExpr>),
    ToI(Box<RExpr>),
    Intrinsic { f: Intr, args: Vec<RExpr> },
    /// Whole-array reduction intrinsics.
    ArrReduce { f: ArrRed, v: VarIdx },
    /// `ALLOCATED(x)`.
    AllocatedQ(VarIdx),
    /// User function call.
    CallFn { unit: UnitId, args: Vec<RArg>, ret: ScalarTy },
}

/// Whole-array reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrRed {
    Sum,
    Maxval,
    Minval,
    Size,
}

/// A resolved call argument.
#[derive(Debug, Clone)]
pub enum RArg {
    /// Scalar variable: copy-in / copy-out (value-result).
    ByRefScalar(VarIdx),
    /// Array element: copy-in / copy-out.
    ByRefElem { v: VarIdx, subs: Vec<RExpr> },
    /// Whole array: handle shared with the callee.
    Array(VarIdx),
    /// Arbitrary expression: by value.
    Value(RExpr),
}

/// Resolved OMP PARALLEL DO clauses.
#[derive(Debug, Clone)]
pub struct ROmp {
    /// PRIVATE + FIRSTPRIVATE variables (per-thread copies; firstprivate
    /// initialization is what frame cloning gives us anyway).
    pub private: Vec<VarIdx>,
    /// `(op, var)` reductions; scalars only.
    pub reductions: Vec<(RedOp, VarIdx)>,
    pub collapse: usize,
    pub num_threads: Option<Box<RExpr>>,
    /// Resolved loop schedule (clause absent → static block).
    pub sched: omprt::Schedule,
    /// The region body touches per-thread (SAVE / THREADPRIVATE) storage
    /// directly. Staging data through such cells across regions is only
    /// consistent when the iteration→thread mapping is reproducible, so
    /// runtime-dispatched schedules are legalized to static for these
    /// regions (see [`omprt::Schedule::legalize_for_per_thread`]).
    /// Computed by [`mark_per_thread_regions`].
    pub per_thread_access: bool,
}

/// Compiler-model classification of a serial DO loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VecClass {
    /// Not vectorizable (calls, control flow, inner loops).
    #[default]
    None,
    /// Straight-line elementwise body: SIMD bucket.
    Simd,
    /// Single zero-store body: memset bucket.
    Memset,
}

/// A resolved statement tagged with its source line, so both execution
/// tiers can report *where* a runtime fault happened (and the bytecode
/// compiler can emit a PC→line debug table).
#[derive(Debug, Clone)]
pub struct SpStmt {
    pub line: u32,
    pub s: RStmt,
}

/// Resolved statements.
#[derive(Debug, Clone)]
pub enum RStmt {
    AssignScalar { v: VarIdx, e: RExpr },
    AssignElem { v: VarIdx, subs: Vec<RExpr>, e: RExpr },
    /// Whole-array assignment from a scalar (broadcast).
    Broadcast { v: VarIdx, e: RExpr },
    /// Whole-array copy `dst = src` (shapes checked at runtime).
    CopyArray { dst: VarIdx, src: VarIdx },
    /// `!$OMP ATOMIC`-protected update `v[subs] = v[subs] op e`.
    AtomicUpdate { v: VarIdx, subs: Vec<RExpr>, op: RedOp, e: RExpr },
    If { arms: Vec<(RExpr, Vec<SpStmt>)>, else_body: Vec<SpStmt> },
    Do {
        var: VarIdx,
        start: RExpr,
        end: RExpr,
        step: Option<RExpr>,
        body: Vec<SpStmt>,
        omp: Option<ROmp>,
        vec: VecClass,
        /// For COLLAPSE(n): the next n-1 perfectly-nested inner loops.
        /// (Filled by sema when the loop carries an OMP collapse clause.)
        collapse_with: Vec<CollapseDim>,
    },
    DoWhile { cond: RExpr, body: Vec<SpStmt> },
    CallSub { unit: UnitId, args: Vec<RArg> },
    Allocate { v: VarIdx, dims: Vec<(RExpr, RExpr)> },
    Deallocate { v: VarIdx },
    Critical { name: String, body: Vec<SpStmt> },
    Return,
    Exit,
    Cycle,
    Print(Vec<PrintItem>),
    Stop(Option<String>),
    Nop,
}

/// One item of a PRINT list.
#[derive(Debug, Clone)]
pub enum PrintItem {
    Str(String),
    Val(RExpr),
}

/// One collapsed inner dimension: its loop variable and bounds.
#[derive(Debug, Clone)]
pub struct CollapseDim {
    pub var: VarIdx,
    pub start: RExpr,
    pub end: RExpr,
}

/// A resolved subprogram.
#[derive(Debug, Clone)]
pub struct RUnit {
    pub name: String,
    /// Parameter var indices, in order.
    pub params: Vec<VarIdx>,
    /// All variables of the unit.
    pub vars: Vec<VarInfo>,
    /// Frame size (slots).
    pub frame_size: usize,
    /// Result slot for functions.
    pub result: Option<(VarIdx, ScalarTy)>,
    pub body: Vec<SpStmt>,
}

/// Metadata for one global cell (allocation + reset + introspection).
#[derive(Debug, Clone)]
pub struct GlobalDecl {
    /// Diagnostic name, e.g. `fuliou_mod::fi%vd` or `common rad::cc`.
    pub name: String,
    pub ty: ScalarTy,
    pub rank: usize,
    /// Static dims; empty for scalars and allocatables.
    pub dims: Vec<(i64, i64)>,
    pub allocatable: bool,
    /// Per-thread storage (THREADPRIVATE, or SAVE used in parallel).
    pub per_thread: bool,
    /// Scalar initializer bits.
    pub init_bits: Option<u64>,
    /// Per-element initializer bits for statically-shaped arrays
    /// (fixed-form `DATA`); length equals the element count.
    pub init_elems: Option<Vec<u64>>,
}

/// The resolved program.
#[derive(Debug, Clone, Default)]
pub struct RProgram {
    pub units: Vec<RUnit>,
    pub globals: Vec<GlobalDecl>,
}

/// Post-pass: set [`ROmp::per_thread_access`] on every parallel region
/// whose body references a per-thread (SAVE / THREADPRIVATE) global cell.
/// Only direct references count — a callee that uses its own SAVE locals
/// writes and reads them within one invocation, which is consistent on
/// whichever thread runs that iteration.
pub fn mark_per_thread_regions(prog: &mut RProgram) {
    let RProgram { units, globals } = prog;
    for u in units.iter_mut() {
        let RUnit { vars, body, .. } = u;
        mark_stmts(body, vars, globals);
    }
}

fn mark_stmts(stmts: &mut [SpStmt], vars: &[VarInfo], globals: &[GlobalDecl]) {
    for sp in stmts.iter_mut() {
        match &mut sp.s {
            RStmt::Do { var, body, omp, collapse_with, .. } => {
                mark_stmts(body, vars, globals);
                if let Some(o) = omp {
                    let mut touched = pt_var(*var, vars, globals)
                        || collapse_with.iter().any(|c| pt_var(c.var, vars, globals));
                    touched = touched || stmts_touch_pt(body, vars, globals);
                    o.per_thread_access = touched;
                }
            }
            RStmt::If { arms, else_body } => {
                for (_, b) in arms.iter_mut() {
                    mark_stmts(b, vars, globals);
                }
                mark_stmts(else_body, vars, globals);
            }
            RStmt::DoWhile { body, .. } | RStmt::Critical { body, .. } => {
                mark_stmts(body, vars, globals);
            }
            _ => {}
        }
    }
}

fn pt_var(v: VarIdx, vars: &[VarInfo], globals: &[GlobalDecl]) -> bool {
    matches!(vars[v].place, Place::Global(c) if globals[c].per_thread)
}

fn stmts_touch_pt(stmts: &[SpStmt], vars: &[VarInfo], globals: &[GlobalDecl]) -> bool {
    let pt = |v: VarIdx| pt_var(v, vars, globals);
    let pe = |e: &RExpr| expr_touches_pt(e, vars, globals);
    stmts.iter().any(|sp| match &sp.s {
        RStmt::AssignScalar { v, e } | RStmt::Broadcast { v, e } => pt(*v) || pe(e),
        RStmt::AssignElem { v, subs, e } => pt(*v) || subs.iter().any(pe) || pe(e),
        RStmt::CopyArray { dst, src } => pt(*dst) || pt(*src),
        RStmt::AtomicUpdate { v, subs, e, .. } => pt(*v) || subs.iter().any(pe) || pe(e),
        RStmt::If { arms, else_body } => {
            arms.iter().any(|(c, b)| pe(c) || stmts_touch_pt(b, vars, globals))
                || stmts_touch_pt(else_body, vars, globals)
        }
        RStmt::Do { var, start, end, step, body, collapse_with, .. } => {
            pt(*var)
                || pe(start)
                || pe(end)
                || step.as_ref().is_some_and(&pe)
                || collapse_with
                    .iter()
                    .any(|c| pt(c.var) || pe(&c.start) || pe(&c.end))
                || stmts_touch_pt(body, vars, globals)
        }
        RStmt::DoWhile { cond, body } => pe(cond) || stmts_touch_pt(body, vars, globals),
        RStmt::CallSub { args, .. } => args.iter().any(|a| arg_touches_pt(a, vars, globals)),
        RStmt::Allocate { v, dims } => {
            pt(*v) || dims.iter().any(|(lo, hi)| pe(lo) || pe(hi))
        }
        RStmt::Deallocate { v } => pt(*v),
        RStmt::Critical { body, .. } => stmts_touch_pt(body, vars, globals),
        RStmt::Print(items) => items.iter().any(|i| match i {
            PrintItem::Str(_) => false,
            PrintItem::Val(e) => pe(e),
        }),
        RStmt::Return | RStmt::Exit | RStmt::Cycle | RStmt::Stop(_) | RStmt::Nop => false,
    })
}

fn arg_touches_pt(a: &RArg, vars: &[VarInfo], globals: &[GlobalDecl]) -> bool {
    match a {
        RArg::ByRefScalar(v) | RArg::Array(v) => pt_var(*v, vars, globals),
        RArg::ByRefElem { v, subs } => {
            pt_var(*v, vars, globals)
                || subs.iter().any(|e| expr_touches_pt(e, vars, globals))
        }
        RArg::Value(e) => expr_touches_pt(e, vars, globals),
    }
}

fn expr_touches_pt(e: &RExpr, vars: &[VarInfo], globals: &[GlobalDecl]) -> bool {
    let pt = |v: VarIdx| pt_var(v, vars, globals);
    match e {
        RExpr::ConstI(_) | RExpr::ConstF(_) | RExpr::ConstB(_) => false,
        RExpr::LoadScalar(v) | RExpr::ArrReduce { v, .. } | RExpr::AllocatedQ(v) => pt(*v),
        RExpr::LoadElem { v, subs } => {
            pt(*v) || subs.iter().any(|s| expr_touches_pt(s, vars, globals))
        }
        RExpr::Bin { l, r, .. } => {
            expr_touches_pt(l, vars, globals) || expr_touches_pt(r, vars, globals)
        }
        RExpr::Neg(x) | RExpr::Not(x) | RExpr::ToF(x) | RExpr::ToI(x) => {
            expr_touches_pt(x, vars, globals)
        }
        RExpr::Intrinsic { args, .. } => {
            args.iter().any(|a| expr_touches_pt(a, vars, globals))
        }
        RExpr::CallFn { args, .. } => args.iter().any(|a| arg_touches_pt(a, vars, globals)),
    }
}

impl RProgram {
    pub fn unit_id(&self, name: &str) -> Option<UnitId> {
        let lower = name.to_ascii_lowercase();
        self.units.iter().position(|u| u.name == lower)
    }

    /// Finds a global cell index by its diagnostic name.
    pub fn global_id(&self, name: &str) -> Option<usize> {
        self.globals.iter().position(|g| g.name == name)
    }
}
