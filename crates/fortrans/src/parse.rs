//! Recursive-descent parser: logical lines → [`crate::ast`].

use crate::ast::*;
use crate::error::{CompileError, Span};
use crate::lex::{lex, Line, Tok};

/// Parses a source file.
pub fn parse(source: &str) -> Result<Ast, CompileError> {
    let lines = lex(source)?;
    let mut p = P { lines, li: 0 };
    let mut ast = Ast::default();
    while !p.at_end() {
        ast.modules.push(p.parse_module()?);
    }
    Ok(ast)
}

struct P {
    lines: Vec<Line>,
    li: usize,
}

/// Parses one expression from a token slice, returning it plus the
/// number of tokens consumed. Reused by the fixed-form front end so both
/// forms share one Pratt parser (same precedence, same intrinsics
/// disambiguation downstream).
pub(crate) fn expr_from_toks(toks: &[Tok], lineno: u32) -> Result<(Expr, usize), CompileError> {
    let line = Line { toks: toks.to_vec(), lineno, omp: false };
    let mut c = LineCur::new(&line);
    let e = P::parse_expr_prec(&mut c, 0)?;
    Ok((e, c.i))
}

/// Parses one designator (`a`, `a(i,j)`, `fi%vd(i)`) from a token slice,
/// returning it plus the number of tokens consumed.
pub(crate) fn desig_from_toks(toks: &[Tok], lineno: u32) -> Result<(Desig, usize), CompileError> {
    let line = Line { toks: toks.to_vec(), lineno, omp: false };
    let mut c = LineCur::new(&line);
    let d = P::parse_desig(&mut c)?;
    Ok((d, c.i))
}

/// A cursor over one line's tokens.
struct LineCur<'a> {
    toks: &'a [Tok],
    i: usize,
    span: Span,
}

impl<'a> LineCur<'a> {
    fn new(line: &'a Line) -> Self {
        LineCur { toks: &line.toks, i: 0, span: Span { line: line.lineno } }
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::Parse { msg: msg.into(), span: self.span }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.i + 1)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), CompileError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, CompileError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn done(&self) -> bool {
        self.i >= self.toks.len()
    }

    fn expect_done(&self) -> Result<(), CompileError> {
        if self.done() {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing tokens: {:?}", &self.toks[self.i..])))
        }
    }
}

impl P {
    fn at_end(&self) -> bool {
        self.li >= self.lines.len()
    }

    fn cur(&self) -> &Line {
        &self.lines[self.li]
    }

    fn span(&self) -> Span {
        Span { line: self.lines.get(self.li).map(|l| l.lineno).unwrap_or(0) }
    }

    fn err_here(&self, msg: impl Into<String>) -> CompileError {
        CompileError::Parse { msg: msg.into(), span: self.span() }
    }

    fn advance(&mut self) {
        self.li += 1;
    }

    /// First identifier of the current line, lowercase.
    fn head(&self) -> Option<&str> {
        match self.cur().toks.first() {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn second_kw(&self) -> Option<&str> {
        match self.cur().toks.get(1) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    // ---------------- module level ----------------

    fn parse_module(&mut self) -> Result<Module, CompileError> {
        let span = self.span();
        let mut c = LineCur::new(self.cur());
        if !c.eat_kw("module") {
            return Err(self.err_here("expected MODULE"));
        }
        let name = c.expect_ident("module name")?;
        c.expect_done()?;
        self.advance();

        let mut m = Module {
            name,
            uses: vec![],
            typedefs: vec![],
            decls: vec![],
            threadprivate: vec![],
            units: vec![],
            span,
        };

        // Specification part.
        loop {
            if self.at_end() {
                return Err(self.err_here("unexpected end of file inside MODULE"));
            }
            if self.cur().omp {
                let mut c = LineCur::new(self.cur());
                if c.eat_kw("threadprivate") {
                    c.expect(&Tok::LParen, "(")?;
                    loop {
                        m.threadprivate.push(c.expect_ident("variable name")?);
                        if !c.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    c.expect(&Tok::RParen, ")")?;
                    self.advance();
                    continue;
                }
                return Err(self.err_here("unexpected OMP directive in module specification"));
            }
            match self.head() {
                Some("use") => {
                    let mut c = LineCur::new(self.cur());
                    c.eat_kw("use");
                    m.uses.push(c.expect_ident("module name")?);
                    self.advance();
                }
                Some("implicit") => self.advance(),
                Some("contains") => {
                    self.advance();
                    break;
                }
                Some("end") => break, // module without CONTAINS
                Some("type") if !matches!(self.cur().toks.get(1), Some(Tok::LParen)) => {
                    m.typedefs.push(self.parse_typedef()?);
                }
                Some(_) => {
                    m.decls.push(self.parse_decl()?);
                }
                None => return Err(self.err_here("unexpected line in module")),
            }
        }

        // Subprograms until END MODULE.
        loop {
            if self.at_end() {
                return Err(self.err_here("missing END MODULE"));
            }
            match self.head() {
                Some("end") => {
                    let mut c = LineCur::new(self.cur());
                    c.eat_kw("end");
                    if !c.eat_kw("module") {
                        return Err(self.err_here("expected END MODULE"));
                    }
                    self.advance();
                    return Ok(m);
                }
                Some("subroutine") | Some("function") => {
                    m.units.push(self.parse_unit()?);
                }
                Some(_) if self.second_kw() == Some("function")
                    || matches!(
                        (self.head(), self.cur().toks.get(1)),
                        (Some("real") | Some("integer") | Some("logical") | Some("double"), _)
                    ) =>
                {
                    m.units.push(self.parse_unit()?);
                }
                _ => return Err(self.err_here("expected SUBROUTINE, FUNCTION or END MODULE")),
            }
        }
    }

    fn parse_typedef(&mut self) -> Result<TypeDef, CompileError> {
        let span = self.span();
        let mut c = LineCur::new(self.cur());
        c.eat_kw("type");
        let name = c.expect_ident("type name")?;
        c.expect_done()?;
        self.advance();
        let mut fields = Vec::new();
        loop {
            if self.at_end() {
                return Err(self.err_here("missing END TYPE"));
            }
            if self.head() == Some("end") {
                let mut c = LineCur::new(self.cur());
                c.eat_kw("end");
                if !c.eat_kw("type") {
                    return Err(self.err_here("expected END TYPE"));
                }
                self.advance();
                return Ok(TypeDef { name, fields, span });
            }
            fields.push(self.parse_decl()?);
        }
    }

    /// Parses a type-spec: `INTEGER`, `REAL`, `REAL(8)`, `REAL(KIND=8)`,
    /// `DOUBLE PRECISION`, `LOGICAL`, `CHARACTER(LEN=n)`, `TYPE(name)`.
    fn parse_type_spec(c: &mut LineCur) -> Result<TypeSpec, CompileError> {
        let kw = c.expect_ident("type keyword")?;
        match kw.as_str() {
            "integer" => {
                Self::skip_kind(c)?;
                Ok(TypeSpec::Integer)
            }
            "logical" => Ok(TypeSpec::Logical),
            "double" => {
                if !c.eat_kw("precision") {
                    return Err(c.err("expected DOUBLE PRECISION"));
                }
                Ok(TypeSpec::Real8)
            }
            "real" => {
                if c.peek() == Some(&Tok::LParen) {
                    c.next();
                    // (8) or (KIND=8)
                    if c.eat_kw("kind") {
                        c.expect(&Tok::Assign, "=")?;
                    }
                    let k = match c.next() {
                        Some(Tok::Int(v)) => v,
                        other => return Err(c.err(format!("expected kind value, got {other:?}"))),
                    };
                    c.expect(&Tok::RParen, ")")?;
                    Ok(if k == 8 { TypeSpec::Real8 } else { TypeSpec::Real })
                } else {
                    Ok(TypeSpec::Real)
                }
            }
            "character" => {
                if c.eat(&Tok::LParen) {
                    // LEN=n or LEN=* or n
                    if c.eat_kw("len") {
                        c.expect(&Tok::Assign, "=")?;
                    }
                    match c.next() {
                        Some(Tok::Int(_)) | Some(Tok::Star) => {}
                        other => return Err(c.err(format!("bad CHARACTER length {other:?}"))),
                    }
                    c.expect(&Tok::RParen, ")")?;
                }
                Ok(TypeSpec::Character)
            }
            "type" => {
                c.expect(&Tok::LParen, "(")?;
                let n = c.expect_ident("derived type name")?;
                c.expect(&Tok::RParen, ")")?;
                Ok(TypeSpec::Derived(n))
            }
            other => Err(c.err(format!("unknown type keyword `{other}`"))),
        }
    }

    fn skip_kind(c: &mut LineCur) -> Result<(), CompileError> {
        if c.peek() == Some(&Tok::LParen) && !matches!(c.peek2(), Some(Tok::Ident(_))) {
            c.next();
            loop {
                match c.next() {
                    Some(Tok::RParen) => break,
                    Some(_) => {}
                    None => return Err(c.err("unterminated kind spec")),
                }
            }
        }
        Ok(())
    }

    fn parse_decl(&mut self) -> Result<Decl, CompileError> {
        let span = self.span();
        let line = self.cur().clone();
        let mut c = LineCur::new(&line);
        let spec = Self::parse_type_spec(&mut c)?;
        let mut attrs = Attrs::default();
        while c.eat(&Tok::Comma) {
            let attr = c.expect_ident("attribute")?;
            match attr.as_str() {
                "dimension" => {
                    c.expect(&Tok::LParen, "(")?;
                    attrs.dims = Some(Self::parse_dim_list(&mut c)?);
                    c.expect(&Tok::RParen, ")")?;
                }
                "allocatable" => attrs.allocatable = true,
                "save" => attrs.save = true,
                "parameter" => attrs.parameter = true,
                "intent" => {
                    // INTENT(IN|OUT|INOUT): parsed and ignored (the engine
                    // uses reference semantics for arrays, value-result for
                    // scalars).
                    c.expect(&Tok::LParen, "(")?;
                    c.expect_ident("intent")?;
                    c.expect(&Tok::RParen, ")")?;
                }
                other => return Err(c.err(format!("unsupported attribute `{other}`"))),
            }
        }
        c.expect(&Tok::DoubleColon, "::")?;
        let mut entities = Vec::new();
        loop {
            let name = c.expect_ident("entity name")?;
            let mut dims = None;
            if c.eat(&Tok::LParen) {
                dims = Some(Self::parse_dim_list(&mut c)?);
                c.expect(&Tok::RParen, ")")?;
            }
            let mut init = None;
            if c.eat(&Tok::Assign) {
                init = Some(Self::parse_expr_prec(&mut c, 0)?);
            }
            entities.push(Entity { name, dims, init, init_list: None });
            if !c.eat(&Tok::Comma) {
                break;
            }
        }
        c.expect_done()?;
        self.advance();
        Ok(Decl { spec, attrs, entities, span })
    }

    fn parse_dim_list(c: &mut LineCur) -> Result<Vec<DimDecl>, CompileError> {
        let mut dims = Vec::new();
        loop {
            if c.peek() == Some(&Tok::Colon) {
                c.next();
                dims.push(DimDecl { lo: None, hi: None, deferred: true });
            } else {
                let first = Self::parse_expr_prec(c, 0)?;
                if c.eat(&Tok::Colon) {
                    let hi = Self::parse_expr_prec(c, 0)?;
                    dims.push(DimDecl { lo: Some(first), hi: Some(hi), deferred: false });
                } else {
                    dims.push(DimDecl { lo: None, hi: Some(first), deferred: false });
                }
            }
            if !c.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(dims)
    }

    // ---------------- subprograms ----------------

    fn parse_unit(&mut self) -> Result<Unit, CompileError> {
        let span = self.span();
        let line = self.cur().clone();
        let mut c = LineCur::new(&line);
        let kind = if c.eat_kw("subroutine") {
            UnitKind::Subroutine
        } else {
            let spec = Self::parse_type_spec(&mut c)?;
            if !c.eat_kw("function") {
                return Err(c.err("expected FUNCTION after type spec"));
            }
            UnitKind::Function(spec)
        };
        let name = c.expect_ident("subprogram name")?;
        let mut params = Vec::new();
        if c.eat(&Tok::LParen)
            && !c.eat(&Tok::RParen) {
                loop {
                    params.push(c.expect_ident("parameter name")?);
                    if !c.eat(&Tok::Comma) {
                        break;
                    }
                }
                c.expect(&Tok::RParen, ")")?;
            }
        c.expect_done()?;
        self.advance();

        let mut unit = Unit {
            kind,
            name,
            params,
            uses: vec![],
            decls: vec![],
            commons: vec![],
            body: vec![],
            span,
        };

        // Specification statements.
        loop {
            if self.at_end() {
                return Err(self.err_here("unexpected EOF in subprogram"));
            }
            if self.cur().omp {
                break; // directives start the executable part
            }
            match self.head() {
                Some("use") => {
                    let mut c = LineCur::new(self.cur());
                    c.eat_kw("use");
                    unit.uses.push(c.expect_ident("module name")?);
                    self.advance();
                }
                Some("implicit") => self.advance(),
                Some("common") => {
                    let line = self.cur().clone();
                    let mut c = LineCur::new(&line);
                    c.eat_kw("common");
                    c.expect(&Tok::Slash, "/")?;
                    let block = c.expect_ident("common block name")?;
                    c.expect(&Tok::Slash, "/")?;
                    let mut vars = Vec::new();
                    loop {
                        vars.push(c.expect_ident("variable")?);
                        if !c.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    c.expect_done()?;
                    unit.commons.push((block, vars));
                    self.advance();
                }
                Some("integer") | Some("logical") | Some("double") | Some("character") => {
                    unit.decls.push(self.parse_decl()?);
                }
                Some("real") => {
                    // Could be a declaration `REAL(8) :: x` or an assignment
                    // to a variable named... we forbid variables named like
                    // type keywords, so: declaration.
                    unit.decls.push(self.parse_decl()?);
                }
                Some("type") if matches!(self.cur().toks.get(1), Some(Tok::LParen)) => {
                    unit.decls.push(self.parse_decl()?);
                }
                _ => break,
            }
        }

        // Executable part.
        unit.body = self.parse_block(&["end"])?;
        // END [SUBROUTINE|FUNCTION] [name]
        let mut c = LineCur::new(self.cur());
        c.eat_kw("end");
        let _ = c.eat_kw("subroutine") || c.eat_kw("function");
        self.advance();
        Ok(unit)
    }

    /// True when the current line begins a block terminator from `stops`
    /// ("end", "else", "elseif", ...).
    fn at_terminator(&self, stops: &[&str]) -> bool {
        if self.cur().omp {
            // OMP END CRITICAL terminates a critical block.
            let mut c = LineCur::new(self.cur());
            if c.eat_kw("end") {
                return stops.contains(&"!$omp end");
            }
            return false;
        }
        match self.head() {
            Some("end") => stops.contains(&"end"),
            Some("else") => stops.contains(&"else"),
            Some("elseif") => stops.contains(&"else"),
            _ => false,
        }
    }

    fn parse_block(&mut self, stops: &[&str]) -> Result<Vec<Stmt>, CompileError> {
        let mut body = Vec::new();
        let mut pending_atomic = false;
        let mut pending_omp: Option<OmpDo> = None;
        loop {
            if self.at_end() {
                return Err(self.err_here("unexpected EOF inside block"));
            }
            if self.at_terminator(stops) {
                if pending_atomic || pending_omp.is_some() {
                    return Err(self.err_here("dangling OMP directive before block end"));
                }
                return Ok(body);
            }
            if self.cur().omp {
                let line = self.cur().clone();
                let mut c = LineCur::new(&line);
                if c.eat_kw("parallel") {
                    if !c.eat_kw("do") {
                        return Err(self.err_here("only PARALLEL DO is supported"));
                    }
                    pending_omp = Some(Self::parse_omp_clauses(&mut c)?);
                    self.advance();
                    continue;
                } else if c.eat_kw("atomic") {
                    pending_atomic = true;
                    self.advance();
                    continue;
                } else if c.eat_kw("critical") {
                    let mut name = None;
                    if c.eat(&Tok::LParen) {
                        name = Some(c.expect_ident("critical name")?);
                        c.expect(&Tok::RParen, ")")?;
                    }
                    let span = self.span();
                    self.advance();
                    let inner = self.parse_block(&["!$omp end"])?;
                    // consume "!$OMP END CRITICAL"
                    let mut e = LineCur::new(self.cur());
                    e.eat_kw("end");
                    if !e.eat_kw("critical") {
                        return Err(self.err_here("expected !$OMP END CRITICAL"));
                    }
                    self.advance();
                    body.push(Stmt::Critical { name, body: inner, span });
                    continue;
                } else if c.eat_kw("end") {
                    // "!$OMP END PARALLEL DO" after a DO we've already
                    // closed: consume silently.
                    if c.eat_kw("parallel") {
                        self.advance();
                        continue;
                    }
                    return Err(self.err_here("unexpected OMP END directive"));
                } else {
                    return Err(self.err_here("unsupported OMP directive"));
                }
            }

            let stmt = self.parse_stmt()?;
            let stmt = match (stmt, pending_atomic, pending_omp.take()) {
                (Stmt::Assign { target, value, span, .. }, true, _) => {
                    pending_atomic = false;
                    Stmt::Assign { target, value, atomic: true, span }
                }
                (Stmt::Do { var, start, end, step, body, span, .. }, false, Some(omp)) => {
                    Stmt::Do { var, start, end, step, body, omp: Some(omp), span }
                }
                (s, false, None) => s,
                (_, true, _) => {
                    return Err(self.err_here("!$OMP ATOMIC must precede an assignment"))
                }
                (_, _, Some(_)) => {
                    return Err(self.err_here("!$OMP PARALLEL DO must precede a DO loop"))
                }
            };
            body.push(stmt);
        }
    }

    fn parse_omp_clauses(c: &mut LineCur) -> Result<OmpDo, CompileError> {
        let mut omp = OmpDo { collapse: 1, ..Default::default() };
        loop {
            // Optional commas between clauses.
            while c.eat(&Tok::Comma) {}
            let Some(Tok::Ident(kw)) = c.peek().cloned() else {
                break;
            };
            c.next();
            match kw.as_str() {
                "default" => {
                    c.expect(&Tok::LParen, "(")?;
                    c.expect_ident("shared/none")?;
                    c.expect(&Tok::RParen, ")")?;
                }
                "private" => {
                    c.expect(&Tok::LParen, "(")?;
                    loop {
                        omp.private.push(c.expect_ident("name")?);
                        if !c.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    c.expect(&Tok::RParen, ")")?;
                }
                "firstprivate" => {
                    c.expect(&Tok::LParen, "(")?;
                    loop {
                        omp.firstprivate.push(c.expect_ident("name")?);
                        if !c.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    c.expect(&Tok::RParen, ")")?;
                }
                "reduction" => {
                    c.expect(&Tok::LParen, "(")?;
                    let op = match c.next() {
                        Some(Tok::Plus) => RedOp::Add,
                        Some(Tok::Star) => RedOp::Mul,
                        Some(Tok::Ident(s)) if s == "max" => RedOp::Max,
                        Some(Tok::Ident(s)) if s == "min" => RedOp::Min,
                        other => return Err(c.err(format!("bad reduction op {other:?}"))),
                    };
                    c.expect(&Tok::Colon, ":")?;
                    let mut vars = Vec::new();
                    loop {
                        vars.push(c.expect_ident("name")?);
                        if !c.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    c.expect(&Tok::RParen, ")")?;
                    omp.reductions.push((op, vars));
                }
                "collapse" => {
                    c.expect(&Tok::LParen, "(")?;
                    match c.next() {
                        Some(Tok::Int(n)) if n >= 1 => omp.collapse = n as usize,
                        other => return Err(c.err(format!("bad collapse {other:?}"))),
                    }
                    c.expect(&Tok::RParen, ")")?;
                }
                "num_threads" => {
                    c.expect(&Tok::LParen, "(")?;
                    omp.num_threads = Some(Self::parse_expr_prec(c, 0)?);
                    c.expect(&Tok::RParen, ")")?;
                }
                "schedule" => {
                    c.expect(&Tok::LParen, "(")?;
                    let kind = match c.expect_ident("schedule kind")?.as_str() {
                        "static" => SchedKind::Static,
                        "dynamic" => SchedKind::Dynamic,
                        "guided" => SchedKind::Guided,
                        other => {
                            return Err(
                                c.err(format!("unsupported schedule kind `{other}`"))
                            )
                        }
                    };
                    let mut chunk = None;
                    if c.eat(&Tok::Comma) {
                        match c.next() {
                            Some(Tok::Int(n)) if n >= 1 => chunk = Some(n as usize),
                            other => return Err(c.err(format!("bad chunk {other:?}"))),
                        }
                    }
                    c.expect(&Tok::RParen, ")")?;
                    omp.schedule = Some((kind, chunk));
                }
                other => return Err(c.err(format!("unsupported OMP clause `{other}`"))),
            }
        }
        c.expect_done()?;
        Ok(omp)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        let line = self.cur().clone();
        let mut c = LineCur::new(&line);
        match c.peek() {
            Some(Tok::Ident(kw)) => match kw.as_str() {
                "do" => self.parse_do(),
                "if" => self.parse_if(),
                "call" => {
                    c.eat_kw("call");
                    let name = c.expect_ident("subroutine name")?;
                    let mut args = Vec::new();
                    if c.eat(&Tok::LParen)
                        && !c.eat(&Tok::RParen) {
                            loop {
                                args.push(Self::parse_expr_prec(&mut c, 0)?);
                                if !c.eat(&Tok::Comma) {
                                    break;
                                }
                            }
                            c.expect(&Tok::RParen, ")")?;
                        }
                    c.expect_done()?;
                    self.advance();
                    Ok(Stmt::Call { name, args, span })
                }
                "allocate" => {
                    c.eat_kw("allocate");
                    c.expect(&Tok::LParen, "(")?;
                    let mut items = Vec::new();
                    loop {
                        let name = c.expect_ident("array name")?;
                        c.expect(&Tok::LParen, "(")?;
                        let dims = Self::parse_dim_list(&mut c)?;
                        c.expect(&Tok::RParen, ")")?;
                        items.push((
                            Desig { parts: vec![Part { name, subs: vec![] }], span },
                            dims,
                        ));
                        if !c.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    c.expect(&Tok::RParen, ")")?;
                    c.expect_done()?;
                    self.advance();
                    Ok(Stmt::Allocate { items, span })
                }
                "deallocate" => {
                    c.eat_kw("deallocate");
                    c.expect(&Tok::LParen, "(")?;
                    let mut names = Vec::new();
                    loop {
                        let name = c.expect_ident("array name")?;
                        names.push(Desig { parts: vec![Part { name, subs: vec![] }], span });
                        if !c.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    c.expect(&Tok::RParen, ")")?;
                    c.expect_done()?;
                    self.advance();
                    Ok(Stmt::Deallocate { names, span })
                }
                "return" => {
                    self.advance();
                    Ok(Stmt::Return(span))
                }
                "exit" => {
                    self.advance();
                    Ok(Stmt::Exit(span))
                }
                "cycle" => {
                    self.advance();
                    Ok(Stmt::Cycle(span))
                }
                "continue" => {
                    self.advance();
                    Ok(Stmt::Continue(span))
                }
                "stop" => {
                    c.eat_kw("stop");
                    let message = match c.peek() {
                        Some(Tok::Str(s)) => Some(s.clone()),
                        _ => None,
                    };
                    self.advance();
                    Ok(Stmt::Stop { message, span })
                }
                "print" => {
                    c.eat_kw("print");
                    c.expect(&Tok::Star, "*")?;
                    let mut args = Vec::new();
                    while c.eat(&Tok::Comma) {
                        args.push(Self::parse_expr_prec(&mut c, 0)?);
                    }
                    c.expect_done()?;
                    self.advance();
                    Ok(Stmt::Print { args, span })
                }
                _ => self.parse_assignment(),
            },
            _ => Err(self.err_here("expected a statement")),
        }
    }

    fn parse_assignment(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        let line = self.cur().clone();
        let mut c = LineCur::new(&line);
        let target = Self::parse_desig(&mut c)?;
        c.expect(&Tok::Assign, "=")?;
        let value = Self::parse_expr_prec(&mut c, 0)?;
        c.expect_done()?;
        self.advance();
        Ok(Stmt::Assign { target, value, atomic: false, span })
    }

    fn parse_do(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        let line = self.cur().clone();
        let mut c = LineCur::new(&line);
        c.eat_kw("do");
        if c.eat_kw("while") {
            c.expect(&Tok::LParen, "(")?;
            let cond = Self::parse_expr_prec(&mut c, 0)?;
            c.expect(&Tok::RParen, ")")?;
            c.expect_done()?;
            self.advance();
            let body = self.parse_block(&["end"])?;
            self.expect_end_kw("do")?;
            return Ok(Stmt::DoWhile { cond, body, span });
        }
        let var = c.expect_ident("loop variable")?;
        c.expect(&Tok::Assign, "=")?;
        let start = Self::parse_expr_prec(&mut c, 0)?;
        c.expect(&Tok::Comma, ",")?;
        let end = Self::parse_expr_prec(&mut c, 0)?;
        let step = if c.eat(&Tok::Comma) {
            Some(Self::parse_expr_prec(&mut c, 0)?)
        } else {
            None
        };
        c.expect_done()?;
        self.advance();
        let body = self.parse_block(&["end"])?;
        self.expect_end_kw("do")?;
        Ok(Stmt::Do { var, start, end, step, body, omp: None, span })
    }

    fn expect_end_kw(&mut self, kw: &str) -> Result<(), CompileError> {
        let mut c = LineCur::new(self.cur());
        if !(c.eat_kw("end") && c.eat_kw(kw)) {
            return Err(self.err_here(format!("expected END {}", kw.to_uppercase())));
        }
        self.advance();
        Ok(())
    }

    fn parse_if(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        let line = self.cur().clone();
        let mut c = LineCur::new(&line);
        c.eat_kw("if");
        c.expect(&Tok::LParen, "(")?;
        let cond = Self::parse_expr_prec(&mut c, 0)?;
        c.expect(&Tok::RParen, ")")?;
        if c.eat_kw("then") {
            c.expect_done()?;
            self.advance();
            let mut arms = vec![(cond, self.parse_block(&["end", "else"])?)];
            let mut else_body = Vec::new();
            loop {
                let line = self.cur().clone();
                let mut c = LineCur::new(&line);
                if c.eat_kw("end") {
                    if !c.eat_kw("if") {
                        return Err(self.err_here("expected END IF"));
                    }
                    self.advance();
                    break;
                }
                if c.eat_kw("elseif") || (c.eat_kw("else") && c.eat_kw("if")) {
                    c.expect(&Tok::LParen, "(")?;
                    let cond = Self::parse_expr_prec(&mut c, 0)?;
                    c.expect(&Tok::RParen, ")")?;
                    if !c.eat_kw("then") {
                        return Err(self.err_here("expected THEN"));
                    }
                    self.advance();
                    arms.push((cond, self.parse_block(&["end", "else"])?));
                    continue;
                }
                // plain ELSE (the `else if` case was consumed above; a lone
                // `else` has no more tokens)
                self.advance();
                else_body = self.parse_block(&["end"])?;
                let mut e = LineCur::new(self.cur());
                if !(e.eat_kw("end") && e.eat_kw("if")) {
                    return Err(self.err_here("expected END IF"));
                }
                self.advance();
                break;
            }
            Ok(Stmt::If { arms, else_body, span })
        } else {
            // One-line IF: `IF (cond) stmt`. Rewrap the remaining tokens as
            // a synthetic line and parse a single statement.
            let rest: Vec<Tok> = line.toks[c.i..].to_vec();
            if rest.is_empty() {
                return Err(self.err_here("empty one-line IF"));
            }
            let synthetic = Line { toks: rest, lineno: line.lineno, omp: false };
            self.lines[self.li] = synthetic;
            let inner = self.parse_stmt()?; // advances past the line
            Ok(Stmt::If { arms: vec![(cond, vec![inner])], else_body: vec![], span })
        }
    }

    // ---------------- expressions ----------------

    fn parse_desig(c: &mut LineCur) -> Result<Desig, CompileError> {
        let span = c.span;
        let mut parts = Vec::new();
        loop {
            let name = c.expect_ident("name")?;
            let mut subs = Vec::new();
            if c.eat(&Tok::LParen)
                && !c.eat(&Tok::RParen) {
                    loop {
                        subs.push(Self::parse_expr_prec(c, 0)?);
                        if !c.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    c.expect(&Tok::RParen, ")")?;
                }
            parts.push(Part { name, subs });
            if !c.eat(&Tok::Percent) {
                break;
            }
        }
        Ok(Desig { parts, span })
    }

    /// Pratt parser. Binding powers (low→high): OR, AND, NOT, comparisons,
    /// +/- (incl. unary), * and /, ** (right-assoc).
    fn parse_expr_prec(c: &mut LineCur, min_bp: u8) -> Result<Expr, CompileError> {
        let mut lhs = Self::parse_prefix(c)?;
        loop {
            let (op, lbp, rbp) = match c.peek() {
                Some(Tok::Or) => (Bin::Or, 1, 2),
                Some(Tok::And) => (Bin::And, 3, 4),
                Some(Tok::Eq) => (Bin::Eq, 5, 6),
                Some(Tok::Ne) => (Bin::Ne, 5, 6),
                Some(Tok::Lt) => (Bin::Lt, 5, 6),
                Some(Tok::Le) => (Bin::Le, 5, 6),
                Some(Tok::Gt) => (Bin::Gt, 5, 6),
                Some(Tok::Ge) => (Bin::Ge, 5, 6),
                Some(Tok::Plus) => (Bin::Add, 7, 8),
                Some(Tok::Minus) => (Bin::Sub, 7, 8),
                Some(Tok::Star) => (Bin::Mul, 9, 10),
                Some(Tok::Slash) => (Bin::Div, 9, 10),
                Some(Tok::StarStar) => (Bin::Pow, 12, 11), // right assoc
                _ => break,
            };
            if lbp < min_bp {
                break;
            }
            c.next();
            let rhs = Self::parse_expr_prec(c, rbp)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_prefix(c: &mut LineCur) -> Result<Expr, CompileError> {
        match c.peek() {
            Some(Tok::Minus) => {
                c.next();
                // Unary minus binds like addition (Fortran: -a**2 = -(a**2),
                // -a*b = -(a*b)); parsing the operand at mul precedence
                // keeps `-a + b` == (-a) + b while `-a*b` folds the product.
                let e = Self::parse_expr_prec(c, 9)?;
                Ok(Expr::Neg(Box::new(e)))
            }
            Some(Tok::Plus) => {
                c.next();
                Self::parse_prefix(c)
            }
            Some(Tok::Not) => {
                c.next();
                let e = Self::parse_expr_prec(c, 5)?;
                Ok(Expr::Not(Box::new(e)))
            }
            Some(Tok::LParen) => {
                c.next();
                let e = Self::parse_expr_prec(c, 0)?;
                c.expect(&Tok::RParen, ")")?;
                Ok(e)
            }
            Some(Tok::Int(v)) => {
                let v = *v;
                c.next();
                Ok(Expr::Int(v))
            }
            Some(Tok::Real(v)) => {
                let v = *v;
                c.next();
                Ok(Expr::Real(v))
            }
            Some(Tok::True) => {
                c.next();
                Ok(Expr::Logical(true))
            }
            Some(Tok::False) => {
                c.next();
                Ok(Expr::Logical(false))
            }
            Some(Tok::Str(s)) => {
                let s = s.clone();
                c.next();
                Ok(Expr::Str(s))
            }
            Some(Tok::Ident(_)) => Ok(Expr::Name(Self::parse_desig(c)?)),
            other => Err(c.err(format!("unexpected token in expression: {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Ast {
        parse(src).unwrap_or_else(|e| panic!("{e}\nsource:\n{src}"))
    }

    const MINI: &str = "\
MODULE m
  IMPLICIT NONE
  REAL(8) :: shared_x
CONTAINS
  SUBROUTINE s(a, n)
    INTEGER :: n
    REAL(8), DIMENSION(1:10) :: a
    INTEGER :: i
    DO i = 1, n
      a(i) = a(i) * 2.0D0
    END DO
  END SUBROUTINE s
END MODULE m
";

    #[test]
    fn parses_minimal_module() {
        let ast = parse_ok(MINI);
        assert_eq!(ast.modules.len(), 1);
        let m = &ast.modules[0];
        assert_eq!(m.name, "m");
        assert_eq!(m.decls.len(), 1);
        assert_eq!(m.units.len(), 1);
        let u = &m.units[0];
        assert_eq!(u.name, "s");
        assert_eq!(u.params, vec!["a", "n"]);
        assert_eq!(u.decls.len(), 3);
        assert_eq!(u.body.len(), 1);
        assert!(matches!(&u.body[0], Stmt::Do { var, .. } if var == "i"));
    }

    #[test]
    fn parses_function_and_return() {
        let src = "\
MODULE m
CONTAINS
  REAL(8) FUNCTION total(b)
    REAL(8), DIMENSION(1:4) :: b
    total = b(1) + b(2)
    RETURN
  END FUNCTION total
END MODULE m
";
        let ast = parse_ok(src);
        let u = &ast.modules[0].units[0];
        assert!(matches!(&u.kind, UnitKind::Function(TypeSpec::Real8)));
        assert_eq!(u.body.len(), 2);
    }

    #[test]
    fn parses_omp_parallel_do() {
        let src = "\
MODULE m
CONTAINS
  SUBROUTINE s(a)
    REAL(8), DIMENSION(1:10) :: a
    INTEGER :: i, j
    !$OMP PARALLEL DO DEFAULT(SHARED) COLLAPSE(2) PRIVATE(t) REDUCTION(+:acc, acc2)
    DO i = 1, 2
      DO j = 1, 5
        a(j) = 0.0D0
      END DO
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE s
END MODULE m
";
        let ast = parse_ok(src);
        let u = &ast.modules[0].units[0];
        let Stmt::Do { omp: Some(omp), .. } = &u.body[0] else {
            panic!("expected OMP DO, got {:?}", u.body[0]);
        };
        assert_eq!(omp.collapse, 2);
        assert_eq!(omp.private, vec!["t"]);
        assert_eq!(omp.reductions, vec![(RedOp::Add, vec!["acc".into(), "acc2".into()])]);
    }

    #[test]
    fn parses_atomic_and_critical() {
        let src = "\
MODULE m
CONTAINS
  SUBROUTINE s(x)
    REAL(8) :: x
    !$OMP ATOMIC
    x = x + 1.0D0
    !$OMP CRITICAL (upd)
    x = x * 2.0D0
    !$OMP END CRITICAL
  END SUBROUTINE s
END MODULE m
";
        let ast = parse_ok(src);
        let u = &ast.modules[0].units[0];
        assert!(matches!(&u.body[0], Stmt::Assign { atomic: true, .. }));
        let Stmt::Critical { name: Some(n), body, .. } = &u.body[1] else {
            panic!("expected critical");
        };
        assert_eq!(n, "upd");
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn parses_if_chain_and_one_liner() {
        let src = "\
MODULE m
CONTAINS
  SUBROUTINE s(x)
    REAL(8) :: x
    IF (x > 1.0D0) THEN
      x = 1.0D0
    ELSE IF (x < -1.0D0) THEN
      x = -1.0D0
    ELSE
      x = 0.0D0
    END IF
    IF (x == 0.0D0) x = 0.5D0
  END SUBROUTINE s
END MODULE m
";
        let ast = parse_ok(src);
        let u = &ast.modules[0].units[0];
        let Stmt::If { arms, else_body, .. } = &u.body[0] else {
            panic!()
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(else_body.len(), 1);
        let Stmt::If { arms, else_body, .. } = &u.body[1] else {
            panic!()
        };
        assert_eq!(arms.len(), 1);
        assert!(else_body.is_empty());
    }

    #[test]
    fn parses_common_and_use() {
        let src = "\
MODULE m
CONTAINS
  SUBROUTINE s()
    USE fuliou_mod
    REAL(8) :: cc
    REAL(8), DIMENSION(1:60) :: dd
    COMMON /rad/ cc, dd
    cc = 1.0D0
  END SUBROUTINE s
END MODULE m
";
        let ast = parse_ok(src);
        let u = &ast.modules[0].units[0];
        assert_eq!(u.uses, vec!["fuliou_mod"]);
        assert_eq!(u.commons, vec![("rad".to_string(), vec!["cc".into(), "dd".into()])]);
    }

    #[test]
    fn parses_typedef_and_percent_access() {
        let src = "\
MODULE m
  TYPE fuout_t
    REAL(8), DIMENSION(1:60) :: fd
    REAL(8) :: total
  END TYPE fuout_t
  TYPE(fuout_t) :: fo
CONTAINS
  SUBROUTINE s()
    fo%fd(3) = fo%total * 2.0D0
  END SUBROUTINE s
END MODULE m
";
        let ast = parse_ok(src);
        let m = &ast.modules[0];
        assert_eq!(m.typedefs.len(), 1);
        assert_eq!(m.typedefs[0].fields.len(), 2);
        let Stmt::Assign { target, .. } = &m.units[0].body[0] else {
            panic!()
        };
        assert_eq!(target.parts.len(), 2);
        assert_eq!(target.parts[0].name, "fo");
        assert_eq!(target.parts[1].name, "fd");
        assert_eq!(target.parts[1].subs.len(), 1);
    }

    #[test]
    fn parses_allocate_deallocate() {
        let src = "\
MODULE m
CONTAINS
  SUBROUTINE s()
    REAL(8), DIMENSION(:), ALLOCATABLE :: tmp
    IF (.NOT. ALLOCATED(tmp)) ALLOCATE(tmp(1:50))
    tmp(1) = 0.0D0
    DEALLOCATE(tmp)
  END SUBROUTINE s
END MODULE m
";
        let ast = parse_ok(src);
        let u = &ast.modules[0].units[0];
        assert_eq!(u.body.len(), 3);
        let Stmt::If { arms, .. } = &u.body[0] else { panic!() };
        assert!(matches!(&arms[0].1[0], Stmt::Allocate { .. }));
    }

    #[test]
    fn parses_do_while_exit_cycle() {
        let src = "\
MODULE m
CONTAINS
  SUBROUTINE s(n)
    INTEGER :: n
    DO WHILE (n > 0)
      n = n - 1
      IF (n == 5) EXIT
      IF (n == 3) CYCLE
    END DO
  END SUBROUTINE s
END MODULE m
";
        let ast = parse_ok(src);
        assert!(matches!(&ast.modules[0].units[0].body[0], Stmt::DoWhile { .. }));
    }

    #[test]
    fn precedence_pow_right_assoc() {
        let src = "\
MODULE m
CONTAINS
  SUBROUTINE s(x)
    REAL(8) :: x
    x = 2.0D0 ** 3 ** 2
  END SUBROUTINE s
END MODULE m
";
        let ast = parse_ok(src);
        let Stmt::Assign { value, .. } = &ast.modules[0].units[0].body[0] else {
            panic!()
        };
        // 2 ** (3 ** 2)
        let Expr::Bin(Bin::Pow, _, r) = value else { panic!("{value:?}") };
        assert!(matches!(**r, Expr::Bin(Bin::Pow, _, _)));
    }

    #[test]
    fn unary_minus_folds_products() {
        let src = "\
MODULE m
CONTAINS
  SUBROUTINE s(x, a, b)
    REAL(8) :: x, a, b
    x = -a * b + 1.0D0
  END SUBROUTINE s
END MODULE m
";
        let ast = parse_ok(src);
        let Stmt::Assign { value, .. } = &ast.modules[0].units[0].body[0] else {
            panic!()
        };
        // (-(a*b)) + 1.0
        let Expr::Bin(Bin::Add, l, _) = value else { panic!("{value:?}") };
        assert!(matches!(**l, Expr::Neg(_)));
    }

    #[test]
    fn module_scope_threadprivate() {
        let src = "\
MODULE m
  REAL(8), DIMENSION(1:8) :: buf
  !$OMP THREADPRIVATE(buf)
CONTAINS
  SUBROUTINE s()
    buf(1) = 0.0D0
  END SUBROUTINE s
END MODULE m
";
        let ast = parse_ok(src);
        assert_eq!(ast.modules[0].threadprivate, vec!["buf"]);
    }

    #[test]
    fn parse_errors_have_lines() {
        let src = "MODULE m\nCONTAINS\n  SUBROUTINE s(\n";
        let err = parse(src).unwrap_err();
        match err {
            CompileError::Parse { span, .. } => assert_eq!(span.line, 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn print_and_stop() {
        let src = "\
MODULE m
CONTAINS
  SUBROUTINE s(x)
    REAL(8) :: x
    PRINT *, 'value', x
    STOP 'bad'
  END SUBROUTINE s
END MODULE m
";
        let ast = parse_ok(src);
        let u = &ast.modules[0].units[0];
        assert!(matches!(&u.body[0], Stmt::Print { args, .. } if args.len() == 2));
        assert!(matches!(&u.body[1], Stmt::Stop { message: Some(m), .. } if m == "bad"));
    }
}
