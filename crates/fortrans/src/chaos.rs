//! Chaos campaign harness for the resilient service runtime.
//!
//! A campaign drives randomized rounds of concurrent batches through an
//! [`EngineService`], injecting the faults the resilience layer exists
//! to absorb — forced VM traps, corrupted bytecode streams, forced
//! deadline misses, OMP worker panics, oracle-trap retry ladders,
//! quarantine hammering, and cache-eviction storms — then checks the
//! survival invariants after every round:
//!
//! * **drain** — every submitted job produces exactly one structured
//!   [`JobResult`]; no panic escapes the batch;
//! * **clean-job fidelity** — jobs with no injected fault complete with
//!   no fallback and outputs bit-equal to a quiet per-mode baseline
//!   (parallel reductions combine partials in a fixed order, so the
//!   baseline is per `(program, mode)` — float association differs
//!   between serial and parallel, deterministically);
//! * **no cross-session bleed** — the corpus includes a program that
//!   accumulates into a module global; its clean jobs must see a fresh
//!   global every time even while sibling jobs trap and cancel;
//! * **policy verdicts** — deadline-missed jobs end `Cancelled`,
//!   recovered traps end `Completed`-with-fallback bit-equal to the
//!   baseline, retry/degrade ladders end `Retried`/`Degraded`, and a
//!   quarantined artifact's probe ends `Quarantined`;
//! * **self-heal** — the final round is all-clean on the same pools and
//!   must be violation-free, and clearing the quarantined artifact
//!   restores it to `Completed`.
//!
//! The campaign is fully deterministic for a given [`CampaignConfig`]
//! (the RNG is the same xorshift64* the differential fuzzer uses), so a
//! CI failure reproduces locally from the seed alone. Faulty jobs run
//! on per-job variant artifacts (the base source plus a distinguishing
//! trailing comment) so their fault-ledger entries never accumulate
//! against the clean artifacts' hashes; only the dedicated victim
//! artifact is hammered past the quarantine threshold.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use crate::engine::{ArgVal, ExecTier};
use crate::error::RunError;
use crate::interp::{ExecMode, RunLimits};
use crate::service::{
    CompiledProgram, EngineService, Job, JobPolicy, JobResult, QuarantineMode, QuarantinePolicy,
};
use crate::verify::mutate::{corrupt, Rng};

/// Array length shared by the corpus programs.
pub const LANES: usize = 64;

/// One corpus program: a label for reports, the entry subroutine, and
/// the source (optionally tagged with a trailing comment so variants of
/// the same semantics hash to distinct artifacts).
pub struct ChaosProgram {
    pub label: &'static str,
    pub entry: &'static str,
    pub source: String,
}

fn scale_src(tag: &str) -> String {
    format!(
        r"MODULE smod
CONTAINS
  SUBROUTINE scale(a, n, f)
    REAL(8), DIMENSION(1:{LANES}) :: a
    INTEGER :: n
    REAL(8) :: f
    INTEGER :: i
    !$OMP PARALLEL DO DEFAULT(SHARED)
    DO i = 1, n
      a(i) = a(i) * f + 0.5
    END DO
    !$OMP END PARALLEL DO
  END SUBROUTINE scale
END MODULE smod
! chaos variant: {tag}
"
    )
}

fn reduce_src(tag: &str) -> String {
    format!(
        r"MODULE rmod
CONTAINS
  SUBROUTINE sumsq(a, n, out)
    REAL(8), DIMENSION(1:{LANES}) :: a
    INTEGER :: n
    REAL(8), DIMENSION(1:4) :: out
    REAL(8) :: s
    INTEGER :: i
    s = 0.0
    !$OMP PARALLEL DO DEFAULT(SHARED) REDUCTION(+:s)
    DO i = 1, n
      s = s + a(i) * a(i)
    END DO
    !$OMP END PARALLEL DO
    out(1) = s
    out(2) = s * 0.25
  END SUBROUTINE sumsq
END MODULE rmod
! chaos variant: {tag}
"
    )
}

fn glob_src(tag: &str) -> String {
    format!(
        r"MODULE gmod
  REAL(8) :: acc
CONTAINS
  SUBROUTINE bump(x, out)
    REAL(8) :: x
    REAL(8), DIMENSION(1:4) :: out
    acc = acc + x * 2.0
    out(1) = acc
  END SUBROUTINE bump
END MODULE gmod
! chaos variant: {tag}
"
    )
}

fn hog_src(tag: &str) -> String {
    format!(
        r"MODULE hmod
CONTAINS
  SUBROUTINE spin(n, out)
    INTEGER :: n
    REAL(8), DIMENSION(1:4) :: out
    REAL(8) :: s
    INTEGER :: i
    s = 0.0
    DO i = 1, n
      s = s + 1.0
    END DO
    out(1) = s
  END SUBROUTINE spin
END MODULE hmod
! chaos variant: {tag}
"
    )
}

/// A tagged copy of the spin-loop hog program (the deadline-miss
/// workload) for tests that build their own mixed batches.
pub fn hog_source(tag: &str) -> String {
    hog_src(tag)
}

/// The three clean base programs (indices are stable: 0 = scale,
/// 1 = sumsq reduction, 2 = global-accumulator bump).
pub fn base_corpus() -> Vec<ChaosProgram> {
    vec![
        ChaosProgram { label: "scale", entry: "scale", source: scale_src("base") },
        ChaosProgram { label: "sumsq", entry: "sumsq", source: reduce_src("base") },
        ChaosProgram { label: "bump", entry: "bump", source: glob_src("base") },
    ]
}

/// Fresh deterministic arguments for a corpus entry. Returns the arg
/// vector and the handle-bearing output array to read results from.
pub fn make_args(entry: &str) -> (Vec<ArgVal>, ArgVal) {
    let input: Vec<f64> = (0..LANES).map(|i| 1.0 + i as f64 * 0.5).collect();
    match entry {
        "scale" => {
            let a = ArgVal::array_f(&input, 1);
            (vec![a.clone(), ArgVal::I(LANES as i64), ArgVal::F(1.5)], a)
        }
        "sumsq" => {
            let a = ArgVal::array_f(&input, 1);
            let out = ArgVal::array_f(&[0.0; 4], 1);
            (vec![a, ArgVal::I(LANES as i64), out.clone()], out)
        }
        "bump" => {
            let out = ArgVal::array_f(&[0.0; 4], 1);
            (vec![ArgVal::F(2.5), out.clone()], out)
        }
        "spin" => {
            let out = ArgVal::array_f(&[0.0; 4], 1);
            (vec![ArgVal::I(400_000_000), out.clone()], out)
        }
        other => panic!("unknown chaos corpus entry {other:?}"),
    }
}

/// Bit pattern of an output array (the harness compares exact bits, not
/// approximate floats — determinism is the invariant).
pub fn out_bits(out: &ArgVal) -> Vec<u64> {
    let Some(arr) = out.handle() else {
        return Vec::new();
    };
    (0..arr.len()).map(|i| arr.get_f(i).to_bits()).collect()
}

/// Which fault (if any) a campaign job carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    Clean,
    ForcedTrap,
    CorruptBytecode,
    DeadlineMiss,
    WorkerPanic,
    OracleRetryDegrade,
    RetrySameRung,
    QuarantineHammer,
    QuarantineProbe,
}

impl FaultKind {
    fn label(self) -> &'static str {
        match self {
            FaultKind::Clean => "clean",
            FaultKind::ForcedTrap => "forced_trap",
            FaultKind::CorruptBytecode => "corrupt_bytecode",
            FaultKind::DeadlineMiss => "deadline_miss",
            FaultKind::WorkerPanic => "worker_panic",
            FaultKind::OracleRetryDegrade => "oracle_retry_degrade",
            FaultKind::RetrySameRung => "retry_same_rung",
            FaultKind::QuarantineHammer => "quarantine_hammer",
            FaultKind::QuarantineProbe => "quarantine_probe",
        }
    }
}

/// Campaign shape. The default is the CI smoke configuration scaled
/// down; `chaos_smoke` raises `rounds`/`jobs_per_round` to clear the
/// ≥200-injected-faults bar.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// RNG seed; the whole campaign is a pure function of the config.
    pub seed: u64,
    /// Number of batch rounds (the last is forced all-clean to prove
    /// the pools and cache self-healed).
    pub rounds: usize,
    /// Randomly-drawn jobs per round (hammer/probe jobs are appended on
    /// top of these).
    pub jobs_per_round: usize,
    /// Batch pool width.
    pub queue_width: usize,
    /// Policy deadline for deadline-miss jobs; their hard `RunLimits`
    /// deadline backstop is 40x this, so a broken watchdog shows up as
    /// an invariant violation, never a hung campaign.
    pub deadline: Duration,
    /// Unique throwaway artifacts compiled per round to churn the LRU
    /// cache while batches run.
    pub eviction_storm: usize,
    /// Artifact cache capacity for the campaign's service.
    pub cache_capacity: usize,
    /// Quarantine policy installed on the service (None leaves the
    /// breaker off; hammer jobs then just exercise fallback).
    pub quarantine: Option<QuarantinePolicy>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0x00C0_FFEE,
            rounds: 6,
            jobs_per_round: 12,
            queue_width: 4,
            deadline: Duration::from_millis(25),
            eviction_storm: 2,
            cache_capacity: 8,
            quarantine: Some(QuarantinePolicy {
                threshold: 5,
                mode: QuarantineMode::Refuse,
            }),
        }
    }
}

/// What a campaign survived: counts per injected fault kind and per
/// policy verdict, watchdog/eviction accounting, and every invariant
/// violation observed (empty = the campaign passed).
#[derive(Debug, Default)]
pub struct CampaignReport {
    pub rounds: usize,
    pub jobs: usize,
    /// Injected fault count per kind label (eviction-storm compiles
    /// count as injections: they are deliberate cache abuse).
    pub injected: BTreeMap<String, u64>,
    /// Job count per policy-verdict label.
    pub actions: BTreeMap<String, u64>,
    pub watchdog_fired: u64,
    pub cache_evictions: u64,
    pub violations: Vec<String>,
}

impl CampaignReport {
    /// Total injected faults across all kinds.
    pub fn injected_total(&self) -> u64 {
        self.injected.values().sum()
    }

    /// Did every invariant hold?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One planned job's bookkeeping: what was injected, which baseline its
/// output must match, and where to read the output.
struct Planned {
    kind: FaultKind,
    base: usize,
    mode: ExecMode,
    out: ArgVal,
}

fn mode_key(mode: ExecMode) -> usize {
    match mode {
        ExecMode::Parallel { .. } => 1,
        _ => 0,
    }
}

fn compile_or_die(service: &EngineService, src: &str) -> Arc<CompiledProgram> {
    match service.compile(&[src]) {
        Ok(a) => a,
        Err(e) => panic!("chaos corpus failed to compile: {e}"),
    }
}

/// Quiet per-(program, mode) baselines: each base program run once in a
/// solo session per mode key, outputs captured as bits.
fn quiet_baselines(
    arts: &[Arc<CompiledProgram>],
    corpus: &[ChaosProgram],
) -> BTreeMap<(usize, usize), Vec<u64>> {
    let mut base = BTreeMap::new();
    for (pi, prog) in corpus.iter().enumerate() {
        for mode in [ExecMode::Serial, ExecMode::Parallel { threads: 2 }] {
            let session = crate::service::Session::solo(Arc::clone(&arts[pi]));
            let (args, out) = make_args(prog.entry);
            session
                .run_tiered(prog.entry, &args, mode, ExecTier::Vm)
                .unwrap_or_else(|e| panic!("quiet baseline run failed for {}: {e}", prog.label));
            base.insert((pi, mode_key(mode)), out_bits(&out));
        }
    }
    base
}

/// Runs a chaos campaign and reports what it survived. Deterministic
/// for a given config; panics only on corpus bugs (the corpus is part
/// of this module), never on injected faults — those must surface as
/// structured results or be recorded as violations.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let service = EngineService::new(cfg.cache_capacity);
    service.set_quarantine_policy(cfg.quarantine);
    let mut rng = Rng::new(cfg.seed);
    let corpus = base_corpus();
    let arts: Vec<Arc<CompiledProgram>> =
        corpus.iter().map(|p| compile_or_die(&service, &p.source)).collect();
    let baselines = quiet_baselines(&arts, &corpus);

    let victim_src = scale_src("victim");
    let victim = compile_or_die(&service, &victim_src);
    let victim_hash = victim.source_hash();

    let retry_policy = JobPolicy {
        deadline: None,
        retries: 2,
        backoff: Duration::from_millis(1),
        degrade: false,
    };
    let degrade_policy = JobPolicy { degrade: true, ..retry_policy };
    let deadline_policy = JobPolicy {
        deadline: Some(cfg.deadline),
        retries: 0,
        backoff: Duration::ZERO,
        degrade: false,
    };
    // Hard backstop: even with the watchdog dead, a hog job cannot run
    // past 40x the policy deadline — it would trip this RunLimits
    // deadline instead, which the checker flags as a violation (the
    // root must be Cancelled, not Limit).
    let hog_limits = RunLimits { deadline: Some(cfg.deadline * 40), ..RunLimits::default() };

    let mut report = CampaignReport { rounds: cfg.rounds, ..CampaignReport::default() };
    let inject = |report: &mut CampaignReport, kind: FaultKind| {
        *report.injected.entry(kind.label().to_string()).or_insert(0) += 1;
    };

    // Weighted draw: 4/12 clean, the rest split across the fault kinds.
    let table = [
        FaultKind::Clean,
        FaultKind::Clean,
        FaultKind::Clean,
        FaultKind::Clean,
        FaultKind::ForcedTrap,
        FaultKind::ForcedTrap,
        FaultKind::CorruptBytecode,
        FaultKind::CorruptBytecode,
        FaultKind::DeadlineMiss,
        FaultKind::WorkerPanic,
        FaultKind::OracleRetryDegrade,
        FaultKind::RetrySameRung,
    ];

    for round in 0..cfg.rounds {
        let clean_only = round + 1 == cfg.rounds;
        let mut queue = service.queue(cfg.queue_width);
        let mut planned: Vec<Planned> = Vec::new();

        for j in 0..cfg.jobs_per_round {
            let kind =
                if clean_only { FaultKind::Clean } else { table[rng.below(table.len())] };
            let tag = format!("{}-r{round}-j{j}", kind.label());
            match kind {
                FaultKind::Clean => {
                    let base = rng.below(corpus.len());
                    // bump's global accumulator makes Parallel ordering
                    // moot (single scalar statement); rotate modes on
                    // the loopy programs only.
                    let mode = match rng.below(3) {
                        0 if base != 2 => ExecMode::Parallel { threads: 2 },
                        1 => ExecMode::Simulated { threads: 2 },
                        _ => ExecMode::Serial,
                    };
                    let (args, out) = make_args(corpus[base].entry);
                    queue.submit(&arts[base], Job::new(corpus[base].entry, args).mode(mode));
                    planned.push(Planned { kind, base, mode, out });
                }
                FaultKind::ForcedTrap => {
                    // Forced VM traps fire before any user code runs, so
                    // the oracle fallback recomputes from pristine args:
                    // output must still be bit-equal to the baseline.
                    inject(&mut report, kind);
                    let art = compile_or_die(&service, &scale_src(&tag));
                    let (args, out) = make_args("scale");
                    queue.submit(&art, Job::new("scale", args).debug_force_trap());
                    planned.push(Planned { kind, base: 0, mode: ExecMode::Serial, out });
                }
                FaultKind::CorruptBytecode => {
                    // Corrupt a private copy of the optimized stream and
                    // inject it into this job's session only; the shared
                    // artifact stays pristine. Corruption may trap (then
                    // the oracle recovers) or silently change semantics,
                    // so the only invariants are structure + isolation.
                    inject(&mut report, kind);
                    let art = compile_or_die(&service, &reduce_src(&tag));
                    let mut bunits = (*art.bytecode(false)).clone();
                    let _ = corrupt(&mut bunits, rng.next_u64());
                    let (args, out) = make_args("sumsq");
                    queue.submit(
                        &art,
                        Job::new("sumsq", args).debug_inject_bytecode(false, bunits),
                    );
                    planned.push(Planned { kind, base: 1, mode: ExecMode::Serial, out });
                }
                FaultKind::DeadlineMiss => {
                    inject(&mut report, kind);
                    let art = compile_or_die(&service, &hog_src(&tag));
                    let (args, out) = make_args("spin");
                    queue.submit(
                        &art,
                        Job::new("spin", args)
                            .limits(hog_limits)
                            .policy(deadline_policy),
                    );
                    planned.push(Planned { kind, base: 0, mode: ExecMode::Serial, out });
                }
                FaultKind::WorkerPanic => {
                    // The reduction's OMP region reads the shared array
                    // and writes `out` only after the region joins, so a
                    // mid-region worker panic leaves the args pristine
                    // for the oracle re-run: bit-equal recovery holds.
                    inject(&mut report, kind);
                    let art = compile_or_die(&service, &reduce_src(&tag));
                    let (args, out) = make_args("sumsq");
                    let mode = ExecMode::Parallel { threads: 2 };
                    queue.submit(
                        &art,
                        Job::new("sumsq", args).mode(mode).debug_panic_worker(1),
                    );
                    planned.push(Planned { kind, base: 1, mode, out });
                }
                FaultKind::OracleRetryDegrade => {
                    // Attempt 1: VM forced trap AND oracle forced trap —
                    // the whole attempt fails as transient. With degrade
                    // on, attempt 2 runs the oracle rung clean.
                    inject(&mut report, kind);
                    let art = compile_or_die(&service, &scale_src(&tag));
                    let (args, out) = make_args("scale");
                    queue.submit(
                        &art,
                        Job::new("scale", args)
                            .policy(degrade_policy)
                            .debug_force_trap()
                            .debug_force_oracle_traps(1),
                    );
                    planned.push(Planned { kind, base: 0, mode: ExecMode::Serial, out });
                }
                FaultKind::RetrySameRung => {
                    // Same double fault, but no degradation: attempt 2
                    // re-runs the same VM rung, whose forced trap was
                    // consumed by attempt 1 — it succeeds as Retried.
                    inject(&mut report, kind);
                    let art = compile_or_die(&service, &scale_src(&tag));
                    let (args, out) = make_args("scale");
                    queue.submit(
                        &art,
                        Job::new("scale", args)
                            .policy(retry_policy)
                            .debug_force_trap()
                            .debug_force_oracle_traps(1),
                    );
                    planned.push(Planned { kind, base: 0, mode: ExecMode::Serial, out });
                }
                FaultKind::QuarantineHammer | FaultKind::QuarantineProbe => unreachable!(),
            }
        }

        // Deterministic quarantine schedule on the dedicated victim:
        // rounds 0-1 hammer it with forced traps (each records a fault),
        // later non-final rounds probe it once.
        if !clean_only && cfg.quarantine.is_some() {
            if round < 2 {
                for _ in 0..3 {
                    inject(&mut report, FaultKind::QuarantineHammer);
                    let (args, out) = make_args("scale");
                    queue.submit(&victim, Job::new("scale", args).debug_force_trap());
                    planned.push(Planned {
                        kind: FaultKind::QuarantineHammer,
                        base: 0,
                        mode: ExecMode::Serial,
                        out,
                    });
                }
            } else {
                inject(&mut report, FaultKind::QuarantineProbe);
                let (args, out) = make_args("scale");
                queue.submit(&victim, Job::new("scale", args));
                planned.push(Planned {
                    kind: FaultKind::QuarantineProbe,
                    base: 0,
                    mode: ExecMode::Serial,
                    out,
                });
            }
        }

        // Cache-eviction storm: unique throwaway compiles churn the LRU
        // while this round's artifacts are live via their Arcs.
        for k in 0..cfg.eviction_storm {
            if !clean_only {
                *report.injected.entry("eviction_storm".to_string()).or_insert(0) += 1;
                let _ = compile_or_die(&service, &glob_src(&format!("storm-r{round}-k{k}")));
            }
        }

        let batch = queue.run_batch_report();
        report.watchdog_fired += batch.watchdog_fired;
        report.jobs += planned.len();

        if batch.results.len() != planned.len() {
            report.violations.push(format!(
                "round {round}: queue did not drain — {} results for {} jobs",
                batch.results.len(),
                planned.len()
            ));
            continue;
        }

        for (slot, (p, jr)) in planned.iter().zip(&batch.results).enumerate() {
            *report.actions.entry(jr.action.to_string()).or_insert(0) += 1;
            check_job(round, slot, p, jr, &baselines, cfg, &mut report.violations);
        }

        if service.cache().len() > cfg.cache_capacity {
            report.violations.push(format!(
                "round {round}: cache over capacity ({} > {})",
                service.cache().len(),
                cfg.cache_capacity
            ));
        }
    }

    report.cache_evictions = service.cache().evictions();

    // Self-heal: clearing the victim's quarantine must restore it.
    if cfg.quarantine.is_some() {
        if !service.cache().is_quarantined(victim_hash) {
            report
                .violations
                .push("victim artifact never tripped its circuit breaker".to_string());
        }
        service.cache().clear_quarantine(victim_hash);
        let mut queue = service.queue(cfg.queue_width);
        let (args, out) = make_args("scale");
        queue.submit(&victim, Job::new("scale", args));
        let results = queue.run_batch();
        let healed = results.first().is_some_and(|jr| {
            jr.result.is_ok() && out_bits(&out) == baselines[&(0, 0)]
        });
        if !healed {
            report
                .violations
                .push("victim artifact did not recover after clear_quarantine".to_string());
        }
    }

    report
}

#[allow(clippy::too_many_arguments)]
fn check_job(
    round: usize,
    slot: usize,
    p: &Planned,
    jr: &JobResult,
    baselines: &BTreeMap<(usize, usize), Vec<u64>>,
    cfg: &CampaignConfig,
    violations: &mut Vec<String>,
) {
    let mut fail = |what: String| {
        violations.push(format!("round {round} job {slot} [{}]: {what}", p.kind.label()));
    };
    let baseline = &baselines[&(p.base, mode_key(p.mode))];

    match p.kind {
        FaultKind::Clean => match &jr.result {
            Ok(out) => {
                if out.fallback.is_some() {
                    fail("clean job fell back to the oracle".to_string());
                }
                if jr.session.as_ref().is_some_and(|s| s.fallback_count() > 0) {
                    fail("clean job's session recorded a fallback".to_string());
                }
                if out_bits(&p.out) != *baseline {
                    fail("clean job output diverged from the quiet baseline".to_string());
                }
            }
            Err(e) => fail(format!("clean job failed: {e}")),
        },
        FaultKind::ForcedTrap | FaultKind::QuarantineHammer => match &jr.result {
            Ok(out) => {
                // A hammer whose siblings already tripped the breaker
                // may run pinned to the oracle (verdict Quarantined, no
                // VM attempt so no fallback record) — the breaker doing
                // its job. Every other success must carry the fallback.
                let pinned = p.kind == FaultKind::QuarantineHammer
                    && jr.action == crate::service::PolicyAction::Quarantined;
                if out.fallback.is_none() && !pinned {
                    fail("forced trap produced no fallback record".to_string());
                }
                if out_bits(&p.out) != *baseline {
                    fail("oracle recovery diverged from the quiet baseline".to_string());
                }
            }
            // A hammer job may be refused once sibling hammers already
            // tripped the breaker mid-batch — that IS the breaker
            // working; anything else is a violation.
            Err(e)
                if p.kind == FaultKind::QuarantineHammer
                    && matches!(e.root(), RunError::Quarantined { .. }) => {}
            Err(e) => fail(format!("forced-trap job failed outright: {e}")),
        },
        FaultKind::CorruptBytecode => {
            // Corruption may trap (recovered by the oracle), trip a
            // structured limit, or silently alter semantics; the
            // invariants are only that the result is structured and,
            // when the oracle recovered it, bit-equal to the baseline.
            if let Ok(out) = &jr.result {
                if out.fallback.is_some() && out_bits(&p.out) != *baseline {
                    fail("oracle recovery of corrupted stream diverged".to_string());
                }
            }
        }
        FaultKind::DeadlineMiss => match &jr.result {
            Ok(_) => fail("hog job finished under its deadline (spin too short?)".to_string()),
            Err(e) => match e.root() {
                RunError::Cancelled { .. } => {
                    if jr.action != crate::service::PolicyAction::Cancelled {
                        fail(format!("deadline miss verdict was {}", jr.action));
                    }
                }
                other => fail(format!(
                    "deadline miss surfaced as {other} (watchdog dead? backstop tripped)"
                )),
            },
        },
        FaultKind::WorkerPanic => match &jr.result {
            Ok(out) => {
                if out.fallback.is_none() {
                    fail("worker panic produced no fallback record".to_string());
                }
                if out_bits(&p.out) != *baseline {
                    fail("recovery after worker panic diverged from baseline".to_string());
                }
            }
            Err(e) => fail(format!("worker-panic job failed outright: {e}")),
        },
        FaultKind::OracleRetryDegrade => match &jr.result {
            Ok(_) => {
                if jr.action != crate::service::PolicyAction::Degraded {
                    fail(format!("expected Degraded verdict, got {}", jr.action));
                }
                if jr.attempts.len() != 2 {
                    fail(format!("expected 2 attempts, saw {}", jr.attempts.len()));
                } else if jr.attempts[1].tier != ExecTier::TreeWalk {
                    fail("degraded rung did not reach the oracle tier".to_string());
                }
                if out_bits(&p.out) != *baseline {
                    fail("degraded run diverged from baseline".to_string());
                }
            }
            Err(e) => fail(format!("retry ladder failed outright: {e}")),
        },
        FaultKind::RetrySameRung => match &jr.result {
            Ok(_) => {
                if jr.action != crate::service::PolicyAction::Retried {
                    fail(format!("expected Retried verdict, got {}", jr.action));
                }
                if out_bits(&p.out) != *baseline {
                    fail("retried run diverged from baseline".to_string());
                }
            }
            Err(e) => fail(format!("same-rung retry failed outright: {e}")),
        },
        FaultKind::QuarantineProbe => match cfg.quarantine.map(|q| q.mode) {
            Some(QuarantineMode::Refuse) => match &jr.result {
                Ok(_) => fail("probe of quarantined artifact was not refused".to_string()),
                Err(e) => {
                    if !matches!(e.root(), RunError::Quarantined { .. }) {
                        fail(format!("probe refused with wrong error: {e}"));
                    }
                    if jr.action != crate::service::PolicyAction::Quarantined {
                        fail(format!("probe verdict was {}", jr.action));
                    }
                }
            },
            Some(QuarantineMode::PinOracle) => match &jr.result {
                Ok(_) => {
                    if jr.action != crate::service::PolicyAction::Quarantined {
                        fail(format!("pinned probe verdict was {}", jr.action));
                    }
                    if out_bits(&p.out) != *baseline {
                        fail("oracle-pinned probe diverged from baseline".to_string());
                    }
                }
                Err(e) => fail(format!("oracle-pinned probe failed: {e}")),
            },
            None => {}
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_campaign_survives() {
        let cfg = CampaignConfig { rounds: 4, jobs_per_round: 8, ..CampaignConfig::default() };
        let report = run_campaign(&cfg);
        assert!(report.ok(), "violations: {:#?}", report.violations);
        assert!(report.injected_total() > 0);
        assert!(report.jobs >= 32);
    }

    #[test]
    fn campaign_is_deterministic_in_its_fault_plan() {
        let cfg = CampaignConfig { rounds: 3, jobs_per_round: 6, ..CampaignConfig::default() };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.injected, b.injected, "fault plan must be a pure function of the seed");
        assert!(a.ok() && b.ok(), "violations: {:?} / {:?}", a.violations, b.violations);
    }

    #[test]
    fn pin_oracle_quarantine_probe_stays_usable() {
        let cfg = CampaignConfig {
            rounds: 4,
            jobs_per_round: 6,
            quarantine: Some(QuarantinePolicy {
                threshold: 4,
                mode: QuarantineMode::PinOracle,
            }),
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg);
        assert!(report.ok(), "violations: {:#?}", report.violations);
    }
}
