//! Semantic analysis: name resolution, type checking and slot assignment.
//!
//! Responsibilities:
//!
//! * builds the global storage layout — module variables (derived-type
//!   variables are flattened to one cell per field path, e.g. `fo%fd`),
//!   COMMON block members (storage-associated by position across program
//!   units), and SAVE / THREADPRIVATE locals (per-thread persistent);
//! * resolves every name to a frame slot or global cell, inserting numeric
//!   conversions so the interpreter never type-dispatches dynamically;
//! * disambiguates `name(args)` into array element, intrinsic call,
//!   whole-array reduction, `ALLOCATED`, or user-function call — the
//!   classic FORTRAN resolution problem;
//! * validates and lowers OpenMP clauses (PRIVATE/REDUCTION/COLLAPSE/
//!   NUM_THREADS/SCHEDULE) and `!$OMP ATOMIC` update patterns;
//! * classifies serial DO loops for the compiler model (memset / SIMD /
//!   not-vectorizable).

use std::collections::HashMap;

use crate::ast::{self, Ast, Bin, DimDecl, Expr, Stmt, TypeSpec, UnitKind};
use crate::error::{CompileError, Span};
use crate::intrinsics::Intr;
use crate::rir::*;

/// Resolves a parsed program.
pub fn resolve(ast: &Ast) -> Result<RProgram, CompileError> {
    let mut r = Resolver::default();
    r.collect_modules(ast)?;
    r.collect_unit_signatures(ast)?;
    for (mi, m) in ast.modules.iter().enumerate() {
        for u in &m.units {
            let ru = r.resolve_unit(mi, u)?;
            let id = r.unit_sigs[&ru.name].id;
            r.units[id] = Some(ru);
        }
    }
    let units = r
        .units
        .into_iter()
        .map(|u| u.expect("every signature has a body"))
        .collect();
    let mut prog = RProgram { units, globals: r.globals };
    mark_per_thread_regions(&mut prog);
    Ok(prog)
}

/// A compile-time constant (PARAMETER).
#[derive(Debug, Clone, Copy)]
enum Const {
    I(i64),
    F(f64),
    B(bool),
}

/// A visible global symbol.
#[derive(Debug, Clone)]
struct GlobalSym {
    cell: usize,
    ty: ScalarTy,
    rank: usize,
    dims: Vec<(i64, i64)>,
    allocatable: bool,
}

/// A user subprogram signature.
#[derive(Debug, Clone)]
struct UnitSig {
    id: UnitId,
    ret: Option<ScalarTy>,
    nparams: usize,
}

#[derive(Default)]
struct Resolver {
    globals: Vec<GlobalDecl>,
    /// Per-module: visible global symbols (own + transitively used).
    module_syms: Vec<HashMap<String, GlobalSym>>,
    /// Per-module constants.
    module_consts: Vec<HashMap<String, Const>>,
    /// Module name -> index.
    module_ids: HashMap<String, usize>,
    /// Typedefs per module (name -> field decls).
    typedefs: Vec<HashMap<String, Vec<FieldInfo>>>,
    /// COMMON block layouts: block name -> member cells.
    commons: HashMap<String, Vec<GlobalSym>>,
    unit_sigs: HashMap<String, UnitSig>,
    units: Vec<Option<RUnit>>,
}

#[derive(Debug, Clone)]
struct FieldInfo {
    name: String,
    ty: ScalarTy,
    dims: Vec<(i64, i64)>,
}

fn scalar_ty(spec: &TypeSpec) -> Option<ScalarTy> {
    match spec {
        TypeSpec::Integer => Some(ScalarTy::I),
        TypeSpec::Real | TypeSpec::Real8 => Some(ScalarTy::F),
        TypeSpec::Logical => Some(ScalarTy::B),
        TypeSpec::Character => None,
        TypeSpec::Derived(_) => None,
    }
}

fn serr(msg: impl Into<String>, span: Span) -> CompileError {
    CompileError::Sema { msg: msg.into(), span }
}

impl Resolver {
    // ------------- phase A: modules -------------

    fn collect_modules(&mut self, ast: &Ast) -> Result<(), CompileError> {
        for (mi, m) in ast.modules.iter().enumerate() {
            if self.module_ids.insert(m.name.clone(), mi).is_some() {
                return Err(serr(format!("duplicate module `{}`", m.name), m.span));
            }
            self.module_syms.push(HashMap::new());
            self.module_consts.push(HashMap::new());
            self.typedefs.push(HashMap::new());
        }

        for (mi, m) in ast.modules.iter().enumerate() {
            // Typedefs (own module; uses resolved below through lookup).
            for td in &m.typedefs {
                let mut fields = Vec::new();
                for d in &td.fields {
                    let ty = scalar_ty(&d.spec).ok_or_else(|| {
                        serr("derived types may not nest derived/character fields", d.span)
                    })?;
                    for e in &d.entities {
                        let dims = self.const_dims_owned(
                            mi,
                            e.dims.as_ref().or(d.attrs.dims.as_ref()),
                            d.span,
                        )?;
                        fields.push(FieldInfo { name: e.name.clone(), ty, dims });
                    }
                }
                self.typedefs[mi].insert(td.name.clone(), fields);
            }

            // Module variables and constants.
            for d in &m.decls {
                if d.attrs.parameter {
                    for e in &d.entities {
                        let init = e.init.as_ref().ok_or_else(|| {
                            serr(format!("PARAMETER `{}` needs a value", e.name), d.span)
                        })?;
                        let c = self.const_eval(mi, init, d.span)?;
                        self.module_consts[mi].insert(e.name.clone(), c);
                    }
                    continue;
                }
                match &d.spec {
                    TypeSpec::Derived(tname) => {
                        let fields = self
                            .find_typedef(mi, m, tname)
                            .ok_or_else(|| serr(format!("unknown TYPE `{tname}`"), d.span))?
                            .clone();
                        for e in &d.entities {
                            let base_dims = self.const_dims_owned(
                                mi,
                                e.dims.as_ref().or(d.attrs.dims.as_ref()),
                                d.span,
                            )?;
                            for f in &fields {
                                let mut dims = base_dims.clone();
                                dims.extend(f.dims.iter().copied());
                                let key = format!("{}%{}", e.name, f.name);
                                self.add_module_global(
                                    mi,
                                    &m.name,
                                    &key,
                                    f.ty,
                                    dims,
                                    0,
                                    false,
                                    m.threadprivate.contains(&e.name),
                                    None,
                                );
                            }
                        }
                    }
                    spec => {
                        let ty = scalar_ty(spec)
                            .ok_or_else(|| serr("CHARACTER module variables unsupported", d.span))?;
                        for e in &d.entities {
                            let edims = e.dims.as_ref().or(d.attrs.dims.as_ref());
                            let alloc_rank = edims
                                .map(|v| if v.iter().any(|x| x.deferred) { v.len() } else { 0 })
                                .unwrap_or(0);
                            let dims = self.const_dims_owned(mi, edims, d.span)?;
                            let init_bits = match &e.init {
                                Some(x) => Some(self.const_bits(mi, x, ty, d.span)?),
                                None => None,
                            };
                            self.add_module_global(
                                mi,
                                &m.name,
                                &e.name,
                                ty,
                                dims,
                                alloc_rank,
                                d.attrs.allocatable,
                                m.threadprivate.contains(&e.name),
                                init_bits,
                            );
                        }
                    }
                }
            }
        }

        // Import used modules' symbols (transitively).
        for (mi, m) in ast.modules.iter().enumerate() {
            let mut seen = vec![false; ast.modules.len()];
            let mut stack: Vec<&str> = m.uses.iter().map(|s| s.as_str()).collect();
            while let Some(used) = stack.pop() {
                let Some(&ui) = self.module_ids.get(used) else {
                    return Err(serr(format!("USE of unknown module `{used}`"), m.span));
                };
                if seen[ui] || ui == mi {
                    continue;
                }
                seen[ui] = true;
                let imported: Vec<(String, GlobalSym)> = self.module_syms[ui]
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                for (k, v) in imported {
                    self.module_syms[mi].entry(k).or_insert(v);
                }
                let consts: Vec<(String, Const)> = self.module_consts[ui]
                    .iter()
                    .map(|(k, v)| (k.clone(), *v))
                    .collect();
                for (k, v) in consts {
                    self.module_consts[mi].entry(k).or_insert(v);
                }
                let tds: Vec<(String, Vec<FieldInfo>)> = self.typedefs[ui]
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                for (k, v) in tds {
                    self.typedefs[mi].entry(k).or_insert(v);
                }
                stack.extend(ast.modules[ui].uses.iter().map(|s| s.as_str()));
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn add_module_global(
        &mut self,
        mi: usize,
        module: &str,
        key: &str,
        ty: ScalarTy,
        dims: Vec<(i64, i64)>,
        alloc_rank: usize,
        allocatable: bool,
        per_thread: bool,
        init_bits: Option<u64>,
    ) {
        let cell = self.globals.len();
        let rank = if allocatable { alloc_rank.max(dims.len()) } else { dims.len() };
        self.globals.push(GlobalDecl {
            name: format!("{module}::{key}"),
            ty,
            rank,
            dims: if allocatable { vec![] } else { dims.clone() },
            allocatable,
            per_thread,
            init_bits,
            init_elems: None,
        });
        self.module_syms[mi].insert(
            key.to_string(),
            GlobalSym { cell, ty, rank, dims, allocatable },
        );
    }

    fn find_typedef<'a>(
        &'a self,
        mi: usize,
        _m: &ast::Module,
        name: &str,
    ) -> Option<&'a Vec<FieldInfo>> {
        self.typedefs[mi].get(name)
    }

    // ------------- constants -------------

    fn const_eval(&self, mi: usize, e: &Expr, span: Span) -> Result<Const, CompileError> {
        Ok(match e {
            Expr::Int(v) => Const::I(*v),
            Expr::Real(v) => Const::F(*v),
            Expr::Logical(b) => Const::B(*b),
            Expr::Neg(x) => match self.const_eval(mi, x, span)? {
                Const::I(v) => Const::I(-v),
                Const::F(v) => Const::F(-v),
                Const::B(_) => return Err(serr("cannot negate LOGICAL", span)),
            },
            Expr::Name(d) if d.parts.len() == 1 && d.parts[0].subs.is_empty() => self
                .module_consts[mi]
                .get(&d.parts[0].name)
                .copied()
                .ok_or_else(|| {
                    serr(format!("`{}` is not a constant", d.parts[0].name), span)
                })?,
            Expr::Bin(op, l, r) => {
                let l = self.const_eval(mi, l, span)?;
                let r = self.const_eval(mi, r, span)?;
                match (op, l, r) {
                    (Bin::Add, Const::I(a), Const::I(b)) => Const::I(a + b),
                    (Bin::Sub, Const::I(a), Const::I(b)) => Const::I(a - b),
                    (Bin::Mul, Const::I(a), Const::I(b)) => Const::I(a * b),
                    (Bin::Div, Const::I(a), Const::I(b)) if b != 0 => Const::I(a / b),
                    (Bin::Add, Const::F(a), Const::F(b)) => Const::F(a + b),
                    (Bin::Mul, Const::F(a), Const::F(b)) => Const::F(a * b),
                    _ => return Err(serr("unsupported constant expression", span)),
                }
            }
            _ => return Err(serr("unsupported constant expression", span)),
        })
    }

    fn const_i(&self, mi: usize, e: &Expr, span: Span) -> Result<i64, CompileError> {
        match self.const_eval(mi, e, span)? {
            Const::I(v) => Ok(v),
            _ => Err(serr("expected integer constant", span)),
        }
    }

    fn const_bits(
        &self,
        mi: usize,
        e: &Expr,
        ty: ScalarTy,
        span: Span,
    ) -> Result<u64, CompileError> {
        Ok(match (self.const_eval(mi, e, span)?, ty) {
            (Const::I(v), ScalarTy::I) => v as u64,
            (Const::I(v), ScalarTy::F) => (v as f64).to_bits(),
            (Const::F(v), ScalarTy::F) => v.to_bits(),
            (Const::B(b), ScalarTy::B) => u64::from(b),
            _ => return Err(serr("initializer type mismatch", span)),
        })
    }

    /// Constant dims: `(lo, hi)` with lo defaulting to 1. Deferred (`:`)
    /// dims yield an empty vec (allocatable).
    fn const_dims_owned(
        &self,
        mi: usize,
        dims: Option<&Vec<DimDecl>>,
        span: Span,
    ) -> Result<Vec<(i64, i64)>, CompileError> {
        let Some(dims) = dims else { return Ok(vec![]) };
        if dims.iter().any(|d| d.deferred) {
            return Ok(vec![]);
        }
        dims.iter()
            .map(|d| {
                let hi = self.const_i(mi, d.hi.as_ref().expect("non-deferred"), span)?;
                let lo = match &d.lo {
                    Some(e) => self.const_i(mi, e, span)?,
                    None => 1,
                };
                if hi < lo {
                    return Err(serr(format!("empty dimension {lo}:{hi}"), span));
                }
                Ok((lo, hi))
            })
            .collect()
    }

    // ------------- phase B: unit signatures -------------

    fn collect_unit_signatures(&mut self, ast: &Ast) -> Result<(), CompileError> {
        let mut id = 0usize;
        for m in &ast.modules {
            for u in &m.units {
                let ret = match &u.kind {
                    UnitKind::Subroutine => None,
                    UnitKind::Function(spec) => Some(scalar_ty(spec).ok_or_else(|| {
                        serr("functions must return INTEGER/REAL/LOGICAL", u.span)
                    })?),
                };
                if self
                    .unit_sigs
                    .insert(u.name.clone(), UnitSig { id, ret, nparams: u.params.len() })
                    .is_some()
                {
                    return Err(serr(format!("duplicate subprogram `{}`", u.name), u.span));
                }
                id += 1;
            }
        }
        self.units = (0..id).map(|_| None).collect();
        Ok(())
    }

    // ------------- phase C: units -------------

    fn resolve_unit(&mut self, mi: usize, u: &ast::Unit) -> Result<RUnit, CompileError> {
        let mut uc = UnitCtx {
            vars: Vec::new(),
            names: HashMap::new(),
            consts: HashMap::new(),
            extra_syms: HashMap::new(),
            frame_size: 0,
            result: None,
            unit_name: u.name.clone(),
            mi,
            loop_depth: 0,
        };

        // Declarations: build (name -> decl info) first.
        struct DeclInfo {
            ty: ScalarTy,
            dims: Vec<(i64, i64)>,
            allocatable: bool,
            alloc_rank: usize,
            save: bool,
            /// `DATA`-style static initializer: scalar bits or one word
            /// per array element (fixed-form front end output).
            init: Option<InitV>,
        }
        enum InitV {
            One(u64),
            Many(Vec<u64>),
        }
        let mut decls: HashMap<String, DeclInfo> = HashMap::new();
        for d in &u.decls {
            if d.attrs.parameter {
                for e in &d.entities {
                    let init = e.init.as_ref().ok_or_else(|| {
                        serr(format!("PARAMETER `{}` needs a value", e.name), d.span)
                    })?;
                    let c = self.const_eval(mi, init, d.span)?;
                    uc.consts.insert(e.name.clone(), c);
                }
                continue;
            }
            let ty = match scalar_ty(&d.spec) {
                Some(t) => t,
                None => match &d.spec {
                    TypeSpec::Derived(_) => {
                        return Err(serr(
                            "derived-type variables are only supported at module scope",
                            d.span,
                        ))
                    }
                    _ => continue, // CHARACTER declarations: tolerated, unusable
                },
            };
            for e in &d.entities {
                let edims = e.dims.as_ref().or(d.attrs.dims.as_ref());
                let deferred = edims.map(|v| v.iter().any(|x| x.deferred)).unwrap_or(false);
                let alloc_rank = if deferred { edims.unwrap().len() } else { 0 };
                let dims = if deferred {
                    vec![]
                } else {
                    self.unit_const_dims(&uc, edims, d.span)?
                };
                if deferred && !d.attrs.allocatable {
                    return Err(serr(
                        format!("`{}`: deferred shape requires ALLOCATABLE", e.name),
                        d.span,
                    ));
                }
                let init = match (&e.init, &e.init_list) {
                    (Some(x), _) => Some(InitV::One(self.const_bits(mi, x, ty, d.span)?)),
                    (None, Some(xs)) => {
                        let count: i64 = dims.iter().map(|(lo, hi)| hi - lo + 1).product();
                        if xs.len() as i64 != count {
                            return Err(serr(
                                format!(
                                    "`{}`: {} initializer value(s) for {} element(s)",
                                    e.name,
                                    xs.len(),
                                    count
                                ),
                                d.span,
                            ));
                        }
                        let mut bits = Vec::with_capacity(xs.len());
                        for x in xs {
                            bits.push(self.const_bits(mi, x, ty, d.span)?);
                        }
                        Some(InitV::Many(bits))
                    }
                    (None, None) => None,
                };
                decls.insert(
                    e.name.clone(),
                    DeclInfo {
                        ty,
                        dims,
                        allocatable: d.attrs.allocatable,
                        alloc_rank,
                        save: d.attrs.save,
                        init,
                    },
                );
            }
        }

        // Parameters.
        for p in &u.params {
            let info = decls.remove(p).ok_or_else(|| {
                serr(format!("parameter `{p}` has no declaration"), u.span)
            })?;
            let slot = uc.frame_size;
            uc.frame_size += 1;
            let idx = uc.vars.len();
            uc.vars.push(VarInfo {
                name: p.clone(),
                ty: info.ty,
                place: Place::Frame(slot),
                rank: if info.allocatable { info.alloc_rank } else { info.dims.len() },
                dims: info.dims,
                allocatable: info.allocatable,
                is_param: true,
            });
            uc.names.insert(p.clone(), idx);
        }

        // COMMON members (§3.2): storage-associated by position.
        for (block, members) in &u.commons {
            let mut layout: Vec<GlobalSym> = Vec::new();
            let existing = self.commons.get(block).cloned();
            for (pos, name) in members.iter().enumerate() {
                let info = decls.remove(name).ok_or_else(|| {
                    serr(format!("COMMON member `{name}` has no type declaration"), u.span)
                })?;
                let (init_bits, init_elems) = match info.init {
                    Some(InitV::One(b)) => (Some(b), None),
                    Some(InitV::Many(v)) => (None, Some(v)),
                    None => (None, None),
                };
                let sym = match &existing {
                    Some(prev) => {
                        let prev_sym = prev.get(pos).ok_or_else(|| {
                            serr(
                                format!("COMMON /{block}/ has fewer members elsewhere"),
                                u.span,
                            )
                        })?;
                        if prev_sym.ty != info.ty || prev_sym.dims != info.dims {
                            return Err(serr(
                                format!(
                                    "COMMON /{block}/ member {pos} shape/type mismatch for `{name}`"
                                ),
                                u.span,
                            ));
                        }
                        if init_bits.is_some() || init_elems.is_some() {
                            let g = &mut self.globals[prev_sym.cell];
                            if g.init_bits.is_some() || g.init_elems.is_some() {
                                return Err(serr(
                                    format!(
                                        "COMMON /{block}/ member `{name}` is DATA-initialized \
                                         in more than one unit"
                                    ),
                                    u.span,
                                ));
                            }
                            g.init_bits = init_bits;
                            g.init_elems = init_elems;
                        }
                        prev_sym.clone()
                    }
                    None => {
                        let cell = self.globals.len();
                        self.globals.push(GlobalDecl {
                            name: format!("common {block}::{name}"),
                            ty: info.ty,
                            rank: info.dims.len(),
                            dims: info.dims.clone(),
                            allocatable: false,
                            per_thread: false,
                            init_bits,
                            init_elems,
                        });
                        GlobalSym {
                            cell,
                            ty: info.ty,
                            rank: info.dims.len(),
                            dims: info.dims.clone(),
                            allocatable: false,
                        }
                    }
                };
                let idx = uc.vars.len();
                uc.vars.push(VarInfo {
                    name: name.clone(),
                    ty: sym.ty,
                    place: Place::Global(sym.cell),
                    rank: sym.rank,
                    dims: sym.dims.clone(),
                    allocatable: false,
                    is_param: false,
                });
                uc.names.insert(name.clone(), idx);
                layout.push(sym);
            }
            if existing.is_none() {
                self.commons.insert(block.clone(), layout);
            }
        }

        // Remaining locals.
        let mut local_names: Vec<String> = decls.keys().cloned().collect();
        local_names.sort();
        for name in local_names {
            let info = &decls[&name];
            let idx = uc.vars.len();
            let place = if info.save {
                // SAVE: persistent per-thread global (see DESIGN.md —
                // matches the paper's SAVE + threadprivate adaptation).
                let (init_bits, init_elems) = match &info.init {
                    Some(InitV::One(b)) => (Some(*b), None),
                    Some(InitV::Many(v)) => (None, Some(v.clone())),
                    None => (None, None),
                };
                let cell = self.globals.len();
                self.globals.push(GlobalDecl {
                    name: format!("{}::{}", u.name, name),
                    ty: info.ty,
                    rank: if info.allocatable { info.alloc_rank } else { info.dims.len() },
                    dims: info.dims.clone(),
                    allocatable: info.allocatable,
                    per_thread: true,
                    init_bits,
                    init_elems,
                });
                Place::Global(cell)
            } else {
                let slot = uc.frame_size;
                uc.frame_size += 1;
                Place::Frame(slot)
            };
            uc.vars.push(VarInfo {
                name: name.clone(),
                ty: info.ty,
                place,
                rank: if info.allocatable { info.alloc_rank } else { info.dims.len() },
                dims: info.dims.clone(),
                allocatable: info.allocatable,
                is_param: false,
            });
            uc.names.insert(name.clone(), idx);
        }

        // Function result slot.
        if let UnitKind::Function(spec) = &u.kind {
            let ty = scalar_ty(spec).unwrap();
            let slot = uc.frame_size;
            uc.frame_size += 1;
            let idx = uc.vars.len();
            uc.vars.push(VarInfo {
                name: u.name.clone(),
                ty,
                place: Place::Frame(slot),
                rank: 0,
                dims: vec![],
                allocatable: false,
                is_param: false,
            });
            uc.names.insert(u.name.clone(), idx);
            uc.result = Some((idx, ty));
        }

        // Extra USE inside the unit: import those modules' symbols for
        // resolution (paper §3.1 — per-subprogram USE statements).
        let mut extra_syms: HashMap<String, GlobalSym> = HashMap::new();
        for used in &u.uses {
            let Some(&ui) = self.module_ids.get(used) else {
                return Err(serr(format!("USE of unknown module `{used}`"), u.span));
            };
            for (k, v) in &self.module_syms[ui] {
                extra_syms.entry(k.clone()).or_insert_with(|| v.clone());
            }
            for (k, v) in &self.module_consts[ui] {
                uc.consts.entry(k.clone()).or_insert(*v);
            }
        }
        uc.extra_syms = extra_syms;

        let body = self.resolve_block(&mut uc, &u.body)?;
        Ok(RUnit {
            name: u.name.clone(),
            params: (0..u.params.len()).collect(),
            frame_size: uc.frame_size,
            result: uc.result,
            vars: uc.vars,
            body,
        })
    }

    fn unit_const_dims(
        &self,
        uc: &UnitCtx,
        dims: Option<&Vec<DimDecl>>,
        span: Span,
    ) -> Result<Vec<(i64, i64)>, CompileError> {
        let Some(dims) = dims else { return Ok(vec![]) };
        dims.iter()
            .map(|d| {
                let hi_e = d.hi.as_ref().ok_or_else(|| serr("deferred dim here", span))?;
                let hi = self.unit_const_i(uc, hi_e, span)?;
                let lo = match &d.lo {
                    Some(e) => self.unit_const_i(uc, e, span)?,
                    None => 1,
                };
                if hi < lo {
                    return Err(serr(format!("empty dimension {lo}:{hi}"), span));
                }
                Ok((lo, hi))
            })
            .collect()
    }

    fn unit_const_i(&self, uc: &UnitCtx, e: &Expr, span: Span) -> Result<i64, CompileError> {
        let not_const = || {
            serr(
                "array dimensions must be compile-time constants (use ALLOCATABLE for dynamic shapes)",
                span,
            )
        };
        match e {
            Expr::Int(v) => Ok(*v),
            Expr::Neg(x) => Ok(-self.unit_const_i(uc, x, span)?),
            Expr::Name(d) if d.parts.len() == 1 && d.parts[0].subs.is_empty() => {
                match uc.consts.get(&d.parts[0].name) {
                    Some(Const::I(v)) => Ok(*v),
                    _ => self.const_i(uc.mi, e, span).map_err(|_| not_const()),
                }
            }
            Expr::Bin(..) => {
                // Try module consts.
                self.const_i(uc.mi, e, span).map_err(|_| not_const())
            }
            _ => Err(not_const()),
        }
    }

    // ------------- statements -------------

    fn resolve_block(
        &mut self,
        uc: &mut UnitCtx,
        body: &[Stmt],
    ) -> Result<Vec<SpStmt>, CompileError> {
        body.iter()
            .map(|s| Ok(SpStmt { line: s.span().line, s: self.resolve_stmt(uc, s)? }))
            .collect()
    }

    fn resolve_stmt(&mut self, uc: &mut UnitCtx, s: &Stmt) -> Result<RStmt, CompileError> {
        match s {
            Stmt::Assign { target, value, atomic, span } => {
                self.resolve_assign(uc, target, value, *atomic, *span)
            }
            Stmt::If { arms, else_body, span } => {
                let mut rarms = Vec::with_capacity(arms.len());
                for (c, b) in arms {
                    let (ce, ty) = self.resolve_expr(uc, c, *span)?;
                    if ty != ScalarTy::B {
                        return Err(serr("IF condition must be LOGICAL", *span));
                    }
                    rarms.push((ce, self.resolve_block(uc, b)?));
                }
                Ok(RStmt::If { arms: rarms, else_body: self.resolve_block(uc, else_body)? })
            }
            Stmt::Do { var, start, end, step, body, omp, span } => {
                self.resolve_do(uc, var, start, end, step.as_ref(), body, omp.as_ref(), *span)
            }
            Stmt::DoWhile { cond, body, span } => {
                let (ce, ty) = self.resolve_expr(uc, cond, *span)?;
                if ty != ScalarTy::B {
                    return Err(serr("DO WHILE condition must be LOGICAL", *span));
                }
                uc.loop_depth += 1;
                let body = self.resolve_block(uc, body)?;
                uc.loop_depth -= 1;
                Ok(RStmt::DoWhile { cond: ce, body })
            }
            Stmt::Call { name, args, span } => {
                let sig = self
                    .unit_sigs
                    .get(name)
                    .cloned()
                    .ok_or_else(|| serr(format!("CALL of unknown subroutine `{name}`"), *span))?;
                if sig.ret.is_some() {
                    return Err(serr(format!("`{name}` is a FUNCTION, not a SUBROUTINE"), *span));
                }
                if sig.nparams != args.len() {
                    return Err(serr(
                        format!("`{name}` takes {} args, got {}", sig.nparams, args.len()),
                        *span,
                    ));
                }
                let rargs = self.resolve_args(uc, args, *span)?;
                Ok(RStmt::CallSub { unit: sig.id, args: rargs })
            }
            Stmt::Allocate { items, span } => {
                // One RStmt per item; wrap in a flat sequence via If-less
                // grouping: resolve to a chain (first item returned, rest
                // appended by caller) — simpler: only support one item per
                // statement, which is all the generators emit.
                if items.len() != 1 {
                    return Err(serr("one array per ALLOCATE statement, please", *span));
                }
                let (d, dims) = &items[0];
                let v = uc.lookup(self, d.base(), *span)?;
                if !uc.vars[v].allocatable {
                    return Err(serr(format!("`{}` is not ALLOCATABLE", d.base()), *span));
                }
                let rdims = dims
                    .iter()
                    .map(|dd| {
                        if dd.deferred {
                            return Err(serr("ALLOCATE needs explicit bounds", *span));
                        }
                        let hi = self.resolve_int_expr(uc, dd.hi.as_ref().unwrap(), *span)?;
                        let lo = match &dd.lo {
                            Some(e) => self.resolve_int_expr(uc, e, *span)?,
                            None => RExpr::ConstI(1),
                        };
                        Ok((lo, hi))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(RStmt::Allocate { v, dims: rdims })
            }
            Stmt::Deallocate { names, span } => {
                if names.len() != 1 {
                    return Err(serr("one array per DEALLOCATE statement, please", *span));
                }
                let v = uc.lookup(self, names[0].base(), *span)?;
                Ok(RStmt::Deallocate { v })
            }
            Stmt::Critical { name, body, span: _ } => Ok(RStmt::Critical {
                name: name.clone().unwrap_or_default(),
                body: self.resolve_block(uc, body)?,
            }),
            Stmt::Return(_) => Ok(RStmt::Return),
            Stmt::Exit(span) => {
                if uc.loop_depth == 0 {
                    return Err(serr("EXIT outside a loop", *span));
                }
                Ok(RStmt::Exit)
            }
            Stmt::Cycle(span) => {
                if uc.loop_depth == 0 {
                    return Err(serr("CYCLE outside a loop", *span));
                }
                Ok(RStmt::Cycle)
            }
            Stmt::Continue(_) => Ok(RStmt::Nop),
            Stmt::Stop { message, .. } => Ok(RStmt::Stop(message.clone())),
            Stmt::Print { args, span } => {
                let mut items = Vec::new();
                for a in args {
                    match a {
                        Expr::Str(s) => items.push(PrintItem::Str(s.clone())),
                        other => {
                            let (e, _) = self.resolve_expr(uc, other, *span)?;
                            items.push(PrintItem::Val(e));
                        }
                    }
                }
                Ok(RStmt::Print(items))
            }
        }
    }

    fn resolve_assign(
        &mut self,
        uc: &mut UnitCtx,
        target: &ast::Desig,
        value: &Expr,
        atomic: bool,
        span: Span,
    ) -> Result<RStmt, CompileError> {
        let (v, subs) = self.resolve_target(uc, target, span)?;
        let info = uc.vars[v].clone();
        if atomic {
            // Must match `t = t op e` / `t = max(t, e)` etc.
            let (op, rest) = match_atomic_pattern(target, value).ok_or_else(|| {
                serr("!$OMP ATOMIC requires `x = x op expr` form", span)
            })?;
            let rsubs = subs
                .iter()
                .map(|e| self.resolve_int_expr_ast(uc, e, span))
                .collect::<Result<Vec<_>, _>>()?;
            let (re, rty) = self.resolve_expr(uc, &rest, span)?;
            let re = coerce(re, rty, info.ty, span)?;
            return Ok(RStmt::AtomicUpdate { v, subs: rsubs, op, e: re });
        }
        // Whole-array forms.
        if info.rank > 0 && subs.is_empty() {
            if let Expr::Name(d) = value {
                if d.parts.len() == 1 && d.parts[0].subs.is_empty() {
                    if let Ok(src) = uc.lookup(self, d.base(), span) {
                        if uc.vars[src].rank > 0 {
                            return Ok(RStmt::CopyArray { dst: v, src });
                        }
                    }
                }
            }
            let (re, rty) = self.resolve_expr(uc, value, span)?;
            let re = coerce(re, rty, info.ty, span)?;
            return Ok(RStmt::Broadcast { v, e: re });
        }
        if info.rank > 0 && subs.len() != info.rank {
            return Err(serr(
                format!("`{}` has rank {}, got {} subscripts", info.name, info.rank, subs.len()),
                span,
            ));
        }
        let rsubs = subs
            .iter()
            .map(|e| self.resolve_int_expr_ast(uc, e, span))
            .collect::<Result<Vec<_>, _>>()?;
        let (re, rty) = self.resolve_expr(uc, value, span)?;
        let re = coerce(re, rty, info.ty, span)?;
        if info.rank == 0 {
            Ok(RStmt::AssignScalar { v, e: re })
        } else {
            Ok(RStmt::AssignElem { v, subs: rsubs, e: re })
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve_do(
        &mut self,
        uc: &mut UnitCtx,
        var: &str,
        start: &Expr,
        end: &Expr,
        step: Option<&Expr>,
        body: &[Stmt],
        omp: Option<&ast::OmpDo>,
        span: Span,
    ) -> Result<RStmt, CompileError> {
        let v = uc.lookup(self, var, span)?;
        if uc.vars[v].ty != ScalarTy::I || uc.vars[v].rank != 0 {
            return Err(serr(format!("loop variable `{var}` must be INTEGER scalar"), span));
        }
        let rstart = self.resolve_int_expr(uc, start, span)?;
        let rend = self.resolve_int_expr(uc, end, span)?;
        let rstep = match step {
            Some(e) => Some(self.resolve_int_expr(uc, e, span)?),
            None => None,
        };

        let romp = match omp {
            None => None,
            Some(o) => {
                let mut private = Vec::new();
                for n in o.private.iter().chain(o.firstprivate.iter()) {
                    private.push(uc.lookup(self, n, span)?);
                }
                let mut reductions = Vec::new();
                for (op, names) in &o.reductions {
                    for n in names {
                        let rv = uc.lookup(self, n, span)?;
                        if uc.vars[rv].rank != 0 {
                            return Err(serr(
                                format!("REDUCTION variable `{n}` must be scalar"),
                                span,
                            ));
                        }
                        reductions.push((*op, rv));
                    }
                }
                let num_threads = match &o.num_threads {
                    Some(e) => Some(Box::new(self.resolve_int_expr(uc, e, span)?)),
                    None => None,
                };
                let sched = match o.schedule {
                    None | Some((ast::SchedKind::Static, None)) => {
                        omprt::Schedule::StaticBlock
                    }
                    Some((ast::SchedKind::Static, Some(c))) => {
                        omprt::Schedule::StaticChunk(c)
                    }
                    Some((ast::SchedKind::Dynamic, c)) => {
                        omprt::Schedule::Dynamic(c.unwrap_or(1))
                    }
                    Some((ast::SchedKind::Guided, c)) => {
                        omprt::Schedule::Guided(c.unwrap_or(1))
                    }
                };
                Some(ROmp {
                    private,
                    reductions,
                    collapse: o.collapse,
                    num_threads,
                    sched,
                    // Filled by the mark_per_thread_regions post-pass.
                    per_thread_access: false,
                })
            }
        };

        // COLLAPSE(n>=2): peel perfectly-nested inner loops.
        let mut collapse_with = Vec::new();
        let mut inner_body: &[Stmt] = body;
        if let Some(ro) = &romp {
            let mut need = ro.collapse.saturating_sub(1);
            while need > 0 {
                match inner_body {
                    [Stmt::Do { var, start, end, step: None, body, omp: None, span: ispan }] => {
                        let iv = uc.lookup(self, var, *ispan)?;
                        collapse_with.push(CollapseDim {
                            var: iv,
                            start: self.resolve_int_expr(uc, start, *ispan)?,
                            end: self.resolve_int_expr(uc, end, *ispan)?,
                        });
                        inner_body = body;
                        need -= 1;
                    }
                    _ => {
                        return Err(serr(
                            "COLLAPSE requires a perfectly nested unit-stride DO nest",
                            span,
                        ))
                    }
                }
            }
        }

        uc.loop_depth += 1;
        let rbody = self.resolve_block(uc, inner_body)?;
        uc.loop_depth -= 1;

        let vec = if romp.is_some() { VecClass::None } else { classify_vec(&rbody) };
        Ok(RStmt::Do {
            var: v,
            start: rstart,
            end: rend,
            step: rstep,
            body: rbody,
            omp: romp,
            vec,
            collapse_with,
        })
    }

    fn resolve_args(
        &mut self,
        uc: &mut UnitCtx,
        args: &[Expr],
        span: Span,
    ) -> Result<Vec<RArg>, CompileError> {
        args.iter()
            .map(|a| {
                if let Expr::Name(d) = a {
                    if d.parts.len() == 1 {
                        if let Ok(v) = uc.lookup(self, d.base(), span) {
                            let info = &uc.vars[v];
                            if d.parts[0].subs.is_empty() {
                                return Ok(if info.rank > 0 {
                                    RArg::Array(v)
                                } else {
                                    RArg::ByRefScalar(v)
                                });
                            } else if info.rank > 0 && d.parts[0].subs.len() == info.rank {
                                let subs = d.parts[0]
                                    .subs
                                    .iter()
                                    .map(|e| self.resolve_int_expr(uc, e, span))
                                    .collect::<Result<Vec<_>, _>>()?;
                                return Ok(RArg::ByRefElem { v, subs });
                            }
                        }
                    }
                }
                let (e, _) = self.resolve_expr(uc, a, span)?;
                Ok(RArg::Value(e))
            })
            .collect()
    }

    // ------------- expressions -------------

    fn resolve_int_expr(
        &mut self,
        uc: &mut UnitCtx,
        e: &Expr,
        span: Span,
    ) -> Result<RExpr, CompileError> {
        let (re, ty) = self.resolve_expr(uc, e, span)?;
        coerce(re, ty, ScalarTy::I, span)
    }

    fn resolve_int_expr_ast(
        &mut self,
        uc: &mut UnitCtx,
        e: &Expr,
        span: Span,
    ) -> Result<RExpr, CompileError> {
        self.resolve_int_expr(uc, e, span)
    }

    fn resolve_expr(
        &mut self,
        uc: &mut UnitCtx,
        e: &Expr,
        span: Span,
    ) -> Result<(RExpr, ScalarTy), CompileError> {
        match e {
            Expr::Int(v) => Ok((RExpr::ConstI(*v), ScalarTy::I)),
            Expr::Real(v) => Ok((RExpr::ConstF(*v), ScalarTy::F)),
            Expr::Logical(b) => Ok((RExpr::ConstB(*b), ScalarTy::B)),
            Expr::Str(_) => Err(serr("string values only in PRINT/STOP", span)),
            Expr::Neg(x) => {
                let (rx, ty) = self.resolve_expr(uc, x, span)?;
                if ty == ScalarTy::B {
                    return Err(serr("cannot negate LOGICAL", span));
                }
                Ok((RExpr::Neg(Box::new(rx)), ty))
            }
            Expr::Not(x) => {
                let (rx, ty) = self.resolve_expr(uc, x, span)?;
                if ty != ScalarTy::B {
                    return Err(serr(".NOT. needs a LOGICAL", span));
                }
                Ok((RExpr::Not(Box::new(rx)), ScalarTy::B))
            }
            Expr::Bin(op, l, r) => {
                let (rl, tl) = self.resolve_expr(uc, l, span)?;
                let (rr, tr) = self.resolve_expr(uc, r, span)?;
                match op {
                    Bin::And | Bin::Or => {
                        if tl != ScalarTy::B || tr != ScalarTy::B {
                            return Err(serr("logical operator on non-LOGICAL", span));
                        }
                        Ok((
                            RExpr::Bin {
                                op: *op,
                                ty: ScalarTy::B,
                                l: Box::new(rl),
                                r: Box::new(rr),
                            },
                            ScalarTy::B,
                        ))
                    }
                    Bin::Eq | Bin::Ne | Bin::Lt | Bin::Le | Bin::Gt | Bin::Ge => {
                        let common = promote(tl, tr, span)?;
                        let rl = coerce(rl, tl, common, span)?;
                        let rr = coerce(rr, tr, common, span)?;
                        Ok((
                            RExpr::Bin { op: *op, ty: common, l: Box::new(rl), r: Box::new(rr) },
                            ScalarTy::B,
                        ))
                    }
                    _ => {
                        // Arithmetic. `F ** I` keeps an integer exponent.
                        if *op == Bin::Pow && tl == ScalarTy::F && tr == ScalarTy::I {
                            return Ok((
                                RExpr::Bin {
                                    op: *op,
                                    ty: ScalarTy::F,
                                    l: Box::new(rl),
                                    r: Box::new(rr),
                                },
                                ScalarTy::F,
                            ));
                        }
                        let common = promote(tl, tr, span)?;
                        let rl = coerce(rl, tl, common, span)?;
                        let rr = coerce(rr, tr, common, span)?;
                        Ok((
                            RExpr::Bin { op: *op, ty: common, l: Box::new(rl), r: Box::new(rr) },
                            common,
                        ))
                    }
                }
            }
            Expr::Name(d) => self.resolve_name(uc, d, span),
        }
    }

    fn resolve_name(
        &mut self,
        uc: &mut UnitCtx,
        d: &ast::Desig,
        span: Span,
    ) -> Result<(RExpr, ScalarTy), CompileError> {
        // Derived-type path: base%field — flattened global.
        if d.parts.len() == 2 {
            let key = format!("{}%{}", d.parts[0].name, d.parts[1].name);
            let v = uc.lookup(self, &key, span)?;
            let mut subs = Vec::new();
            for s in d.parts[0].subs.iter().chain(d.parts[1].subs.iter()) {
                subs.push(self.resolve_int_expr(uc, s, span)?);
            }
            let info = &uc.vars[v];
            return if subs.is_empty() && info.rank == 0 {
                Ok((RExpr::LoadScalar(v), info.ty))
            } else if subs.len() == info.rank {
                Ok((RExpr::LoadElem { v, subs }, info.ty))
            } else {
                Err(serr(format!("`{key}`: wrong number of subscripts"), span))
            };
        }
        if d.parts.len() > 2 {
            return Err(serr("at most one `%` component is supported", span));
        }

        let part = &d.parts[0];
        let name = part.name.as_str();

        // Constants.
        if part.subs.is_empty() {
            if let Some(c) = uc.consts.get(name).copied().or_else(|| {
                self.module_consts[uc.mi].get(name).copied()
            }) {
                return Ok(match c {
                    Const::I(v) => (RExpr::ConstI(v), ScalarTy::I),
                    Const::F(v) => (RExpr::ConstF(v), ScalarTy::F),
                    Const::B(b) => (RExpr::ConstB(b), ScalarTy::B),
                });
            }
        }

        // Variables.
        if let Ok(v) = uc.lookup(self, name, span) {
            let info = uc.vars[v].clone();
            if part.subs.is_empty() {
                if info.rank == 0 {
                    return Ok((RExpr::LoadScalar(v), info.ty));
                }
                return Err(serr(
                    format!("whole-array `{name}` not valid in this expression"),
                    span,
                ));
            }
            if info.rank > 0 {
                if part.subs.len() != info.rank {
                    return Err(serr(
                        format!(
                            "`{name}` has rank {}, got {} subscripts",
                            info.rank,
                            part.subs.len()
                        ),
                        span,
                    ));
                }
                let subs = part
                    .subs
                    .iter()
                    .map(|e| self.resolve_int_expr(uc, e, span))
                    .collect::<Result<Vec<_>, _>>()?;
                return Ok((RExpr::LoadElem { v, subs }, info.ty));
            }
            return Err(serr(format!("scalar `{name}` subscripted"), span));
        }

        // ALLOCATED(x).
        if name == "allocated" && part.subs.len() == 1 {
            if let Expr::Name(ad) = &part.subs[0] {
                let v = uc.lookup(self, ad.base(), span)?;
                return Ok((RExpr::AllocatedQ(v), ScalarTy::B));
            }
            return Err(serr("ALLOCATED takes a variable", span));
        }

        // Whole-array reductions: SUM/MAXVAL/MINVAL/SIZE(array).
        if let Some(f) = match name {
            "sum" => Some(ArrRed::Sum),
            "maxval" => Some(ArrRed::Maxval),
            "minval" => Some(ArrRed::Minval),
            "size" => Some(ArrRed::Size),
            _ => None,
        } {
            if part.subs.len() == 1 {
                if let Expr::Name(ad) = &part.subs[0] {
                    if ad.parts.len() == 1 && ad.parts[0].subs.is_empty() {
                        if let Ok(v) = uc.lookup(self, ad.base(), span) {
                            if uc.vars[v].rank > 0 {
                                let ty = if f == ArrRed::Size {
                                    ScalarTy::I
                                } else {
                                    uc.vars[v].ty
                                };
                                return Ok((RExpr::ArrReduce { f, v }, ty));
                            }
                        }
                    }
                }
            }
            if name == "sum" || name == "maxval" || name == "minval" || name == "size" {
                return Err(serr(
                    format!("{} takes one whole-array argument", name.to_uppercase()),
                    span,
                ));
            }
        }

        // Scalar intrinsics.
        if let Some(f) = Intr::from_name(name) {
            let (lo, hi) = f.arity();
            if part.subs.len() < lo || part.subs.len() > hi {
                return Err(serr(
                    format!("{} expects {lo}..{hi} arguments", name.to_uppercase()),
                    span,
                ));
            }
            let mut rargs = Vec::new();
            let mut tys = Vec::new();
            for a in &part.subs {
                let (re, ty) = self.resolve_expr(uc, a, span)?;
                if ty == ScalarTy::B {
                    return Err(serr("LOGICAL argument to numeric intrinsic", span));
                }
                rargs.push(re);
                tys.push(ty);
            }
            // Promote: any F makes all F, except INT/NINT which force eval
            // in F and return I.
            let arg_common = if tys.contains(&ScalarTy::F) || f.is_special()
                || matches!(f, Intr::Int | Intr::Nint | Intr::Real | Intr::Dble)
            {
                ScalarTy::F
            } else {
                ScalarTy::I
            };
            let rargs = rargs
                .into_iter()
                .zip(tys.iter())
                .map(|(a, &t)| coerce(a, t, arg_common, span))
                .collect::<Result<Vec<_>, _>>()?;
            let ret = f.result_ty(arg_common);
            return Ok((RExpr::Intrinsic { f, args: rargs }, ret));
        }

        // User function call.
        if let Some(sig) = self.unit_sigs.get(name).cloned() {
            let ret = sig
                .ret
                .ok_or_else(|| serr(format!("SUBROUTINE `{name}` used as a function"), span))?;
            if sig.nparams != part.subs.len() {
                return Err(serr(
                    format!("`{name}` takes {} args, got {}", sig.nparams, part.subs.len()),
                    span,
                ));
            }
            let rargs = self.resolve_args(uc, &part.subs, span)?;
            return Ok((RExpr::CallFn { unit: sig.id, args: rargs, ret }, ret));
        }

        Err(serr(format!("unknown name `{name}`"), span))
    }

    /// Resolves an assignment target to (var, subscript exprs).
    fn resolve_target<'a>(
        &mut self,
        uc: &mut UnitCtx,
        d: &'a ast::Desig,
        span: Span,
    ) -> Result<(VarIdx, Vec<&'a Expr>), CompileError> {
        if d.parts.len() == 2 {
            let key = format!("{}%{}", d.parts[0].name, d.parts[1].name);
            let v = uc.lookup(self, &key, span)?;
            let subs: Vec<&Expr> = d.parts[0].subs.iter().chain(d.parts[1].subs.iter()).collect();
            return Ok((v, subs));
        }
        let v = uc.lookup(self, d.base(), span)?;
        Ok((v, d.parts[0].subs.iter().collect()))
    }
}

/// Per-unit resolution context.
#[derive(Default)]
struct UnitCtx {
    vars: Vec<VarInfo>,
    names: HashMap<String, VarIdx>,
    consts: HashMap<String, Const>,
    extra_syms: HashMap<String, GlobalSym>,
    frame_size: usize,
    result: Option<(VarIdx, ScalarTy)>,
    unit_name: String,
    mi: usize,
    loop_depth: usize,
}

impl UnitCtx {
    /// Looks a name up: unit locals → unit USE imports → module symbols.
    /// Global hits are interned into the unit var table on first use.
    fn lookup(&mut self, r: &Resolver, name: &str, span: Span) -> Result<VarIdx, CompileError> {
        if let Some(&idx) = self.names.get(name) {
            return Ok(idx);
        }
        let sym = self
            .extra_syms
            .get(name)
            .or_else(|| r.module_syms[self.mi].get(name))
            .cloned()
            .ok_or_else(|| {
                serr(format!("unknown variable `{name}` in `{}`", self.unit_name), span)
            })?;
        let idx = self.vars.len();
        self.vars.push(VarInfo {
            name: name.to_string(),
            ty: sym.ty,
            place: Place::Global(sym.cell),
            rank: if sym.allocatable { r.globals[sym.cell].rank } else { sym.rank },
            dims: sym.dims,
            allocatable: sym.allocatable,
            is_param: false,
        });
        self.names.insert(name.to_string(), idx);
        Ok(idx)
    }
}


fn promote(a: ScalarTy, b: ScalarTy, span: Span) -> Result<ScalarTy, CompileError> {
    match (a, b) {
        (ScalarTy::B, _) | (_, ScalarTy::B) => {
            Err(serr("LOGICAL in arithmetic context", span))
        }
        (ScalarTy::F, _) | (_, ScalarTy::F) => Ok(ScalarTy::F),
        _ => Ok(ScalarTy::I),
    }
}

fn coerce(e: RExpr, from: ScalarTy, to: ScalarTy, span: Span) -> Result<RExpr, CompileError> {
    match (from, to) {
        (a, b) if a == b => Ok(e),
        (ScalarTy::I, ScalarTy::F) => Ok(RExpr::ToF(Box::new(e))),
        (ScalarTy::F, ScalarTy::I) => Ok(RExpr::ToI(Box::new(e))),
        _ => Err(serr("LOGICAL/numeric type mismatch", span)),
    }
}

/// Detects the `x = x op e` family for `!$OMP ATOMIC`.
fn match_atomic_pattern(target: &ast::Desig, value: &Expr) -> Option<(ast::RedOp, Expr)> {
    let same = |e: &Expr| matches!(e, Expr::Name(d) if d == target);
    match value {
        Expr::Bin(Bin::Add, l, r) => {
            if same(l) {
                Some((ast::RedOp::Add, (**r).clone()))
            } else if same(r) {
                Some((ast::RedOp::Add, (**l).clone()))
            } else {
                None
            }
        }
        Expr::Bin(Bin::Sub, l, r) if same(l) => {
            Some((ast::RedOp::Add, Expr::Neg(Box::new((**r).clone()))))
        }
        Expr::Bin(Bin::Mul, l, r) => {
            if same(l) {
                Some((ast::RedOp::Mul, (**r).clone()))
            } else if same(r) {
                Some((ast::RedOp::Mul, (**l).clone()))
            } else {
                None
            }
        }
        Expr::Name(d) if d.parts.len() == 1 && d.parts[0].subs.len() == 2 => {
            let f = &d.parts[0];
            let op = match f.name.as_str() {
                "max" => ast::RedOp::Max,
                "min" => ast::RedOp::Min,
                _ => return None,
            };
            if same(&f.subs[0]) {
                Some((op, f.subs[1].clone()))
            } else if same(&f.subs[1]) {
                Some((op, f.subs[0].clone()))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Compiler-model vectorization classification of a (serial) loop body.
fn classify_vec(body: &[SpStmt]) -> VecClass {
    let simple = body.iter().all(|s| {
        matches!(
            s.s,
            RStmt::AssignElem { .. } | RStmt::AssignScalar { .. } | RStmt::Broadcast { .. }
        )
    });
    if !simple {
        return VecClass::None;
    }
    if body.len() == 1 {
        if let RStmt::AssignElem { e, .. } = &body[0].s {
            if matches!(e, RExpr::ConstF(v) if *v == 0.0) || matches!(e, RExpr::ConstI(0)) {
                return VecClass::Memset;
            }
        }
    }
    VecClass::Simd
}
