//! Execution observability: per-unit / per-DO-loop spans and the
//! [`Profile`] report.
//!
//! Both execution tiers accept an optional [`Collector`] reference. When
//! absent (the default for [`crate::Engine::run`]), the only cost is a
//! branch on an `Option` at unit, DO-loop and OMP-region boundaries —
//! never per instruction or per iteration. When present, the tiers record
//!
//! * one **span** per unit activation, per counted `DO` loop entry and
//!   per `!$OMP PARALLEL DO` region, merged by call path into a tree with
//!   entry counts and inclusive wall time;
//! * the tier's **step count** (VM instructions retired / interpreter
//!   statements executed), which doubles as the [`crate::RunLimits`]
//!   budget headroom;
//! * trap/fallback diagnostics when the VM tier re-executed on the
//!   tree-walk oracle.
//!
//! `DO WHILE` loops are deliberately *not* profiled (neither tier), so
//! span trees are tier-invariant by construction — the differential suite
//! locks this.
//!
//! The report renders as JSON (hand-rolled; the workspace has no serde)
//! and as folded stacks (`a;b;c N`, flamegraph-ready). Both renderers
//! have parsers, so profiles survive a round-trip through either format —
//! locked by property tests.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// What a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// One program unit (subroutine/function) activation site.
    Unit,
    /// One counted `DO` loop (entries = loop entries, not iterations).
    Loop,
    /// One `!$OMP PARALLEL DO` region.
    OmpLoop,
}

impl SpanKind {
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Unit => "unit",
            SpanKind::Loop => "loop",
            SpanKind::OmpLoop => "omp",
        }
    }
}

/// One node of the merged span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    pub kind: SpanKind,
    /// Unit name for `Unit` spans; empty for loops.
    pub name: String,
    /// Source line of the `DO` statement; 0 for units.
    pub line: u32,
    /// Times this span was entered.
    pub entries: u64,
    /// Inclusive wall time across all entries.
    pub wall_ns: u64,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Wall time not attributed to any child span.
    pub fn self_ns(&self) -> u64 {
        self.wall_ns
            .saturating_sub(self.children.iter().map(|c| c.wall_ns).sum())
    }

    /// The node's folded-stack frame label.
    pub fn label(&self) -> String {
        match self.kind {
            SpanKind::Unit => self.name.clone(),
            SpanKind::Loop => format!("do@{}", self.line),
            SpanKind::OmpLoop => format!("omp@{}", self.line),
        }
    }

    /// Copy with entry counts zeroed — the shape information a folded
    /// stack preserves.
    pub fn skeleton(&self) -> SpanNode {
        SpanNode {
            kind: self.kind,
            name: self.name.clone(),
            line: self.line,
            entries: 0,
            wall_ns: self.wall_ns,
            children: self.children.iter().map(|c| c.skeleton()).collect(),
        }
    }
}

/// Per-region worker utilization, mirrored from
/// `omprt::RegionMetrics` (kept structurally so `Profile` stays
/// dependency-free and integer-only for lossless JSON).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionReport {
    pub threads: u64,
    /// Fork-to-join wall time of the region.
    pub wall_ns: u64,
    /// Per-worker busy time (`busy_ns[tid]`).
    pub busy_ns: Vec<u64>,
    /// Source line of the parallel DO that forked the region — the join
    /// key back to `omp@line` spans and schedule overrides (0 when the
    /// fork was untagged).
    pub line: u64,
    /// Rendered schedule the region ran under (e.g. `static`,
    /// `dynamic,1`); empty when the fork was untagged.
    pub sched: String,
}

impl RegionReport {
    /// Total idle time summed over workers.
    pub fn idle_ns(&self) -> u64 {
        let cap = self.wall_ns.saturating_mul(self.threads);
        cap.saturating_sub(self.busy_ns.iter().sum())
    }

    /// Mean busy fraction of the team, in [0, 1].
    pub fn utilization(&self) -> f64 {
        let cap = self.wall_ns.saturating_mul(self.threads);
        if cap == 0 {
            return 0.0;
        }
        let busy: u64 = self.busy_ns.iter().sum();
        busy as f64 / cap as f64
    }

    /// Max-over-mean busy time — 1.0 means perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let max = self.busy_ns.iter().copied().max().unwrap_or(0);
        let n = self.busy_ns.len().max(1) as f64;
        let mean = self.busy_ns.iter().sum::<u64>() as f64 / n;
        if mean == 0.0 {
            return 1.0;
        }
        max as f64 / mean
    }
}

/// VM→oracle fallback diagnostics for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FallbackInfo {
    /// Unit the trap surfaced in.
    pub unit: String,
    /// The trap payload.
    pub what: String,
}

/// The stable observability report of one profiled run.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Entry unit name.
    pub entry: String,
    /// `"vm"` or `"tree-walk"` — the tier that produced the answer.
    pub tier: String,
    /// `"serial"`, `"parallel(N)"` or `"simulated(N)"`.
    pub mode: String,
    /// End-to-end wall time of the run.
    pub wall_ns: u64,
    /// VM instructions retired / interpreter statements executed — the
    /// same counter [`crate::RunLimits::max_steps`] budgets.
    pub steps: u64,
    /// The step budget, when one was configured.
    pub max_steps: Option<u64>,
    pub spans: Vec<SpanNode>,
    /// Parallel-region utilization, in fork order (Parallel mode only).
    pub regions: Vec<RegionReport>,
    /// Set when the VM trapped and the oracle re-ran the request.
    pub fallback: Option<FallbackInfo>,
    /// Engine-lifetime fallback total (monotonic across runs).
    pub fallback_count: u64,
    /// Session-lifetime count of loop entries executed on the native
    /// (JIT) tier (monotonic across runs; 0 on targets without one).
    pub native_entries: u64,
    /// Session-lifetime count of native-tier deopts — entry-guard
    /// failures on promoted regions that fell back to the vector or
    /// scalar path (monotonic across runs).
    pub native_deopts: u64,
}

impl Profile {
    /// Remaining step budget, when a budget was set.
    pub fn steps_headroom(&self) -> Option<u64> {
        self.max_steps.map(|m| m.saturating_sub(self.steps))
    }

    /// Aggregate loop-entry counts keyed by `(unit, line)` — the
    /// tier-invariant observable the differential suite compares.
    pub fn loop_entry_counts(&self) -> BTreeMap<(String, u32), u64> {
        let mut out = BTreeMap::new();
        fn walk(nodes: &[SpanNode], unit: &str, out: &mut BTreeMap<(String, u32), u64>) {
            for n in nodes {
                match n.kind {
                    SpanKind::Unit => walk(&n.children, &n.name, out),
                    SpanKind::Loop | SpanKind::OmpLoop => {
                        *out.entry((unit.to_string(), n.line)).or_insert(0) += n.entries;
                        walk(&n.children, unit, out);
                    }
                }
            }
        }
        walk(&self.spans, "", &mut out);
        out
    }

    // ---- JSON ----

    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        let _ = write!(s, "\"entry\":{}", json_str(&self.entry));
        let _ = write!(s, ",\"tier\":{}", json_str(&self.tier));
        let _ = write!(s, ",\"mode\":{}", json_str(&self.mode));
        let _ = write!(s, ",\"wall_ns\":{}", self.wall_ns);
        let _ = write!(s, ",\"steps\":{}", self.steps);
        match self.max_steps {
            Some(m) => {
                let _ = write!(s, ",\"max_steps\":{m}");
            }
            None => s.push_str(",\"max_steps\":null"),
        }
        s.push_str(",\"spans\":[");
        for (i, n) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            span_json(n, &mut s);
        }
        s.push_str("],\"regions\":[");
        for (i, r) in self.regions.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"threads\":{},\"wall_ns\":{},\"line\":{},\"sched\":{},\"busy_ns\":[",
                r.threads,
                r.wall_ns,
                r.line,
                json_str(&r.sched)
            );
            for (j, b) in r.busy_ns.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{b}");
            }
            s.push_str("]}");
        }
        s.push(']');
        match &self.fallback {
            Some(f) => {
                let _ = write!(
                    s,
                    ",\"fallback\":{{\"unit\":{},\"what\":{}}}",
                    json_str(&f.unit),
                    json_str(&f.what)
                );
            }
            None => s.push_str(",\"fallback\":null"),
        }
        let _ = write!(s, ",\"fallback_count\":{}", self.fallback_count);
        let _ = write!(s, ",\"native_entries\":{}", self.native_entries);
        let _ = write!(s, ",\"native_deopts\":{}", self.native_deopts);
        s.push('}');
        s
    }

    pub fn from_json(src: &str) -> Result<Profile, String> {
        let v = Json::parse(src)?;
        let o = v.obj("profile")?;
        let spans = o
            .req("spans")?
            .arr("spans")?
            .iter()
            .map(span_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let regions = o
            .req("regions")?
            .arr("regions")?
            .iter()
            .map(|r| {
                let ro = r.obj("region")?;
                Ok(RegionReport {
                    threads: ro.req("threads")?.num("threads")?,
                    wall_ns: ro.req("wall_ns")?.num("wall_ns")?,
                    line: ro.req("line")?.num("line")?,
                    sched: ro.req("sched")?.str("sched")?,
                    busy_ns: ro
                        .req("busy_ns")?
                        .arr("busy_ns")?
                        .iter()
                        .map(|b| b.num("busy_ns[]"))
                        .collect::<Result<Vec<_>, _>>()?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let fallback = match o.req("fallback")? {
            Json::Null => None,
            f => {
                let fo = f.obj("fallback")?;
                Some(FallbackInfo {
                    unit: fo.req("unit")?.str("unit")?,
                    what: fo.req("what")?.str("what")?,
                })
            }
        };
        Ok(Profile {
            entry: o.req("entry")?.str("entry")?,
            tier: o.req("tier")?.str("tier")?,
            mode: o.req("mode")?.str("mode")?,
            wall_ns: o.req("wall_ns")?.num("wall_ns")?,
            steps: o.req("steps")?.num("steps")?,
            max_steps: match o.req("max_steps")? {
                Json::Null => None,
                v => Some(v.num("max_steps")?),
            },
            spans,
            regions,
            fallback,
            fallback_count: o.req("fallback_count")?.num("fallback_count")?,
            native_entries: o.num_or_zero("native_entries")?,
            native_deopts: o.num_or_zero("native_deopts")?,
        })
    }

    // ---- Folded stacks ----

    /// Flamegraph-ready folded stacks: one `path;to;frame self_ns` line
    /// per span with nonzero self time (leaves always emitted, so no
    /// frame disappears).
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        let mut path: Vec<String> = Vec::new();
        fn walk(nodes: &[SpanNode], path: &mut Vec<String>, out: &mut String) {
            for n in nodes {
                path.push(n.label());
                let own = n.self_ns();
                if own > 0 || n.children.is_empty() {
                    let _ = writeln!(out, "{} {}", path.join(";"), own);
                }
                walk(&n.children, path, out);
                path.pop();
            }
        }
        walk(&self.spans, &mut path, &mut out);
        out
    }

    /// Rebuilds the span tree of [`Profile::to_folded`] output. Entry
    /// counts are not representable in folded form, so the result
    /// compares equal to the original's [`SpanNode::skeleton`].
    pub fn parse_folded(src: &str) -> Result<Vec<SpanNode>, String> {
        // Arena build: (label path) trie preserving first-appearance order.
        #[derive(Debug)]
        struct N {
            label: String,
            self_ns: u64,
            children: Vec<N>,
        }
        fn insert(level: &mut Vec<N>, frames: &[&str], self_ns: u64) {
            let (first, rest) = match frames.split_first() {
                Some(x) => x,
                None => return,
            };
            let pos = match level.iter().position(|n| n.label == *first) {
                Some(p) => p,
                None => {
                    level.push(N { label: first.to_string(), self_ns: 0, children: Vec::new() });
                    level.len() - 1
                }
            };
            if rest.is_empty() {
                level[pos].self_ns += self_ns;
            } else {
                insert(&mut level[pos].children, rest, self_ns);
            }
        }
        let mut roots: Vec<N> = Vec::new();
        for (lno, line) in src.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (stack, count) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("folded line {}: missing count", lno + 1))?;
            let self_ns: u64 = count
                .parse()
                .map_err(|_| format!("folded line {}: bad count {count:?}", lno + 1))?;
            let frames: Vec<&str> = stack.split(';').collect();
            if frames.iter().any(|f| f.is_empty()) {
                return Err(format!("folded line {}: empty frame", lno + 1));
            }
            insert(&mut roots, &frames, self_ns);
        }
        fn finish(n: N) -> Result<SpanNode, String> {
            let (kind, name, line) = if let Some(rest) = n.label.strip_prefix("do@") {
                (SpanKind::Loop, String::new(), rest.parse().map_err(|_| bad_label(&n.label))?)
            } else if let Some(rest) = n.label.strip_prefix("omp@") {
                (SpanKind::OmpLoop, String::new(), rest.parse().map_err(|_| bad_label(&n.label))?)
            } else {
                (SpanKind::Unit, n.label.clone(), 0)
            };
            let children = n
                .children
                .into_iter()
                .map(finish)
                .collect::<Result<Vec<SpanNode>, _>>()?;
            let wall = n.self_ns + children.iter().map(|c| c.wall_ns).sum::<u64>();
            Ok(SpanNode { kind, name, line, entries: 0, wall_ns: wall, children })
        }
        fn bad_label(l: &str) -> String {
            format!("folded frame {l:?}: bad line number")
        }
        roots.into_iter().map(finish).collect()
    }
}

fn span_json(n: &SpanNode, s: &mut String) {
    let _ = write!(
        s,
        "{{\"kind\":{},\"name\":{},\"line\":{},\"entries\":{},\"wall_ns\":{},\"children\":[",
        json_str(n.kind.name()),
        json_str(&n.name),
        n.line,
        n.entries,
        n.wall_ns
    );
    for (i, c) in n.children.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        span_json(c, s);
    }
    s.push_str("]}");
}

fn span_from_json(v: &Json) -> Result<SpanNode, String> {
    let o = v.obj("span")?;
    let kind = match o.req("kind")?.str("kind")?.as_str() {
        "unit" => SpanKind::Unit,
        "loop" => SpanKind::Loop,
        "omp" => SpanKind::OmpLoop,
        other => return Err(format!("unknown span kind {other:?}")),
    };
    Ok(SpanNode {
        kind,
        name: o.req("name")?.str("name")?,
        line: o.req("line")?.num("line")? as u32,
        entries: o.req("entries")?.num("entries")?,
        wall_ns: o.req("wall_ns")?.num("wall_ns")?,
        children: o
            .req("children")?
            .arr("children")?
            .iter()
            .map(span_from_json)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

/// JSON string literal with full escaping of quotes, backslashes and
/// control characters.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---- minimal JSON reader (objects/arrays/strings/u64/null — exactly
// what the writer above emits) ----

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(src: &str) -> Result<Json, String> {
        let b = src.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing JSON at byte {pos}"));
        }
        Ok(v)
    }

    fn obj(&self, what: &str) -> Result<ObjRef<'_>, String> {
        match self {
            Json::Obj(fields) => Ok(ObjRef(fields)),
            _ => Err(format!("{what}: expected object")),
        }
    }

    fn arr(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(v) => Ok(v),
            _ => Err(format!("{what}: expected array")),
        }
    }

    fn num(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            _ => Err(format!("{what}: expected number")),
        }
    }

    fn str(&self, what: &str) -> Result<String, String> {
        match self {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(format!("{what}: expected string")),
        }
    }
}

struct ObjRef<'a>(&'a [(String, Json)]);

impl ObjRef<'_> {
    fn req(&self, key: &str) -> Result<&Json, String> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    /// Numeric field that older snapshots may lack; absent → 0.
    fn num_or_zero(&self, key: &str) -> Result<u64, String> {
        match self.0.iter().find(|(k, _)| k == key) {
            Some((_, v)) => v.num(key),
            None => Ok(0),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of JSON".into()),
        Some(b'n') => {
            if b[*pos..].starts_with(b"null") {
                *pos += 4;
                Ok(Json::Null)
            } else {
                Err(format!("bad token at byte {pos}", pos = *pos))
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut out = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            loop {
                out.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(out));
                    }
                    _ => return Err(format!("expected , or ] at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut out = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected : at byte {}", *pos));
                }
                *pos += 1;
                out.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(out));
                    }
                    _ => return Err(format!("expected , or }} at byte {}", *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        Some(c) => Err(format!("unexpected byte {c:?} at {}", *pos)),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(cp).ok_or("bad \\u codepoint")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

// ---- the collector the tiers write into ----

struct Node {
    kind: SpanKind,
    name: String,
    line: u32,
    entries: u64,
    wall_ns: u64,
    children: Vec<usize>,
}

struct Open {
    node: usize,
    start: Instant,
    kind: SpanKind,
    /// VM only: pc just past the loop (used by [`Collector::close_loops_at`]).
    end_pc: u32,
}

#[derive(Default)]
struct CInner {
    nodes: Vec<Node>,
    roots: Vec<usize>,
    open: Vec<Open>,
    steps: u64,
}

/// Span sink shared by both tiers for one run.
///
/// Deliberately **not** `Sync`: parallel-region workers never hold a
/// collector (worker `Vm`/`Task` instances are constructed without one),
/// so all writes come from the orchestrating thread.
#[derive(Default)]
pub struct Collector {
    inner: RefCell<CInner>,
}

impl Collector {
    pub fn new() -> Collector {
        Collector::default()
    }

    fn enter(&self, kind: SpanKind, name: &str, line: u32, end_pc: u32) {
        let mut i = self.inner.borrow_mut();
        let parent = i.open.last().map(|o| o.node);
        let siblings = match parent {
            Some(p) => &i.nodes[p].children,
            None => &i.roots,
        };
        let found = siblings
            .iter()
            .copied()
            .find(|&c| i.nodes[c].kind == kind && i.nodes[c].line == line && i.nodes[c].name == name);
        let node = match found {
            Some(n) => n,
            None => {
                let n = i.nodes.len();
                i.nodes.push(Node {
                    kind,
                    name: name.to_string(),
                    line,
                    entries: 0,
                    wall_ns: 0,
                    children: Vec::new(),
                });
                match parent {
                    Some(p) => i.nodes[p].children.push(n),
                    None => i.roots.push(n),
                }
                n
            }
        };
        i.nodes[node].entries += 1;
        i.open.push(Open { node, start: Instant::now(), kind, end_pc });
    }

    fn pop_one(i: &mut CInner) {
        if let Some(o) = i.open.pop() {
            i.nodes[o.node].wall_ns += o.start.elapsed().as_nanos() as u64;
        }
    }

    /// Opens a unit span (entry unit or a call).
    pub fn unit_enter(&self, name: &str) {
        self.enter(SpanKind::Unit, name, 0, 0);
    }

    /// Closes the innermost unit span, first closing any loop spans left
    /// open by a `RETURN` from inside a loop.
    pub fn unit_exit(&self) {
        let mut i = self.inner.borrow_mut();
        while let Some(top) = i.open.last() {
            let is_unit = top.kind == SpanKind::Unit;
            Self::pop_one(&mut i);
            if is_unit {
                break;
            }
        }
    }

    /// Opens a counted-DO-loop span. `end_pc` is the VM pc just past the
    /// loop (0 in the tree-walk tier, which closes structurally).
    pub fn loop_enter(&self, line: u32, end_pc: u32) {
        self.enter(SpanKind::Loop, "", line, end_pc);
    }

    /// Structured close of the innermost loop span (tree-walk tier).
    pub fn loop_exit(&self) {
        let mut i = self.inner.borrow_mut();
        if i.open.last().map(|o| o.kind) == Some(SpanKind::Loop) {
            Self::pop_one(&mut i);
        }
    }

    /// VM tier: a jump to `target` leaves every open loop whose end pc is
    /// at or before the target (loop-exit branches and `EXIT` jumps land
    /// exactly on a loop's end pc; backward jumps close nothing).
    pub fn close_loops_at(&self, target: u32) {
        let mut i = self.inner.borrow_mut();
        while let Some(top) = i.open.last() {
            if top.kind != SpanKind::Loop || top.end_pc > target {
                break;
            }
            Self::pop_one(&mut i);
        }
    }

    /// Opens an `!$OMP PARALLEL DO` region span.
    pub fn omp_enter(&self, line: u32) {
        self.enter(SpanKind::OmpLoop, "", line, 0);
    }

    /// Closes the innermost OMP span (and any loop spans still open
    /// inside the region body).
    pub fn omp_exit(&self) {
        let mut i = self.inner.borrow_mut();
        while let Some(top) = i.open.last() {
            let is_omp = top.kind == SpanKind::OmpLoop;
            Self::pop_one(&mut i);
            if is_omp {
                break;
            }
        }
    }

    /// Records the tier's retired-step count.
    pub fn set_steps(&self, steps: u64) {
        self.inner.borrow_mut().steps = steps;
    }

    /// Closes any spans still open (error unwinds) and extracts the span
    /// tree and step count.
    pub fn finish(&self) -> (Vec<SpanNode>, u64) {
        let mut i = self.inner.borrow_mut();
        while !i.open.is_empty() {
            Self::pop_one(&mut i);
        }
        fn build(nodes: &[Node], idx: usize) -> SpanNode {
            let n = &nodes[idx];
            SpanNode {
                kind: n.kind,
                name: n.name.clone(),
                line: n.line,
                entries: n.entries,
                wall_ns: n.wall_ns,
                children: n.children.iter().map(|&c| build(nodes, c)).collect(),
            }
        }
        let spans = i.roots.iter().map(|&r| build(&i.nodes, r)).collect();
        (spans, i.steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(kind: SpanKind, name: &str, line: u32, entries: u64, wall: u64) -> SpanNode {
        SpanNode { kind, name: name.into(), line, entries, wall_ns: wall, children: vec![] }
    }

    fn sample() -> Profile {
        let inner = leaf(SpanKind::Loop, "", 7, 12, 400);
        let omp = SpanNode { children: vec![inner], ..leaf(SpanKind::OmpLoop, "", 5, 1, 900) };
        let callee = leaf(SpanKind::Unit, "helper", 0, 3, 50);
        let root = SpanNode {
            children: vec![omp, callee],
            ..leaf(SpanKind::Unit, "work", 0, 1, 1000)
        };
        Profile {
            entry: "work".into(),
            tier: "vm".into(),
            mode: "parallel(4)".into(),
            wall_ns: 1100,
            steps: 12345,
            max_steps: Some(1_000_000),
            spans: vec![root],
            regions: vec![RegionReport {
                threads: 4,
                wall_ns: 800,
                busy_ns: vec![700, 650, 600, 550],
                line: 5,
                sched: "static".into(),
            }],
            fallback: None,
            fallback_count: 0,
            native_entries: 42,
            native_deopts: 3,
        }
    }

    #[test]
    fn json_round_trip() {
        let p = sample();
        let back = Profile::from_json(&p.to_json()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn json_round_trip_with_fallback_and_escapes() {
        let mut p = sample();
        p.fallback = Some(FallbackInfo {
            unit: "we\"ird\\name".into(),
            what: "line1\nline2\ttab\u{1}".into(),
        });
        p.max_steps = None;
        let back = Profile::from_json(&p.to_json()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn folded_round_trip_is_skeleton() {
        let p = sample();
        let parsed = Profile::parse_folded(&p.to_folded()).unwrap();
        let skel: Vec<SpanNode> = p.spans.iter().map(|s| s.skeleton()).collect();
        assert_eq!(parsed, skel);
    }

    #[test]
    fn collector_merges_and_counts() {
        let c = Collector::new();
        c.unit_enter("main");
        for _ in 0..3 {
            c.loop_enter(4, 10);
            c.loop_exit();
        }
        c.unit_enter("callee");
        c.unit_exit();
        c.unit_enter("callee");
        c.unit_exit();
        c.unit_exit();
        let (spans, _) = c.finish();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "main");
        assert_eq!(spans[0].children.len(), 2);
        assert_eq!(spans[0].children[0].entries, 3);
        assert_eq!(spans[0].children[1].entries, 2);
    }

    #[test]
    fn unit_exit_closes_stray_loops() {
        let c = Collector::new();
        c.unit_enter("f");
        c.loop_enter(2, 9);
        c.loop_enter(3, 8);
        c.unit_exit(); // RETURN from inside the nest
        let (spans, _) = c.finish();
        assert_eq!(spans.len(), 1);
        assert!(spans[0].children[0].children[0].line == 3);
    }

    #[test]
    fn close_loops_at_respects_end_pcs() {
        let c = Collector::new();
        c.unit_enter("f");
        c.loop_enter(2, 20);
        c.loop_enter(3, 10);
        c.close_loops_at(10); // inner natural exit
        c.close_loops_at(5); // backward jump: closes nothing
        c.close_loops_at(20); // outer exit
        {
            let i = c.inner.borrow();
            assert_eq!(i.open.len(), 1, "only the unit span remains open");
        }
        c.unit_exit();
        let (spans, _) = c.finish();
        assert_eq!(spans[0].children.len(), 1);
        assert_eq!(spans[0].children[0].children.len(), 1);
    }

    #[test]
    fn loop_entry_counts_key_by_enclosing_unit() {
        let c = Collector::new();
        c.unit_enter("outer");
        c.loop_enter(5, 0);
        c.loop_exit();
        c.unit_enter("inner");
        c.loop_enter(5, 0);
        c.loop_enter(6, 0);
        c.loop_exit();
        c.loop_exit();
        c.unit_exit();
        c.unit_exit();
        let (spans, steps) = c.finish();
        let p = Profile {
            entry: "outer".into(),
            tier: "vm".into(),
            mode: "serial".into(),
            wall_ns: 0,
            steps,
            max_steps: None,
            spans,
            regions: vec![],
            fallback: None,
            fallback_count: 0,
            native_entries: 0,
            native_deopts: 0,
        };
        let counts = p.loop_entry_counts();
        assert_eq!(counts[&("outer".to_string(), 5)], 1);
        assert_eq!(counts[&("inner".to_string(), 5)], 1);
        assert_eq!(counts[&("inner".to_string(), 6)], 1);
    }

    #[test]
    fn headroom_and_region_math() {
        let p = sample();
        assert_eq!(p.steps_headroom(), Some(1_000_000 - 12345));
        let r = &p.regions[0];
        assert_eq!(r.idle_ns(), 4 * 800 - (700 + 650 + 600 + 550));
        assert!(r.utilization() > 0.7 && r.utilization() < 0.8);
        assert!(r.imbalance() > 1.0);
    }
}
